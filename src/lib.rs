//! # strex-repro
//!
//! Facade over the STREX (ISCA 2013) reproduction workspace: re-exports
//! the three library crates plus the experiment harness, so downstream
//! users depend on one crate.
//!
//! * [`strex`] — schedulers, simulation driver, campaign executor;
//! * [`strex_sim`] — the memory-hierarchy simulator;
//! * [`strex_oltp`] — the OLTP workload model and trace generator;
//! * [`strex_bench`] — per-figure experiment entry points.
//!
//! The most common entry points are lifted to the top level:
//!
//! ```no_run
//! use strex_repro::{Campaign, SchedulerKind, SimConfig, Workload, WorkloadKind};
//!
//! let workloads = [Workload::preset_small(WorkloadKind::TpccW1, 16, 42)];
//! let cfg = SimConfig::builder().cores(4).build().expect("valid config");
//! let result = Campaign::new(cfg)
//!     .over_schedulers(SchedulerKind::ALL)
//!     .over_workloads(workloads.iter())
//!     .run()
//!     .expect("campaign runs");
//! println!("{}", result.to_json());
//! ```

pub use strex;
pub use strex_bench;
pub use strex_oltp;
pub use strex_sim;

pub use strex::campaign::{Campaign, CampaignResult, CellKey};
pub use strex::config::SchedulerKind;
pub use strex::driver::{run, SimConfig};
pub use strex::error::ConfigError;
pub use strex::report::Report;
pub use strex_oltp::workload::{Workload, WorkloadKind};
pub use strex_sim::config::SystemConfig;
