//! placeholder
