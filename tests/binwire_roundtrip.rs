//! The binary shard wire format against its JSON twin: every shard and
//! result the campaign executor can produce must survive the binwire
//! round trip **byte-identical to the JSON path** (decode, then
//! re-serialize canonically — the same equality the dist parent and the
//! dispatch bit-identity checks gate on), binary encoding must be
//! deterministic, and truncated or corrupted binary documents must come
//! back as typed [`WireError`]s — never a panic.

use proptest::prelude::*;

use strex::campaign::{Campaign, CampaignResult, CampaignShard, ShardSpec};
use strex::config::{SchedulerKind, SimConfig};
use strex::report::Report;
use strex_oltp::workload::{Workload, WorkloadKind};

/// A small but real campaign over arbitrary parameters: the shards it
/// produces exercise every field the wire carries (hybrid choices,
/// latency distributions, per-core counter blocks, multi-cell shards).
fn tiny_campaign_shard(
    kind: WorkloadKind,
    seed: u64,
    cores: usize,
    spec: ShardSpec,
) -> CampaignShard {
    let w = Workload::preset_small(kind, 6, seed);
    Campaign::new(SimConfig::new(cores, SchedulerKind::Baseline))
        .over_schedulers(SchedulerKind::ALL)
        .over_workloads([&w])
        .run_shard(spec)
        .expect("valid campaign")
}

fn workload_kinds() -> impl Strategy<Value = WorkloadKind> {
    prop_oneof![
        Just(WorkloadKind::TpccW1),
        Just(WorkloadKind::TpccW10),
        Just(WorkloadKind::Tpce),
        Just(WorkloadKind::MapReduce),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tentpole invariant: decode(encode(shard)) re-serializes to the
    /// exact bytes the JSON path produces, for arbitrary campaign
    /// geometries — so the two wire formats are interchangeable
    /// mid-flight and the merged result cannot depend on which one a
    /// child spoke.
    #[test]
    fn shards_survive_binwire_byte_identical_to_the_json_path(
        kind in workload_kinds(),
        seed in 0u64..1000,
        cores in 2usize..5,
        index in 0usize..3,
        count in 1usize..4,
    ) {
        let spec = ShardSpec::new(index.min(count - 1), count).expect("valid spec");
        let shard = tiny_campaign_shard(kind, seed, cores, spec);
        let bin = shard.to_bin();
        prop_assert_eq!(&bin, &shard.to_bin(), "binary encoding is deterministic");
        let decoded = CampaignShard::from_bin(&bin)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(decoded.to_json(), shard.to_json());
        prop_assert_eq!(decoded.to_bin(), bin, "re-encode is byte-identical too");
    }

    /// Every strict prefix of a valid binary document is a typed error.
    #[test]
    fn truncated_binary_documents_are_typed_errors(cut_seed in 0usize..10_000) {
        let shard = tiny_campaign_shard(
            WorkloadKind::TpccW1,
            7,
            2,
            ShardSpec::new(0, 2).expect("valid"),
        );
        let bin = shard.to_bin();
        let cut = cut_seed % bin.len();
        prop_assert!(CampaignShard::from_bin(&bin[..cut]).is_err());
    }

    /// Flipping any single byte of a valid document never panics; it
    /// either fails typed or — where the flipped byte is plain payload
    /// (a counter, a latency bucket) — decodes to a *different* document
    /// that still re-encodes cleanly. What it can never do is silently
    /// decode back to the original.
    #[test]
    fn corrupted_binary_documents_never_panic(pos_seed in 0usize..10_000, flip in 1u8..=255) {
        let shard = tiny_campaign_shard(
            WorkloadKind::MapReduce,
            3,
            2,
            ShardSpec::new(0, 1).expect("valid"),
        );
        let mut bin = shard.to_bin();
        let pos = pos_seed % bin.len();
        bin[pos] ^= flip;
        if let Ok(decoded) = CampaignShard::from_bin(&bin) {
            prop_assert_ne!(
                decoded.to_bin(),
                shard.to_bin(),
                "a flipped byte must not decode back to the original document"
            );
        }
    }

    /// Arbitrary bytes — with and without a valid header — are typed
    /// errors, never panics.
    #[test]
    fn garbage_binary_documents_are_typed_errors(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
        with_header in any::<bool>(),
    ) {
        let doc = if with_header {
            let mut doc = vec![0xB1, b'S'];
            doc.extend_from_slice(&bytes);
            doc
        } else {
            bytes
        };
        // Either outcome must be reached without panicking; decoding
        // random bytes into a *valid* shard is astronomically unlikely
        // but not an error in itself.
        let _ = CampaignShard::from_bin(&doc);
        let _ = CampaignResult::from_bin(&doc);
        let _ = Report::from_bin(&doc);
    }
}

#[test]
fn results_and_reports_round_trip_byte_identical_to_json() {
    let workloads = [
        Workload::preset_small(WorkloadKind::TpccW1, 8, 7),
        Workload::preset_small(WorkloadKind::Tpce, 8, 7),
    ];
    let result = Campaign::new(SimConfig::new(2, SchedulerKind::Baseline))
        .over_schedulers([SchedulerKind::Baseline, SchedulerKind::Strex])
        .over_workloads(workloads.iter())
        .run()
        .expect("valid campaign");
    let decoded = CampaignResult::from_bin(&result.to_bin()).expect("own bytes decode");
    assert_eq!(decoded.to_json(), result.to_json());
    for cell in result.cells() {
        let report = &cell.report;
        let decoded = Report::from_bin(&report.to_bin()).expect("own bytes decode");
        assert_eq!(decoded.to_json(), report.to_json(), "{}", cell.key);
    }
}

#[test]
fn binary_documents_reject_kind_confusion_and_trailing_bytes() {
    let shard = tiny_campaign_shard(
        WorkloadKind::TpccW1,
        1,
        2,
        ShardSpec::new(0, 1).expect("valid"),
    );
    let bin = shard.to_bin();
    // A shard document is not a result, a report, or JSON.
    assert!(CampaignResult::from_bin(&bin).is_err());
    assert!(Report::from_bin(&bin).is_err());
    assert!(strex::binwire::is_binary(bin[0]), "leading magic byte");
    // Trailing bytes after a complete document are corruption, not slack.
    let mut padded = bin.clone();
    padded.push(0);
    assert!(CampaignShard::from_bin(&padded).is_err());
}
