//! Integration tests of the redesigned simulation surface: the validating
//! config builder, the scheduler registry, and the parallel campaign
//! executor — including the determinism guarantee the executor must keep.

use strex::campaign::Campaign;
use strex::config::{SchedulerKind, SimConfig, MAX_CORES};
use strex::driver::{run, run_registered};
use strex::error::ConfigError;
use strex::sched::registry::{self, SchedulerFactory, SchedulerRegistry};
use strex::sched::{BaselineSched, Scheduler};
use strex_oltp::workload::{Workload, WorkloadKind};

fn pools() -> Vec<Workload> {
    vec![
        Workload::preset_small(WorkloadKind::TpccW1, 16, 5),
        Workload::preset_small(WorkloadKind::MapReduce, 16, 5),
        Workload::preset_small(WorkloadKind::Tpce, 12, 5),
    ]
}

/// The acceptance matrix: schedulers x workloads on a worker pool must be
/// bit-identical to sequential single-`run` calls. The comparison is on
/// the serialized reports, which cover every latency and every hierarchy
/// counter — determinism must survive the executor.
#[test]
fn parallel_campaign_matches_sequential_runs_bit_for_bit() {
    let workloads = pools();
    let base = SimConfig::builder()
        .cores(2)
        .build()
        .expect("valid base configuration");
    let result = Campaign::new(base.clone())
        .over_schedulers(SchedulerKind::ALL)
        .over_workloads(&workloads)
        .parallelism(4)
        .run()
        .expect("valid campaign");
    assert_eq!(result.len(), 12, "scheduler x workload matrix");

    for cell in result.cells() {
        let workload = workloads
            .iter()
            .find(|w| w.name() == cell.key.workload)
            .expect("cell names a campaign workload");
        let mut cfg = base.clone();
        cfg.scheduler = SchedulerKind::from_key(&cell.key.scheduler).expect("built-in");
        cfg.system.n_cores = cell.key.cores;
        cfg.strex.team_size = cell.key.team_size;
        let sequential = run(workload, &cfg);
        assert_eq!(
            cell.report.to_json(),
            sequential.to_json(),
            "cell {} diverged from a sequential run",
            cell.key
        );
    }
}

/// The sharded executor's determinism guarantee, property-tested: *any*
/// worker count — 1 (sequential), 2, 7 (coprime with the cell count, so
/// shards straddle every axis), `num_cpus`, or anything else the strategy
/// draws — produces a `CampaignResult` bit-identical to the sequential
/// one, per-worker scratch reuse and all.
mod sharded_worker_counts {
    use super::*;
    use proptest::prelude::*;
    use std::sync::OnceLock;

    fn reference() -> &'static (Vec<Workload>, String) {
        static REF: OnceLock<(Vec<Workload>, String)> = OnceLock::new();
        REF.get_or_init(|| {
            let workloads = vec![
                Workload::preset_small(WorkloadKind::TpccW1, 8, 11),
                Workload::preset_small(WorkloadKind::MapReduce, 8, 11),
            ];
            let sequential = build(&workloads, 1);
            (workloads, sequential)
        })
    }

    fn build(workloads: &[Workload], parallelism: usize) -> String {
        Campaign::new(SimConfig::new(2, SchedulerKind::Baseline))
            .over_schedulers([SchedulerKind::Strex, SchedulerKind::Slicc])
            .over_workloads(workloads)
            .over_cores([2, 4])
            .parallelism(parallelism)
            .run()
            .expect("valid campaign")
            .to_json()
    }

    fn worker_counts() -> impl Strategy<Value = usize> {
        let num_cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        prop_oneof![
            Just(1usize),
            Just(2usize),
            Just(7usize),
            Just(num_cpus),
            // And arbitrary oversubscription beyond the cell count.
            1usize..=16,
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        #[test]
        fn any_worker_count_is_bit_identical_to_sequential(workers in worker_counts()) {
            let (workloads, sequential) = reference();
            prop_assert_eq!(&build(workloads, workers), sequential);
        }
    }
}

/// The deterministic sharding layer: shard ownership must partition the
/// matrix (every cell in exactly one shard), and reassembling shards —
/// through the JSON wire format, in any merge order — must reproduce the
/// sequential `CampaignResult` byte for byte.
mod deterministic_sharding {
    use super::*;
    use proptest::prelude::*;
    use std::sync::OnceLock;
    use strex::campaign::{merge, shard_of, CampaignShard, MergeError, ShardSpec};

    fn workloads() -> Vec<Workload> {
        vec![
            Workload::preset_small(WorkloadKind::TpccW1, 8, 11),
            Workload::preset_small(WorkloadKind::MapReduce, 8, 11),
        ]
    }

    fn campaign(workloads: &[Workload]) -> Campaign<'_> {
        Campaign::new(SimConfig::new(2, SchedulerKind::Baseline))
            .over_schedulers([SchedulerKind::Strex, SchedulerKind::Slicc])
            .over_workloads(workloads)
            .over_cores([2, 4])
    }

    /// The sequential result every shard/merge combination must equal.
    fn sequential_json() -> &'static str {
        static REF: OnceLock<String> = OnceLock::new();
        REF.get_or_init(|| {
            let w = workloads();
            campaign(&w)
                .parallelism(1)
                .run()
                .expect("valid campaign")
                .to_json()
        })
    }

    #[test]
    fn shard_partitions_are_disjoint_and_complete() {
        let w = workloads();
        let cells = campaign(&w)
            .cells(registry::global())
            .expect("valid campaign");
        assert_eq!(cells.len(), 8);
        for count in [1usize, 2, 3, 5, 8, 13] {
            let specs: Vec<ShardSpec> = (0..count)
                .map(|i| ShardSpec::new(i, count).expect("valid"))
                .collect();
            for (key, _) in &cells {
                // Exactly one owner per cell = disjoint AND complete.
                let owners = specs.iter().filter(|s| s.owns(key)).count();
                assert_eq!(owners, 1, "cell {key} owned by {owners} shards of {count}");
            }
        }
    }

    #[test]
    fn shard_assignment_ignores_matrix_position() {
        // The same key hashes to the same shard no matter which campaign
        // enumerated it — the property that lets processes shard without
        // coordination.
        let w = workloads();
        let small = campaign(&w[..1]).cells(registry::global()).expect("valid");
        let full = campaign(&w).cells(registry::global()).expect("valid");
        for (key, _) in &small {
            let twin = full
                .iter()
                .find(|(k, _)| k.to_string() == key.to_string())
                .expect("subset");
            assert_eq!(shard_of(key, 4), shard_of(&twin.0, 4));
        }
    }

    #[test]
    fn invalid_shard_specs_are_rejected() {
        assert_eq!(
            ShardSpec::new(0, 0).unwrap_err(),
            ConfigError::InvalidShard { index: 0, count: 0 }
        );
        assert_eq!(
            ShardSpec::new(2, 2).unwrap_err(),
            ConfigError::InvalidShard { index: 2, count: 2 }
        );
        let w = workloads();
        let err = campaign(&w)
            .run_shard(ShardSpec { index: 5, count: 3 })
            .unwrap_err();
        assert_eq!(err, ConfigError::InvalidShard { index: 5, count: 3 });
    }

    fn run_shards(count: usize) -> Vec<CampaignShard> {
        let w = workloads();
        (0..count)
            .map(|i| {
                campaign(&w)
                    .run_shard(ShardSpec::new(i, count).expect("valid"))
                    .expect("valid campaign")
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn any_shard_count_and_merge_order_reproduces_sequential(
            count in 1usize..=6,
            rotation in 0usize..6,
            reversed in any::<bool>(),
        ) {
            // Every shard crosses a simulated process boundary: serialize,
            // parse back, then merge in a permuted order.
            let mut shards: Vec<CampaignShard> = run_shards(count)
                .iter()
                .map(|s| {
                    CampaignShard::from_json(&s.to_json())
                        .map_err(|e| TestCaseError::fail(e.to_string()))
                })
                .collect::<Result<_, _>>()?;
            shards.rotate_left(rotation % count.max(1));
            if reversed {
                shards.reverse();
            }
            let merged = merge(shards).map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(merged.to_json(), sequential_json());
            prop_assert_eq!(merged.perf().workers, count);
        }
    }

    #[test]
    fn merge_rejects_incomplete_or_conflicting_shard_sets() {
        let shards = run_shards(3);
        assert!(matches!(merge(Vec::new()).unwrap_err(), MergeError::Empty));
        // A missing shard.
        assert!(matches!(
            merge(shards[..2].to_vec()).unwrap_err(),
            MergeError::MissingShard { index: 2, count: 3 }
        ));
        // A duplicated shard.
        let mut dup = shards.clone();
        dup.push(shards[1].clone());
        assert!(matches!(
            merge(dup).unwrap_err(),
            MergeError::DuplicateShard { index: 1 }
        ));
        // Disagreeing counts.
        let mut mixed = run_shards(2);
        mixed.push(shards[2].clone());
        assert!(matches!(
            merge(mixed).unwrap_err(),
            MergeError::MismatchedCounts {
                expected: 2,
                found: 3
            }
        ));
        // And the happy path still holds after all that cloning.
        assert_eq!(
            merge(shards).expect("complete").to_json(),
            sequential_json()
        );
    }

    #[test]
    fn shard_wire_format_round_trips_with_indices_and_perf() {
        let w = workloads();
        let shard = campaign(&w)
            .run_shard(ShardSpec::new(0, 2).expect("valid"))
            .expect("valid campaign");
        let json = shard.to_json();
        let parsed = CampaignShard::from_json(&json).expect("own output parses");
        assert_eq!(parsed.spec(), shard.spec());
        assert_eq!(parsed.to_json(), json, "byte-identical round trip");
        assert_eq!(parsed.cells().len(), shard.cells().len());
        assert_eq!(parsed.perf().total_events, shard.perf().total_events);
        for ((ia, ca), (ib, cb)) in shard.cells().iter().zip(parsed.cells()) {
            assert_eq!(ia, ib);
            assert_eq!(ca.key, cb.key, "workload_idx crosses the wire");
            assert_eq!(ca.report.to_json(), cb.report.to_json());
        }
    }

    #[test]
    fn pinned_workers_change_nothing_but_placement() {
        let w = workloads();
        let pinned = campaign(&w)
            .parallelism(2)
            .pin_workers(true)
            .run()
            .expect("valid campaign");
        assert_eq!(pinned.to_json(), sequential_json());
    }
}

#[test]
fn campaign_result_order_is_independent_of_worker_count() {
    let workloads = pools();
    let build = |parallelism| {
        Campaign::new(SimConfig::new(2, SchedulerKind::Baseline))
            .over_schedulers([SchedulerKind::Baseline, SchedulerKind::Strex])
            .over_workloads(&workloads)
            .over_cores([2, 4])
            .parallelism(parallelism)
            .run()
            .expect("valid campaign")
    };
    let serial = build(1);
    let parallel = build(8);
    assert_eq!(serial.len(), 12);
    assert_eq!(serial.to_json(), parallel.to_json());
}

#[test]
fn campaign_json_is_well_formed() {
    let workloads = pools();
    let result = Campaign::new(SimConfig::new(2, SchedulerKind::Strex))
        .over_workloads([&workloads[0]])
        .over_team_sizes([2, 10])
        .run()
        .expect("valid campaign");
    let json = result.to_json();
    assert_json_value(&json);
    assert!(json.contains(r#""id":"TPC-C-1/strex/c2/t2""#));
    assert!(json.contains(r#""team_size":10"#));
}

#[test]
fn builder_surfaces_every_error_variant() {
    // Constructibility of each ConfigError through the public surface.
    let errs = [
        SimConfig::builder().cores(0).build().unwrap_err(),
        SimConfig::builder()
            .cores(MAX_CORES + 1)
            .build()
            .unwrap_err(),
        SimConfig::builder().team_size(0).build().unwrap_err(),
        SimConfig::builder()
            .team_size(8)
            .formation_window(2)
            .build()
            .unwrap_err(),
        {
            let mut sys = strex_sim::config::SystemConfig::with_cores(2);
            sys.l2_assoc = 0;
            SimConfig::builder().system(sys).build().unwrap_err()
        },
    ];
    assert!(matches!(errs[0], ConfigError::ZeroCores));
    assert!(matches!(errs[1], ConfigError::TooManyCores { .. }));
    assert!(matches!(errs[2], ConfigError::ZeroTeamSize));
    assert!(matches!(
        errs[3],
        ConfigError::FormationWindowTooSmall { .. }
    ));
    assert!(matches!(
        errs[4],
        ConfigError::ZeroCacheGeometry { cache: "L2" }
    ));
    // And the campaign surfaces the sixth (registry) variant.
    let w = Workload::preset_small(WorkloadKind::TpccW1, 4, 1);
    let err = Campaign::new(SimConfig::new(2, SchedulerKind::Baseline))
        .over_workloads([&w])
        .over_scheduler_names(["missing"])
        .run()
        .unwrap_err();
    assert!(matches!(err, ConfigError::UnknownScheduler { .. }));
    // Every error Displays something human-readable.
    for e in errs {
        assert!(!e.to_string().is_empty());
    }
}

#[test]
fn builder_defaults_equal_default_field_for_field() {
    assert_eq!(
        SimConfig::builder().build().expect("valid"),
        SimConfig::default()
    );
}

/// Custom policies plug in through the registry without touching the
/// driver: register a factory, then drive both a single run and a whole
/// campaign through it by name.
#[test]
fn custom_factory_plugs_into_driver_and_campaign() {
    struct RenamedBaseline;
    impl SchedulerFactory for RenamedBaseline {
        fn name(&self) -> &'static str {
            "renamed-baseline"
        }
        fn create(&self, _config: &SimConfig) -> Box<dyn Scheduler> {
            Box::new(BaselineSched::new())
        }
    }

    let mut reg = SchedulerRegistry::with_defaults();
    reg.register(Box::new(RenamedBaseline));

    let w = Workload::preset_small(WorkloadKind::TpccW1, 8, 3);
    let cfg = SimConfig::new(2, SchedulerKind::Baseline);

    // Through the campaign, by name.
    let result = Campaign::new(cfg.clone())
        .over_scheduler_names(["renamed-baseline"])
        .over_workloads([&w])
        .run_on(&reg)
        .expect("valid campaign");
    assert_eq!(result.len(), 1);

    // Identical to the built-in baseline resolved through the same
    // registry (the policy is the same machine under a new name).
    let builtin = run_registered(&w, &cfg, &reg);
    assert_eq!(result.cells()[0].report.to_json(), builtin.to_json());
    // And the global-registry path still answers for built-ins.
    assert_eq!(run(&w, &cfg).to_json(), builtin.to_json());
    assert!(registry::global().get("renamed-baseline").is_none());
}

/// A minimal JSON well-formedness check (the build environment has no
/// serde to parse with): validates one JSON value and panics on trailing
/// garbage or structural errors.
fn assert_json_value(s: &str) {
    let bytes = s.as_bytes();
    let end = parse_value(bytes, skip_ws(bytes, 0));
    assert_eq!(skip_ws(bytes, end), bytes.len(), "trailing garbage");
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
        i += 1;
    }
    i
}

fn parse_value(b: &[u8], i: usize) -> usize {
    match b.get(i) {
        Some(b'{') => parse_container(b, i, b'}', true),
        Some(b'[') => parse_container(b, i, b']', false),
        Some(b'"') => parse_string(b, i),
        Some(b't') => expect_lit(b, i, b"true"),
        Some(b'f') => expect_lit(b, i, b"false"),
        Some(b'n') => expect_lit(b, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let mut j = i + 1;
            while j < b.len() && matches!(b[j], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
                j += 1;
            }
            j
        }
        other => panic!("unexpected token {other:?} at {i}"),
    }
}

fn parse_container(b: &[u8], mut i: usize, close: u8, keyed: bool) -> usize {
    i = skip_ws(b, i + 1);
    if b.get(i) == Some(&close) {
        return i + 1;
    }
    loop {
        if keyed {
            i = parse_string(b, i);
            i = skip_ws(b, i);
            assert_eq!(b.get(i), Some(&b':'), "missing colon at {i}");
            i = skip_ws(b, i + 1);
        }
        i = skip_ws(b, parse_value(b, i));
        match b.get(i) {
            Some(b',') => i = skip_ws(b, i + 1),
            Some(c) if *c == close => return i + 1,
            other => panic!("expected ',' or close, got {other:?} at {i}"),
        }
    }
}

fn expect_lit(b: &[u8], i: usize, lit: &[u8]) -> usize {
    assert_eq!(
        b.get(i..i + lit.len()),
        Some(lit),
        "expected literal at {i}"
    );
    i + lit.len()
}

fn parse_string(b: &[u8], i: usize) -> usize {
    assert_eq!(b.get(i), Some(&b'"'), "expected string at {i}");
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    panic!("unterminated string at {i}");
}
