//! The dispatcher's job lifecycle on a hand-advanced clock: assignment,
//! completion, heartbeat-timeout → re-queue, straggler hedging,
//! duplicate-completion dedup, token-bucket rate limiting,
//! capability-aware assignment and status snapshots — all driven through
//! the pure [`Coordinator`] state machine, no socket or sleep anywhere.
//! The timestamps come from a [`FakeClock`] exactly as the serve shell
//! reads its `SystemClock`, so the deadline arithmetic under test is the
//! production arithmetic.

use std::sync::Arc;

use strex::binwire::WireFormat;
use strex::campaign::{Campaign, CampaignResult, CampaignShard, ShardSpec};
use strex::config::{SchedulerKind, SimConfig};
use strex::dispatch::{
    job_key, Action, Clock, Coordinator, DispatchConfig, Event, FakeClock, JobSpec, Message,
    RejectReason, WorkerCaps, WorkerLossReason,
};
use strex::scenario::{EvaluatorRegistry, Scenario};
use strex_oltp::workload::{Workload, WorkloadKind};

const CAMPAIGN: &str = "tiny";

fn tiny_workloads() -> Vec<Workload> {
    vec![
        Workload::preset_small(WorkloadKind::TpccW1, 8, 7),
        Workload::preset_small(WorkloadKind::MapReduce, 8, 7),
    ]
}

fn tiny_campaign(workloads: &[Workload]) -> Campaign<'_> {
    Campaign::new(SimConfig::new(2, SchedulerKind::Baseline))
        .over_schedulers([SchedulerKind::Baseline, SchedulerKind::Strex])
        .over_workloads(workloads)
}

fn tiny_shard(spec: ShardSpec) -> CampaignShard {
    let workloads = tiny_workloads();
    tiny_campaign(&workloads).run_shard(spec).expect("valid")
}

fn tiny_sequential() -> CampaignResult {
    let workloads = tiny_workloads();
    tiny_campaign(&workloads).run().expect("valid")
}

fn tiny_scenario() -> Scenario {
    Scenario::from_json(
        r#"{
            "name": "tiny-scenario",
            "matrix": {
                "workloads": ["TPC-C-1"],
                "pool": 8,
                "seed": 7,
                "small": true,
                "schedulers": ["baseline"],
                "cores": [2]
            },
            "assertions": [
                {
                    "kind": "throughput_at_least",
                    "cell": {"workload": "TPC-C-1", "scheduler": "baseline", "cores": 2},
                    "min": 0.0
                }
            ]
        }"#,
    )
    .expect("valid scenario")
}

fn cfg() -> DispatchConfig {
    DispatchConfig {
        worker_timeout_ms: 1_000,
        heartbeat_interval_ms: 250,
        shard_deadline_ms: 60_000,
        // Rate limiting off (refill 0 snaps the bucket full) so lifecycle
        // tests exercise one mechanism at a time; the rate-limit tests
        // below opt back in explicitly.
        submit_refill_ms: 0,
        ..DispatchConfig::default()
    }
}

fn coordinator() -> Coordinator {
    Coordinator::new(cfg(), [CAMPAIGN.to_string()])
}

/// Capabilities of a fully able test worker (scenario execution on).
fn able_caps() -> WorkerCaps {
    WorkerCaps {
        cores: 2,
        pinning: false,
        avx2: false,
        scenarios: true,
        wires: vec![WireFormat::Json],
    }
}

/// Drives `c` with `event` at the fake clock's current reading.
fn step(c: &mut Coordinator, clock: &FakeClock, event: Event) -> Vec<Action> {
    c.handle(clock.now_ms(), event)
}

/// The `Assign` sent to `conn` within `actions`, if any.
fn assignment_to(actions: &[Action], conn: u64) -> Option<(String, ShardSpec)> {
    actions.iter().find_map(|a| match a {
        Action::Send(to, Message::Assign { job, spec, .. }) if *to == conn => {
            Some((job.clone(), *spec))
        }
        _ => None,
    })
}

/// The `Result` sent to `conn` within `actions`, if any.
fn result_to(actions: &[Action], conn: u64) -> Option<CampaignResult> {
    actions.iter().find_map(|a| match a {
        Action::Send(to, Message::Result { result, .. }) if *to == conn => Some(result.clone()),
        _ => None,
    })
}

/// The typed rejection sent to `conn` within `actions`, if any.
fn rejection_to(actions: &[Action], conn: u64) -> Option<RejectReason> {
    actions.iter().find_map(|a| match a {
        Action::Send(to, Message::Reject { reason, .. }) if *to == conn => Some(*reason),
        _ => None,
    })
}

const SUBMITTER: u64 = 1;
const WORKER_A: u64 = 2;
const WORKER_B: u64 = 3;

fn register(c: &mut Coordinator, clock: &FakeClock, conn: u64, name: &str) -> Vec<Action> {
    register_with(c, clock, conn, name, able_caps())
}

fn register_with(
    c: &mut Coordinator,
    clock: &FakeClock,
    conn: u64,
    name: &str,
    caps: WorkerCaps,
) -> Vec<Action> {
    step(
        c,
        clock,
        Event::Message(
            conn,
            Message::Register {
                name: name.into(),
                caps,
            },
        ),
    )
}

fn submit(c: &mut Coordinator, clock: &FakeClock, shards: usize) -> Vec<Action> {
    submit_from(c, clock, SUBMITTER, shards)
}

fn submit_from(c: &mut Coordinator, clock: &FakeClock, conn: u64, shards: usize) -> Vec<Action> {
    step(
        c,
        clock,
        Event::Message(
            conn,
            Message::Submit {
                work: JobSpec::Catalog(CAMPAIGN.into()),
                shards,
            },
        ),
    )
}

/// Runs every `Assign` in `actions` through the real shard executor and
/// feeds the completions back, returning all follow-up actions.
fn complete_assignments(c: &mut Coordinator, clock: &FakeClock, actions: &[Action]) -> Vec<Action> {
    complete_assignments_of(c, clock, actions, None)
}

/// [`complete_assignments`] restricted to assignments sent to `only`
/// (`None` completes them all) — for tests where one worker must stay
/// silent on its shard.
fn complete_assignments_of(
    c: &mut Coordinator,
    clock: &FakeClock,
    actions: &[Action],
    only: Option<u64>,
) -> Vec<Action> {
    let mut out = Vec::new();
    for action in actions {
        if let Action::Send(conn, Message::Assign { job, spec, .. }) = action {
            if only.is_some_and(|w| w != *conn) {
                continue;
            }
            let shard = tiny_shard(*spec);
            out.extend(step(
                c,
                clock,
                Event::Message(
                    *conn,
                    Message::ShardDone {
                        job: job.clone(),
                        shard,
                    },
                ),
            ));
        }
    }
    out
}

#[test]
fn two_workers_complete_a_job_bit_identical_to_sequential() {
    let clock = Arc::new(FakeClock::new());
    let mut c = coordinator();
    register(&mut c, &clock, WORKER_A, "a");
    register(&mut c, &clock, WORKER_B, "b");
    assert_eq!(c.worker_count(), 2);

    let actions = submit(&mut c, &clock, 3);
    // Two shards go out immediately (one per idle worker), the third waits.
    assert!(assignment_to(&actions, WORKER_A).is_some());
    assert!(assignment_to(&actions, WORKER_B).is_some());
    assert_eq!(c.open_jobs(), 1);

    // Completing the first wave frees workers; the third shard is assigned
    // in the same handle() call and completes in the second wave.
    let wave2 = complete_assignments(&mut c, &clock, &actions);
    let wave3 = complete_assignments(&mut c, &clock, &wave2);

    let result = result_to(&wave3, SUBMITTER).expect("merged result delivered");
    assert_eq!(result.to_json(), tiny_sequential().to_json());
    assert!(wave3
        .iter()
        .any(|a| matches!(a, Action::JobCompleted { job } if *job == job_key(CAMPAIGN, 3))));
    assert_eq!(c.open_jobs(), 0);
}

#[test]
fn heartbeats_keep_a_silent_worker_alive() {
    let clock = Arc::new(FakeClock::new());
    let mut c = coordinator();
    register(&mut c, &clock, WORKER_A, "a");
    for _ in 0..8 {
        clock.advance(900);
        let actions = step(&mut c, &clock, Event::Message(WORKER_A, Message::Heartbeat));
        assert!(actions.is_empty(), "{actions:?}");
        assert_eq!(c.worker_count(), 1);
    }
}

#[test]
fn dead_worker_times_out_and_its_shard_requeues() {
    let clock = Arc::new(FakeClock::new());
    let mut c = coordinator();
    register(&mut c, &clock, WORKER_A, "doomed");
    register(&mut c, &clock, WORKER_B, "steady");
    let actions = submit(&mut c, &clock, 2);
    let (job_a, spec_a) = assignment_to(&actions, WORKER_A).expect("A assigned");
    let (_, spec_b) = assignment_to(&actions, WORKER_B).expect("B assigned");
    assert_ne!(spec_a.index, spec_b.index);

    // B completes its shard and heartbeats on cadence; A never speaks
    // again. Past the timeout, a tick reaps A and hands its shard to B.
    let after_b = complete_assignments_of(&mut c, &clock, &actions, Some(WORKER_B));
    assert!(result_to(&after_b, SUBMITTER).is_none(), "job still open");
    clock.advance(600);
    step(&mut c, &clock, Event::Message(WORKER_B, Message::Heartbeat));
    clock.advance(600);
    let reaped = step(&mut c, &clock, Event::Tick);
    assert!(
        reaped.iter().any(|a| matches!(
            a,
            Action::WorkerLost {
                name,
                reason: WorkerLossReason::HeartbeatTimeout,
                requeued: Some(spec),
            } if name == "doomed" && *spec == spec_a
        )),
        "{reaped:?}"
    );
    assert_eq!(c.worker_count(), 1);
    let (job_b2, spec_b2) = assignment_to(&reaped, WORKER_B).expect("A's shard re-assigned to B");
    assert_eq!((job_b2, spec_b2), (job_a, spec_a));

    let done = complete_assignments(&mut c, &clock, &reaped);
    let result = result_to(&done, SUBMITTER).expect("job completes despite the death");
    assert_eq!(result.to_json(), tiny_sequential().to_json());
}

#[test]
fn disconnected_worker_requeues_immediately() {
    let clock = Arc::new(FakeClock::new());
    let mut c = coordinator();
    register(&mut c, &clock, WORKER_A, "flaky");
    let actions = submit(&mut c, &clock, 1);
    let (_, spec) = assignment_to(&actions, WORKER_A).expect("assigned");

    let lost = step(&mut c, &clock, Event::Disconnected(WORKER_A));
    assert!(
        lost.iter().any(|a| matches!(
            a,
            Action::WorkerLost {
                reason: WorkerLossReason::Disconnected,
                requeued: Some(s),
                ..
            } if *s == spec
        )),
        "{lost:?}"
    );
    assert_eq!(c.worker_count(), 0);

    // A fresh worker picks the shard up and the job still completes.
    let assigned = register(&mut c, &clock, WORKER_B, "fresh");
    assert_eq!(
        assignment_to(&assigned, WORKER_B).map(|(_, s)| s),
        Some(spec)
    );
    let done = complete_assignments(&mut c, &clock, &assigned);
    let result = result_to(&done, SUBMITTER).expect("delivered");
    assert_eq!(result.to_json(), tiny_sequential().to_json());
}

#[test]
fn straggler_is_hedged_and_its_late_duplicate_is_dropped() {
    let clock = Arc::new(FakeClock::new());
    let mut c = Coordinator::new(
        DispatchConfig {
            worker_timeout_ms: 1_000_000, // liveness out of the picture
            shard_deadline_ms: 500,       // hedge quickly
            ..cfg()
        },
        [CAMPAIGN.to_string()],
    );
    register(&mut c, &clock, WORKER_A, "straggler");
    let actions = submit(&mut c, &clock, 1);
    let (job, spec) = assignment_to(&actions, WORKER_A).expect("assigned");

    // Past the shard deadline the shard re-queues while A keeps running;
    // a newly registered B receives the duplicate assignment.
    clock.advance(600);
    step(&mut c, &clock, Event::Message(WORKER_A, Message::Heartbeat));
    let hedged = register(&mut c, &clock, WORKER_B, "hedge");
    assert_eq!(
        assignment_to(&hedged, WORKER_B),
        Some((job.clone(), spec)),
        "{hedged:?}"
    );

    // B finishes first: the job completes. A's late duplicate lands on a
    // finished job and is dropped without an error or a second result.
    let done = complete_assignments(&mut c, &clock, &hedged);
    let result = result_to(&done, SUBMITTER).expect("delivered");
    assert_eq!(result.to_json(), tiny_sequential().to_json());
    let late = step(
        &mut c,
        &clock,
        Event::Message(
            WORKER_A,
            Message::ShardDone {
                job,
                shard: tiny_shard(spec),
            },
        ),
    );
    assert!(
        !late
            .iter()
            .any(|a| matches!(a, Action::Send(SUBMITTER, _) | Action::JobCompleted { .. })),
        "{late:?}"
    );
}

#[test]
fn duplicate_completion_before_the_merge_is_deduplicated() {
    let clock = Arc::new(FakeClock::new());
    let mut c = Coordinator::new(
        DispatchConfig {
            worker_timeout_ms: 1_000_000,
            shard_deadline_ms: 500,
            ..cfg()
        },
        [CAMPAIGN.to_string()],
    );
    register(&mut c, &clock, WORKER_A, "straggler");
    register(&mut c, &clock, WORKER_B, "partner");
    let actions = submit(&mut c, &clock, 2);
    let (job, spec_a) = assignment_to(&actions, WORKER_A).expect("A assigned");

    // Hedge A's shard while B is still busy with its own; then a third
    // worker runs the duplicate. Both A and the third worker deliver
    // shard `spec_a`: the slot takes the first, drops the second, and the
    // final merge still succeeds (merge's DuplicateShard never fires).
    clock.advance(600);
    let tick = step(&mut c, &clock, Event::Tick);
    assert!(assignment_to(&tick, WORKER_A).is_none(), "{tick:?}");
    let third = register(&mut c, &clock, 9, "dup");
    assert_eq!(assignment_to(&third, 9).map(|(_, s)| s), Some(spec_a));

    for conn in [9, WORKER_A] {
        step(
            &mut c,
            &clock,
            Event::Message(
                conn,
                Message::ShardDone {
                    job: job.clone(),
                    shard: tiny_shard(spec_a),
                },
            ),
        );
    }
    let done = complete_assignments(&mut c, &clock, &actions);
    let result = result_to(&done, SUBMITTER).expect("delivered");
    assert_eq!(result.to_json(), tiny_sequential().to_json());
}

#[test]
fn finished_jobs_answer_resubmissions_from_the_cache() {
    let clock = Arc::new(FakeClock::new());
    let mut c = coordinator();
    register(&mut c, &clock, WORKER_A, "a");
    let actions = submit(&mut c, &clock, 2);
    let wave2 = complete_assignments(&mut c, &clock, &actions);
    let wave3 = complete_assignments(&mut c, &clock, &wave2);
    let first = result_to(&wave3, SUBMITTER).expect("delivered");

    // Same spec again, from a different submitter, with no workers doing
    // any new work: answered straight from the idempotency cache.
    let replay = submit_from(&mut c, &clock, 77, 2);
    let cached = result_to(&replay, 77).expect("cache hit");
    assert_eq!(cached.to_json(), first.to_json());
    assert!(replay.iter().any(|a| matches!(a, Action::Close(77))));
    assert_eq!(c.open_jobs(), 0, "no new job was opened");
}

#[test]
fn rate_limit_rejects_a_burst_then_refills_on_schedule() {
    let clock = Arc::new(FakeClock::new());
    let mut c = Coordinator::new(
        DispatchConfig {
            submit_burst: 2,
            submit_refill_ms: 1_000,
            ..cfg()
        },
        [CAMPAIGN.to_string()],
    );
    // Two submissions fit the burst (distinct shard counts → distinct
    // jobs, so neither is a cache replay); the third is refused with the
    // typed reason and the connection is closed.
    assert!(rejection_to(&submit(&mut c, &clock, 1), SUBMITTER).is_none());
    assert!(rejection_to(&submit(&mut c, &clock, 2), SUBMITTER).is_none());
    let refused = submit(&mut c, &clock, 3);
    assert_eq!(
        rejection_to(&refused, SUBMITTER),
        Some(RejectReason::RateLimited),
        "{refused:?}"
    );
    assert!(refused
        .iter()
        .any(|a| matches!(a, Action::Close(SUBMITTER))));
    assert_eq!(c.open_jobs(), 2, "the refused submission opened no job");

    // 999 ms later the bucket is still dry; at 1000 ms exactly one token
    // returns and one more submission goes through.
    clock.advance(999);
    assert_eq!(
        rejection_to(&submit(&mut c, &clock, 3), SUBMITTER),
        Some(RejectReason::RateLimited)
    );
    clock.advance(1);
    let admitted = submit(&mut c, &clock, 3);
    assert!(rejection_to(&admitted, SUBMITTER).is_none(), "{admitted:?}");
    assert_eq!(c.open_jobs(), 3);

    // The whole-interval accounting and the rejections are visible in the
    // status snapshot.
    let report = c.status(clock.now_ms());
    assert_eq!(report.counters.submissions, 3);
    assert_eq!(report.counters.rejections, 2);
    let bucket = report
        .rate
        .iter()
        .find(|r| r.peer == format!("conn:{SUBMITTER}"))
        .expect("bucket tracked");
    assert_eq!(bucket.tokens, 0);
}

#[test]
fn a_full_queue_refuses_new_jobs_but_admits_attaches() {
    let clock = Arc::new(FakeClock::new());
    let mut c = Coordinator::new(
        DispatchConfig {
            max_pending_jobs: 1,
            ..cfg()
        },
        [CAMPAIGN.to_string()],
    );
    assert!(rejection_to(&submit(&mut c, &clock, 1), SUBMITTER).is_none());
    // A second distinct job would exceed the bound: typed refusal.
    assert_eq!(
        rejection_to(&submit_from(&mut c, &clock, 7, 2), 7),
        Some(RejectReason::QueueFull)
    );
    // Attaching another waiter to the in-flight job is always admitted —
    // it creates no new work.
    assert!(rejection_to(&submit_from(&mut c, &clock, 8, 1), 8).is_none());
    assert_eq!(c.open_jobs(), 1);
}

#[test]
fn scenario_jobs_only_go_to_workers_that_declared_the_capability() {
    let clock = Arc::new(FakeClock::new());
    let mut c = coordinator();
    // A v1-era worker (legacy caps: no scenario support) is connected and
    // idle, but a scenario submission must not be handed to it.
    register_with(&mut c, &clock, WORKER_A, "legacy", WorkerCaps::legacy());
    let scenario = tiny_scenario();
    let submitted = step(
        &mut c,
        &clock,
        Event::Message(
            SUBMITTER,
            Message::Submit {
                work: JobSpec::Scenario(Arc::new(scenario.clone())),
                shards: 1,
            },
        ),
    );
    assert!(
        assignment_to(&submitted, WORKER_A).is_none(),
        "{submitted:?}"
    );
    assert_eq!(c.open_jobs(), 1, "the job waits rather than misassigning");

    // A capable worker registers: the queued scenario shard goes to it,
    // and the legacy worker can still serve catalog work meanwhile.
    let able = register(&mut c, &clock, WORKER_B, "able");
    let (job, spec) = assignment_to(&able, WORKER_B).expect("scenario shard assigned");
    let catalog = submit_from(&mut c, &clock, 9, 1);
    assert!(
        assignment_to(&catalog, WORKER_A).is_some(),
        "catalog work still flows to the legacy worker: {catalog:?}"
    );

    // Completing the scenario shard merges the matrix and evaluates the
    // assertions coordinator-side: the delivered outcomes are exactly
    // what a local evaluate of the same merged result produces.
    let workloads = scenario.workloads();
    let shard = scenario
        .campaign(&workloads)
        .run_shard(spec)
        .expect("valid scenario shard");
    let done = step(
        &mut c,
        &clock,
        Event::Message(WORKER_B, Message::ShardDone { job, shard }),
    );
    let (result, outcomes) = done
        .iter()
        .find_map(|a| match a {
            Action::Send(
                to,
                Message::Result {
                    result, outcomes, ..
                },
            ) if *to == SUBMITTER => Some((result.clone(), outcomes.clone())),
            _ => None,
        })
        .expect("scenario result delivered");
    let local = scenario
        .evaluate(&result, &EvaluatorRegistry::with_defaults())
        .expect("evaluable");
    assert_eq!(outcomes, local);
    assert!(outcomes.iter().all(|o| o.passed), "{outcomes:?}");
}

#[test]
fn status_stays_accurate_across_a_worker_loss() {
    let clock = Arc::new(FakeClock::new());
    let mut c = coordinator();
    register(&mut c, &clock, WORKER_A, "a");
    clock.advance(100);
    register(&mut c, &clock, WORKER_B, "b");
    let actions = submit(&mut c, &clock, 3);
    assert!(assignment_to(&actions, WORKER_A).is_some());

    // Snapshot with both workers busy: one job, 1 of 3 shards queued,
    // 2 running, ages measured from the snapshot instant.
    clock.advance(50);
    let report = c.status(clock.now_ms());
    assert_eq!(report.queue_depth, 1);
    assert_eq!(report.jobs.len(), 1);
    let job = &report.jobs[0];
    assert_eq!(
        (job.shards, job.done, job.queued, job.running),
        (3, 0, 1, 2)
    );
    assert_eq!(job.waiters, 1);
    assert_eq!(report.workers.len(), 2);
    let a = report.workers.iter().find(|w| w.name == "a").expect("a");
    assert_eq!(a.last_seen_ms_ago, 150);
    let assignment = a.assignment.as_ref().expect("a is running a shard");
    assert_eq!(assignment.running_ms, 50);
    assert!(!assignment.hedged);

    // Worker A dies: its shard re-queues, and the next snapshot shows one
    // worker, two queued shards, one still running.
    step(&mut c, &clock, Event::Disconnected(WORKER_A));
    let report = c.status(clock.now_ms());
    assert_eq!(report.workers.len(), 1);
    assert_eq!(report.workers[0].name, "b");
    assert_eq!(report.queue_depth, 2);
    let job = &report.jobs[0];
    assert_eq!((job.done, job.queued, job.running), (0, 2, 1));

    // The same snapshot travels the wire: a status request is answered
    // with a frame carrying an identical report, connection kept open.
    let asked = step(&mut c, &clock, Event::Message(55, Message::StatusRequest));
    let wired = asked
        .iter()
        .find_map(|a| match a {
            Action::Send(55, Message::Status { report }) => Some(report.clone()),
            _ => None,
        })
        .expect("status frame");
    assert_eq!(wired, report);
    assert!(
        !asked.iter().any(|a| matches!(a, Action::Close(55))),
        "a status poll must not hang up the watcher: {asked:?}"
    );
}

/// The journal's crash-recovery contract: a coordinator restarted on a
/// ledger of durable frames must be indistinguishable — status counters,
/// pending queue, per-peer rate buckets — from one that never crashed
/// but whose peers all hung up, and a partially completed job must run
/// its remaining shards to the same bit-identical merge.
mod journal_restart {
    use super::*;
    use strex::campaign::ShardCheckpoint;
    use strex::dispatch::{replay_journal_file, Journal};

    /// Rate limiting on, so the replayed bucket state is part of the
    /// equivalence claim.
    fn limited_cfg() -> DispatchConfig {
        DispatchConfig {
            submit_burst: 2,
            submit_refill_ms: 1_000,
            ..cfg()
        }
    }

    fn scratch_journal(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("strex-journal-{tag}-{}.bin", std::process::id()))
    }

    /// Journals `msg` exactly as the serve shell does (write-ahead),
    /// then feeds it to the lived coordinator.
    fn deliver(
        c: &mut Coordinator,
        journal: &mut Journal,
        now_ms: u64,
        conn: u64,
        peer: &str,
        msg: Message,
    ) -> Vec<Action> {
        journal
            .append(now_ms, conn, peer, &msg)
            .expect("journal append");
        c.handle(now_ms, Event::Message(conn, msg))
    }

    /// The first cell-boundary checkpoint of `spec`, if the shard owns
    /// any cells (ownership is by cell-key hash, so some shards of a
    /// small matrix may legitimately be empty).
    fn first_boundary(spec: ShardSpec) -> Option<ShardCheckpoint> {
        let workloads = tiny_workloads();
        let mut first = None;
        tiny_campaign(&workloads)
            .run_shard_resumable(spec, None, &mut |c| {
                if first.is_none() {
                    first = Some(c.clone());
                }
            })
            .expect("valid shard");
        first
    }

    #[test]
    fn replaying_the_journal_reproduces_the_never_crashed_coordinator() {
        let path = scratch_journal("equivalence");
        let _ = std::fs::remove_file(&path);
        let mut journal = Journal::open_append(&path).expect("open journal");
        let mut lived = Coordinator::new(limited_cfg(), [CAMPAIGN.to_string()]);

        // Identities arrive via Connected in the shell; the journal
        // records them per entry.
        for (conn, peer) in [
            (10, "ip:a"),
            (11, "ip:a"),
            (12, "ip:a"),
            (13, "ip:b"),
            (20, "ip:w"),
        ] {
            lived.handle(0, Event::Connected(conn, peer.to_string()));
        }

        // Two admitted submissions drain ip:a's burst; the third is
        // rate-limited (journaled anyway — write-ahead means the ledger
        // records what arrived, and the replay re-derives the verdict).
        let submit = |shards: usize| Message::Submit {
            work: JobSpec::Catalog(CAMPAIGN.into()),
            shards,
        };
        deliver(&mut lived, &mut journal, 0, 10, "ip:a", submit(3));
        deliver(&mut lived, &mut journal, 10, 11, "ip:a", submit(2));
        let refused = deliver(&mut lived, &mut journal, 20, 12, "ip:a", submit(4));
        assert_eq!(
            rejection_to(&refused, 12),
            Some(RejectReason::RateLimited),
            "{refused:?}"
        );
        // A second waiter coalesces onto the in-flight 2-shard job.
        deliver(&mut lived, &mut journal, 30, 13, "ip:b", submit(2));

        // One shard of the 3-shard job completes before the crash, and a
        // checkpoint for a still-queued shard of the same job lands (the
        // progress a reaped worker shipped before dying).
        let job3 = job_key(CAMPAIGN, 3);
        deliver(
            &mut lived,
            &mut journal,
            500,
            20,
            "ip:w",
            Message::ShardDone {
                job: job3.clone(),
                shard: tiny_shard(ShardSpec { index: 0, count: 3 }),
            },
        );
        let checkpointed = (1..3).find_map(|index| {
            let spec = ShardSpec { index, count: 3 };
            first_boundary(spec).map(|ckpt| (spec, ckpt))
        });
        if let Some((_, ckpt)) = &checkpointed {
            deliver(
                &mut lived,
                &mut journal,
                600,
                20,
                "ip:w",
                Message::Checkpoint {
                    job: job3.clone(),
                    checkpoint: ckpt.clone(),
                },
            );
        }
        drop(journal);
        let last_now = if checkpointed.is_some() { 600 } else { 500 };

        // The crash kills every connection; the never-crashed reference
        // sees the same hangups the restart implies.
        for conn in [10, 11, 12, 13, 20] {
            lived.handle(last_now, Event::Disconnected(conn));
        }

        // Restart: fresh coordinator, same journal.
        let entries = replay_journal_file(&path).expect("readable ledger");
        let mut restarted = Coordinator::new(limited_cfg(), [CAMPAIGN.to_string()]);
        restarted.replay_journal(entries);

        let report = lived.status(700);
        let replayed = restarted.status(700);
        assert_eq!(report, replayed, "restart must be invisible in status");
        assert_eq!(report.counters.submissions, 3);
        assert_eq!(report.counters.rejections, 1);
        assert_eq!(report.counters.shards_completed, 1);
        assert_eq!(restarted.open_jobs(), 2);
        assert_eq!(restarted.worker_count(), 0, "registrations are not durable");
        let bucket = replayed
            .rate
            .iter()
            .find(|r| r.peer == "ip:a")
            .expect("replayed bucket");
        assert_eq!(bucket.tokens, 0, "the drained burst survives the restart");

        // A fresh worker drains the replayed queue: the checkpointed
        // shard's assignment carries the journaled resume point, and both
        // jobs finish bit-identical to sequential runs.
        let clock = FakeClock::new();
        clock.advance(700);
        let mut actions = register(&mut restarted, &clock, 30, "fresh");
        let mut resumed_with_checkpoint = false;
        while !actions.is_empty() {
            let mut next = Vec::new();
            for action in &actions {
                if let Action::Send(
                    conn,
                    Message::Assign {
                        job,
                        spec,
                        checkpoint,
                        ..
                    },
                ) = action
                {
                    if let Some((ck_spec, ckpt)) = &checkpointed {
                        if spec == ck_spec {
                            let carried =
                                checkpoint.as_ref().expect("journaled checkpoint attached");
                            assert_eq!(carried.cursor(), ckpt.cursor());
                            assert_eq!(carried.cells().len(), ckpt.cells().len());
                            resumed_with_checkpoint = true;
                        }
                    }
                    next.extend(restarted.handle(
                        700,
                        Event::Message(
                            *conn,
                            Message::ShardDone {
                                job: job.clone(),
                                shard: tiny_shard(*spec),
                            },
                        ),
                    ));
                }
            }
            actions = next;
        }
        assert_eq!(restarted.open_jobs(), 0, "both replayed jobs completed");
        assert_eq!(
            resumed_with_checkpoint,
            checkpointed.is_some(),
            "the journaled checkpoint must ride the re-assignment"
        );

        // The finished jobs answer resubmissions from the cache with the
        // bit-identical merged result — no waiter was lost, no work redone.
        let replayed_result = submit_from(&mut restarted, &clock, 40, 3);
        let cached = result_to(&replayed_result, 40).expect("cache hit after restart");
        assert_eq!(cached.to_json(), tiny_sequential().to_json());

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rebased_buckets_grant_no_credit_for_the_outage() {
        let mut c = Coordinator::new(limited_cfg(), [CAMPAIGN.to_string()]);
        c.handle(0, Event::Connected(1, "ip:a".to_string()));
        for shards in [1, 2] {
            let actions = c.handle(
                0,
                Event::Message(
                    1,
                    Message::Submit {
                        work: JobSpec::Catalog(CAMPAIGN.into()),
                        shards,
                    },
                ),
            );
            assert!(rejection_to(&actions, 1).is_none(), "{actions:?}");
        }

        // Five refill intervals pass while the coordinator is "down";
        // rebasing at restart must surrender that elapsed-time credit.
        c.rebase_buckets(5_000);
        let probe = |c: &mut Coordinator, now: u64, shards: usize| {
            let actions = c.handle(
                now,
                Event::Message(
                    1,
                    Message::Submit {
                        work: JobSpec::Catalog(CAMPAIGN.into()),
                        shards,
                    },
                ),
            );
            rejection_to(&actions, 1)
        };
        assert_eq!(
            probe(&mut c, 5_999, 3),
            Some(RejectReason::RateLimited),
            "no tokens earned during the outage"
        );
        assert_eq!(
            probe(&mut c, 6_000, 3),
            None,
            "earning resumes from the restart instant"
        );
    }
}
