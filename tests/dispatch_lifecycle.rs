//! The dispatcher's job lifecycle on a hand-advanced clock: assignment,
//! completion, heartbeat-timeout → re-queue, straggler hedging and
//! duplicate-completion dedup — all driven through the pure
//! [`Coordinator`] state machine, no socket or sleep anywhere. The
//! timestamps come from a [`FakeClock`] exactly as the serve shell reads
//! its `SystemClock`, so the deadline arithmetic under test is the
//! production arithmetic.

use std::sync::Arc;

use strex::campaign::{Campaign, CampaignResult, CampaignShard, ShardSpec};
use strex::config::{SchedulerKind, SimConfig};
use strex::dispatch::{
    job_key, Action, Clock, Coordinator, DispatchConfig, Event, FakeClock, Message,
    WorkerLossReason,
};
use strex_oltp::workload::{Workload, WorkloadKind};

const CAMPAIGN: &str = "tiny";

fn tiny_workloads() -> Vec<Workload> {
    vec![
        Workload::preset_small(WorkloadKind::TpccW1, 8, 7),
        Workload::preset_small(WorkloadKind::MapReduce, 8, 7),
    ]
}

fn tiny_campaign(workloads: &[Workload]) -> Campaign<'_> {
    Campaign::new(SimConfig::new(2, SchedulerKind::Baseline))
        .over_schedulers([SchedulerKind::Baseline, SchedulerKind::Strex])
        .over_workloads(workloads)
}

fn tiny_shard(spec: ShardSpec) -> CampaignShard {
    let workloads = tiny_workloads();
    tiny_campaign(&workloads).run_shard(spec).expect("valid")
}

fn tiny_sequential() -> CampaignResult {
    let workloads = tiny_workloads();
    tiny_campaign(&workloads).run().expect("valid")
}

fn cfg() -> DispatchConfig {
    DispatchConfig {
        worker_timeout_ms: 1_000,
        heartbeat_interval_ms: 250,
        shard_deadline_ms: 60_000,
    }
}

fn coordinator() -> Coordinator {
    Coordinator::new(cfg(), [CAMPAIGN.to_string()])
}

/// Drives `c` with `event` at the fake clock's current reading.
fn step(c: &mut Coordinator, clock: &FakeClock, event: Event) -> Vec<Action> {
    c.handle(clock.now_ms(), event)
}

/// The `Assign` sent to `conn` within `actions`, if any.
fn assignment_to(actions: &[Action], conn: u64) -> Option<(String, ShardSpec)> {
    actions.iter().find_map(|a| match a {
        Action::Send(to, Message::Assign { job, spec, .. }) if *to == conn => {
            Some((job.clone(), *spec))
        }
        _ => None,
    })
}

/// The `Result` sent to `conn` within `actions`, if any.
fn result_to(actions: &[Action], conn: u64) -> Option<CampaignResult> {
    actions.iter().find_map(|a| match a {
        Action::Send(to, Message::Result { result, .. }) if *to == conn => Some(result.clone()),
        _ => None,
    })
}

const SUBMITTER: u64 = 1;
const WORKER_A: u64 = 2;
const WORKER_B: u64 = 3;

fn register(c: &mut Coordinator, clock: &FakeClock, conn: u64, name: &str) -> Vec<Action> {
    step(
        c,
        clock,
        Event::Message(conn, Message::Register { name: name.into() }),
    )
}

fn submit(c: &mut Coordinator, clock: &FakeClock, shards: usize) -> Vec<Action> {
    step(
        c,
        clock,
        Event::Message(
            SUBMITTER,
            Message::Submit {
                campaign: CAMPAIGN.into(),
                shards,
            },
        ),
    )
}

/// Runs every `Assign` in `actions` through the real shard executor and
/// feeds the completions back, returning all follow-up actions.
fn complete_assignments(c: &mut Coordinator, clock: &FakeClock, actions: &[Action]) -> Vec<Action> {
    complete_assignments_of(c, clock, actions, None)
}

/// [`complete_assignments`] restricted to assignments sent to `only`
/// (`None` completes them all) — for tests where one worker must stay
/// silent on its shard.
fn complete_assignments_of(
    c: &mut Coordinator,
    clock: &FakeClock,
    actions: &[Action],
    only: Option<u64>,
) -> Vec<Action> {
    let mut out = Vec::new();
    for action in actions {
        if let Action::Send(conn, Message::Assign { job, spec, .. }) = action {
            if only.is_some_and(|w| w != *conn) {
                continue;
            }
            let shard = tiny_shard(*spec);
            out.extend(step(
                c,
                clock,
                Event::Message(
                    *conn,
                    Message::ShardDone {
                        job: job.clone(),
                        shard,
                    },
                ),
            ));
        }
    }
    out
}

#[test]
fn two_workers_complete_a_job_bit_identical_to_sequential() {
    let clock = Arc::new(FakeClock::new());
    let mut c = coordinator();
    register(&mut c, &clock, WORKER_A, "a");
    register(&mut c, &clock, WORKER_B, "b");
    assert_eq!(c.worker_count(), 2);

    let actions = submit(&mut c, &clock, 3);
    // Two shards go out immediately (one per idle worker), the third waits.
    assert!(assignment_to(&actions, WORKER_A).is_some());
    assert!(assignment_to(&actions, WORKER_B).is_some());
    assert_eq!(c.open_jobs(), 1);

    // Completing the first wave frees workers; the third shard is assigned
    // in the same handle() call and completes in the second wave.
    let wave2 = complete_assignments(&mut c, &clock, &actions);
    let wave3 = complete_assignments(&mut c, &clock, &wave2);

    let result = result_to(&wave3, SUBMITTER).expect("merged result delivered");
    assert_eq!(result.to_json(), tiny_sequential().to_json());
    assert!(wave3
        .iter()
        .any(|a| matches!(a, Action::JobCompleted { job } if *job == job_key(CAMPAIGN, 3))));
    assert_eq!(c.open_jobs(), 0);
}

#[test]
fn heartbeats_keep_a_silent_worker_alive() {
    let clock = Arc::new(FakeClock::new());
    let mut c = coordinator();
    register(&mut c, &clock, WORKER_A, "a");
    for _ in 0..8 {
        clock.advance(900);
        let actions = step(&mut c, &clock, Event::Message(WORKER_A, Message::Heartbeat));
        assert!(actions.is_empty(), "{actions:?}");
        assert_eq!(c.worker_count(), 1);
    }
}

#[test]
fn dead_worker_times_out_and_its_shard_requeues() {
    let clock = Arc::new(FakeClock::new());
    let mut c = coordinator();
    register(&mut c, &clock, WORKER_A, "doomed");
    register(&mut c, &clock, WORKER_B, "steady");
    let actions = submit(&mut c, &clock, 2);
    let (job_a, spec_a) = assignment_to(&actions, WORKER_A).expect("A assigned");
    let (_, spec_b) = assignment_to(&actions, WORKER_B).expect("B assigned");
    assert_ne!(spec_a.index, spec_b.index);

    // B completes its shard and heartbeats on cadence; A never speaks
    // again. Past the timeout, a tick reaps A and hands its shard to B.
    let after_b = complete_assignments_of(&mut c, &clock, &actions, Some(WORKER_B));
    assert!(result_to(&after_b, SUBMITTER).is_none(), "job still open");
    clock.advance(600);
    step(&mut c, &clock, Event::Message(WORKER_B, Message::Heartbeat));
    clock.advance(600);
    let reaped = step(&mut c, &clock, Event::Tick);
    assert!(
        reaped.iter().any(|a| matches!(
            a,
            Action::WorkerLost {
                name,
                reason: WorkerLossReason::HeartbeatTimeout,
                requeued: Some(spec),
            } if name == "doomed" && *spec == spec_a
        )),
        "{reaped:?}"
    );
    assert_eq!(c.worker_count(), 1);
    let (job_b2, spec_b2) = assignment_to(&reaped, WORKER_B).expect("A's shard re-assigned to B");
    assert_eq!((job_b2, spec_b2), (job_a, spec_a));

    let done = complete_assignments(&mut c, &clock, &reaped);
    let result = result_to(&done, SUBMITTER).expect("job completes despite the death");
    assert_eq!(result.to_json(), tiny_sequential().to_json());
}

#[test]
fn disconnected_worker_requeues_immediately() {
    let clock = Arc::new(FakeClock::new());
    let mut c = coordinator();
    register(&mut c, &clock, WORKER_A, "flaky");
    let actions = submit(&mut c, &clock, 1);
    let (_, spec) = assignment_to(&actions, WORKER_A).expect("assigned");

    let lost = step(&mut c, &clock, Event::Disconnected(WORKER_A));
    assert!(
        lost.iter().any(|a| matches!(
            a,
            Action::WorkerLost {
                reason: WorkerLossReason::Disconnected,
                requeued: Some(s),
                ..
            } if *s == spec
        )),
        "{lost:?}"
    );
    assert_eq!(c.worker_count(), 0);

    // A fresh worker picks the shard up and the job still completes.
    let assigned = register(&mut c, &clock, WORKER_B, "fresh");
    assert_eq!(
        assignment_to(&assigned, WORKER_B).map(|(_, s)| s),
        Some(spec)
    );
    let done = complete_assignments(&mut c, &clock, &assigned);
    let result = result_to(&done, SUBMITTER).expect("delivered");
    assert_eq!(result.to_json(), tiny_sequential().to_json());
}

#[test]
fn straggler_is_hedged_and_its_late_duplicate_is_dropped() {
    let clock = Arc::new(FakeClock::new());
    let mut c = Coordinator::new(
        DispatchConfig {
            worker_timeout_ms: 1_000_000, // liveness out of the picture
            heartbeat_interval_ms: 250,
            shard_deadline_ms: 500, // hedge quickly
        },
        [CAMPAIGN.to_string()],
    );
    register(&mut c, &clock, WORKER_A, "straggler");
    let actions = submit(&mut c, &clock, 1);
    let (job, spec) = assignment_to(&actions, WORKER_A).expect("assigned");

    // Past the shard deadline the shard re-queues while A keeps running;
    // a newly registered B receives the duplicate assignment.
    clock.advance(600);
    step(&mut c, &clock, Event::Message(WORKER_A, Message::Heartbeat));
    let hedged = register(&mut c, &clock, WORKER_B, "hedge");
    assert_eq!(
        assignment_to(&hedged, WORKER_B),
        Some((job.clone(), spec)),
        "{hedged:?}"
    );

    // B finishes first: the job completes. A's late duplicate lands on a
    // finished job and is dropped without an error or a second result.
    let done = complete_assignments(&mut c, &clock, &hedged);
    let result = result_to(&done, SUBMITTER).expect("delivered");
    assert_eq!(result.to_json(), tiny_sequential().to_json());
    let late = step(
        &mut c,
        &clock,
        Event::Message(
            WORKER_A,
            Message::ShardDone {
                job,
                shard: tiny_shard(spec),
            },
        ),
    );
    assert!(
        !late
            .iter()
            .any(|a| matches!(a, Action::Send(SUBMITTER, _) | Action::JobCompleted { .. })),
        "{late:?}"
    );
}

#[test]
fn duplicate_completion_before_the_merge_is_deduplicated() {
    let clock = Arc::new(FakeClock::new());
    let mut c = Coordinator::new(
        DispatchConfig {
            worker_timeout_ms: 1_000_000,
            heartbeat_interval_ms: 250,
            shard_deadline_ms: 500,
        },
        [CAMPAIGN.to_string()],
    );
    register(&mut c, &clock, WORKER_A, "straggler");
    register(&mut c, &clock, WORKER_B, "partner");
    let actions = submit(&mut c, &clock, 2);
    let (job, spec_a) = assignment_to(&actions, WORKER_A).expect("A assigned");

    // Hedge A's shard while B is still busy with its own; then a third
    // worker runs the duplicate. Both A and the third worker deliver
    // shard `spec_a`: the slot takes the first, drops the second, and the
    // final merge still succeeds (merge's DuplicateShard never fires).
    clock.advance(600);
    let tick = step(&mut c, &clock, Event::Tick);
    assert!(assignment_to(&tick, WORKER_A).is_none(), "{tick:?}");
    let third = register(&mut c, &clock, 9, "dup");
    assert_eq!(assignment_to(&third, 9).map(|(_, s)| s), Some(spec_a));

    for conn in [9, WORKER_A] {
        step(
            &mut c,
            &clock,
            Event::Message(
                conn,
                Message::ShardDone {
                    job: job.clone(),
                    shard: tiny_shard(spec_a),
                },
            ),
        );
    }
    let done = complete_assignments(&mut c, &clock, &actions);
    let result = result_to(&done, SUBMITTER).expect("delivered");
    assert_eq!(result.to_json(), tiny_sequential().to_json());
}

#[test]
fn finished_jobs_answer_resubmissions_from_the_cache() {
    let clock = Arc::new(FakeClock::new());
    let mut c = coordinator();
    register(&mut c, &clock, WORKER_A, "a");
    let actions = submit(&mut c, &clock, 2);
    let wave2 = complete_assignments(&mut c, &clock, &actions);
    let wave3 = complete_assignments(&mut c, &clock, &wave2);
    let first = result_to(&wave3, SUBMITTER).expect("delivered");

    // Same spec again, from a different submitter, with no workers doing
    // any new work: answered straight from the idempotency cache.
    let replay = step(
        &mut c,
        &clock,
        Event::Message(
            77,
            Message::Submit {
                campaign: CAMPAIGN.into(),
                shards: 2,
            },
        ),
    );
    let cached = result_to(&replay, 77).expect("cache hit");
    assert_eq!(cached.to_json(), first.to_json());
    assert!(replay.iter().any(|a| matches!(a, Action::Close(77))));
    assert_eq!(c.open_jobs(), 0, "no new job was opened");
}
