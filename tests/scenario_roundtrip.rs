//! The scenario DSL's trust-boundary properties: arbitrary valid
//! scenario documents round-trip parse → serialize → parse exactly,
//! and malformed, unknown-field, or out-of-range documents come back as
//! typed [`ScenarioError`]s — never panics — no matter what bytes are
//! thrown at the parser.

use strex::scenario::{Assertion, CellSelector, Matrix, Metric, Scenario, ScenarioError};

/// Largest index `<= i` that falls on a char boundary of `s`.
fn char_floor(s: &str, mut i: usize) -> usize {
    i = i.min(s.len());
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

/// A syntactically valid baseline document the mutation tests start from.
const VALID: &str = r#"{
    "name": "baseline",
    "description": "a valid scenario",
    "matrix": {
        "workloads": ["TPC-C-1", "TPC-E"],
        "pool": 30,
        "seed": 20130624,
        "small": true,
        "schedulers": ["baseline", "strex"],
        "cores": [2, 4],
        "team_sizes": [5, 10]
    },
    "assertions": [
        {"kind": "metric_within",
         "cell": {"workload": "TPC-C-1", "scheduler": "strex", "cores": 4, "team_size": 10},
         "metric": "i_mpki", "min": 30.0, "max": 50.0},
        {"kind": "reduction_at_least", "metric": "i_mpki",
         "from": {"workload": "TPC-C-1", "scheduler": "baseline", "cores": 4, "team_size": 10},
         "to": {"workload": "TPC-C-1", "scheduler": "strex", "cores": 4, "team_size": 10},
         "min_percent": 25.0}
    ]
}"#;

#[test]
fn the_baseline_document_is_valid_and_round_trips() {
    let s = Scenario::from_json(VALID).expect("baseline document parses");
    let again = Scenario::from_json(&s.to_json()).expect("serialized form parses");
    assert_eq!(s, again);
    assert_eq!(s.to_json(), again.to_json());
}

#[test]
fn malformed_documents_are_typed_errors_not_panics() {
    for doc in [
        "",
        "   ",
        "{",
        "}",
        "[]",
        "null",
        "123",
        "\"scenario\"",
        "{\"name\":}",
        "{\"name\": \"x\" \"matrix\": {}}",
        "{\"name\": \"x\", \"name\": ",
        &"[".repeat(4096),
        "\u{0}\u{1}\u{2}",
        "{\"name\": \"\\ud800\"}",
    ] {
        let err = Scenario::from_json(doc).expect_err("malformed input must not parse");
        // Every rejection renders; none panics.
        let _ = err.to_string();
    }
}

#[test]
fn truncations_of_a_valid_document_never_panic() {
    // Every prefix of a valid document is either an error (almost all)
    // or—never—a panic. Byte-indexed truncation lands mid-UTF-8 for the
    // description's multi-byte chars too, which from_json must survive.
    for len in 0..VALID.len() {
        if let Ok(s) = Scenario::from_json(&VALID[..char_floor(VALID, len)]) {
            panic!("truncated prefix unexpectedly parsed: {}", s.name);
        }
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    /// Non-empty strings over printable ASCII plus escape-relevant and
    /// multi-byte characters — names and scheduler keys the format must
    /// carry through serialization unharmed.
    fn arb_name() -> impl Strategy<Value = String> {
        prop::collection::vec(
            prop_oneof![
                Just('"'),
                Just('\\'),
                Just('\n'),
                Just('é'),
                Just('漢'),
                (0x20u32..0x7f).prop_map(|c| char::from_u32(c).expect("printable ASCII")),
            ],
            1..10,
        )
        .prop_map(|chars| chars.into_iter().collect())
    }

    fn arb_workload() -> impl Strategy<Value = String> {
        prop_oneof![
            Just("TPC-C-1".to_string()),
            Just("TPC-C-10".to_string()),
            Just("TPC-E".to_string()),
            Just("MapReduce".to_string()),
        ]
    }

    fn arb_metric() -> impl Strategy<Value = Metric> {
        (0usize..Metric::ALL.len()).prop_map(|i| Metric::ALL[i])
    }

    /// Finite non-negative bound values with fractional parts, exercising
    /// the writer's shortest-round-trip float formatting.
    fn arb_bound() -> impl Strategy<Value = f64> {
        prop_oneof![
            Just(0.0),
            (0u32..1_000_000).prop_map(|n| n as f64 / 997.0),
            (0u32..1000).prop_map(|n| n as f64),
        ]
    }

    fn arb_selector() -> impl Strategy<Value = CellSelector> {
        (
            arb_workload(),
            arb_name(),
            1usize..=256,
            prop_oneof![Just(None), (1usize..=30).prop_map(Some)],
        )
            .prop_map(|(workload, scheduler, cores, team_size)| CellSelector {
                workload,
                scheduler,
                cores,
                team_size,
            })
    }

    fn arb_assertion() -> impl Strategy<Value = Assertion> {
        prop_oneof![
            (arb_selector(), arb_bound())
                .prop_map(|(cell, min)| Assertion::ThroughputAtLeast { cell, min }),
            (arb_selector(), arb_metric(), arb_bound(), arb_bound()).prop_map(
                |(cell, metric, a, b)| Assertion::MetricWithin {
                    cell,
                    metric,
                    min: a.min(b),
                    max: a.max(b),
                }
            ),
            (arb_metric(), arb_selector(), arb_selector(), 0u32..=1000).prop_map(
                |(metric, from, to, pct)| Assertion::ReductionAtLeast {
                    metric,
                    from,
                    to,
                    min_percent: pct as f64 / 10.0,
                }
            ),
            (arb_metric(), arb_selector(), arb_selector(), arb_bound()).prop_map(
                |(metric, numerator, denominator, min)| Assertion::RatioAtLeast {
                    metric,
                    numerator,
                    denominator,
                    min,
                }
            ),
        ]
    }

    fn arb_matrix() -> impl Strategy<Value = Matrix> {
        (
            (
                prop::collection::vec(arb_workload(), 1..4),
                1usize..=100_000,
                // Seeds stay below 2^53 so the JSON number representation
                // is exact — the same bound `as_u64` enforces on parse.
                0u64..(1u64 << 53),
                any::<bool>(),
            ),
            (
                prop::collection::vec(arb_name(), 1..4),
                prop::collection::vec(1usize..=256, 1..4),
                prop_oneof![
                    Just(None),
                    prop::collection::vec(1usize..=30, 1..3).prop_map(Some)
                ],
            ),
        )
            .prop_map(
                |((workloads, pool, seed, small), (schedulers, cores, team_sizes))| Matrix {
                    workloads,
                    pool,
                    seed,
                    small,
                    schedulers,
                    cores,
                    team_sizes,
                },
            )
    }

    fn arb_scenario() -> impl Strategy<Value = Scenario> {
        (
            arb_name(),
            prop_oneof![Just(None), arb_name().prop_map(Some)],
            arb_matrix(),
            prop::collection::vec(arb_assertion(), 1..5),
        )
            .prop_map(|(name, description, matrix, assertions)| Scenario {
                name,
                description,
                matrix,
                assertions,
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        #[test]
        fn scenarios_round_trip_exactly(s in arb_scenario()) {
            let json = s.to_json();
            let parsed = match Scenario::from_json(&json) {
                Ok(parsed) => parsed,
                Err(e) => {
                    return Err(TestCaseError::fail(format!(
                        "serialized scenario failed to parse: {e}\n{json}"
                    )))
                }
            };
            prop_assert_eq!(&s, &parsed);
            // Deterministic writer: a second trip is byte-identical.
            prop_assert_eq!(json, parsed.to_json());
        }

        #[test]
        fn unknown_fields_are_rejected_wherever_injected(s in arb_scenario()) {
            // Injecting a key the schema does not define at the document
            // root must produce the typed unknown-field error (the key
            // cannot collide: the schema has no "zz_unknown").
            let json = s.to_json();
            let mutated = json.replacen('{', "{\"zz_unknown\":1,", 1);
            match Scenario::from_json(&mutated) {
                Err(ScenarioError::UnknownField { path }) => {
                    prop_assert_eq!(path, "zz_unknown".to_string());
                }
                other => {
                    return Err(TestCaseError::fail(format!(
                        "expected UnknownField, got {other:?}"
                    )))
                }
            }
        }

        #[test]
        fn out_of_range_values_are_rejected_on_reparse(
            s in arb_scenario(),
            which in 0usize..4,
        ) {
            // Serialize a scenario whose struct fields violate a bound and
            // confirm the parser refuses the document with the typed
            // error (the struct itself is unchecked by design — the trust
            // boundary is the parse).
            let mut bad = s;
            match which {
                0 => bad.matrix.pool = 0,
                1 => bad.matrix.cores.push(0),
                2 => bad.matrix.cores.push(100_000),
                _ => bad.matrix.team_sizes = Some(vec![31]),
            }
            match Scenario::from_json(&bad.to_json()) {
                Err(ScenarioError::OutOfRange { .. }) => {}
                other => {
                    return Err(TestCaseError::fail(format!(
                        "expected OutOfRange, got {other:?}"
                    )))
                }
            }
        }

        #[test]
        fn arbitrary_bytes_never_panic_the_parser(
            bytes in prop::collection::vec(0u8..=255, 0..64),
        ) {
            // Hostile input: whatever the bytes decode to (or fail to),
            // from_json returns, it never panics.
            let text = String::from_utf8_lossy(&bytes);
            let _ = Scenario::from_json(&text);
        }

        #[test]
        fn truncated_serializations_never_panic(s in arb_scenario(), frac in 0u32..100) {
            let json = s.to_json();
            let cut = (json.len() as u64 * frac as u64 / 100) as usize;
            let cut = super::char_floor(&json, cut);
            prop_assert!(
                Scenario::from_json(&json[..cut]).is_err(),
                "a strict prefix cannot be a complete document"
            );
        }
    }
}
