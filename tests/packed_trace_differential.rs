//! The packed trace-event representation must be a lossless re-encoding:
//! a property-level round-trip proof plus a differential simulation run.
//!
//! Three layers of evidence, from cheapest to strongest:
//!
//! 1. **Proptest round-trip** — for arbitrary events across the whole
//!    encodable address range, `encode -> decode` is the identity.
//! 2. **Workload round-trip** — for every real generated trace, decoding
//!    all packed events to the legacy [`MemRef`] form and re-packing them
//!    reproduces the exact packed words.
//! 3. **Differential run** — a workload whose traces went through the
//!    legacy representation (decode, rebuild) produces a bit-identical
//!    [`Report`](strex::report::Report) to the original under every
//!    scheduler, on both the fast-path and the generic driver loop. (The
//!    committed golden snapshot separately pins today's reports to the
//!    pre-packing engine's.)

use proptest::prelude::*;
use strex::config::{SchedulerKind, SimConfig};
use strex::driver::{run, run_with_generic_loop};
use strex::sched::BaselineSched;
use strex_oltp::trace::{MemRef, PackedRef, TxnTrace};
use strex_oltp::workload::{Workload, WorkloadKind};
use strex_sim::addr::{Addr, BlockAddr};

/// Largest payload (block index or byte address) a packed event carries.
const PAYLOAD_MAX: u64 = (1 << 54) - 1;

fn any_memref() -> impl Strategy<Value = MemRef> {
    prop_oneof![
        (0..=PAYLOAD_MAX, any::<u8>()).prop_map(|(idx, instrs)| MemRef::IFetch {
            block: BlockAddr::new(idx),
            instrs,
        }),
        (0..=PAYLOAD_MAX).prop_map(|a| MemRef::Load { addr: Addr::new(a) }),
        (0..=PAYLOAD_MAX).prop_map(|a| MemRef::Store { addr: Addr::new(a) }),
    ]
}

proptest! {
    /// Legacy event -> packed u64 -> decoded event is the identity, and
    /// the cheap field accessors agree with the decoded view.
    #[test]
    fn packed_round_trip_is_identity(r in any_memref()) {
        let p = PackedRef::encode(r);
        prop_assert_eq!(p.decode(), r);
        prop_assert_eq!(p.instrs(), r.instrs());
        prop_assert_eq!(p.fetch_block(), r.fetch_block());
        prop_assert_eq!(p.is_fetch(), matches!(r, MemRef::IFetch { .. }));
        // Re-encoding the decoded event reproduces the same word.
        prop_assert_eq!(PackedRef::encode(p.decode()), p);
    }

    /// Whole traces survive the round trip: building a trace from the
    /// decoded events of another reproduces its packed words and its
    /// derived quantities.
    #[test]
    fn trace_round_trip_preserves_packed_words(
        refs in prop::collection::vec(any_memref(), 0..200)
    ) {
        let a = TxnTrace::new(strex_sim::ids::TxnTypeId::new(1), "t", refs);
        let b = TxnTrace::new(strex_sim::ids::TxnTypeId::new(1), "t", a.decode_refs());
        prop_assert_eq!(a.refs(), b.refs());
        prop_assert_eq!(a.instr_total(), b.instr_total());
        prop_assert_eq!(a.unique_code_blocks(), b.unique_code_blocks());
    }
}

/// Rebuilds a workload by pushing every trace through the legacy
/// representation: packed -> `Vec<MemRef>` -> packed.
fn through_legacy(w: &Workload) -> Workload {
    let txns: Vec<TxnTrace> = w
        .txns()
        .iter()
        .map(|t| TxnTrace::new(t.txn_type(), t.type_name(), t.decode_refs()))
        .collect();
    Workload::new(w.name(), txns)
}

#[test]
fn real_workload_traces_round_trip_exactly() {
    for kind in WorkloadKind::ALL {
        let w = Workload::preset_small(kind, 8, 7);
        let rebuilt = through_legacy(&w);
        for (a, b) in w.txns().iter().zip(rebuilt.txns()) {
            assert_eq!(a.refs(), b.refs(), "{kind:?}: packed words must survive");
        }
    }
}

/// The differential run: packed-native traces vs traces that went through
/// the legacy enum stream produce bit-identical reports under every
/// scheduler.
#[test]
fn packed_and_legacy_streams_simulate_identically() {
    let w = Workload::preset_small(WorkloadKind::TpccW1, 8, 20130624);
    let via_legacy = through_legacy(&w);
    for sched in SchedulerKind::ALL {
        let cfg = SimConfig::builder()
            .cores(4)
            .scheduler(sched)
            .build()
            .expect("valid configuration");
        let a = run(&w, &cfg);
        let b = run(&via_legacy, &cfg);
        assert_eq!(a.makespan, b.makespan, "{sched}");
        assert_eq!(a.latencies, b.latencies, "{sched}");
        assert_eq!(a.stats.aggregate(), b.stats.aggregate(), "{sched}");
        assert_eq!(a.stats.shared, b.stats.shared, "{sched}");
        assert_eq!(a.context_switches, b.context_switches, "{sched}");
        assert_eq!(a.migrations, b.migrations, "{sched}");
    }
}

/// Belt and suspenders for the driver dispatch: the passive fast path and
/// the generic loop agree on the legacy-rebuilt workload too.
#[test]
fn fast_path_agrees_on_legacy_rebuilt_workload() {
    let w = through_legacy(&Workload::preset_small(WorkloadKind::TpccW1, 6, 3));
    let cfg = SimConfig::builder()
        .cores(2)
        .scheduler(SchedulerKind::Baseline)
        .build()
        .expect("valid configuration");
    let fast = run(&w, &cfg);
    let slow = run_with_generic_loop(&w, &cfg, &mut BaselineSched::new());
    assert_eq!(fast.makespan, slow.makespan);
    assert_eq!(fast.latencies, slow.latencies);
}
