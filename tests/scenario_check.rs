//! The scenario pipeline end to end: the committed `scenarios/`
//! directory parses and addresses real matrix cells, and a deliberately
//! failing scenario produces the per-assertion diagnostic `repro check`
//! prints — naming the assertion kind, the expected bound, the observed
//! value, and the offending cell key.

use strex::scenario::{EvaluatorRegistry, Scenario};

fn committed_scenarios() -> Vec<(String, Scenario)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("committed scenarios/ directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 3,
        "the paper-claim suite commits at least three scenarios"
    );
    files
        .into_iter()
        .map(|p| {
            let text = std::fs::read_to_string(&p).expect("scenario file readable");
            let scenario =
                Scenario::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", p.display()));
            (p.display().to_string(), scenario)
        })
        .collect()
}

#[test]
fn committed_scenarios_parse_and_address_their_matrices() {
    let registry = strex::sched::registry::global();
    let mut kinds_covered = std::collections::BTreeSet::new();
    for (path, scenario) in committed_scenarios() {
        // The declared matrix must itself be valid (cells() runs the
        // config validation for every cell)...
        let workloads = scenario.workloads();
        let cells = scenario
            .campaign(&workloads)
            .cells(registry)
            .unwrap_or_else(|e| panic!("{path}: invalid matrix: {e}"));
        assert!(!cells.is_empty(), "{path}: matrix yields no cells");
        // ...and every assertion must address coordinates the matrix
        // actually produces — a selector typo in a committed scenario
        // should fail here, not as a confusing FAIL in CI.
        let addressed = |w: &str, s: &str, c: usize, t: Option<usize>| {
            cells.iter().any(|(key, _)| {
                key.workload == w
                    && key.scheduler == s
                    && key.cores == c
                    && t.is_none_or(|t| key.team_size == t)
            })
        };
        for a in &scenario.assertions {
            kinds_covered.insert(a.kind());
            let selectors = match a {
                strex::scenario::Assertion::ThroughputAtLeast { cell, .. } => vec![cell],
                strex::scenario::Assertion::MetricWithin { cell, .. } => vec![cell],
                strex::scenario::Assertion::ReductionAtLeast { from, to, .. } => vec![from, to],
                strex::scenario::Assertion::RatioAtLeast {
                    numerator,
                    denominator,
                    ..
                } => vec![numerator, denominator],
                _ => vec![],
            };
            for sel in selectors {
                assert!(
                    addressed(&sel.workload, &sel.scheduler, sel.cores, sel.team_size),
                    "{path}: selector {sel} addresses no declared cell"
                );
            }
        }
    }
    // The committed suite exercises every built-in claim kind: a
    // throughput bound, a miss-rate window, and both cross-scheduler
    // ordering forms.
    for kind in strex::scenario::ASSERTION_KINDS {
        assert!(
            kinds_covered.contains(kind),
            "no committed scenario uses assertion kind {kind:?}"
        );
    }
}

/// A tiny scenario (8-transaction pool, one workload, 2 cores) that runs
/// in well under a second — enough simulation to judge real assertions.
fn tiny_scenario(assertions_json: &str) -> Scenario {
    let doc = format!(
        r#"{{
            "name": "tiny",
            "matrix": {{
                "workloads": ["TPC-C-1"],
                "pool": 8,
                "seed": 7,
                "schedulers": ["baseline", "strex"],
                "cores": [2]
            }},
            "assertions": [{assertions_json}]
        }}"#
    );
    Scenario::from_json(&doc).expect("tiny scenario is valid")
}

#[test]
fn a_failing_assertion_names_kind_expected_observed_and_cell() {
    let scenario = tiny_scenario(
        r#"{"kind": "throughput_at_least",
            "cell": {"workload": "TPC-C-1", "scheduler": "strex", "cores": 2},
            "min": 1000000.0}"#,
    );
    let workloads = scenario.workloads();
    let result = scenario
        .campaign(&workloads)
        .run()
        .expect("tiny matrix runs");
    let outcomes = scenario
        .evaluate(&result, &EvaluatorRegistry::with_defaults())
        .expect("all kinds have evaluators");
    assert_eq!(outcomes.len(), 1);
    let o = &outcomes[0];
    assert!(!o.passed, "no simulated cell reaches 1e6 txn/cycle");
    // The diagnostic carries everything the acceptance criteria demand:
    // the assertion kind, expected vs. observed, and the cell key.
    let line = o.to_string();
    assert!(line.starts_with("FAIL throughput_at_least @ "), "{line}");
    assert!(line.contains("TPC-C-1/strex/c2/t10"), "{line}");
    assert!(
        line.contains("expected steady throughput >= 1000000"),
        "{line}"
    );
    assert!(line.contains("observed"), "{line}");
    let observed: f64 = line
        .rsplit("observed ")
        .next()
        .and_then(|tail| tail.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .expect("observed value is numeric");
    assert!(observed > 0.0 && observed < 1_000_000.0, "{line}");
}

#[test]
fn mixed_outcomes_keep_declaration_order_and_pass_state() {
    let scenario = tiny_scenario(
        r#"{"kind": "throughput_at_least",
            "cell": {"workload": "TPC-C-1", "scheduler": "baseline", "cores": 2},
            "min": 0.0},
           {"kind": "metric_within",
            "cell": {"workload": "TPC-C-1", "scheduler": "strex", "cores": 2},
            "metric": "i_mpki", "min": 0.0, "max": 0.0},
           {"kind": "ratio_at_least", "metric": "i_mpki",
            "numerator": {"workload": "TPC-C-1", "scheduler": "baseline", "cores": 2},
            "denominator": {"workload": "TPC-C-1", "scheduler": "strex", "cores": 2},
            "min": 0.0}"#,
    );
    let workloads = scenario.workloads();
    let result = scenario
        .campaign(&workloads)
        .run()
        .expect("tiny matrix runs");
    let outcomes = scenario
        .evaluate(&result, &EvaluatorRegistry::with_defaults())
        .expect("all kinds have evaluators");
    let kinds: Vec<&str> = outcomes.iter().map(|o| o.kind.as_str()).collect();
    assert_eq!(
        kinds,
        ["throughput_at_least", "metric_within", "ratio_at_least"],
        "outcomes follow declaration order"
    );
    assert!(outcomes[0].passed, "throughput >= 0 always holds");
    assert!(!outcomes[1].passed, "no cell has exactly zero I-MPKI");
    assert!(outcomes[2].passed, "ratio >= 0 always holds");
}

#[test]
fn fan_out_shards_merge_to_the_in_process_result() {
    use strex::campaign::{merge, ShardSpec};

    // The same property `repro check --procs` rests on, without spawning
    // processes: sharding a scenario's matrix and merging reproduces the
    // in-process run bit for bit.
    let scenario = tiny_scenario(
        r#"{"kind": "throughput_at_least",
            "cell": {"workload": "TPC-C-1", "scheduler": "strex", "cores": 2},
            "min": 0.0}"#,
    );
    let workloads = scenario.workloads();
    let whole = scenario
        .campaign(&workloads)
        .run()
        .expect("tiny matrix runs");
    let shards: Vec<_> = (0..3)
        .map(|i| {
            scenario
                .campaign(&workloads)
                .run_shard(ShardSpec::new(i, 3).expect("valid spec"))
                .expect("tiny matrix shards")
        })
        .collect();
    let merged = merge(shards).expect("shards merge");
    assert_eq!(whole.to_json(), merged.to_json());
}
