//! Golden-snapshot determinism test: the simulator's observable results
//! must be bit-identical across refactors of the cache/driver hot path.
//!
//! Every `SchedulerKind` × `ReplacementKind` combination runs a fixed-seed
//! preset workload; the integer report fields (makespan, per-transaction
//! latencies, miss counters, context switches) are rendered to a canonical
//! text form and compared against the committed snapshot, which was
//! recorded from the pre-optimization seed implementation.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! GOLDEN_WRITE=1 cargo test --test golden_reports
//! ```
//!
//! and commit the diff of `tests/golden/report_snapshot.txt` with an
//! explanation of why results changed.

use std::fmt::Write as _;

use strex::config::{SchedulerKind, SimConfig};
use strex::driver::run;
use strex_oltp::workload::{Workload, WorkloadKind};
use strex_sim::config::SystemConfig;
use strex_sim::replacement::ReplacementKind;

const SNAPSHOT_PATH: &str = "tests/golden/report_snapshot.txt";
const GOLDEN_SEED: u64 = 20130624;
const CORES: usize = 4;
const POOL: usize = 8;

fn render_all() -> String {
    let workload = Workload::preset_small(WorkloadKind::TpccW1, POOL, GOLDEN_SEED);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# golden reports: workload={} pool={POOL} seed={GOLDEN_SEED} cores={CORES}",
        workload.name()
    );
    for sched in SchedulerKind::ALL {
        for repl in ReplacementKind::ALL {
            let mut system = SystemConfig::with_cores(CORES);
            system.l1i_replacement = repl;
            system.l1d_replacement = repl;
            let cfg = SimConfig::builder()
                .system(system)
                .scheduler(sched)
                .build()
                .expect("golden configuration is valid");
            let r = run(&workload, &cfg);
            let agg = r.stats.aggregate();
            let latencies: Vec<String> = r.latencies.iter().map(|l| l.to_string()).collect();
            let _ = writeln!(
                out,
                "scheduler={} repl={repl} makespan={} latencies=[{}] \
                 instructions={} i_accesses={} i_misses={} i_mpki={:.6} \
                 d_accesses={} d_misses={} d_coherence_misses={} \
                 l2_accesses={} l2_misses={} writebacks={} \
                 context_switches={} migrations={}",
                sched.key(),
                r.makespan,
                latencies.join(","),
                agg.instructions,
                agg.i_accesses,
                agg.i_misses,
                r.i_mpki(),
                agg.d_accesses,
                agg.d_misses,
                agg.d_coherence_misses,
                r.stats.shared.l2_accesses,
                r.stats.shared.l2_misses,
                r.stats.shared.writebacks,
                r.context_switches,
                r.migrations,
            );
        }
    }
    out
}

#[test]
fn reports_match_committed_snapshot() {
    let rendered = render_all();
    if std::env::var_os("GOLDEN_WRITE").is_some() {
        std::fs::write(SNAPSHOT_PATH, &rendered).expect("write snapshot");
        eprintln!("regenerated {SNAPSHOT_PATH}; review and commit the diff");
        return;
    }
    let committed = std::fs::read_to_string(SNAPSHOT_PATH)
        .expect("snapshot file missing — run with GOLDEN_WRITE=1 to create it");
    if rendered != committed {
        // Report the first divergent line, which names the exact cell.
        for (line, (got, want)) in rendered.lines().zip(committed.lines()).enumerate() {
            assert_eq!(
                got,
                want,
                "snapshot diverged at line {} — results are no longer \
                 bit-identical to the committed baseline",
                line + 1
            );
        }
        panic!(
            "snapshot line count changed: got {}, committed {}",
            rendered.lines().count(),
            committed.lines().count()
        );
    }
}
