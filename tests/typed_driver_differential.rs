//! Differential tests for the PR 4 throughput layer: the per-scheduler
//! *monomorphized* driver loop (reached through the registry's
//! `SchedulerFactory::run_typed`) and the *fused* victim-peek/demand-probe
//! fetch path must both be bit-identical to the generic loop — per-event
//! virtual dispatch, separate peek and probe scans — on identical inputs.
//!
//! The comparison is on serialized reports, which cover the makespan,
//! every latency, every per-core hierarchy counter and the shared-L2
//! stats, so any divergence in scheduling decisions, cache outcomes or
//! timing shows up.

use strex::config::{SchedulerKind, SimConfig};
use strex::driver::{run, run_registered, run_typed, run_with, run_with_generic_loop};
use strex::sched::registry;
use strex::sched::{BaselineSched, HybridSched, SliccSched, StrexSched};
use strex_oltp::workload::{Workload, WorkloadKind};

fn workloads() -> Vec<Workload> {
    vec![
        Workload::preset_small(WorkloadKind::TpccW1, 16, 7),
        Workload::preset_small(WorkloadKind::Tpce, 12, 7),
        Workload::preset_small(WorkloadKind::MapReduce, 12, 7),
    ]
}

fn cfg(cores: usize, kind: SchedulerKind) -> SimConfig {
    SimConfig::builder()
        .cores(cores)
        .scheduler(kind)
        .build()
        .expect("valid test configuration")
}

/// `run` (typed loop via the registry factory) vs the generic dyn loop,
/// for every built-in scheduler on every workload family: monomorphization
/// and probe fusion together must not change a single bit of the report.
#[test]
fn typed_loop_matches_generic_loop_for_every_scheduler() {
    for w in &workloads() {
        for kind in SchedulerKind::ALL {
            for cores in [2usize, 4] {
                let cfg = cfg(cores, kind);
                let typed = run(w, &cfg);
                let mut generic_sched = registry::global()
                    .create(kind.key(), &cfg)
                    .expect("built-in scheduler");
                let generic = run_with_generic_loop(w, &cfg, generic_sched.as_mut());
                assert_eq!(
                    typed.to_json(),
                    generic.to_json(),
                    "{kind} on {} with {cores} cores diverged",
                    w.name()
                );
            }
        }
    }
}

/// `run_typed` with explicit concrete scheduler types agrees with both the
/// dyn fused loop (`run_with`) and the registry path — the three public
/// entry points cannot drift apart.
#[test]
fn explicit_run_typed_agrees_with_dyn_and_registry_paths() {
    let w = Workload::preset_small(WorkloadKind::TpccW1, 12, 3);

    let cfg_b = cfg(2, SchedulerKind::Baseline);
    let typed = run_typed(&w, &cfg_b, &mut BaselineSched::new());
    let dynamic = run_with(&w, &cfg_b, &mut BaselineSched::new());
    assert_eq!(typed.to_json(), dynamic.to_json());

    let cfg_s = cfg(2, SchedulerKind::Strex);
    let typed = run_typed(&w, &cfg_s, &mut StrexSched::new(cfg_s.strex));
    let dynamic = run_with(&w, &cfg_s, &mut StrexSched::new(cfg_s.strex));
    let registered = run_registered(&w, &cfg_s, registry::global());
    assert_eq!(typed.to_json(), dynamic.to_json());
    assert_eq!(typed.to_json(), registered.to_json());

    let cfg_l = cfg(4, SchedulerKind::Slicc);
    let typed = run_typed(&w, &cfg_l, &mut SliccSched::new(cfg_l.slicc));
    let dynamic = run_with(&w, &cfg_l, &mut SliccSched::new(cfg_l.slicc));
    assert_eq!(typed.to_json(), dynamic.to_json());

    let cfg_h = cfg(4, SchedulerKind::Hybrid);
    let l1i = cfg_h.system.l1i_geometry.size_bytes();
    let typed = run_typed(
        &w,
        &cfg_h,
        &mut HybridSched::new(cfg_h.strex, cfg_h.slicc, l1i),
    );
    let dynamic = run_with(
        &w,
        &cfg_h,
        &mut HybridSched::new(cfg_h.strex, cfg_h.slicc, l1i),
    );
    assert_eq!(typed.to_json(), dynamic.to_json());
}

/// The fused path must exercise STREX's victim monitor for real: on a
/// same-type pool the monitor context-switches, and the fused loop must
/// count exactly as many switches as the unfused generic loop.
#[test]
fn fused_victim_monitor_switches_exactly_like_unfused() {
    use strex_oltp::tpcc::TpccTxnKind;
    let w = Workload::tpcc_same_type(TpccTxnKind::Payment, 1, 10, 5);
    let cfg = cfg(2, SchedulerKind::Strex);
    let fused = run(&w, &cfg);
    let mut sched = StrexSched::new(cfg.strex);
    let unfused = run_with_generic_loop(&w, &cfg, &mut sched);
    assert!(
        fused.context_switches > 0,
        "the monitor must fire on a same-type pool for this test to bite"
    );
    assert_eq!(fused.context_switches, unfused.context_switches);
    assert_eq!(fused.to_json(), unfused.to_json());
}
