//! The fault-injection suite: the full dispatcher stack — coordinator,
//! workers, submitter — run over loopback TCP through a seeded
//! [`ChaosProxy`] that drops, duplicates, truncates and delays frames
//! and kills connections mid-stream. The contract under *any* seed:
//! the submitter gets either a merged result bit-identical to the
//! sequential in-process run or a typed error — never a hang (every
//! test runs under a watchdog), never a panic, never a corrupted merge.
//! Plus the crash-restart drill: a coordinator killed mid-job and
//! restarted on its journal finishes the job for a retrying submitter.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use strex::campaign::{Campaign, CampaignResult, CampaignShard, ShardCheckpoint, ShardSpec};
use strex::config::{SchedulerKind, SimConfig};
use strex::dispatch::{
    submit_with_retry, ChaosProxy, DispatchConfig, FaultPlan, ServeOptions, Server, ShardRunner,
    SystemClock, WorkerOptions,
};
use strex::{ConfigError, WireFormat};
use strex_oltp::workload::{Workload, WorkloadKind};

const CAMPAIGN: &str = "tiny";

fn tiny_workloads() -> Vec<Workload> {
    vec![
        Workload::preset_small(WorkloadKind::TpccW1, 8, 7),
        Workload::preset_small(WorkloadKind::MapReduce, 8, 7),
    ]
}

fn tiny_campaign(workloads: &[Workload]) -> Campaign<'_> {
    Campaign::new(SimConfig::new(2, SchedulerKind::Baseline))
        .over_schedulers([SchedulerKind::Baseline, SchedulerKind::Strex])
        .over_workloads(workloads)
}

fn tiny_sequential() -> CampaignResult {
    let workloads = tiny_workloads();
    tiny_campaign(&workloads).run().expect("valid")
}

/// A resume-capable runner for the tiny campaign — real checkpoints flow
/// through the chaos proxy, and a mismatched one falls back to a fresh
/// run instead of failing the worker.
struct TinyRunner;

impl ShardRunner for TinyRunner {
    fn run(&mut self, campaign: &str, spec: ShardSpec) -> Result<CampaignShard, String> {
        self.run_resumable(campaign, spec, None, &mut |_| {})
    }

    fn run_resumable(
        &mut self,
        campaign: &str,
        spec: ShardSpec,
        checkpoint: Option<ShardCheckpoint>,
        on_cell: &mut dyn FnMut(&ShardCheckpoint),
    ) -> Result<CampaignShard, String> {
        if campaign != CAMPAIGN {
            return Err(format!("unknown campaign {campaign:?}"));
        }
        let workloads = tiny_workloads();
        let c = tiny_campaign(&workloads);
        match c.run_shard_resumable(spec, checkpoint, on_cell) {
            Ok(shard) => Ok(shard),
            Err(ConfigError::CheckpointMismatch { .. }) => c
                .run_shard_resumable(spec, None, on_cell)
                .map_err(|e| e.to_string()),
            Err(e) => Err(e.to_string()),
        }
    }
}

/// Fault-tolerant timings: dead connections are noticed fast, and a
/// shard whose completion frame the chaos layer ate is re-dispatched by
/// the deadline instead of waiting on a submitter timeout.
fn chaos_cfg() -> DispatchConfig {
    DispatchConfig {
        worker_timeout_ms: 2_000,
        heartbeat_interval_ms: 200,
        shard_deadline_ms: 4_000,
        submit_refill_ms: 0, // rate limiting off: retries are the point
        ..DispatchConfig::default()
    }
}

/// A coordinator bound to an ephemeral loopback port, serving until the
/// returned stop flag is raised (the finished cache keeps answering a
/// submitter whose result frame the chaos layer destroyed).
fn spawn_server(
    addr: &str,
    journal: Option<std::path::PathBuf>,
) -> (
    SocketAddr,
    Arc<AtomicBool>,
    std::thread::JoinHandle<Result<usize, String>>,
) {
    let server = Server::bind(
        addr,
        chaos_cfg(),
        [CAMPAIGN.to_string()],
        Arc::new(SystemClock::new()),
    )
    .expect("bind loopback");
    let bound = server.local_addr().expect("bound");
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        server
            .run(ServeOptions {
                max_jobs: None,
                wire: WireFormat::default(),
                journal,
                stop: Some(flag),
            })
            .map(|s| s.jobs_completed)
            .map_err(|e| e.to_string())
    });
    (bound, stop, handle)
}

/// A worker that reconnects through the chaos proxy until told to stop —
/// connection deaths are the proxy's favourite fault, so one `run_worker`
/// call is never enough.
fn spawn_chaos_worker(
    proxy: SocketAddr,
    name: &str,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<usize> {
    let opts = WorkerOptions {
        name: name.to_string(),
        heartbeat_interval_ms: 200,
        checkpoint_every_cells: 1,
        ..WorkerOptions::default()
    };
    std::thread::spawn(move || {
        let mut runner = TinyRunner;
        let mut shards = 0;
        while !stop.load(Ordering::SeqCst) {
            if let Ok(summary) = strex::dispatch::run_worker(proxy, &opts, &mut runner) {
                shards += summary.shards_run;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        shards
    })
}

/// Runs one full chaos scenario under `plan` and returns the submitter's
/// outcome. Everything is torn down before returning; a scenario that
/// cannot tear down is a hang, caught by the caller's watchdog.
fn chaos_round(plan: FaultPlan, shards: usize) -> Result<String, String> {
    let (coord, stop_server, server) = spawn_server("127.0.0.1:0", None);
    let mut proxy = ChaosProxy::start("127.0.0.1:0", coord, plan).expect("proxy up");
    let via = proxy.local_addr();

    let stop_workers = Arc::new(AtomicBool::new(false));
    let w1 = spawn_chaos_worker(via, "chaos-w1", Arc::clone(&stop_workers));
    let w2 = spawn_chaos_worker(via, "chaos-w2", Arc::clone(&stop_workers));

    // Diagnostic heartbeat: a hung scenario is only debuggable if the
    // watchdog's panic is preceded by the coordinator's view of the
    // world. Quiet on the happy path (rounds finish well under 5 s).
    let monitor_stop = Arc::new(AtomicBool::new(false));
    {
        let stop = Arc::clone(&monitor_stop);
        let frames = proxy.frames();
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_secs(5));
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                eprintln!(
                    "[chaos monitor] frames_seen={} status={:?}",
                    frames.load(Ordering::SeqCst),
                    strex::dispatch::status(coord)
                );
            }
        });
    }

    let outcome = submit_with_retry(via, CAMPAIGN, shards, 20)
        .map(|r| r.to_json())
        .map_err(|e| e.to_string());
    monitor_stop.store(true, Ordering::SeqCst);

    stop_workers.store(true, Ordering::SeqCst);
    stop_server.store(true, Ordering::SeqCst);
    proxy.shutdown();
    server.join().expect("server thread").expect("serve ok");
    w1.join().expect("w1");
    w2.join().expect("w2");
    outcome
}

/// Runs `f` under a wall-clock watchdog: if the scenario does not finish
/// in `secs`, the test fails loudly instead of hanging the suite.
fn under_watchdog<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(v) => {
            worker.join().expect("scenario thread");
            v
        }
        Err(_) => panic!("chaos scenario hung past the {secs}s watchdog"),
    }
}

#[test]
fn a_benign_proxy_is_invisible_to_the_merge() {
    let outcome = under_watchdog(120, || chaos_round(FaultPlan::benign(7), 3));
    assert_eq!(
        outcome.expect("no faults, no failure"),
        tiny_sequential().to_json()
    );
}

#[test]
fn every_seed_yields_the_identical_merge_or_a_typed_error() {
    // The bounded sweep: derived plans across the fault space. Each seed
    // must converge — bit-identical result or a typed error string —
    // with no panic and no hang. The golden JSON is computed once.
    let golden = tiny_sequential().to_json();
    for seed in 1..=6u64 {
        let plan = FaultPlan::from_seed(seed);
        eprintln!("chaos sweep: seed {seed}, plan {plan:?}");
        let outcome = under_watchdog(120, move || chaos_round(plan, 3));
        match outcome {
            Ok(json) => assert_eq!(json, golden, "seed {seed} corrupted the merge"),
            Err(e) => assert!(!e.is_empty(), "seed {seed}: untyped failure"),
        }
    }
}

#[test]
fn coordinator_killed_mid_job_resumes_from_its_journal() {
    // The crash-restart drill, deterministic faults only (the benign
    // proxy): kill the coordinator while the job is in flight, restart
    // it on the same port and journal, and the retrying submitter must
    // still receive the bit-identical merge — shards completed before
    // the kill are adopted from the ledger, not re-run.
    let journal =
        std::env::temp_dir().join(format!("strex-chaos-journal-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&journal);

    let outcome = under_watchdog(180, {
        let journal = journal.clone();
        move || {
            let (coord, stop_first, first) = spawn_server("127.0.0.1:0", Some(journal.clone()));
            let mut proxy =
                ChaosProxy::start("127.0.0.1:0", coord, FaultPlan::benign(3)).expect("proxy up");
            let via = proxy.local_addr();

            let stop_workers = Arc::new(AtomicBool::new(false));
            let w1 = spawn_chaos_worker(via, "crash-w1", Arc::clone(&stop_workers));
            let w2 = spawn_chaos_worker(via, "crash-w2", Arc::clone(&stop_workers));

            let submitter = std::thread::spawn(move || {
                submit_with_retry(via, CAMPAIGN, 3, 12)
                    .map(|r| r.to_json())
                    .map_err(|e| e.to_string())
            });

            // Let the job get in flight (shards take ~hundreds of ms;
            // some complete, some do not), then kill the coordinator.
            std::thread::sleep(Duration::from_millis(400));
            stop_first.store(true, Ordering::SeqCst);
            first.join().expect("first server").expect("clean stop");

            // Restart on the same port with the same ledger. The journal
            // has the submission and any finished shards; the workers and
            // submitter reconnect on their own.
            let (_, stop_second, second) = spawn_server(&coord.to_string(), Some(journal));
            let outcome = submitter.join().expect("submitter");

            stop_workers.store(true, Ordering::SeqCst);
            stop_second.store(true, Ordering::SeqCst);
            proxy.shutdown();
            second.join().expect("second server").expect("serve ok");
            w1.join().expect("w1");
            w2.join().expect("w2");
            outcome
        }
    });

    assert_eq!(
        outcome.expect("the job survives the crash"),
        tiny_sequential().to_json()
    );
    let _ = std::fs::remove_file(&journal);
}
