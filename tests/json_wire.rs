//! The JSON wire format end to end: writer → parser string fidelity
//! (including `\uXXXX` escapes and surrogate pairs), and the
//! `Report`/`CampaignResult` parse side round-tripping byte-for-byte —
//! the property the multi-process campaign fan-out rests on.

use strex::campaign::Campaign;
use strex::config::{SchedulerKind, SimConfig};
use strex::driver::run;
use strex::json::JsonWriter;
use strex::jsonval::JsonValue;
use strex::report::Report;
use strex_oltp::workload::{Workload, WorkloadKind};

fn write_string(s: &str) -> String {
    let mut w = JsonWriter::new();
    w.string(s);
    w.finish()
}

#[test]
fn writer_escapes_parse_back_exactly() {
    for s in [
        "",
        "plain",
        "with \"quotes\" and \\backslashes\\",
        "control \u{1}\u{8}\u{c}\u{1f} chars",
        "newline\nreturn\rtab\t",
        "unicode é 漢字 😀 \u{10FFFF}",
        "/slashes/ and \u{7f}",
    ] {
        let parsed = JsonValue::parse(&write_string(s)).expect("writer output parses");
        assert_eq!(parsed, JsonValue::String(s.to_string()), "for {s:?}");
    }
}

mod string_round_trip {
    use super::*;
    use proptest::prelude::*;

    /// Arbitrary Unicode strings: code points drawn from the whole scalar
    /// range (surrogates skipped, as `char` requires), with extra weight
    /// on ASCII and the escape-relevant controls.
    fn arbitrary_string() -> impl Strategy<Value = String> {
        prop::collection::vec(
            prop_oneof![
                Just('"'),
                Just('\\'),
                Just('\n'),
                Just('\u{0}'),
                Just('\u{1f}'),
                Just('\u{1F600}'),
                (0u32..0xD800).prop_map(|c| char::from_u32(c).expect("below surrogates")),
                (0xE000u32..0x11_0000).prop_map(|c| char::from_u32(c).expect("above surrogates")),
            ],
            0..24,
        )
        .prop_map(|chars| chars.into_iter().collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn any_string_survives_writer_then_parse(s in arbitrary_string()) {
            let json = write_string(&s);
            let parsed = JsonValue::parse(&json)
                .map_err(|e| TestCaseError::fail(format!("{e} for {json:?}")))?;
            prop_assert_eq!(parsed, JsonValue::String(s));
        }

        #[test]
        fn strings_survive_as_object_keys_too(s in arbitrary_string()) {
            let mut w = JsonWriter::new();
            w.begin_object();
            w.key(&s);
            w.number_u64(1);
            w.end_object();
            let doc = JsonValue::parse(&w.finish())
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            let map = doc.as_object().expect("an object was written");
            prop_assert!(map.contains_key(&s));
        }
    }
}

#[test]
fn report_round_trips_byte_for_byte_for_every_scheduler() {
    let w = Workload::preset_small(WorkloadKind::TpccW1, 8, 7);
    for kind in SchedulerKind::ALL {
        let cfg = SimConfig::builder()
            .cores(2)
            .scheduler(kind)
            .build()
            .expect("valid");
        let report = run(&w, &cfg);
        let json = report.to_json();
        let parsed = Report::from_json(&json).expect("own output parses");
        assert_eq!(parsed.to_json(), json, "{kind} report drifted in transit");
        assert_eq!(parsed.scheduler, report.scheduler);
        assert_eq!(parsed.latencies, report.latencies);
        assert_eq!(parsed.stats.cores, report.stats.cores);
        assert_eq!(parsed.stats.shared, report.stats.shared);
    }
}

#[test]
fn campaign_result_round_trips_byte_for_byte() {
    let workloads = [
        Workload::preset_small(WorkloadKind::TpccW1, 8, 7),
        Workload::preset_small(WorkloadKind::MapReduce, 8, 7),
    ];
    let result = Campaign::new(SimConfig::new(2, SchedulerKind::Baseline))
        .over_schedulers([SchedulerKind::Baseline, SchedulerKind::Strex])
        .over_workloads(workloads.iter())
        .run()
        .expect("valid campaign");
    let json = result.to_json();
    let parsed = strex::campaign::CampaignResult::from_json(&json).expect("parses");
    assert_eq!(parsed.to_json(), json, "campaign drifted in transit");
    assert_eq!(parsed.len(), result.len());
    // workload_idx is reconstructed from the workload-major run structure.
    assert_eq!(parsed.cells()[0].key.workload_idx, 0);
    assert_eq!(parsed.cells()[2].key.workload_idx, 1);
    // The parse-side perf is explicitly degenerate (never serialized)…
    assert_eq!(parsed.perf().workers, 0);
    // …except total_events, recomputed from the cells.
    assert_eq!(parsed.perf().total_events, result.perf().total_events);
}

#[test]
fn wire_rejects_corruption_loudly() {
    let w = Workload::preset_small(WorkloadKind::TpccW1, 6, 3);
    let report = run(&w, &SimConfig::new(2, SchedulerKind::Baseline));
    let json = report.to_json();
    // A truncated document, a type confusion, and a missing field.
    assert!(Report::from_json(&json[..json.len() - 2]).is_err());
    assert!(
        Report::from_json(&json.replace("\"makespan\":", "\"makespan\":\"x\" ,\"y\":")).is_err()
    );
    assert!(Report::from_json(&json.replace("\"latencies\"", "\"latencies_gone\"")).is_err());
    assert!(strex::campaign::CampaignResult::from_json("{}").is_err());
    assert!(strex::campaign::CampaignShard::from_json("{}").is_err());
    // A shard whose id does not match its key is corrupt.
    let shard = Campaign::new(SimConfig::new(2, SchedulerKind::Baseline))
        .over_workloads([&w])
        .run_shard(strex::campaign::ShardSpec::new(0, 1).expect("valid"))
        .expect("runs");
    let tampered = shard.to_json().replacen("/c2/", "/c4/", 1);
    assert!(strex::campaign::CampaignShard::from_json(&tampered).is_err());
}
