//! The dispatcher's wire protocol under hostile input: arbitrary bytes,
//! truncated frames, unknown message types and mistyped payloads must all
//! come back as typed [`ProtoError`]s — never a panic — and every
//! well-formed frame must survive a parse → re-emit round trip
//! byte-identically (what the coordinator's idempotency cache and the
//! bit-identical-merge guarantee lean on). Both framings are covered:
//! JSON lines and the length-prefixed binary frames that carry
//! `ShardDone`/`Result` under `--wire bin`.

use std::io::BufReader;
use std::sync::Arc;

use proptest::prelude::*;

use strex::binwire::WireFormat;
use strex::campaign::{CampaignShard, ShardSpec};
use strex::dispatch::{read_message, JobSpec, Message, ProtoError, RejectReason, WorkerCaps};
use strex::scenario::Scenario;

/// Short strings over the whole scalar range (surrogates excluded, plus
/// weight on ASCII and JSON-escape-relevant characters), as message
/// payload text.
fn wire_text() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            Just('"'),
            Just('\\'),
            Just('\n'),
            Just('\u{0}'),
            (0x20u32..0x7f).prop_map(|c| char::from_u32(c).expect("ascii")),
            (0u32..0xD800).prop_map(|c| char::from_u32(c).expect("below surrogates")),
            (0xE000u32..0x11_0000).prop_map(|c| char::from_u32(c).expect("above surrogates")),
        ],
        0..24,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// A small fixed scenario document for the scenario-carrying frames —
/// its canonical JSON is deterministic, so the round-trip property holds
/// on it like on any other payload.
fn tiny_scenario() -> Arc<Scenario> {
    Arc::new(
        Scenario::from_json(
            r#"{
                "name": "proto-tiny",
                "matrix": {
                    "workloads": ["TPC-C-1"],
                    "pool": 8,
                    "seed": 7,
                    "small": true,
                    "schedulers": ["baseline"],
                    "cores": [2]
                },
                "assertions": [
                    {
                        "kind": "throughput_at_least",
                        "cell": {"workload": "TPC-C-1", "scheduler": "baseline", "cores": 2},
                        "min": 0.0
                    }
                ]
            }"#,
        )
        .expect("valid scenario"),
    )
}

fn job_specs() -> impl Strategy<Value = JobSpec> {
    prop_oneof![
        wire_text().prop_map(JobSpec::Catalog),
        Just(JobSpec::Scenario(tiny_scenario())),
    ]
}

fn worker_caps() -> impl Strategy<Value = WorkerCaps> {
    (
        1usize..256,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0usize..3,
    )
        .prop_map(|(cores, pinning, avx2, scenarios, wires_pick)| WorkerCaps {
            cores,
            pinning,
            avx2,
            scenarios,
            wires: match wires_pick {
                0 => vec![WireFormat::Json],
                1 => vec![WireFormat::Bin],
                _ => vec![WireFormat::Json, WireFormat::Bin],
            },
        })
}

fn control_messages() -> impl Strategy<Value = Message> {
    prop_oneof![
        (job_specs(), 1usize..64).prop_map(|(work, shards)| Message::Submit { work, shards }),
        (wire_text(), worker_caps()).prop_map(|(name, caps)| Message::Register { name, caps }),
        Just(Message::Heartbeat),
        Just(Message::StatusRequest),
        (wire_text(), job_specs(), 1usize..64, 0usize..64).prop_map(
            |(job, work, count, index_seed)| Message::Assign {
                job,
                work,
                spec: ShardSpec {
                    index: index_seed % count,
                    count,
                },
                checkpoint: None,
            }
        ),
        (0usize..RejectReason::ALL.len(), wire_text()).prop_map(|(pick, message)| {
            Message::Reject {
                reason: RejectReason::ALL[pick],
                message,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_control_frame_round_trips_byte_identically(msg in control_messages()) {
        let frame = msg.to_frame();
        prop_assert!(frame.ends_with('\n'));
        prop_assert!(!frame[..frame.len() - 1].contains('\n'), "one line per frame");
        let parsed = Message::parse_frame(&frame)
            .map_err(|e| TestCaseError::fail(format!("{e} for {frame:?}")))?;
        prop_assert_eq!(parsed.to_frame(), frame);
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_reader(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut reader = BufReader::new(bytes.as_slice());
        // Drain the whole stream; every outcome must be a value or a
        // typed error, and an error ends the stream (as the serve shell
        // treats it).
        loop {
            match read_message(&mut reader) {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(
                    ProtoError::Io(_)
                    | ProtoError::Truncated { .. }
                    | ProtoError::Malformed(_)
                    | ProtoError::Wire(_)
                    | ProtoError::Stalled { .. },
                ) => break,
            }
        }
    }

    #[test]
    fn arbitrary_bytes_behind_a_binary_magic_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        // Force the binary framing path: magic byte, then hostile bytes
        // standing in for length prefix, payload and terminator.
        let mut framed = vec![0xB1u8];
        framed.extend_from_slice(&bytes);
        let mut reader = BufReader::new(framed.as_slice());
        match read_message(&mut reader) {
            Ok(_) => {}
            Err(
                ProtoError::Io(_)
                | ProtoError::Truncated { .. }
                | ProtoError::Malformed(_)
                | ProtoError::Wire(_)
                | ProtoError::Stalled { .. },
            ) => {}
        }
    }

    #[test]
    fn truncating_a_valid_frame_is_a_typed_error(msg in control_messages(), cut in 0usize..64) {
        let frame = msg.to_frame();
        // Cut strictly inside the frame (losing at least the newline), on
        // a char boundary so the slice stays valid UTF-8 (invalid UTF-8 is
        // the Io arm, covered by the arbitrary-bytes case above).
        let mut cut = cut.min(frame.len().saturating_sub(1));
        while !frame.is_char_boundary(cut) {
            cut -= 1;
        }
        let truncated = &frame.as_bytes()[..cut];
        let mut reader = BufReader::new(truncated);
        match read_message(&mut reader) {
            Ok(None) => prop_assert_eq!(cut, 0, "only an empty stream is a clean EOF"),
            Err(ProtoError::Truncated { bytes }) => prop_assert_eq!(bytes, cut),
            other => prop_assert!(false, "expected Truncated, got {:?}", other),
        }
    }

    #[test]
    fn unknown_message_types_are_wire_errors(pick in 0usize..6) {
        let kind = ["warp", "submitx", "heart_beat", "shard", "assignn", "results"][pick];
        let frame = format!("{{\"type\":\"{kind}\"}}\n");
        match Message::parse_frame(&frame) {
            Err(ProtoError::Wire(e)) => prop_assert!(e.to_string().contains(kind), "{}", e),
            other => prop_assert!(false, "expected Wire error, got {:?}", other),
        }
    }

    #[test]
    fn known_types_with_mangled_payloads_are_typed_errors(pick in 0usize..5, junk_pick in 0usize..6) {
        let kind = ["submit", "register", "assign", "shard_done", "result"][pick];
        // None of these fragments completes any message type's payload:
        // wrong field types, missing required fields, invalid shard specs.
        let junk = [
            "",
            ",\"shards\":\"four\"",
            ",\"job\":17",
            ",\"index\":9,\"count\":4",
            ",\"shard\":[]",
            ",\"result\":3",
        ][junk_pick];
        let frame = format!("{{\"type\":\"{kind}\"{junk}}}\n");
        match Message::parse_frame(&frame) {
            Err(ProtoError::Wire(_)) => {}
            Err(other) => prop_assert!(false, "expected Wire error, got {:?}", other),
            Ok(msg) => prop_assert!(false, "mangled frame parsed as {:?}", msg),
        }
    }
}

#[test]
fn a_frame_split_across_reads_still_parses_once_whole() {
    // BufRead assembles a line across TCP segment boundaries; emulate a
    // stream delivering a frame in two chunks followed by a clean close.
    let frame = Message::Submit {
        work: JobSpec::Catalog("quick".into()),
        shards: 4,
    }
    .to_frame();
    let (head, tail) = frame.split_at(frame.len() / 2);
    let joined = [head.as_bytes(), tail.as_bytes()].concat();
    let mut reader = BufReader::new(joined.as_slice());
    assert!(matches!(
        read_message(&mut reader).expect("parses"),
        Some(Message::Submit { shards: 4, .. })
    ));
    assert!(read_message(&mut reader).expect("clean EOF").is_none());
}

fn tiny_shard_done() -> Message {
    let shard = CampaignShard::from_parts(
        ShardSpec::new(1, 3).expect("valid"),
        Vec::new(),
        strex::campaign::CampaignPerf {
            workers: 2,
            wall_seconds: 0.25,
            total_events: 7,
        },
    )
    .expect("valid shard");
    Message::ShardDone {
        job: "job-1".into(),
        shard,
    }
}

#[test]
fn a_binary_frame_split_across_reads_still_parses_once_whole() {
    // The binary analogue, through the reusable-buffer reader the serve
    // loops hold: one frame delivered byte by byte (the worst split TCP
    // can produce) must parse exactly once, then EOF cleanly, with the
    // buffer reused across both calls.
    let msg = tiny_shard_done();
    let frame = msg.to_frame_bytes(WireFormat::Bin);
    assert!(strex::binwire::is_binary(frame[0]));
    struct TrickleReader<'a> {
        bytes: &'a [u8],
    }
    impl std::io::Read for TrickleReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.bytes.len().min(1).min(buf.len());
            buf[..n].copy_from_slice(&self.bytes[..n]);
            self.bytes = &self.bytes[n..];
            Ok(n)
        }
    }
    let mut buf = Vec::new();
    let mut reader = BufReader::with_capacity(1, TrickleReader { bytes: &frame });
    let parsed = strex::dispatch::read_message_buffered(&mut reader, &mut buf)
        .expect("parses")
        .expect("one frame in");
    assert_eq!(parsed.to_frame_bytes(WireFormat::Bin), frame);
    assert_eq!(parsed.to_frame(), msg.to_frame(), "JSON twin agrees");
    assert!(
        strex::dispatch::read_message_buffered(&mut reader, &mut buf)
            .expect("clean EOF")
            .is_none()
    );
}

/// Protocol v2.1 `checkpoint` frames and the `Assign` resume field, both
/// framings: a parse → re-emit round trip must be byte-identical (cells
/// and cursor fidelity is covered by `tests/checkpoint_resume.rs`; this
/// is the frame layer).
mod checkpoint_frames {
    use super::*;
    use strex::campaign::ShardCheckpoint;

    fn checkpoint_msg() -> Message {
        Message::Checkpoint {
            job: "job-9".into(),
            checkpoint: ShardCheckpoint::new(ShardSpec::new(1, 3).expect("valid")),
        }
    }

    fn assign_with_checkpoint() -> Message {
        Message::Assign {
            job: "job-9".into(),
            work: JobSpec::Catalog("tiny".into()),
            spec: ShardSpec::new(1, 3).expect("valid"),
            checkpoint: Some(ShardCheckpoint::new(ShardSpec::new(1, 3).expect("valid"))),
        }
    }

    #[test]
    fn checkpoint_frames_round_trip_byte_identically_in_both_wires() {
        for msg in [checkpoint_msg(), assign_with_checkpoint()] {
            let json = msg.to_frame();
            let parsed = Message::parse_frame(&json).expect("own JSON parses");
            assert_eq!(parsed.to_frame(), json);

            let bin = msg.to_frame_bytes(WireFormat::Bin);
            let mut buf = Vec::new();
            let mut reader = BufReader::new(bin.as_slice());
            let parsed = strex::dispatch::read_message_buffered(&mut reader, &mut buf)
                .expect("own binwire parses")
                .expect("one frame");
            assert_eq!(parsed.to_frame_bytes(WireFormat::Bin), bin);
            assert_eq!(parsed.to_frame(), json, "JSON twin agrees");
        }
    }

    #[test]
    fn a_v2_assign_without_the_checkpoint_field_still_parses() {
        // v2 coordinators never send `checkpoint`; a v2.1 worker must
        // accept their frames unchanged (absent field == fresh start).
        let frame =
            "{\"type\":\"assign\",\"job\":\"j\",\"campaign\":\"tiny\",\"index\":0,\"count\":2}\n";
        match Message::parse_frame(frame).expect("v2 frame parses") {
            Message::Assign { checkpoint, .. } => assert!(checkpoint.is_none()),
            other => panic!("expected Assign, got {other:?}"),
        }
    }
}

/// The per-frame read deadline: a peer that dribbles a frame one byte at
/// a time must come back as a typed [`ProtoError::Stalled`], while slow
///-but-idle connections (no frame in flight) wait unbounded. Driven by a
/// [`FakeClock`] through an in-memory transport — no sockets, no sleeps.
mod frame_deadline {
    use super::*;
    use std::io::{BufRead, Read};
    use strex::dispatch::{FakeClock, FrameReader};

    /// An in-memory peer delivering one byte per read, advancing the
    /// shared fake clock by `step_ms` each time it is polled (and by
    /// `initial_wait_ms` once before the first byte — idle time between
    /// frames).
    struct Dribbler {
        data: Vec<u8>,
        pos: usize,
        clock: Arc<FakeClock>,
        step_ms: u64,
        initial_wait_ms: u64,
        waited: bool,
    }

    impl Dribbler {
        fn new(data: impl Into<Vec<u8>>, clock: Arc<FakeClock>, step_ms: u64) -> Dribbler {
            Dribbler {
                data: data.into(),
                pos: 0,
                clock,
                step_ms,
                initial_wait_ms: 0,
                waited: true,
            }
        }

        fn with_initial_wait(mut self, ms: u64) -> Dribbler {
            self.initial_wait_ms = ms;
            self.waited = false;
            self
        }
    }

    impl Read for Dribbler {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            let chunk = self.fill_buf()?;
            let n = chunk.len().min(out.len());
            out[..n].copy_from_slice(&chunk[..n]);
            self.consume(n);
            Ok(n)
        }
    }

    impl BufRead for Dribbler {
        fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
            if !self.waited {
                self.clock.advance(self.initial_wait_ms);
                self.waited = true;
            } else {
                self.clock.advance(self.step_ms);
            }
            let end = (self.pos + 1).min(self.data.len());
            Ok(&self.data[self.pos..end])
        }

        fn consume(&mut self, amt: usize) {
            self.pos += amt;
        }
    }

    #[test]
    fn a_dribbling_peer_is_a_typed_stall_not_a_pinned_thread() {
        let clock = Arc::new(FakeClock::new());
        // One byte per 200 ms against a 500 ms frame deadline: the frame
        // can never complete, and the reader must say so in finite steps.
        let peer = Dribbler::new(Message::Heartbeat.to_frame(), Arc::clone(&clock), 200);
        let mut reader = FrameReader::with_deadline(peer, 500, clock);
        match reader.next_message() {
            Err(ProtoError::Stalled { ms }) => assert_eq!(ms, 500),
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn idle_time_between_frames_never_trips_the_deadline() {
        let clock = Arc::new(FakeClock::new());
        // An hour of silence before the first byte, then a fast frame:
        // the timer starts at the first byte, so this parses cleanly.
        let peer = Dribbler::new(Message::Heartbeat.to_frame(), Arc::clone(&clock), 1)
            .with_initial_wait(3_600_000);
        let mut reader = FrameReader::with_deadline(peer, 500, clock);
        assert!(matches!(
            reader.next_message().expect("parses"),
            Some(Message::Heartbeat)
        ));
    }

    #[test]
    fn a_frame_faster_than_the_deadline_parses_and_the_next_stall_is_caught() {
        let clock = Arc::new(FakeClock::new());
        // Two heartbeats: the first dribbles in under the wire, the
        // second is cut off mid-frame by the deadline — per-frame means
        // the first frame's speed buys the second nothing.
        let two = Message::Heartbeat.to_frame().repeat(2);
        let frame_len = Message::Heartbeat.to_frame().len() as u64;
        // Finish frame one with room to spare, then stall: the per-byte
        // step that lets ~2x frame-length polls through 500 ms.
        let step = 500 / (2 * frame_len + 2);
        let peer = Dribbler::new(two, Arc::clone(&clock), step.max(1));
        let mut reader = FrameReader::with_deadline(peer, 500, clock.clone());
        assert!(matches!(
            reader.next_message().expect("first frame parses"),
            Some(Message::Heartbeat)
        ));
        // Stall the rest of the stream: the second frame begins but the
        // clock now jumps a full deadline per byte.
        clock.advance(0); // (explicit: the dribbler keeps stepping)
        let second = reader.next_message();
        match second {
            Ok(Some(Message::Heartbeat)) => {
                // The second frame also made it under the deadline with
                // the same step — acceptable only if steps stayed small.
                assert!(step * (frame_len + 1) < 500);
            }
            Err(ProtoError::Stalled { ms }) => assert_eq!(ms, 500),
            other => panic!("expected a frame or a stall, got {other:?}"),
        }
    }
}
