//! The checkpoint/resume determinism guarantee, property-tested
//! differentially: a shard interrupted at *any* cell boundary and
//! resumed from the checkpoint observed there — after the checkpoint
//! round-trips through either wire format — merges into a
//! `CampaignResult` byte-identical to the uninterrupted run. Plus the
//! typed-rejection surface: a checkpoint from the wrong shard, the
//! wrong matrix, or with a tampered cell must fail loudly with
//! `ConfigError::CheckpointMismatch`, never corrupt a merge.

use proptest::prelude::*;
use std::sync::OnceLock;

use strex::campaign::{merge, Campaign, CampaignShard, ShardCheckpoint, ShardSpec};
use strex::config::{SchedulerKind, SimConfig};
use strex::error::ConfigError;
use strex::WireFormat;
use strex_oltp::workload::{Workload, WorkloadKind};

fn workloads() -> Vec<Workload> {
    vec![
        Workload::preset_small(WorkloadKind::TpccW1, 8, 7),
        Workload::preset_small(WorkloadKind::MapReduce, 8, 7),
    ]
}

fn campaign(workloads: &[Workload]) -> Campaign<'_> {
    Campaign::new(SimConfig::new(2, SchedulerKind::Baseline))
        .over_schedulers([SchedulerKind::Baseline, SchedulerKind::Strex])
        .over_workloads(workloads)
}

/// The golden artifacts every interrupted run is measured against: the
/// sequential merged JSON and, per shard count, the uninterrupted shard
/// set (recomputed per call — shards carry wall-clock perf, but merge
/// drops it, so the merged JSON is stable).
fn golden() -> &'static String {
    static GOLDEN: OnceLock<String> = OnceLock::new();
    GOLDEN.get_or_init(|| {
        let w = workloads();
        campaign(&w).run().expect("valid campaign").to_json()
    })
}

fn run_shards(count: usize) -> Vec<CampaignShard> {
    let w = workloads();
    let c = campaign(&w);
    (0..count)
        .map(|index| {
            c.run_shard(ShardSpec { index, count })
                .expect("valid shard")
        })
        .collect()
}

/// Ships a checkpoint across a process boundary through the chosen
/// encoding, exactly as the dispatcher's `checkpoint` frames do.
fn round_trip(ckpt: &ShardCheckpoint, wire: WireFormat) -> ShardCheckpoint {
    match wire {
        WireFormat::Json => {
            ShardCheckpoint::from_json(&ckpt.to_json()).expect("own JSON parses back")
        }
        WireFormat::Bin => {
            ShardCheckpoint::from_bin(&ckpt.to_bin()).expect("own binwire parses back")
        }
    }
}

/// Runs shard `spec` to completion while recording the checkpoint at
/// every cell boundary — the full set of states a preemption could have
/// left behind.
fn boundaries(spec: ShardSpec) -> Vec<ShardCheckpoint> {
    let w = workloads();
    let mut observed = vec![ShardCheckpoint::new(spec)];
    campaign(&w)
        .run_shard_resumable(spec, None, &mut |c| observed.push(c.clone()))
        .expect("valid shard");
    observed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole property. For a drawn shard layout and wire format,
    /// interrupt every shard at *every* cell boundary (including "before
    /// the first cell"), ship the checkpoint through the wire, resume,
    /// and require the merge of resumed + untouched peers to be
    /// byte-identical to the sequential run.
    #[test]
    fn resume_from_any_boundary_is_bit_identical_through_both_wires(
        count in 1usize..=3,
        wire in prop_oneof![Just(WireFormat::Json), Just(WireFormat::Bin)],
    ) {
        let w = workloads();
        let c = campaign(&w);
        let baseline = run_shards(count);
        for index in 0..count {
            let spec = ShardSpec { index, count };
            for ckpt in boundaries(spec) {
                let shipped = round_trip(&ckpt, wire);
                prop_assert_eq!(shipped.cursor(), ckpt.cursor());
                prop_assert_eq!(shipped.cells().len(), ckpt.cells().len());
                let resumed = c
                    .run_shard_resumable(spec, Some(shipped), &mut |_| {})
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
                let mut set = baseline.clone();
                set[index] = resumed;
                let merged = merge(set).map_err(|e| TestCaseError::fail(format!("{e:?}")))?;
                prop_assert_eq!(
                    merged.to_json(),
                    golden().clone(),
                    "resume at cursor {} of shard {} diverged",
                    ckpt.cursor(),
                    spec
                );
            }
        }
    }
}

/// A final checkpoint (cursor at the end, all cells done) resumes into
/// a shard that runs nothing new and still merges identically — the
/// no-op resume a worker performs when its predecessor died after the
/// last cell but before `shard_done` went out.
#[test]
fn resuming_a_finished_checkpoint_runs_nothing_and_merges_identically() {
    let spec = ShardSpec { index: 0, count: 1 };
    let final_ckpt = boundaries(spec).pop().expect("at least one boundary");
    let w = workloads();
    let mut fresh_cells = 0usize;
    let resumed = campaign(&w)
        .run_shard_resumable(spec, Some(final_ckpt), &mut |_| fresh_cells += 1)
        .expect("valid resume");
    assert_eq!(fresh_cells, 0, "every cell was adopted, none re-ran");
    let merged = merge([resumed]).expect("complete set");
    assert_eq!(merged.to_json(), *golden());
}

/// The rejection surface: a checkpoint that does not belong to the run
/// being resumed is a typed `CheckpointMismatch`, not silent corruption.
#[test]
fn foreign_checkpoints_are_rejected_with_a_typed_mismatch() {
    let w = workloads();
    let c = campaign(&w);
    let spec = ShardSpec { index: 0, count: 2 };
    let ckpt = boundaries(spec).pop().expect("boundary");

    // Wrong shard spec: the checkpoint names shard 0/2, the resume asks
    // for 1/2.
    let err = c
        .run_shard_resumable(
            ShardSpec { index: 1, count: 2 },
            Some(ckpt.clone()),
            &mut |_| {},
        )
        .expect_err("spec mismatch");
    assert!(
        matches!(err, ConfigError::CheckpointMismatch { .. }),
        "{err}"
    );

    // Wrong matrix: same spec, but the campaign resumed against has a
    // different cell set, so the recorded cells cannot line up.
    let other_workloads = vec![Workload::preset_small(WorkloadKind::Tpce, 8, 7)];
    let other = campaign(&other_workloads);
    let err = other
        .run_shard_resumable(spec, Some(ckpt), &mut |_| {})
        .expect_err("matrix mismatch");
    match err {
        ConfigError::CheckpointMismatch { ref detail } => {
            assert!(!detail.is_empty(), "{err}");
        }
        other => panic!("expected CheckpointMismatch, got {other}"),
    }
}

/// Both decode paths re-check the structural invariants: a cursor beyond
/// the matrix parses (the wire cannot know the matrix size) but is
/// rejected at resume; a tampered payload fails at decode.
#[test]
fn tampered_checkpoints_fail_at_decode_or_resume() {
    let spec = ShardSpec { index: 0, count: 1 };
    let ckpt = boundaries(spec).pop().expect("boundary");

    // A cursor far past the matrix is structurally valid wire but must
    // be refused by the resume's matrix checks.
    let json = ckpt
        .to_json()
        .replace(&format!("\"cursor\":{}", ckpt.cursor()), "\"cursor\":4096");
    let oversized = ShardCheckpoint::from_json(&json).expect("structurally valid");
    let w = workloads();
    let err = campaign(&w)
        .run_shard_resumable(spec, Some(oversized), &mut |_| {})
        .expect_err("cursor beyond matrix");
    assert!(
        matches!(err, ConfigError::CheckpointMismatch { .. }),
        "{err}"
    );

    // Flipping the binwire kind byte must fail the decode, not produce a
    // half-parsed checkpoint.
    let mut bytes = ckpt.to_bin();
    bytes[1] ^= 0xFF;
    assert!(ShardCheckpoint::from_bin(&bytes).is_err());
}
