//! The dispatcher end to end over real loopback TCP: a [`Server`], a
//! fleet of in-process workers, and blocking submitters — asserting the
//! tentpole guarantee (the dispatched merge is bit-identical to a
//! sequential in-process run) including the run where a worker dies
//! mid-shard and its shard is re-queued, that a scenario file dispatched
//! to the fleet yields the same diagnostics as an in-process check, and
//! that a garbage-speaking peer cannot take the coordinator down.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use strex::campaign::{Campaign, CampaignResult, CampaignShard, ShardSpec};
use strex::config::{SchedulerKind, SimConfig};
use strex::dispatch::{
    read_message, run_worker, submit, submit_scenario, write_message, DispatchConfig, Message,
    ServeOptions, Server, SystemClock, WorkerCaps, WorkerOptions,
};
use strex::scenario::{EvaluatorRegistry, Scenario};
use strex::WireFormat;
use strex_oltp::workload::{Workload, WorkloadKind};

const CAMPAIGN: &str = "tiny";

fn tiny_workloads() -> Vec<Workload> {
    vec![
        Workload::preset_small(WorkloadKind::TpccW1, 8, 7),
        Workload::preset_small(WorkloadKind::MapReduce, 8, 7),
    ]
}

fn tiny_campaign(workloads: &[Workload]) -> Campaign<'_> {
    Campaign::new(SimConfig::new(2, SchedulerKind::Baseline))
        .over_schedulers([SchedulerKind::Baseline, SchedulerKind::Strex])
        .over_workloads(workloads)
}

fn tiny_sequential() -> CampaignResult {
    let workloads = tiny_workloads();
    tiny_campaign(&workloads).run().expect("valid")
}

fn tiny_runner(campaign: &str, spec: ShardSpec) -> Result<CampaignShard, String> {
    if campaign != CAMPAIGN {
        return Err(format!("unknown campaign {campaign:?}"));
    }
    let workloads = tiny_workloads();
    Ok(tiny_campaign(&workloads).run_shard(spec).expect("valid"))
}

/// Binds an ephemeral-port server for the tiny campaign and runs it to
/// `max_jobs` on a background thread. Returns the address and the join
/// handle (the run result surfaces on join).
fn spawn_server(
    cfg: DispatchConfig,
    max_jobs: usize,
) -> (SocketAddr, std::thread::JoinHandle<usize>) {
    spawn_server_wire(cfg, max_jobs, WireFormat::default())
}

fn spawn_server_wire(
    cfg: DispatchConfig,
    max_jobs: usize,
    wire: WireFormat,
) -> (SocketAddr, std::thread::JoinHandle<usize>) {
    let server = Server::bind(
        "127.0.0.1:0",
        cfg,
        [CAMPAIGN.to_string()],
        Arc::new(SystemClock::new()),
    )
    .expect("bind loopback");
    let addr = server.local_addr().expect("bound");
    let handle = std::thread::spawn(move || {
        server
            .run(ServeOptions {
                max_jobs: Some(max_jobs),
                wire,
                journal: None,
                stop: None,
            })
            .expect("serve")
            .jobs_completed
    });
    (addr, handle)
}

fn spawn_worker(addr: SocketAddr, name: &str) -> std::thread::JoinHandle<usize> {
    spawn_worker_wire(addr, name, WireFormat::default())
}

fn spawn_worker_wire(
    addr: SocketAddr,
    name: &str,
    wire: WireFormat,
) -> std::thread::JoinHandle<usize> {
    let opts = WorkerOptions {
        name: name.to_string(),
        heartbeat_interval_ms: 50,
        wire,
        ..WorkerOptions::default()
    };
    std::thread::spawn(move || {
        run_worker(addr, &opts, &mut tiny_runner)
            .expect("worker run")
            .shards_run
    })
}

#[test]
fn coordinator_and_two_workers_match_sequential_bit_for_bit() {
    let (addr, server) = spawn_server(DispatchConfig::default(), 1);
    let w1 = spawn_worker(addr, "w1");
    let w2 = spawn_worker(addr, "w2");

    let result = submit(addr, CAMPAIGN, 3).expect("dispatched campaign");
    assert_eq!(
        result.to_json(),
        tiny_sequential().to_json(),
        "dispatched merge must be bit-identical to the sequential run"
    );

    assert_eq!(server.join().expect("server thread"), 1);
    // The server closing the connections is a clean exit for workers, and
    // between them they ran all three shards.
    let ran = w1.join().expect("w1") + w2.join().expect("w2");
    assert_eq!(ran, 3);
}

#[test]
fn worker_killed_mid_shard_requeues_and_the_job_still_merges_identically() {
    // Deterministic death: the faulty "worker" is a raw socket that
    // registers, waits for its assignment, and hangs up without
    // completing it — while it is the only worker, so the shard it holds
    // is provably in flight when it dies. The real worker starts only
    // after the death; the job must still finish, bit-identical.
    let (addr, server) = spawn_server(DispatchConfig::default(), 1);

    let submitter = std::thread::spawn(move || submit(addr, CAMPAIGN, 2).expect("dispatched"));

    let mut faulty = TcpStream::connect(addr).expect("connect");
    write_message(
        &mut faulty,
        &Message::Register {
            name: "faulty".into(),
            caps: WorkerCaps::legacy(),
        },
    )
    .expect("register");
    let mut reader = BufReader::new(faulty.try_clone().expect("clone"));
    let assigned = read_message(&mut reader)
        .expect("read assign")
        .expect("an assignment arrives");
    assert!(matches!(assigned, Message::Assign { .. }), "{assigned:?}");
    drop(reader);
    faulty
        .shutdown(std::net::Shutdown::Both)
        .expect("die mid-shard");
    drop(faulty);

    let worker = spawn_worker(addr, "survivor");
    let result = submitter.join().expect("submitter thread");
    assert_eq!(
        result.to_json(),
        tiny_sequential().to_json(),
        "re-queued shard must not perturb the merged result"
    );
    assert_eq!(server.join().expect("server thread"), 1);
    assert_eq!(
        worker.join().expect("survivor"),
        2,
        "the survivor ran both shards, including the re-queued one"
    );
}

#[test]
fn garbage_speaking_peer_does_not_take_the_coordinator_down() {
    let (addr, server) = spawn_server(DispatchConfig::default(), 1);

    // A peer that speaks garbage is disconnected; the coordinator keeps
    // serving.
    let mut vandal = TcpStream::connect(addr).expect("connect");
    vandal
        .write_all(b"{\"type\":\"warp\"}\nnot json at all\n\x00\x01\x02")
        .expect("garbage sent");
    vandal.flush().expect("flush");
    let mut reader = BufReader::new(vandal.try_clone().expect("clone"));
    // Whatever comes back (a reject or a plain close), the stream ends.
    let mut last = read_message(&mut reader);
    while let Ok(Some(_)) = last {
        last = read_message(&mut reader);
    }
    drop(vandal);

    // An unknown campaign is rejected with a typed message, not a hang.
    let err = submit(addr, "no-such-campaign", 2).expect_err("rejected");
    assert!(err.to_string().contains("no-such-campaign"), "{err}");

    // And a real submission afterwards still works end to end.
    let worker = spawn_worker(addr, "w");
    let result = submit(addr, CAMPAIGN, 2).expect("dispatched");
    assert_eq!(result.to_json(), tiny_sequential().to_json());
    assert_eq!(server.join().expect("server"), 1);
    assert_eq!(worker.join().expect("worker"), 2);
}

#[test]
fn mixed_wire_formats_on_one_coordinator_stay_bit_identical() {
    // One worker ships shards as JSON, the other as binary, and the
    // coordinator answers the submitter in JSON — the reader negotiates
    // every frame by first byte, so the merge must not notice.
    let (addr, server) = spawn_server_wire(DispatchConfig::default(), 1, WireFormat::Json);
    let w1 = spawn_worker_wire(addr, "w-json", WireFormat::Json);
    let w2 = spawn_worker_wire(addr, "w-bin", WireFormat::Bin);

    let result = submit(addr, CAMPAIGN, 3).expect("dispatched campaign");
    assert_eq!(
        result.to_json(),
        tiny_sequential().to_json(),
        "mixing wire formats must not perturb the merged result"
    );

    assert_eq!(server.join().expect("server thread"), 1);
    let ran = w1.join().expect("w1") + w2.join().expect("w2");
    assert_eq!(ran, 3);
}

#[test]
fn scenario_file_dispatched_to_the_fleet_matches_the_in_process_check() {
    // The remote half of `repro check`: a scenario document read from a
    // file, submitted over TCP, run by a two-worker fleet, assertions
    // evaluated coordinator-side — and everything it reports (merged
    // result, per-assertion diagnostics, their printed lines) must be
    // bit-identical to an in-process check of the same file.
    const SCENARIO_JSON: &str = r#"{
        "name": "loopback-tiny",
        "description": "Tiny two-cell matrix for the loopback dispatch test",
        "matrix": {
            "workloads": ["TPC-C-1"],
            "pool": 8,
            "seed": 7,
            "small": true,
            "schedulers": ["baseline", "strex"],
            "cores": [2]
        },
        "assertions": [
            {
                "kind": "throughput_at_least",
                "cell": {"workload": "TPC-C-1", "scheduler": "baseline", "cores": 2},
                "min": 0.0
            },
            {
                "kind": "throughput_at_least",
                "cell": {"workload": "TPC-C-1", "scheduler": "strex", "cores": 2},
                "min": 0.0
            }
        ]
    }"#;
    let path = std::env::temp_dir().join(format!(
        "strex-loopback-scenario-{}.json",
        std::process::id()
    ));
    std::fs::write(&path, SCENARIO_JSON).expect("write scenario file");
    let text = std::fs::read_to_string(&path).expect("read scenario file");
    let _ = std::fs::remove_file(&path);
    let scenario = Scenario::from_json(&text).expect("valid scenario");

    let (addr, server) = spawn_server(DispatchConfig::default(), 1);
    let w1 = spawn_worker(addr, "w1");
    let w2 = spawn_worker(addr, "w2");

    let (result, outcomes) = submit_scenario(addr, &scenario, 2).expect("dispatched scenario");

    let workloads = scenario.workloads();
    let sequential = scenario.campaign(&workloads).run().expect("valid matrix");
    let local = scenario
        .evaluate(&sequential, &EvaluatorRegistry::with_defaults())
        .expect("evaluable");
    assert_eq!(
        result.to_json(),
        sequential.to_json(),
        "dispatched scenario merge must be bit-identical to the in-process run"
    );
    assert_eq!(outcomes, local);
    assert_eq!(
        outcomes.iter().map(|o| o.to_string()).collect::<Vec<_>>(),
        local.iter().map(|o| o.to_string()).collect::<Vec<_>>(),
        "the diagnostic lines a remote check prints are the in-process lines"
    );
    assert!(outcomes.iter().all(|o| o.passed), "{outcomes:?}");

    assert_eq!(server.join().expect("server"), 1);
    let ran = w1.join().expect("w1") + w2.join().expect("w2");
    assert_eq!(ran, 2, "the fleet ran both scenario shards");
}

#[test]
fn submitting_twice_concurrently_coalesces_onto_one_job() {
    let (addr, server) = spawn_server(DispatchConfig::default(), 1);

    // Both submissions go out while no worker exists, so the job cannot
    // complete before the second one attaches — both land as waiters on
    // the same in-flight job. Only then does a worker appear.
    let a = std::thread::spawn(move || submit(addr, CAMPAIGN, 2).expect("first submit"));
    let b = std::thread::spawn(move || submit(addr, CAMPAIGN, 2).expect("second submit"));
    std::thread::sleep(Duration::from_millis(50));
    let worker = spawn_worker(addr, "w");

    let ra = a.join().expect("a");
    let rb = b.join().expect("b");
    let golden = tiny_sequential().to_json();
    assert_eq!(ra.to_json(), golden);
    assert_eq!(rb.to_json(), golden);
    // One job completed, not two: both submissions keyed onto it.
    assert_eq!(server.join().expect("server"), 1);
    assert_eq!(worker.join().expect("worker"), 2, "the matrix ran once");
}
