//! Property-based tests over the core data structures and invariants,
//! spanning all three library crates.

use proptest::prelude::*;
use strex::team::form_teams;
use strex_oltp::engine::{Arena, BTree, RecordingSink};
use strex_sim::addr::{Addr, AddrRange, BlockAddr};
use strex_sim::cache::{CacheGeometry, SetAssocCache};
use strex_sim::coherence::Directory;
use strex_sim::ids::{CoreId, ThreadId, TxnTypeId};
use strex_sim::replacement::ReplacementKind;

fn any_replacement() -> impl Strategy<Value = ReplacementKind> {
    prop_oneof![
        Just(ReplacementKind::Lru),
        Just(ReplacementKind::Lip),
        Just(ReplacementKind::Bip),
        Just(ReplacementKind::Srrip),
        Just(ReplacementKind::Brrip),
    ]
}

proptest! {
    /// A cache never holds more blocks than its capacity, never holds the
    /// same block twice, and peek_victim always agrees with the eviction
    /// the subsequent fill performs.
    #[test]
    fn cache_capacity_uniqueness_and_peek(
        kind in any_replacement(),
        accesses in prop::collection::vec((0u64..200, 0u8..8), 1..400),
    ) {
        let geom = CacheGeometry::new(4096, 4); // 16 sets x 4 ways
        let mut cache = SetAssocCache::new(geom, kind);
        for (blk, aux) in accesses {
            let block = BlockAddr::new(blk);
            let peek = cache.peek_victim(block);
            let out = cache.access(block, aux);
            prop_assert_eq!(peek, out.evicted(), "peek/evict divergence");
            prop_assert!(cache.contains(block));
            prop_assert!(cache.occupancy() <= geom.blocks());
            // Residency is unique: resident_blocks has no duplicates.
            let mut seen: Vec<u64> =
                cache.resident_blocks().map(BlockAddr::index).collect();
            let before = seen.len();
            seen.sort_unstable();
            seen.dedup();
            prop_assert_eq!(before, seen.len(), "duplicate resident block");
        }
    }

    /// MESI invariant: a block is either unshared, shared by N readers, or
    /// owned by exactly one writer — and sharer counts never exceed the
    /// number of cores that touched it.
    #[test]
    fn directory_sharer_bounds(
        ops in prop::collection::vec((0u16..8, 0u64..32, any::<bool>()), 1..300),
    ) {
        let mut dir = Directory::new(8);
        for (core, blk, is_write) in ops {
            let core = CoreId::new(core);
            let block = BlockAddr::new(blk);
            let action = if is_write {
                dir.on_write(core, block)
            } else {
                dir.on_read(core, block)
            };
            if is_write {
                prop_assert_eq!(
                    dir.sharer_count(block), 1,
                    "writer must be the sole holder"
                );
            } else {
                prop_assert!(dir.sharer_count(block) >= 1);
            }
            prop_assert!(dir.sharer_count(block) <= 8);
            // A coherence action never asks the requester to invalidate
            // itself.
            prop_assert!(!action.invalidate.contains(&core));
        }
    }

    /// B+tree: whatever was inserted is found; whatever was removed is
    /// gone; length tracks the live key count.
    #[test]
    fn btree_models_a_map(
        keys in prop::collection::hash_set(0u64..10_000, 1..150),
        remove_mask in any::<u64>(),
    ) {
        let mut arena = Arena::new();
        let mut tree = BTree::new(&mut arena, "prop");
        let mut sink = RecordingSink::new();
        let keys: Vec<u64> = keys.into_iter().collect();
        for &k in &keys {
            tree.insert(k, k + 1, &mut arena, &mut sink);
        }
        prop_assert_eq!(tree.len(), keys.len());
        let mut live = 0;
        for (i, &k) in keys.iter().enumerate() {
            if remove_mask >> (i % 64) & 1 == 1 {
                prop_assert_eq!(tree.remove(k, &mut sink), Some(k + 1));
            } else {
                live += 1;
            }
        }
        prop_assert_eq!(tree.len(), live);
        for (i, &k) in keys.iter().enumerate() {
            let expect = if remove_mask >> (i % 64) & 1 == 1 {
                None
            } else {
                Some(k + 1)
            };
            prop_assert_eq!(tree.search(k, &mut sink), expect, "key {}", k);
        }
    }

    /// B+tree scans return keys' payloads in sorted-run order.
    #[test]
    fn btree_scan_is_a_sorted_run(
        n in 10u64..300,
        start in 0u64..200,
        limit in 1usize..40,
    ) {
        let mut arena = Arena::new();
        let mut tree = BTree::new(&mut arena, "scan");
        let mut sink = RecordingSink::new();
        for k in 0..n {
            tree.insert(k, k, &mut arena, &mut sink);
        }
        let hits = tree.scan_from(start, limit, &mut sink);
        let expected: Vec<u64> = (start..n).take(limit).collect();
        prop_assert_eq!(hits, expected);
    }

    /// Team formation is a partition: every thread appears in exactly one
    /// team, teams are type-pure, and no team exceeds the size cap.
    #[test]
    fn team_formation_is_a_type_pure_partition(
        types in prop::collection::vec(0u16..5, 1..100),
        team_size in 1usize..12,
        window in 1usize..40,
    ) {
        let arrivals: Vec<(ThreadId, TxnTypeId)> = types
            .iter()
            .enumerate()
            .map(|(i, &t)| (ThreadId::new(i as u32), TxnTypeId::new(t)))
            .collect();
        let teams = form_teams(&arrivals, team_size, window);
        let mut all: Vec<u32> = Vec::new();
        for team in &teams {
            prop_assert!(!team.is_empty());
            prop_assert!(team.len() <= team_size);
            for &m in &team.members {
                prop_assert_eq!(
                    arrivals[m.as_usize()].1, team.txn_type,
                    "team must be type-pure"
                );
                all.push(m.value());
            }
        }
        all.sort_unstable();
        let expected: Vec<u32> = (0..types.len() as u32).collect();
        prop_assert_eq!(all, expected, "not a partition");
    }

    /// Non-power-of-two set counts are rejected by configuration
    /// validation as a `ConfigError` — never a panic. (The single-probe
    /// cache indexes sets with a mask, so only power-of-two set counts are
    /// simulable; every Table 2 geometry qualifies.)
    #[test]
    fn non_pow2_sets_rejected_with_config_error(
        sets in 2usize..512,
        assoc in 1usize..16,
    ) {
        use strex::config::SimConfig;
        use strex::error::ConfigError;
        use strex_sim::config::SystemConfig;

        // Construct an exactly divisible geometry with `sets` sets.
        let size = (sets * assoc) as u64 * 64;
        let geom = CacheGeometry::new(size, assoc);
        prop_assert_eq!(geom.sets(), sets);

        let mut system = SystemConfig::with_cores(2);
        system.l1i_geometry = geom;
        let result = SimConfig::builder().system(system).build();
        if sets.is_power_of_two() {
            prop_assert!(result.is_ok());
        } else {
            prop_assert_eq!(
                result.err(),
                Some(ConfigError::NonPowerOfTwoSets { cache: "L1-I", sets })
            );
            // The fallible geometry constructor agrees.
            prop_assert!(CacheGeometry::try_new(size, assoc).is_err());
        }
    }

    /// Address ranges: every block reported by `blocks()` overlaps the
    /// range, and the count matches the byte span.
    #[test]
    fn addr_range_block_enumeration(start in 0u64..1_000_000, len in 0u64..10_000) {
        let r = AddrRange::new(Addr::new(start), len);
        let blocks: Vec<BlockAddr> = r.blocks().collect();
        if len == 0 {
            prop_assert!(blocks.is_empty());
        } else {
            let first = Addr::new(start).block().index();
            let last = Addr::new(start + len - 1).block().index();
            prop_assert_eq!(blocks.len() as u64, last - first + 1);
            prop_assert_eq!(blocks.first().map(|b| b.index()), Some(first));
            prop_assert_eq!(blocks.last().map(|b| b.index()), Some(last));
        }
    }
}
