//! A data-center reconfiguration scenario (Section 5.5): the cores granted
//! to the OLTP application change at runtime, and the hybrid scheduler
//! re-profiles transaction footprints (FPTable) to pick SLICC when the
//! aggregate L1-I fits the workload and STREX when it does not.
//!
//! ```text
//! cargo run --release --example hybrid_datacenter
//! ```

use strex::campaign::Campaign;
use strex::config::{SchedulerKind, SimConfig};
use strex::sched::FpTable;
use strex_oltp::workload::{Workload, WorkloadKind};

fn main() {
    let workload = Workload::preset_small(WorkloadKind::Tpce, 40, 11);
    // Profile once: the FPTable the hardware would build by sampling one
    // transaction per type (Section 5.5's profiling phase).
    let fptable = FpTable::profile(workload.txns(), 32 * 1024);
    println!(
        "FPTable: {} types profiled, mean footprint {:.1} L1-I units\n",
        fptable.len(),
        fptable.mean_units()
    );

    println!(
        "{:>5}  {:>9}  {:>8}  {:>7}  {:>7}",
        "cores", "selected", "rel-tput", "I-MPKI", "D-MPKI"
    );
    // The reconfiguration sweep is one hybrid campaign over the granted
    // core counts; the 2-core baseline reference is a single run.
    let base2 = strex::driver::run(
        &workload,
        &SimConfig::builder().cores(2).build().expect("valid"),
    );
    let hybrid_cfg = SimConfig::builder()
        .cores(2)
        .scheduler(SchedulerKind::Hybrid)
        .build()
        .expect("valid");
    let result = Campaign::new(hybrid_cfg)
        .over_workloads([&workload])
        .over_cores([2usize, 4, 8, 16])
        .run()
        .expect("valid campaign");
    for cell in result.cells() {
        let r = &cell.report;
        println!(
            "{:>5}  {:>9}  {:>8.2}  {:>7.1}  {:>7.2}",
            cell.key.cores,
            r.hybrid_choice.unwrap_or("?"),
            r.relative_throughput(&base2),
            r.i_mpki(),
            r.d_mpki()
        );
    }
    println!(
        "\nThe selection rule is the paper's: SLICC once the core count covers \
         the FPTable's mean footprint ({:.1} units here), STREX below that.",
        fptable.mean_units()
    );
}
