//! Throughput vs latency as a function of STREX team size (the Figure 7/8
//! trade-off): larger teams amortize the lead's misses over more followers
//! but delay each follower's completion, exactly like request batching in
//! software transaction schedulers.
//!
//! ```text
//! cargo run --release --example team_size_tuning
//! ```

use strex::campaign::Campaign;
use strex::config::{SchedulerKind, SimConfig};
use strex::driver::run;
use strex_oltp::workload::{Workload, WorkloadKind};

fn main() {
    let workload = Workload::preset_small(WorkloadKind::TpccW1, 48, 7);
    let cores = 4;
    let baseline = run(
        &workload,
        &SimConfig::builder()
            .cores(cores)
            .build()
            .expect("valid configuration"),
    );
    println!(
        "{:>9}  {:>8}  {:>17}  {:>13}",
        "team size", "rel-tput", "mean latency (Mc)", "p90 done (Mc)"
    );
    println!(
        "{:>9}  {:>8.2}  {:>17.2}  {:>13.2}",
        "base",
        1.00,
        baseline.mean_latency() / 1e6,
        baseline.completion_time(0.9) as f64 / 1e6
    );

    // The whole team-size sweep is one campaign axis; the executor runs
    // the cells on a worker pool and returns them in matrix order.
    let strex_cfg = SimConfig::builder()
        .cores(cores)
        .scheduler(SchedulerKind::Strex)
        .build()
        .expect("valid configuration");
    let sweep = Campaign::new(strex_cfg)
        .over_workloads([&workload])
        .over_team_sizes([2usize, 4, 6, 10, 16, 20])
        .run()
        .expect("valid campaign");
    for cell in sweep.cells() {
        let r = &cell.report;
        println!(
            "{:>9}  {:>8.2}  {:>17.2}  {:>13.2}",
            cell.key.team_size,
            r.relative_throughput(&baseline),
            r.mean_latency() / 1e6,
            r.completion_time(0.9) as f64 / 1e6
        );
    }
    println!(
        "\nPick the team size from your latency budget: throughput rises with \
         team size while per-transaction latency stretches (paper, Section 5.4)."
    );
}
