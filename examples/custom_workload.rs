//! Bring your own workload: build transaction traces for a custom
//! application (a tiny key-value store here) with the public trace-building
//! API, and see whether stratified execution helps it.
//!
//! STREX only pays off for workloads whose same-type requests share a large
//! instruction footprint; this example builds two variants — a "fat"
//! handler whose code exceeds the L1-I and a "thin" one that fits — and
//! shows STREX accelerating the first while leaving the second untouched
//! (the MapReduce robustness property from the paper).
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use strex::config::{SchedulerKind, SimConfig};
use strex::driver::run;
use strex_oltp::codepath::{TraceBuilder, WalkConfig};
use strex_oltp::engine::{Arena, BTree, RecordingSink};
use strex_oltp::layout::CodeLayout;
use strex_oltp::workload::Workload;
use strex_sim::addr::{Addr, AddrRange};
use strex_sim::ids::TxnTypeId;

/// Builds `n` same-type "GET request" traces whose handler code spans
/// `code_kb` KB — the only knob that decides whether STREX helps.
fn kv_requests(n: usize, code_kb: u64, seed: u64) -> Workload {
    let mut layout = CodeLayout::new();
    let handler = layout.alloc_action(code_kb * 1024);
    let lib = *layout.lib();

    // A shared index all requests probe, so data accesses are realistic.
    let mut arena = Arena::new();
    let mut index = BTree::new(&mut arena, "kv");
    let mut sink = RecordingSink::new();
    for k in 0..5_000u64 {
        index.insert(k, 0xAB00 + k, &mut arena, &mut sink);
        sink.accesses.clear();
    }

    let name: &'static str = if code_kb * 1024 > 32 * 1024 {
        "kv-fat"
    } else {
        "kv-thin"
    };
    let txns = (0..n)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(seed ^ (i as u64 * 0x9E37_79B9));
            let stack = AddrRange::new(Addr::new(0xEE00_0000 + i as u64 * 16 * 1024), 16 * 1024);
            let mut tb = TraceBuilder::new(stack, WalkConfig::default());
            // The request handler: parse, probe the index, format a reply.
            tb.walk_span(handler, 0.0, 0.5, &mut rng);
            index.search((i as u64 * 37) % 5_000, &mut tb);
            tb.walk(lib.btree_search, &mut rng);
            tb.workspace_burst(4);
            tb.walk_span(handler, 0.5, 1.0, &mut rng);
            tb.finish(TxnTypeId::new(0), name)
        })
        .collect();
    Workload::new(name, txns)
}

fn main() {
    for code_kb in [20u64, 160] {
        let w = kv_requests(30, code_kb, 99);
        let cfg = |kind| {
            SimConfig::builder()
                .cores(2)
                .scheduler(kind)
                .build()
                .expect("valid configuration")
        };
        let base = run(&w, &cfg(SchedulerKind::Baseline));
        let strex = run(&w, &cfg(SchedulerKind::Strex));
        println!(
            "{:8} ({:>3} KB handler): base I-MPKI {:>5.1} -> STREX {:>5.1} \
             ({:>3.0}% fewer misses, {:+.0}% throughput)",
            w.name(),
            code_kb,
            base.i_mpki(),
            strex.i_mpki(),
            (1.0 - strex.i_mpki() / base.i_mpki()) * 100.0,
            (strex.relative_throughput(&base) - 1.0) * 100.0
        );
    }
    println!(
        "\nRule of thumb: stratify when the per-request instruction footprint \
         exceeds the L1-I; below that, STREX leaves the schedule effectively \
         unchanged."
    );
}
