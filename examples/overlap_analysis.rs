//! Reproduce the paper's motivation analysis (Figure 2) interactively:
//! run N same-type transactions on N private L1-Is and watch how many
//! caches hold each touched block over time.
//!
//! ```text
//! cargo run --release --example overlap_analysis
//! ```

use strex_oltp::overlap::{analyze, OverlapConfig};
use strex_oltp::tpcc::TpccTxnKind;
use strex_oltp::workload::Workload;

fn bar(frac: f64, width: usize) -> String {
    "#".repeat((frac * width as f64).round() as usize)
}

fn main() {
    for kind in [TpccTxnKind::NewOrder, TpccTxnKind::Payment] {
        let w = Workload::tpcc_same_type(kind, 1, 16, 7);
        let samples = analyze(w.txns(), OverlapConfig::default());
        println!("\n{kind}: 16 instances on 16 cores, 32 KB L1-I each");
        println!(
            "{:>8}  {:>5}  fraction of touched blocks in >=5 caches",
            "K-instr", ">=5"
        );
        let step = (samples.len() / 16).max(1);
        for s in samples.iter().step_by(step) {
            println!(
                "{:>8.0}  {:>4.0}%  {}",
                s.k_instructions,
                s.ge5() * 100.0,
                bar(s.ge5(), 50)
            );
        }
        let avg = samples.iter().map(|s| s.ge5()).sum::<f64>() / samples.len() as f64;
        println!(
            "mean: {:.0}% of blocks shared by >=5 caches (paper: \"more than 70%\")",
            avg * 100.0
        );
    }
    println!(
        "\nThis inter-transaction temporal locality is what STREX converts \
         into cache reuse by stratifying execution."
    );
}
