//! Quickstart: run TPC-C under conventional scheduling and under STREX,
//! and compare instruction-cache behaviour and throughput.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use strex::config::SchedulerKind;
use strex::driver::{run, SimConfig};
use strex_oltp::workload::{Workload, WorkloadKind};

fn main() {
    // A pool of TPC-C transactions (specification mix) over a populated
    // database; everything derives from the seed, so runs are reproducible.
    let workload = Workload::preset_small(WorkloadKind::TpccW1, 60, 42);
    println!(
        "workload: {} ({} transactions, {:.1} M instructions)\n",
        workload.name(),
        workload.len(),
        workload.total_instructions() as f64 / 1e6
    );

    let cores = 2;
    let baseline = run(&workload, &SimConfig::new(cores, SchedulerKind::Baseline));
    let strex = run(&workload, &SimConfig::new(cores, SchedulerKind::Strex));

    println!("{cores}-core results:");
    println!(
        "  {:10} I-MPKI {:>6.1}  D-MPKI {:>5.2}  makespan {:>12} cycles",
        baseline.scheduler,
        baseline.i_mpki(),
        baseline.d_mpki(),
        baseline.makespan
    );
    println!(
        "  {:10} I-MPKI {:>6.1}  D-MPKI {:>5.2}  makespan {:>12} cycles  ({} context switches)",
        strex.scheduler,
        strex.i_mpki(),
        strex.d_mpki(),
        strex.makespan,
        strex.context_switches
    );
    println!(
        "\nSTREX reduces instruction misses by {:.0}% and improves steady-state \
         throughput by {:.0}%",
        (1.0 - strex.i_mpki() / baseline.i_mpki()) * 100.0,
        (strex.relative_throughput(&baseline) - 1.0) * 100.0
    );
}
