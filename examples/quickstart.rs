//! Quickstart: run TPC-C under conventional scheduling and under STREX,
//! and compare instruction-cache behaviour and throughput.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use strex::campaign::Campaign;
use strex::config::{SchedulerKind, SimConfig};
use strex_oltp::workload::{Workload, WorkloadKind};

fn main() {
    // A pool of TPC-C transactions (specification mix) over a populated
    // database; everything derives from the seed, so runs are reproducible.
    let workload = Workload::preset_small(WorkloadKind::TpccW1, 60, 42);
    println!(
        "workload: {} ({} transactions, {:.1} M instructions)\n",
        workload.name(),
        workload.len(),
        workload.total_instructions() as f64 / 1e6
    );

    // One validated base configuration, a two-cell scheduler matrix: the
    // campaign executes the cells on a worker pool.
    let cores = 2;
    let base_cfg = SimConfig::builder()
        .cores(cores)
        .build()
        .expect("valid configuration");
    let result = Campaign::new(base_cfg)
        .over_schedulers([SchedulerKind::Baseline, SchedulerKind::Strex])
        .over_workloads([&workload])
        .run()
        .expect("valid campaign");

    let baseline = result
        .report(workload.name(), SchedulerKind::Baseline.key(), cores)
        .expect("baseline cell ran");
    let strex = result
        .report(workload.name(), SchedulerKind::Strex.key(), cores)
        .expect("STREX cell ran");

    println!("{cores}-core results:");
    println!(
        "  {:10} I-MPKI {:>6.1}  D-MPKI {:>5.2}  makespan {:>12} cycles",
        baseline.scheduler,
        baseline.i_mpki(),
        baseline.d_mpki(),
        baseline.makespan
    );
    println!(
        "  {:10} I-MPKI {:>6.1}  D-MPKI {:>5.2}  makespan {:>12} cycles  ({} context switches)",
        strex.scheduler,
        strex.i_mpki(),
        strex.d_mpki(),
        strex.makespan,
        strex.context_switches
    );
    println!(
        "\nSTREX reduces instruction misses by {:.0}% and improves steady-state \
         throughput by {:.0}%",
        (1.0 - strex.i_mpki() / baseline.i_mpki()) * 100.0,
        (strex.relative_throughput(baseline) - 1.0) * 100.0
    );
}
