//! Minimal offline stand-in for the crates.io `criterion` crate.
//!
//! Implements the subset of the 0.5 API the workspace's benches use —
//! [`Criterion::bench_function`], benchmark groups with
//! `bench_with_input`/`sample_size`, [`BenchmarkId`], [`black_box`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! median-of-samples timer instead of criterion's full statistics
//! pipeline. Good enough to compare substrate costs and catch order-of-
//! magnitude regressions; not a statistical benchmarking suite.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Benchmark registry and runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Times one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Times one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.to_string(), self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Times one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().to_string(), self.sample_size, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by `iter`.
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and size the batch so one sample takes ~1 ms.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().as_nanos().max(1);
        let batch = ((1_000_000 / once) as usize).clamp(1, 1_000_000);

        let mut samples: Vec<f64> = (0..16)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    black_box(routine());
                }
                t.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, _samples: usize, f: &mut F) {
    let mut b = Bencher { ns_per_iter: 0.0 };
    f(&mut b);
    println!("  {name:<40} {:>12.1} ns/iter", b.ns_per_iter);
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
