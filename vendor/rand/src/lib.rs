//! Minimal offline stand-in for the crates.io `rand` crate (0.8 API).
//!
//! The workspace builds in environments without a crates.io mirror, so the
//! subset of `rand` the workload generators use is implemented here:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_range`, and `gen_bool`. The generator is
//! xoshiro256++ seeded through SplitMix64 — a different stream than
//! upstream `StdRng` (ChaCha12), but the workspace only relies on
//! determinism and uniformity, never on a specific stream.

pub mod rngs;

/// Low-level uniform word source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with SplitMix64
    /// (the standard xoshiro seeding procedure).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (`f64` in `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from their standard distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

/// Ranges uniformly samplable for an output type `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw from `[0, bound)` via Lemire's multiply-shift
/// rejection method.
fn uniform_below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound || low >= low.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

/// Types with a uniform order-preserving mapping to `u64` — the basis of
/// range sampling. The single generic [`SampleRange`] impl below matters
/// for inference: it lets integer-literal ranges unify with the output
/// type demanded by the call site, matching upstream `rand`.
pub trait SampleUniform: Copy {
    /// Order-preserving encoding into `u64`.
    fn to_ordered_u64(self) -> u64;
    /// Inverse of [`SampleUniform::to_ordered_u64`].
    fn from_ordered_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_ordered_u64(self) -> u64 { self as u64 }
            fn from_ordered_u64(v: u64) -> $t { v as $t }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_ordered_u64(self) -> u64 {
                (self as i64 as u64) ^ (1 << 63)
            }
            fn from_ordered_u64(v: u64) -> $t {
                (v ^ (1 << 63)) as i64 as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_ordered_u64(), self.end.to_ordered_u64());
        assert!(lo < hi, "empty range");
        T::from_ordered_u64(lo + uniform_below(rng, hi - lo))
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_ordered_u64(), self.end().to_ordered_u64());
        assert!(lo <= hi, "empty range");
        if hi - lo == u64::MAX {
            return T::from_ordered_u64(rng.next_u64());
        }
        T::from_ordered_u64(lo + uniform_below(rng, hi - lo + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(5..=15);
            assert!((5..=15).contains(&w));
            let x: i64 = rng.gen_range(-8..8);
            assert!((-8..8).contains(&x));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.6)).count();
        assert!((58_000..62_000).contains(&hits), "p=0.6 gave {hits}");
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }
}
