//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;

/// Generates values of one type from a random stream.
///
/// Upstream proptest strategies produce shrinkable value *trees*; this
/// stand-in generates plain values (no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies — what [`prop_oneof!`] builds.
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Boxes one arm (helper for the `prop_oneof!` macro, which cannot
    /// name the unsized target type with an inferred `Value`).
    pub fn arm<S: Strategy<Value = T> + 'static>(s: S) -> Box<dyn Strategy<Value = T>> {
        Box::new(s)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.inner().gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
