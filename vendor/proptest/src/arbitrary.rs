//! `any::<T>()` — whole-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.inner().gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.inner().gen()
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.inner().next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.inner().next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(i8, i16, i32, i64, isize);
