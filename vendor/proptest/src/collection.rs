//! Collection strategies: `vec` and `hash_set`.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A strategy for `Vec<T>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { element, size }
}

/// Strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.inner().gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `HashSet<T>` with a target size drawn from `size`.
///
/// If the element domain is too small to reach the drawn size, the set
/// saturates at whatever distinct values were found (upstream proptest
/// rejects instead; no caller in this workspace depends on that).
pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    assert!(size.start < size.end, "empty size range");
    HashSetStrategy { element, size }
}

/// Strategy returned by [`hash_set`].
#[derive(Clone, Debug)]
pub struct HashSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = rng.inner().gen_range(self.size.clone());
        let mut set = HashSet::with_capacity(target);
        // Bounded draw count so tiny domains terminate.
        for _ in 0..(target * 10 + 100) {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}
