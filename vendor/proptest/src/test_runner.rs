//! Test configuration, RNG, and failure reporting.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many cases each property runs.
#[derive(Copy, Clone, Debug)]
pub struct ProptestConfig {
    /// Generated inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the heavier simulation
        // properties fast while still exploring the input space.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test random source.
///
/// Seeded from the test's name, so every `cargo test` run explores the
/// same inputs and failures reproduce exactly.
#[derive(Clone, Debug)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// An RNG seeded from a test name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-mixed seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// The underlying generator (used by strategy implementations).
    pub fn inner(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A failed property case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
