//! Minimal offline stand-in for the crates.io `proptest` crate.
//!
//! The workspace builds without a crates.io mirror, so the subset of the
//! proptest 1.x API its property tests use is implemented here: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! [`prop_oneof!`], `Just`, `any::<T>()`, integer-range strategies, tuple
//! strategies, `prop::collection::{vec, hash_set}`, the `prop_assert*`
//! macros, and `ProptestConfig::with_cases`.
//!
//! The big semantic difference from upstream: failing cases are reported
//! with their seed but **not shrunk**. Every test is deterministic — the
//! per-test RNG is seeded from the test's name, so a failure reproduces
//! exactly under `cargo test`.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror of upstream's `prop::` paths (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// The glob import the tests use.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over `config.cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|rng: &mut $crate::test_runner::TestRng| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })(&mut rng);
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case, config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Union::arm($strat)),+
        ])
    };
}

/// Asserts a condition inside a proptest body, failing the case (not
/// panicking directly) so the harness can report the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two values are equal inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), a, b
                )),
            );
        }
    }};
}

/// Asserts two values differ inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a != *b) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!(
                    "{} (both {:?})",
                    format!($($fmt)+), a
                )),
            );
        }
    }};
}
