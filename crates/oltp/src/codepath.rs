//! Trace building: walking code regions and interleaving data accesses.
//!
//! [`TraceBuilder`] assembles a transaction's [`MemRef`] stream. Executing
//! an action means *walking* its code region — emitting instruction-block
//! fetches mostly sequentially, with data-dependent skips (divergence
//! between instances of the same type) and short back-jumps (intra-action
//! loops) — while the data accesses reported by engine operations are
//! drained into the stream a few per code block, the rate at which a core
//! actually issues memory operations.

use rand::rngs::StdRng;
use rand::Rng;
use strex_sim::addr::{Addr, AddrRange, BLOCK_SIZE};
use strex_sim::ids::TxnTypeId;

use crate::engine::sink::DataSink;
use crate::trace::{MemRef, TxnTrace};

/// Tuning knobs for code walking.
#[derive(Copy, Clone, Debug)]
pub struct WalkConfig {
    /// Probability an instance skips a block (data-dependent branch).
    pub skip_prob: f64,
    /// Probability of a short backward jump (intra-action loop retouch).
    pub backjump_prob: f64,
    /// Maximum distance, in blocks, of a backward jump.
    pub backjump_span: u64,
    /// Data accesses drained per instruction block fetched.
    pub data_per_block: usize,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig {
            skip_prob: 0.08,
            backjump_prob: 0.12,
            backjump_span: 12,
            data_per_block: 3,
        }
    }
}

/// Builds one transaction's reference trace.
///
/// Engine operations report data accesses through the [`DataSink`] impl;
/// the builder queues them and interleaves them with subsequent instruction
/// fetches. Per-thread stack traffic (register spills, call frames) is
/// injected automatically so transactions have a private hot working set,
/// as real ones do.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use strex_oltp::codepath::{TraceBuilder, WalkConfig};
/// use strex_sim::addr::{Addr, AddrRange};
/// use strex_sim::ids::TxnTypeId;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let stack = AddrRange::new(Addr::new(0xF000_0000), 4096);
/// let mut tb = TraceBuilder::new(stack, WalkConfig::default());
/// let code = AddrRange::new(Addr::new(0x0100_0000), 8 * 1024);
/// tb.walk(code, &mut rng);
/// let trace = tb.finish(TxnTypeId::new(0), "demo");
/// assert!(trace.instr_total() > 0);
/// ```
#[derive(Debug)]
pub struct TraceBuilder {
    refs: Vec<MemRef>,
    pending: std::collections::VecDeque<(Addr, bool)>,
    stack: AddrRange,
    stack_cursor: u64,
    workspace_cursor: u64,
    cfg: WalkConfig,
    blocks_since_stack: u32,
}

impl TraceBuilder {
    /// Creates a builder whose thread-private stack lives in `stack`.
    pub fn new(stack: AddrRange, cfg: WalkConfig) -> Self {
        TraceBuilder {
            refs: Vec::new(),
            pending: std::collections::VecDeque::new(),
            stack,
            stack_cursor: 0,
            workspace_cursor: 0,
            cfg,
            blocks_since_stack: 0,
        }
    }

    /// Queues `blocks` streaming writes into the transaction's private
    /// result/workspace area (record assembly, sort runs, response
    /// buffers). The area is touched front to back like freshly allocated
    /// buffers — cold-miss traffic every scheduler pays alike; blocks are
    /// never revisited, so no scheduler can be charged for "losing" them.
    pub fn workspace_burst(&mut self, blocks: u64) {
        // The workspace occupies the thread's stack allocation above the
        // first 4 KB of call frames.
        let base = (self.stack.len() / 4).max(crate::trace::WORKSPACE_STRIDE);
        let span = self.stack.len() - base;
        for _ in 0..blocks {
            let off = base
                + self
                    .workspace_cursor
                    .min(span - crate::trace::WORKSPACE_STRIDE);
            self.workspace_cursor += crate::trace::WORKSPACE_STRIDE;
            self.pending
                .push_back((self.stack.start().offset(off), true));
        }
    }

    /// The walk configuration.
    pub fn config(&self) -> WalkConfig {
        self.cfg
    }

    /// Emits the fetch of one code block and drains queued data accesses.
    fn fetch_block(&mut self, block_index_in_code: u64, region: AddrRange) {
        let block = region
            .start()
            .offset(block_index_in_code * BLOCK_SIZE)
            .block();
        // ~12-16 instructions per 64 B x86 block, deterministic jitter.
        let instrs = 12 + (block.index() % 5) as u8;
        self.refs.push(MemRef::IFetch { block, instrs });

        for _ in 0..self.cfg.data_per_block {
            match self.pending.pop_front() {
                Some((addr, true)) => self.refs.push(MemRef::Store { addr }),
                Some((addr, false)) => self.refs.push(MemRef::Load { addr }),
                None => break,
            }
        }
        // Periodic private stack traffic (call frames, spills). The hot
        // frames cycle within a small window of the stack region so the
        // per-thread hot set stays a few cache blocks, as real stacks do.
        self.blocks_since_stack += 1;
        if self.blocks_since_stack >= 4 {
            self.blocks_since_stack = 0;
            let hot = 128.min(self.stack.len());
            let a = self.stack.start().offset(self.stack_cursor % hot);
            self.stack_cursor = self.stack_cursor.wrapping_add(40);
            self.refs.push(MemRef::Store { addr: a });
        }
    }

    /// Walks an entire code region: the basic action-execution primitive.
    pub fn walk(&mut self, region: AddrRange, rng: &mut StdRng) {
        self.walk_span(region, 0.0, 1.0, rng);
    }

    /// Walks the `[from, to)` fraction of a region (partial glue segments).
    ///
    /// # Panics
    ///
    /// Panics if the fractions are out of order or outside `[0, 1]`.
    pub fn walk_span(&mut self, region: AddrRange, from: f64, to: f64, rng: &mut StdRng) {
        assert!((0.0..=1.0).contains(&from) && from <= to && to <= 1.0);
        let n_blocks = region.len() / BLOCK_SIZE;
        let start = (n_blocks as f64 * from) as u64;
        let end = (n_blocks as f64 * to) as u64;
        let mut i = start;
        while i < end {
            if rng.gen_bool(self.cfg.skip_prob) {
                // Not-taken path: this instance skips the block.
                i += 1;
                continue;
            }
            self.fetch_block(i, region);
            if i > start + self.cfg.backjump_span && rng.gen_bool(self.cfg.backjump_prob) {
                // Short loop: retouch a recent block, then continue.
                let span = 1 + rng.gen_range(0..self.cfg.backjump_span);
                self.fetch_block(i - span, region);
            }
            i += 1;
        }
    }

    /// Drains any queued engine data accesses even without code to walk.
    pub fn drain_pending(&mut self) {
        while let Some((addr, is_write)) = self.pending.pop_front() {
            self.refs.push(if is_write {
                MemRef::Store { addr }
            } else {
                MemRef::Load { addr }
            });
        }
    }

    /// Number of events built so far.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// `true` if no events were built.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Completes the trace.
    pub fn finish(mut self, txn_type: TxnTypeId, name: &'static str) -> TxnTrace {
        self.drain_pending();
        TxnTrace::new(txn_type, name, self.refs)
    }
}

impl DataSink for TraceBuilder {
    fn load(&mut self, addr: Addr) {
        self.pending.push_back((addr, false));
    }

    fn store(&mut self, addr: Addr) {
        self.pending.push_back((addr, true));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn stack() -> AddrRange {
        AddrRange::new(Addr::new(0xF000_0000), 4096)
    }

    fn region(kb: u64) -> AddrRange {
        AddrRange::new(Addr::new(0x0100_0000), kb * 1024)
    }

    #[test]
    fn walk_covers_most_of_region() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut tb = TraceBuilder::new(stack(), WalkConfig::default());
        tb.walk(region(32), &mut rng);
        let t = tb.finish(TxnTypeId::new(0), "t");
        let blocks = t.unique_code_blocks() as f64;
        let total = (32 * 1024 / BLOCK_SIZE) as f64;
        let coverage = blocks / total;
        assert!(
            (0.85..=0.98).contains(&coverage),
            "coverage {coverage} outside divergence band"
        );
    }

    #[test]
    fn different_seeds_diverge_slightly() {
        let build = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut tb = TraceBuilder::new(stack(), WalkConfig::default());
            tb.walk(region(16), &mut rng);
            tb.finish(TxnTypeId::new(0), "t")
        };
        let a = build(1);
        let b = build(2);
        let set_a: std::collections::HashSet<_> =
            a.refs().iter().filter_map(|r| r.fetch_block()).collect();
        let set_b: std::collections::HashSet<_> =
            b.refs().iter().filter_map(|r| r.fetch_block()).collect();
        let inter = set_a.intersection(&set_b).count() as f64;
        let union = set_a.union(&set_b).count() as f64;
        let jaccard = inter / union;
        assert!(
            jaccard > 0.80,
            "same-type instances must overlap: {jaccard}"
        );
        assert!(jaccard < 1.0, "instances must not be identical");
    }

    #[test]
    fn identical_seeds_identical_traces() {
        let build = || {
            let mut rng = StdRng::seed_from_u64(9);
            let mut tb = TraceBuilder::new(stack(), WalkConfig::default());
            tb.walk(region(8), &mut rng);
            tb.finish(TxnTypeId::new(0), "t")
        };
        assert_eq!(build().refs(), build().refs());
    }

    #[test]
    fn engine_data_is_interleaved() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut tb = TraceBuilder::new(stack(), WalkConfig::default());
        tb.load(Addr::new(0x9000_0000));
        tb.store(Addr::new(0x9000_0040));
        tb.walk(region(1), &mut rng);
        let t = tb.finish(TxnTypeId::new(0), "t");
        let has_load = t
            .refs()
            .iter()
            .any(|r| matches!(r.decode(), MemRef::Load { addr } if addr.value() == 0x9000_0000));
        let has_store = t
            .refs()
            .iter()
            .any(|r| matches!(r.decode(), MemRef::Store { addr } if addr.value() == 0x9000_0040));
        assert!(has_load && has_store);
        // Data appears after the first fetch, not before.
        assert!(t.refs()[0].fetch_block().is_some());
    }

    #[test]
    fn pending_drained_at_finish() {
        let tb_events = {
            let mut tb = TraceBuilder::new(stack(), WalkConfig::default());
            tb.load(Addr::new(1));
            tb.finish(TxnTypeId::new(0), "t")
        };
        assert_eq!(tb_events.len(), 1, "queued data must not be lost");
    }

    #[test]
    fn walk_span_touches_subrange_only() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut tb = TraceBuilder::new(stack(), WalkConfig::default());
        let r = region(32);
        tb.walk_span(r, 0.5, 1.0, &mut rng);
        let t = tb.finish(TxnTypeId::new(0), "t");
        let first_half_end = r.start().offset(16 * 1024).block().index();
        let min_block = t
            .refs()
            .iter()
            .filter_map(|x| x.fetch_block())
            .map(|b| b.index())
            .min()
            .unwrap();
        assert!(min_block >= first_half_end - WalkConfig::default().backjump_span);
    }

    #[test]
    fn stack_traffic_is_private_and_periodic() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut tb = TraceBuilder::new(stack(), WalkConfig::default());
        tb.walk(region(8), &mut rng);
        let t = tb.finish(TxnTypeId::new(0), "t");
        let stack_stores = t
            .refs()
            .iter()
            .filter(|r| matches!(r.decode(), MemRef::Store { addr } if stack().contains(addr)))
            .count();
        assert!(stack_stores > 10, "stack traffic missing: {stack_stores}");
    }
}
