//! Transaction reference traces and cursors.
//!
//! The paper's methodology replays instruction traces of TPC-C/TPC-E through
//! a timing simulator (Section 5.1). This reproduction does the same: every
//! transaction is materialized as a [`TxnTrace`] — the exact sequence of
//! instruction-block fetches and data accesses its execution produces — and
//! the schedulers replay traces through the memory hierarchy via resumable
//! [`TraceCursor`]s, which is what makes context switching at arbitrary
//! points (STREX) and mid-flight migration (SLICC) possible.

use strex_sim::addr::{Addr, BlockAddr};
use strex_sim::ids::TxnTypeId;

/// Stride, in bytes, of workspace streaming writes (one touch per block).
pub const WORKSPACE_STRIDE: u64 = 64;

/// One event of a transaction's execution.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum MemRef {
    /// Fetch of one instruction cache block, retiring `instrs` instructions.
    IFetch {
        /// The code block fetched.
        block: BlockAddr,
        /// Instructions retired out of this block before the next event.
        instrs: u8,
    },
    /// A data load.
    Load {
        /// Byte address read.
        addr: Addr,
    },
    /// A data store.
    Store {
        /// Byte address written.
        addr: Addr,
    },
}

impl MemRef {
    /// Instructions retired by this event (zero for data accesses, whose
    /// instructions are accounted by their enclosing fetch group).
    pub fn instrs(self) -> u64 {
        match self {
            MemRef::IFetch { instrs, .. } => instrs as u64,
            MemRef::Load { .. } | MemRef::Store { .. } => 0,
        }
    }

    /// The instruction block, if this is a fetch.
    pub fn fetch_block(self) -> Option<BlockAddr> {
        match self {
            MemRef::IFetch { block, .. } => Some(block),
            _ => None,
        }
    }
}

/// The full reference trace of one transaction instance.
#[derive(Clone, Debug)]
pub struct TxnTrace {
    txn_type: TxnTypeId,
    type_name: &'static str,
    refs: Vec<MemRef>,
    instr_total: u64,
}

impl TxnTrace {
    /// Builds a trace from raw events.
    pub fn new(txn_type: TxnTypeId, type_name: &'static str, refs: Vec<MemRef>) -> Self {
        let instr_total = refs.iter().map(|r| r.instrs()).sum();
        TxnTrace {
            txn_type,
            type_name,
            refs,
            instr_total,
        }
    }

    /// The transaction type this instance belongs to.
    pub fn txn_type(&self) -> TxnTypeId {
        self.txn_type
    }

    /// Human-readable type name ("NewOrder", "Payment", ...).
    pub fn type_name(&self) -> &'static str {
        self.type_name
    }

    /// The events of the trace.
    pub fn refs(&self) -> &[MemRef] {
        &self.refs
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// `true` if the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Total instructions retired by the transaction.
    pub fn instr_total(&self) -> u64 {
        self.instr_total
    }

    /// Unique instruction blocks touched — the transaction's instruction
    /// footprint, the quantity the FPTable records (Table 3).
    pub fn unique_code_blocks(&self) -> usize {
        let mut blocks: Vec<u64> = self
            .refs
            .iter()
            .filter_map(|r| r.fetch_block().map(BlockAddr::index))
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        blocks.len()
    }

    /// Instruction footprint in L1-I-size units of `l1i_bytes` (rounded up),
    /// the unit the hybrid mechanism's FPTable uses.
    pub fn footprint_units(&self, l1i_bytes: u64) -> u64 {
        let bytes = self.unique_code_blocks() as u64 * strex_sim::addr::BLOCK_SIZE;
        bytes.div_ceil(l1i_bytes)
    }
}

/// A resumable read position within a [`TxnTrace`].
///
/// Cursors index into traces owned elsewhere so that a trace can be shared
/// by several replicas (Figure 4 replicates instances ten times).
///
/// # Examples
///
/// ```
/// use strex_oltp::trace::{MemRef, TraceCursor, TxnTrace};
/// use strex_sim::addr::BlockAddr;
/// use strex_sim::ids::TxnTypeId;
///
/// let t = TxnTrace::new(
///     TxnTypeId::new(0),
///     "demo",
///     vec![MemRef::IFetch { block: BlockAddr::new(1), instrs: 10 }],
/// );
/// let mut cur = TraceCursor::new();
/// assert!(cur.peek(&t).is_some());
/// cur.advance();
/// assert!(cur.done(&t));
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub struct TraceCursor {
    pos: usize,
}

impl TraceCursor {
    /// A cursor at the start of a trace.
    pub fn new() -> Self {
        TraceCursor { pos: 0 }
    }

    /// Current event index.
    pub fn position(self) -> usize {
        self.pos
    }

    /// The next event to replay, or `None` at end of trace.
    #[inline]
    pub fn peek(self, trace: &TxnTrace) -> Option<MemRef> {
        trace.refs.get(self.pos).copied()
    }

    /// Looks `ahead` events past the current one (`peek_at(trace, 0)` is
    /// [`peek`](TraceCursor::peek)). Used by the driver to issue memory
    /// prefetch hints for the upcoming event while the current one is
    /// still being simulated.
    #[inline]
    pub fn peek_at(self, trace: &TxnTrace, ahead: usize) -> Option<MemRef> {
        trace.refs.get(self.pos + ahead).copied()
    }

    /// Moves past the current event.
    pub fn advance(&mut self) {
        self.pos += 1;
    }

    /// `true` once every event has been replayed.
    pub fn done(self, trace: &TxnTrace) -> bool {
        self.pos >= trace.refs.len()
    }

    /// Fraction of the trace consumed, in [0, 1].
    pub fn progress(self, trace: &TxnTrace) -> f64 {
        if trace.refs.is_empty() {
            1.0
        } else {
            self.pos.min(trace.refs.len()) as f64 / trace.refs.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_trace() -> TxnTrace {
        TxnTrace::new(
            TxnTypeId::new(3),
            "demo",
            vec![
                MemRef::IFetch {
                    block: BlockAddr::new(1),
                    instrs: 10,
                },
                MemRef::Load {
                    addr: Addr::new(4096),
                },
                MemRef::IFetch {
                    block: BlockAddr::new(2),
                    instrs: 12,
                },
                MemRef::IFetch {
                    block: BlockAddr::new(1),
                    instrs: 8,
                },
                MemRef::Store {
                    addr: Addr::new(8192),
                },
            ],
        )
    }

    #[test]
    fn instr_total_sums_fetch_groups() {
        let t = demo_trace();
        assert_eq!(t.instr_total(), 30);
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
    }

    #[test]
    fn unique_blocks_deduplicated() {
        let t = demo_trace();
        assert_eq!(t.unique_code_blocks(), 2);
    }

    #[test]
    fn footprint_units_round_up() {
        let t = demo_trace();
        // 2 blocks = 128 bytes; one 64-byte "L1" unit would be 2 units.
        assert_eq!(t.footprint_units(64), 2);
        assert_eq!(t.footprint_units(1024), 1);
    }

    #[test]
    fn cursor_replays_in_order() {
        let t = demo_trace();
        let mut c = TraceCursor::new();
        let mut seen = Vec::new();
        while let Some(r) = c.peek(&t) {
            seen.push(r);
            c.advance();
        }
        assert_eq!(seen, t.refs().to_vec());
        assert!(c.done(&t));
        assert_eq!(c.progress(&t), 1.0);
    }

    #[test]
    fn cursor_progress_midway() {
        let t = demo_trace();
        let mut c = TraceCursor::new();
        c.advance();
        assert!((c.progress(&t) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_is_done_immediately() {
        let t = TxnTrace::new(TxnTypeId::new(0), "empty", Vec::new());
        let c = TraceCursor::new();
        assert!(c.done(&t));
        assert_eq!(c.progress(&t), 1.0);
        assert_eq!(t.footprint_units(32 * 1024), 0);
    }

    #[test]
    fn memref_accessors() {
        let f = MemRef::IFetch {
            block: BlockAddr::new(9),
            instrs: 4,
        };
        assert_eq!(f.instrs(), 4);
        assert_eq!(f.fetch_block(), Some(BlockAddr::new(9)));
        let l = MemRef::Load { addr: Addr::new(1) };
        assert_eq!(l.instrs(), 0);
        assert_eq!(l.fetch_block(), None);
    }
}
