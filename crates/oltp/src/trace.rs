//! Transaction reference traces and cursors.
//!
//! The paper's methodology replays instruction traces of TPC-C/TPC-E through
//! a timing simulator (Section 5.1). This reproduction does the same: every
//! transaction is materialized as a [`TxnTrace`] — the exact sequence of
//! instruction-block fetches and data accesses its execution produces — and
//! the schedulers replay traces through the memory hierarchy via resumable
//! [`TraceCursor`]s, which is what makes context switching at arbitrary
//! points (STREX) and mid-flight migration (SLICC) possible.
//!
//! # Packed event representation
//!
//! Trace replay is the simulator's memory-bandwidth floor: every simulated
//! event is one read of the trace stream, and the enum form of [`MemRef`]
//! occupies 16 bytes (payload + discriminant + padding). Traces therefore
//! store events as [`PackedRef`] — one `u64` per event, with the operation
//! kind, the fetch group's instruction count and the address folded into a
//! single word — halving the stream bandwidth the replay loop pulls through
//! the host caches. [`MemRef`] remains the decoded view: builders construct
//! traces from `MemRef`s and analyses decode on demand; the conversion is a
//! handful of shifts with no branches on the field extractions.
//!
//! Layout of a packed word (low to high):
//!
//! | bits  | field                                              |
//! |-------|----------------------------------------------------|
//! | 0..2  | kind: 0 = IFetch, 1 = Load, 2 = Store              |
//! | 2..10 | instructions retired (fetches; zero for data ops)  |
//! | 10..64| payload: block index (fetch) or byte address (data)|
//!
//! The 54-bit payload covers 2^54 blocks / bytes; the workload generator's
//! address layout stays far below it, and [`PackedRef::encode`] rejects
//! anything larger.

use strex_sim::addr::{Addr, BlockAddr};
use strex_sim::ids::TxnTypeId;

/// Stride, in bytes, of workspace streaming writes (one touch per block).
pub const WORKSPACE_STRIDE: u64 = 64;

/// One event of a transaction's execution (decoded view).
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum MemRef {
    /// Fetch of one instruction cache block, retiring `instrs` instructions.
    IFetch {
        /// The code block fetched.
        block: BlockAddr,
        /// Instructions retired out of this block before the next event.
        instrs: u8,
    },
    /// A data load.
    Load {
        /// Byte address read.
        addr: Addr,
    },
    /// A data store.
    Store {
        /// Byte address written.
        addr: Addr,
    },
}

impl MemRef {
    /// Instructions retired by this event (zero for data accesses, whose
    /// instructions are accounted by their enclosing fetch group).
    pub fn instrs(self) -> u64 {
        match self {
            MemRef::IFetch { instrs, .. } => instrs as u64,
            MemRef::Load { .. } | MemRef::Store { .. } => 0,
        }
    }

    /// The instruction block, if this is a fetch.
    pub fn fetch_block(self) -> Option<BlockAddr> {
        match self {
            MemRef::IFetch { block, .. } => Some(block),
            _ => None,
        }
    }
}

/// Kind field of a packed event: instruction fetch.
const KIND_IFETCH: u64 = 0;
/// Kind field of a packed event: data load.
const KIND_LOAD: u64 = 1;
/// Kind field of a packed event: data store.
const KIND_STORE: u64 = 2;

/// Bit position of the instruction-count field.
const INSTR_SHIFT: u32 = 2;
/// Bit position of the payload (block index / byte address) field.
const PAYLOAD_SHIFT: u32 = 10;
/// Widest payload a packed event can carry.
const PAYLOAD_MAX: u64 = (1 << (64 - PAYLOAD_SHIFT)) - 1;

/// One trace event packed into a single `u64` (see the module doc).
///
/// # Examples
///
/// ```
/// use strex_oltp::trace::{MemRef, PackedRef};
/// use strex_sim::addr::BlockAddr;
///
/// let e = MemRef::IFetch { block: BlockAddr::new(42), instrs: 9 };
/// let p = PackedRef::encode(e);
/// assert_eq!(p.decode(), e);
/// assert_eq!(p.instrs(), 9);
/// assert_eq!(p.fetch_block(), Some(BlockAddr::new(42)));
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct PackedRef(u64);

impl PackedRef {
    /// Packs a decoded event.
    ///
    /// # Panics
    ///
    /// Panics if the address payload exceeds the 54-bit packed field —
    /// unreachable for generator-produced traces, whose address layout tops
    /// out far below it.
    pub fn encode(r: MemRef) -> Self {
        let (kind, instrs, payload) = match r {
            MemRef::IFetch { block, instrs } => (KIND_IFETCH, instrs as u64, block.index()),
            MemRef::Load { addr } => (KIND_LOAD, 0, addr.value()),
            MemRef::Store { addr } => (KIND_STORE, 0, addr.value()),
        };
        assert!(
            payload <= PAYLOAD_MAX,
            "trace address {payload:#x} overflows the packed event payload"
        );
        PackedRef(kind | (instrs << INSTR_SHIFT) | (payload << PAYLOAD_SHIFT))
    }

    /// The raw packed word.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Decodes back to the enum view. Field extraction is shift/mask only;
    /// the final three-way dispatch is the same discriminant branch the
    /// enum form carried.
    #[inline]
    pub fn decode(self) -> MemRef {
        let payload = self.payload();
        match self.0 & 0b11 {
            KIND_IFETCH => MemRef::IFetch {
                block: BlockAddr::new(payload),
                instrs: ((self.0 >> INSTR_SHIFT) & 0xff) as u8,
            },
            KIND_LOAD => MemRef::Load {
                addr: Addr::new(payload),
            },
            _ => MemRef::Store {
                addr: Addr::new(payload),
            },
        }
    }

    /// The payload field: block index for fetches, byte address for data.
    #[inline]
    pub fn payload(self) -> u64 {
        self.0 >> PAYLOAD_SHIFT
    }

    /// `true` if this is an instruction fetch.
    #[inline]
    pub fn is_fetch(self) -> bool {
        self.0 & 0b11 == KIND_IFETCH
    }

    /// Instructions retired by this event — branch-free: data events store
    /// a zero instruction field, so no kind test is needed.
    #[inline]
    pub fn instrs(self) -> u64 {
        (self.0 >> INSTR_SHIFT) & 0xff
    }

    /// The instruction block, if this is a fetch.
    #[inline]
    pub fn fetch_block(self) -> Option<BlockAddr> {
        if self.is_fetch() {
            Some(BlockAddr::new(self.payload()))
        } else {
            None
        }
    }
}

impl From<MemRef> for PackedRef {
    fn from(r: MemRef) -> Self {
        PackedRef::encode(r)
    }
}

impl From<PackedRef> for MemRef {
    fn from(p: PackedRef) -> Self {
        p.decode()
    }
}

/// The full reference trace of one transaction instance.
#[derive(Clone, Debug)]
pub struct TxnTrace {
    txn_type: TxnTypeId,
    type_name: &'static str,
    refs: Vec<PackedRef>,
    instr_total: u64,
}

impl TxnTrace {
    /// Builds a trace from raw events, packing them into the 8-byte
    /// representation the replay loop streams.
    pub fn new(txn_type: TxnTypeId, type_name: &'static str, refs: Vec<MemRef>) -> Self {
        let refs: Vec<PackedRef> = refs.into_iter().map(PackedRef::encode).collect();
        let instr_total = refs.iter().map(|r| r.instrs()).sum();
        TxnTrace {
            txn_type,
            type_name,
            refs,
            instr_total,
        }
    }

    /// The transaction type this instance belongs to.
    pub fn txn_type(&self) -> TxnTypeId {
        self.txn_type
    }

    /// Human-readable type name ("NewOrder", "Payment", ...).
    pub fn type_name(&self) -> &'static str {
        self.type_name
    }

    /// The packed events of the trace — the stream the driver replays.
    #[inline]
    pub fn refs(&self) -> &[PackedRef] {
        &self.refs
    }

    /// The events decoded back to the legacy enum view (analyses and
    /// differential tests; allocates).
    pub fn decode_refs(&self) -> Vec<MemRef> {
        self.refs.iter().map(|r| r.decode()).collect()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// `true` if the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Total instructions retired by the transaction.
    pub fn instr_total(&self) -> u64 {
        self.instr_total
    }

    /// Unique instruction blocks touched — the transaction's instruction
    /// footprint, the quantity the FPTable records (Table 3).
    pub fn unique_code_blocks(&self) -> usize {
        let mut blocks: Vec<u64> = self
            .refs
            .iter()
            .filter_map(|r| r.fetch_block().map(BlockAddr::index))
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        blocks.len()
    }

    /// Instruction footprint in L1-I-size units of `l1i_bytes` (rounded up),
    /// the unit the hybrid mechanism's FPTable uses.
    pub fn footprint_units(&self, l1i_bytes: u64) -> u64 {
        let bytes = self.unique_code_blocks() as u64 * strex_sim::addr::BLOCK_SIZE;
        bytes.div_ceil(l1i_bytes)
    }
}

/// A resumable read position within a [`TxnTrace`].
///
/// Cursors index into traces owned elsewhere so that a trace can be shared
/// by several replicas (Figure 4 replicates instances ten times).
///
/// # Examples
///
/// ```
/// use strex_oltp::trace::{MemRef, TraceCursor, TxnTrace};
/// use strex_sim::addr::BlockAddr;
/// use strex_sim::ids::TxnTypeId;
///
/// let t = TxnTrace::new(
///     TxnTypeId::new(0),
///     "demo",
///     vec![MemRef::IFetch { block: BlockAddr::new(1), instrs: 10 }],
/// );
/// let mut cur = TraceCursor::new();
/// assert!(cur.peek(&t).is_some());
/// cur.advance();
/// assert!(cur.done(&t));
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub struct TraceCursor {
    pos: usize,
}

impl TraceCursor {
    /// A cursor at the start of a trace.
    pub fn new() -> Self {
        TraceCursor { pos: 0 }
    }

    /// Current event index.
    pub fn position(self) -> usize {
        self.pos
    }

    /// Positions the cursor at event `pos` (the driver writes back the
    /// index it advanced to while replaying the packed stream directly).
    #[inline]
    pub fn set_position(&mut self, pos: usize) {
        self.pos = pos;
    }

    /// The next event to replay (decoded), or `None` at end of trace.
    #[inline]
    pub fn peek(self, trace: &TxnTrace) -> Option<MemRef> {
        trace.refs.get(self.pos).map(|r| r.decode())
    }

    /// Looks `ahead` events past the current one (`peek_at(trace, 0)` is
    /// [`peek`](TraceCursor::peek)). Used by the driver to issue memory
    /// prefetch hints for the upcoming event while the current one is
    /// still being simulated.
    #[inline]
    pub fn peek_at(self, trace: &TxnTrace, ahead: usize) -> Option<MemRef> {
        trace.refs.get(self.pos + ahead).map(|r| r.decode())
    }

    /// Moves past the current event.
    pub fn advance(&mut self) {
        self.pos += 1;
    }

    /// `true` once every event has been replayed.
    pub fn done(self, trace: &TxnTrace) -> bool {
        self.pos >= trace.refs.len()
    }

    /// Fraction of the trace consumed, in [0, 1].
    pub fn progress(self, trace: &TxnTrace) -> f64 {
        if trace.refs.is_empty() {
            1.0
        } else {
            self.pos.min(trace.refs.len()) as f64 / trace.refs.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_refs() -> Vec<MemRef> {
        vec![
            MemRef::IFetch {
                block: BlockAddr::new(1),
                instrs: 10,
            },
            MemRef::Load {
                addr: Addr::new(4096),
            },
            MemRef::IFetch {
                block: BlockAddr::new(2),
                instrs: 12,
            },
            MemRef::IFetch {
                block: BlockAddr::new(1),
                instrs: 8,
            },
            MemRef::Store {
                addr: Addr::new(8192),
            },
        ]
    }

    fn demo_trace() -> TxnTrace {
        TxnTrace::new(TxnTypeId::new(3), "demo", demo_refs())
    }

    #[test]
    fn instr_total_sums_fetch_groups() {
        let t = demo_trace();
        assert_eq!(t.instr_total(), 30);
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
    }

    #[test]
    fn unique_blocks_deduplicated() {
        let t = demo_trace();
        assert_eq!(t.unique_code_blocks(), 2);
    }

    #[test]
    fn footprint_units_round_up() {
        let t = demo_trace();
        // 2 blocks = 128 bytes; one 64-byte "L1" unit would be 2 units.
        assert_eq!(t.footprint_units(64), 2);
        assert_eq!(t.footprint_units(1024), 1);
    }

    #[test]
    fn cursor_replays_in_order() {
        let t = demo_trace();
        let mut c = TraceCursor::new();
        let mut seen = Vec::new();
        while let Some(r) = c.peek(&t) {
            seen.push(r);
            c.advance();
        }
        assert_eq!(seen, demo_refs());
        assert_eq!(seen, t.decode_refs());
        assert!(c.done(&t));
        assert_eq!(c.progress(&t), 1.0);
    }

    #[test]
    fn cursor_progress_midway() {
        let t = demo_trace();
        let mut c = TraceCursor::new();
        c.advance();
        assert!((c.progress(&t) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_is_done_immediately() {
        let t = TxnTrace::new(TxnTypeId::new(0), "empty", Vec::new());
        let c = TraceCursor::new();
        assert!(c.done(&t));
        assert_eq!(c.progress(&t), 1.0);
        assert_eq!(t.footprint_units(32 * 1024), 0);
    }

    #[test]
    fn memref_accessors() {
        let f = MemRef::IFetch {
            block: BlockAddr::new(9),
            instrs: 4,
        };
        assert_eq!(f.instrs(), 4);
        assert_eq!(f.fetch_block(), Some(BlockAddr::new(9)));
        let l = MemRef::Load { addr: Addr::new(1) };
        assert_eq!(l.instrs(), 0);
        assert_eq!(l.fetch_block(), None);
    }

    #[test]
    fn packed_round_trips_each_kind() {
        for r in [
            MemRef::IFetch {
                block: BlockAddr::new(0),
                instrs: 0,
            },
            MemRef::IFetch {
                block: BlockAddr::new(PAYLOAD_MAX),
                instrs: 255,
            },
            MemRef::Load {
                addr: Addr::new(0x8000_0040),
            },
            MemRef::Store {
                addr: Addr::new(PAYLOAD_MAX),
            },
        ] {
            let p = PackedRef::encode(r);
            assert_eq!(p.decode(), r, "{r:?}");
            assert_eq!(p.instrs(), r.instrs());
            assert_eq!(p.fetch_block(), r.fetch_block());
            assert_eq!(MemRef::from(PackedRef::from(r)), r);
        }
    }

    #[test]
    fn packed_is_eight_bytes() {
        assert_eq!(std::mem::size_of::<PackedRef>(), 8);
        // The very point of the packing: the enum view is twice the size.
        assert_eq!(std::mem::size_of::<MemRef>(), 16);
    }

    #[test]
    #[should_panic(expected = "overflows the packed event payload")]
    fn oversized_address_rejected() {
        let _ = PackedRef::encode(MemRef::Store {
            addr: Addr::new(PAYLOAD_MAX + 1),
        });
    }

    #[test]
    fn cursor_set_position_round_trips() {
        let t = demo_trace();
        let mut c = TraceCursor::new();
        c.set_position(3);
        assert_eq!(c.position(), 3);
        assert_eq!(c.peek(&t), Some(demo_refs()[3]));
    }
}
