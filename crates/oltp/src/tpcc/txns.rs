//! The five TPC-C transaction builders (Figure 1 flow graphs).
//!
//! Each builder executes the real flow against the shared [`TpccDb`] —
//! probing indexes, updating tuples, appending to the log — while walking
//! the transaction's action code regions, producing a complete
//! [`TxnTrace`]. Inputs (warehouse, district, customer, items, OL_CNT, the
//! by-name/by-id choice) are drawn per instance from a seeded RNG following
//! the specification's distributions, which is what makes same-type
//! instances *similar but not identical* (Section 2.2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use strex_sim::addr::{Addr, AddrRange};

use crate::codepath::{TraceBuilder, WalkConfig};
use crate::engine::LockMode;
use crate::trace::TxnTrace;

use super::code::{TpccCode, TpccTxnKind};
use super::db::{Table, TpccDb};

/// Base of the per-thread stack area.
const STACK_BASE: u64 = 0xF800_0000;
/// Stack bytes per transaction thread.
const STACK_BYTES: u64 = 16 * 1024;

/// Per-instance transaction inputs are derived from this seed plus the
/// instance ordinal.
pub struct TpccGen<'a> {
    db: &'a mut TpccDb,
    code: &'a TpccCode,
    walk: WalkConfig,
}

impl<'a> TpccGen<'a> {
    /// Creates a generator over a populated database.
    pub fn new(db: &'a mut TpccDb, code: &'a TpccCode) -> Self {
        TpccGen {
            db,
            code,
            walk: WalkConfig::default(),
        }
    }

    /// Overrides the walk configuration (divergence tuning).
    pub fn with_walk(mut self, walk: WalkConfig) -> Self {
        self.walk = walk;
        self
    }

    fn stack_for(thread_ordinal: u64) -> AddrRange {
        AddrRange::new(
            Addr::new(STACK_BASE + thread_ordinal * STACK_BYTES),
            STACK_BYTES,
        )
    }

    /// Builds one transaction of `kind` for thread ordinal `ordinal`,
    /// seeding its input distribution from `seed`.
    pub fn build(&mut self, kind: TpccTxnKind, ordinal: u64, seed: u64) -> TxnTrace {
        let mut rng = StdRng::seed_from_u64(seed ^ (ordinal.wrapping_mul(0x9E37_79B9)));
        let tb = TraceBuilder::new(Self::stack_for(ordinal), self.walk);
        let mut cx = Cx {
            db: self.db,
            code: self.code,
            tb,
            rng: &mut rng,
            op_seq: 0,
            held_locks: Vec::new(),
        };
        match kind {
            TpccTxnKind::NewOrder => cx.new_order(),
            TpccTxnKind::Payment => cx.payment(),
            TpccTxnKind::OrderStatus => cx.order_status(),
            TpccTxnKind::Delivery => cx.delivery(),
            TpccTxnKind::StockLevel => cx.stock_level(),
        }
        cx.tb.finish(kind.type_id(), kind.name())
    }
}

/// NURand non-uniform distribution from the TPC-C specification.
fn nurand(rng: &mut StdRng, a: u64, x: u64, y: u64) -> u64 {
    const C: u64 = 42;
    (((rng.gen_range(0..=a) | rng.gen_range(x..=y)) + C) % (y - x + 1)) + x
}

/// Execution context for one transaction build.
struct Cx<'a, 'b> {
    db: &'a mut TpccDb,
    code: &'a TpccCode,
    tb: TraceBuilder,
    rng: &'b mut StdRng,
    /// Storage-manager ops executed so far; determines which part of a
    /// library function's code each call exercises.
    op_seq: u64,
    /// Locks acquired, released in bulk at commit (strict two-phase
    /// locking, like Shore-MT).
    held_locks: Vec<(u64, u64)>,
}

impl Cx<'_, '_> {
    // ----- building blocks ------------------------------------------------

    /// Executes the hot path of a library function: a `frac`-sized span
    /// whose offset cycles deterministically with the op sequence number.
    /// Same-type transactions issue the same op sequence, so their library
    /// paths coincide (inter-instance overlap); over a whole transaction
    /// the cycling offsets cover the full region (footprint).
    fn lib_call(&mut self, region: strex_sim::addr::AddrRange, frac: f64) {
        let slots = 8u64;
        let off = (self.op_seq % slots) as f64 / slots as f64 * (1.0 - frac);
        self.tb.walk_span(region, off, off + frac, self.rng);
        self.op_seq += 1;
    }

    fn begin(&mut self) {
        let lib = *self.code.lib();
        self.tb.walk_span(lib.txn_mgmt, 0.0, 0.5, self.rng);
        self.tb.walk_span(lib.kernel, 0.0, 0.3, self.rng);
    }

    fn commit(&mut self, log_bytes: u64) {
        let lib = *self.code.lib();
        self.db.wal.append(log_bytes, &mut self.tb);
        self.tb.walk(lib.wal, self.rng);
        // Strict 2PL: drop every lock at commit (shared bucket writes).
        let held = std::mem::take(&mut self.held_locks);
        for (table, key) in held {
            self.db.locks.release(table, key, &mut self.tb);
        }
        self.tb.workspace_burst(6);
        self.tb.walk_span(lib.txn_mgmt, 0.5, 1.0, self.rng);
        self.tb.walk_span(lib.kernel, 0.3, 0.6, self.rng);
    }

    /// `R(table)` — index lookup: action glue around lock + pin + descent.
    fn lookup(&mut self, action: AddrRange, table: Table, key: u64) -> Option<Addr> {
        let lib = *self.code.lib();
        self.tb.walk_span(action, 0.0, 0.5, self.rng);
        self.db
            .locks
            .acquire(table as u64, key, LockMode::Shared, &mut self.tb);
        self.held_locks.push((table as u64, key));
        self.lib_call(lib.lock, 0.3);
        let t = table_of(self.db, table);
        let found = t.lookup(key, &mut self.tb);
        if let Some(addr) = found {
            self.db.buffer.pin(addr, &mut self.tb);
        }
        self.lib_call(lib.btree_search, 0.35);
        self.lib_call(lib.buffer, 0.25);
        self.tb.workspace_burst(3);
        self.tb.walk_span(action, 0.5, 1.0, self.rng);
        found
    }

    /// `U(table)` — lookup + in-place tuple update.
    fn update(&mut self, action: AddrRange, table: Table, key: u64) {
        let lib = *self.code.lib();
        self.tb.walk_span(action, 0.0, 0.5, self.rng);
        self.db
            .locks
            .acquire(table as u64, key, LockMode::Exclusive, &mut self.tb);
        self.held_locks.push((table as u64, key));
        self.lib_call(lib.lock, 0.35);
        table_of_mut(self.db, table).lookup_update(key, &mut self.tb);
        self.lib_call(lib.btree_search, 0.35);
        self.db.wal.append(96, &mut self.tb);
        self.lib_call(lib.wal, 0.3);
        self.tb.workspace_burst(4);
        self.tb.walk_span(action, 0.5, 1.0, self.rng);
    }

    /// `I(table)` — tuple insert plus index maintenance.
    fn insert(&mut self, action: AddrRange, table: Table, key: u64) {
        let lib = *self.code.lib();
        self.tb.walk_span(action, 0.0, 0.5, self.rng);
        self.db
            .locks
            .acquire(table as u64, key, LockMode::Exclusive, &mut self.tb);
        self.held_locks.push((table as u64, key));
        self.lib_call(lib.lock, 0.35);
        // History has no index; everything else goes through IndexedTable.
        if matches!(table, Table::History) {
            let mut arena = std::mem::take(&mut self.db.arena);
            self.db.history.insert(&mut arena, &mut self.tb);
            self.db.arena = arena;
        } else {
            let mut arena = std::mem::take(&mut self.db.arena);
            table_of_mut(self.db, table).insert(key, &mut arena, &mut self.tb);
            self.db.arena = arena;
        }
        self.lib_call(lib.btree_insert, 0.4);
        self.db.wal.append(128, &mut self.tb);
        self.lib_call(lib.wal, 0.35);
        self.tb.workspace_burst(4);
        self.tb.walk_span(action, 0.5, 1.0, self.rng);
    }

    /// `IT(index)` — range scan.
    fn scan(&mut self, action: AddrRange, table: Table, from_key: u64, limit: usize) -> Vec<u64> {
        let lib = *self.code.lib();
        self.tb.walk_span(action, 0.0, 0.4, self.rng);
        self.db
            .locks
            .acquire(table as u64, from_key, LockMode::Shared, &mut self.tb);
        self.held_locks.push((table as u64, from_key));
        self.lib_call(lib.lock, 0.3);
        let hits = match table {
            Table::Customer => self
                .db
                .customer_by_name
                .scan_from(from_key, limit, &mut self.tb),
            _ => table_of(self.db, table)
                .index
                .scan_from(from_key, limit, &mut self.tb),
        };
        self.lib_call(lib.btree_scan, 0.5);
        // Read the payload rows the scan matched (index payloads are tuple
        // addresses for the order/line tables).
        if !matches!(table, Table::Customer) {
            for &p in &hits {
                table_of(self.db, table)
                    .heap
                    .read(strex_sim::addr::Addr::new(p), &mut self.tb);
            }
        }
        self.tb.workspace_burst(1 + hits.len() as u64 / 2);
        self.tb.walk_span(action, 0.4, 1.0, self.rng);
        hits
    }

    // ----- inputs ---------------------------------------------------------

    fn pick_warehouse(&mut self) -> u64 {
        self.rng.gen_range(0..self.db.scale().warehouses)
    }

    fn pick_district(&mut self) -> u64 {
        self.rng.gen_range(0..10)
    }

    fn pick_customer(&mut self) -> u64 {
        nurand(self.rng, 255, 0, self.db.scale().customers_per_district - 1)
    }

    fn pick_item(&mut self) -> u64 {
        nurand(self.rng, 1023, 0, self.db.scale().items - 1)
    }

    // ----- the five transactions (Figure 1) --------------------------------

    /// New Order: lookups on WAREHOUSE/DISTRICT/CUSTOMER, D_NEXT_O_ID bump,
    /// ORDER + NEW-ORDER inserts, then the OL_CNT item loop.
    fn new_order(&mut self) {
        let a: Vec<AddrRange> = self.code.actions(TpccTxnKind::NewOrder).to_vec();
        let (w, d) = (self.pick_warehouse(), self.pick_district());
        let c = self.pick_customer();
        self.begin();
        self.tb.walk(a[0], self.rng); // input parse / plan glue
        self.lookup(a[1], Table::Warehouse, w);
        self.lookup(a[2], Table::District, TpccDb::district_key(w, d));
        // U(DIST): claim D_NEXT_O_ID — the classic hot-row update.
        self.update(a[3], Table::District, TpccDb::district_key(w, d));
        let o_id = self.db.claim_o_id(w, d);
        self.lookup(a[4], Table::Customer, TpccDb::customer_key(w, d, c));
        let okey = TpccDb::order_key(w, d, o_id);
        self.insert(a[5], Table::Orders, okey);
        self.insert(a[6], Table::NewOrder, okey);
        // Item loop: OL_CNT uniform in 5..=15 per the specification.
        let ol_cnt = self.rng.gen_range(5..=15);
        for line in 0..ol_cnt {
            let i = self.pick_item();
            self.lookup(a[7], Table::Item, i);
            let skey = TpccDb::stock_key(w, i);
            self.lookup(a[8], Table::Stock, skey);
            self.update(a[8], Table::Stock, skey);
            self.insert(a[9], Table::OrderLine, TpccDb::order_line_key(okey, line));
        }
        self.tb.walk(a[10], self.rng); // totals / response glue
        self.commit(256);
    }

    /// Payment: W/D updates, customer selected by id (40 %) or last name
    /// (60 %, the conditional `IT(CUST)` of Figure 1), HISTORY insert.
    fn payment(&mut self) {
        let a: Vec<AddrRange> = self.code.actions(TpccTxnKind::Payment).to_vec();
        let (w, d) = (self.pick_warehouse(), self.pick_district());
        self.begin();
        self.tb.walk(a[0], self.rng);
        self.lookup(a[1], Table::Warehouse, w);
        self.update(a[1], Table::Warehouse, w);
        self.lookup(a[2], Table::District, TpccDb::district_key(w, d));
        self.update(a[2], Table::District, TpccDb::district_key(w, d));
        let ckey = if self.rng.gen_bool(0.6) {
            // By last name: scan the name bucket, take the midpoint.
            let buckets = (self.db.scale().customers_per_district / 3).max(1);
            let name_hash = self.pick_customer() % buckets + TpccDb::district_key(w, d) * 1024;
            let hits = self.scan(a[3], Table::Customer, TpccDb::name_key(name_hash, 0), 6);
            hits.get(hits.len() / 2)
                .copied()
                .unwrap_or_else(|| TpccDb::customer_key(w, d, 0))
        } else {
            let c = self.pick_customer();
            TpccDb::customer_key(w, d, c)
        };
        self.lookup(a[4], Table::Customer, ckey);
        self.update(a[5], Table::Customer, ckey);
        self.insert(a[6], Table::History, 0);
        self.tb.walk(a[7], self.rng);
        self.commit(192);
    }

    /// Order Status: customer by id or name, latest order, its lines.
    fn order_status(&mut self) {
        let a: Vec<AddrRange> = self.code.actions(TpccTxnKind::OrderStatus).to_vec();
        let (w, d) = (self.pick_warehouse(), self.pick_district());
        self.begin();
        self.tb.walk(a[0], self.rng);
        let ckey = if self.rng.gen_bool(0.6) {
            let buckets = (self.db.scale().customers_per_district / 3).max(1);
            let name_hash = self.pick_customer() % buckets + TpccDb::district_key(w, d) * 1024;
            let hits = self.scan(a[1], Table::Customer, TpccDb::name_key(name_hash, 0), 6);
            hits.first()
                .copied()
                .unwrap_or_else(|| TpccDb::customer_key(w, d, 0))
        } else {
            TpccDb::customer_key(w, d, self.pick_customer())
        };
        self.lookup(a[1], Table::Customer, ckey);
        let latest = self.db.next_o_id[self.db.district_index(w, d)].saturating_sub(1);
        let okey = TpccDb::order_key(w, d, latest);
        self.lookup(a[2], Table::Orders, okey);
        self.scan(a[3], Table::OrderLine, TpccDb::order_line_key(okey, 0), 10);
        self.tb.walk(a[4], self.rng);
        self.commit(64);
    }

    /// Delivery: per-district loop delivering the oldest new order.
    fn delivery(&mut self) {
        let a: Vec<AddrRange> = self.code.actions(TpccTxnKind::Delivery).to_vec();
        let w = self.pick_warehouse();
        self.begin();
        self.tb.walk(a[0], self.rng);
        for d in 0..10 {
            // Oldest undelivered order for the district.
            let oldest =
                self.db.scale().initial_orders_per_district / 2 + (TpccDb::district_key(w, d) % 7);
            let okey = TpccDb::order_key(w, d, oldest);
            self.lookup(a[1], Table::NewOrder, okey);
            self.update(a[2], Table::Orders, okey);
            self.scan(a[3], Table::OrderLine, TpccDb::order_line_key(okey, 0), 10);
            let c = self.pick_customer();
            self.update(a[4], Table::Customer, TpccDb::customer_key(w, d, c));
        }
        self.tb.walk(a[5], self.rng);
        self.commit(320);
    }

    /// Stock Level: district cursor, recent order lines, stock threshold.
    fn stock_level(&mut self) {
        let a: Vec<AddrRange> = self.code.actions(TpccTxnKind::StockLevel).to_vec();
        let (w, d) = (self.pick_warehouse(), self.pick_district());
        self.begin();
        self.tb.walk(a[0], self.rng);
        self.lookup(a[1], Table::District, TpccDb::district_key(w, d));
        let latest = self.db.next_o_id[self.db.district_index(w, d)].saturating_sub(1);
        let okey = TpccDb::order_key(w, d, latest.saturating_sub(5));
        let lines = self.scan(a[2], Table::OrderLine, TpccDb::order_line_key(okey, 0), 20);
        for (n, _line) in lines.iter().enumerate().take(12) {
            let i = (self.pick_item() + n as u64) % self.db.scale().items;
            self.lookup(a[3], Table::Stock, TpccDb::stock_key(w, i));
        }
        self.tb.walk(a[4], self.rng);
        self.commit(32);
    }
}

fn table_of(db: &TpccDb, table: Table) -> &super::db::IndexedTable {
    match table {
        Table::Warehouse => &db.warehouse,
        Table::District => &db.district,
        Table::Customer => &db.customer,
        Table::Item => &db.item,
        Table::Stock => &db.stock,
        Table::Orders => &db.orders,
        Table::NewOrder => &db.new_order,
        Table::OrderLine => &db.order_line,
        Table::History => unreachable!("history is unindexed"),
    }
}

fn table_of_mut(db: &mut TpccDb, table: Table) -> &mut super::db::IndexedTable {
    match table {
        Table::Warehouse => &mut db.warehouse,
        Table::District => &mut db.district,
        Table::Customer => &mut db.customer,
        Table::Item => &mut db.item,
        Table::Stock => &mut db.stock,
        Table::Orders => &mut db.orders,
        Table::NewOrder => &mut db.new_order,
        Table::OrderLine => &mut db.order_line,
        Table::History => unreachable!("history is unindexed"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcc::db::TpccScale;
    use crate::trace::MemRef;
    use std::collections::HashSet;
    use strex_sim::addr::BlockAddr;

    fn build(kind: TpccTxnKind, ordinal: u64, seed: u64) -> TxnTrace {
        let mut db = TpccDb::populate(TpccScale::mini());
        let code = TpccCode::new();
        TpccGen::new(&mut db, &code).build(kind, ordinal, seed)
    }

    #[test]
    fn all_types_produce_nonempty_traces() {
        for kind in TpccTxnKind::ALL {
            let t = build(kind, 0, 1);
            assert!(t.instr_total() > 10_000, "{kind}: {}", t.instr_total());
            assert!(t.unique_code_blocks() > 500, "{kind}");
        }
    }

    #[test]
    fn traces_contain_loads_and_stores() {
        let t = build(TpccTxnKind::NewOrder, 0, 1);
        let loads = t
            .refs()
            .iter()
            .filter(|r| matches!(r.decode(), MemRef::Load { .. }))
            .count();
        let stores = t
            .refs()
            .iter()
            .filter(|r| matches!(r.decode(), MemRef::Store { .. }))
            .count();
        assert!(loads > 100, "loads {loads}");
        assert!(stores > 50, "stores {stores}");
    }

    #[test]
    fn same_type_instances_overlap_heavily() {
        let a = build(TpccTxnKind::Payment, 0, 10);
        let b = build(TpccTxnKind::Payment, 1, 11);
        let blocks = |t: &TxnTrace| -> HashSet<BlockAddr> {
            t.refs().iter().filter_map(|r| r.fetch_block()).collect()
        };
        let (sa, sb) = (blocks(&a), blocks(&b));
        let inter = sa.intersection(&sb).count() as f64;
        let smaller = sa.len().min(sb.len()) as f64;
        assert!(
            inter / smaller > 0.7,
            "same-type overlap too low: {}",
            inter / smaller
        );
    }

    #[test]
    fn different_types_overlap_only_in_library() {
        let a = build(TpccTxnKind::NewOrder, 0, 10);
        let b = build(TpccTxnKind::StockLevel, 0, 10);
        let blocks = |t: &TxnTrace| -> HashSet<BlockAddr> {
            t.refs().iter().filter_map(|r| r.fetch_block()).collect()
        };
        let (sa, sb) = (blocks(&a), blocks(&b));
        let inter = sa.intersection(&sb).count() as f64;
        let smaller = sa.len().min(sb.len()) as f64;
        let frac = inter / smaller;
        assert!(
            frac > 0.05 && frac < 0.5,
            "cross-type overlap should be the shared library only: {frac}"
        );
    }

    #[test]
    fn new_order_touches_district_hot_row() {
        let mut db = TpccDb::populate(TpccScale::mini());
        let code = TpccCode::new();
        let before = db.next_o_id.iter().sum::<u64>();
        let _ = TpccGen::new(&mut db, &code).build(TpccTxnKind::NewOrder, 0, 3);
        let after = db.next_o_id.iter().sum::<u64>();
        assert_eq!(after, before + 1, "D_NEXT_O_ID claimed exactly once");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = build(TpccTxnKind::Delivery, 2, 42);
        let b = build(TpccTxnKind::Delivery, 2, 42);
        assert_eq!(a.refs(), b.refs());
    }

    #[test]
    fn footprints_ordered_like_table3() {
        // Heavier types must touch more unique code.
        let no = build(TpccTxnKind::NewOrder, 0, 5).unique_code_blocks();
        let sl = build(TpccTxnKind::StockLevel, 0, 5).unique_code_blocks();
        assert!(no > sl, "NewOrder {no} <= StockLevel {sl}");
    }
}
