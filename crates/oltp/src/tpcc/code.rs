//! Per-transaction-type code regions for TPC-C.
//!
//! Each transaction type owns one code region per action of its Figure 1
//! flow graph; region sizes are derived from the Table 3 footprint targets
//! (Delivery 12, New Order 14, Order-Status 11, Payment 14, Stock-Level 11
//! L1-I units) via [`CodeLayout::action_bytes_for_target`].

use strex_sim::addr::AddrRange;
use strex_sim::ids::TxnTypeId;

use crate::layout::{CodeLayout, LibRegions};

/// The five TPC-C transaction types.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum TpccTxnKind {
    /// New Order (~45 % of the mix).
    NewOrder,
    /// Payment (~43 %).
    Payment,
    /// Order Status (~4 %).
    OrderStatus,
    /// Delivery (~4 %).
    Delivery,
    /// Stock Level (~4 %).
    StockLevel,
}

impl TpccTxnKind {
    /// All types, in Figure 4 / Table 3 order.
    pub const ALL: [TpccTxnKind; 5] = [
        TpccTxnKind::Delivery,
        TpccTxnKind::NewOrder,
        TpccTxnKind::OrderStatus,
        TpccTxnKind::Payment,
        TpccTxnKind::StockLevel,
    ];

    /// Stable type id used by team formation.
    pub fn type_id(self) -> TxnTypeId {
        TxnTypeId::new(match self {
            TpccTxnKind::NewOrder => 0,
            TpccTxnKind::Payment => 1,
            TpccTxnKind::OrderStatus => 2,
            TpccTxnKind::Delivery => 3,
            TpccTxnKind::StockLevel => 4,
        })
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            TpccTxnKind::NewOrder => "NewOrder",
            TpccTxnKind::Payment => "Payment",
            TpccTxnKind::OrderStatus => "OrderStatus",
            TpccTxnKind::Delivery => "Delivery",
            TpccTxnKind::StockLevel => "StockLevel",
        }
    }

    /// Table 3 instruction-footprint target in L1-I units.
    pub fn footprint_units(self) -> u64 {
        match self {
            TpccTxnKind::Delivery => 12,
            TpccTxnKind::NewOrder => 14,
            TpccTxnKind::OrderStatus => 11,
            TpccTxnKind::Payment => 14,
            TpccTxnKind::StockLevel => 11,
        }
    }

    /// Number of distinct action code regions in the flow graph.
    pub fn n_actions(self) -> usize {
        match self {
            TpccTxnKind::NewOrder => 11,
            TpccTxnKind::Payment => 8,
            TpccTxnKind::OrderStatus => 5,
            TpccTxnKind::Delivery => 6,
            TpccTxnKind::StockLevel => 5,
        }
    }
}

impl std::fmt::Display for TpccTxnKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Code regions for all five TPC-C transaction types.
#[derive(Clone, Debug)]
pub struct TpccCode {
    layout: CodeLayout,
    actions: [Vec<AddrRange>; 5],
}

impl Default for TpccCode {
    fn default() -> Self {
        TpccCode::new()
    }
}

impl TpccCode {
    /// Lays out library + per-action regions.
    pub fn new() -> Self {
        let mut layout = CodeLayout::new();
        let mut actions: [Vec<AddrRange>; 5] = Default::default();
        for kind in TpccTxnKind::ALL {
            let bytes = layout.action_bytes_for_target(kind.footprint_units(), kind.n_actions());
            let regions = (0..kind.n_actions())
                .map(|_| layout.alloc_action(bytes))
                .collect();
            actions[kind.type_id().as_usize()] = regions;
        }
        TpccCode { layout, actions }
    }

    /// The shared library regions.
    pub fn lib(&self) -> &LibRegions {
        self.layout.lib()
    }

    /// The action regions of one transaction type, in flow order.
    pub fn actions(&self, kind: TpccTxnKind) -> &[AddrRange] {
        &self.actions[kind.type_id().as_usize()]
    }

    /// Total code bytes laid out.
    pub fn total_bytes(&self) -> u64 {
        self.layout.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_type_has_its_actions() {
        let code = TpccCode::new();
        for kind in TpccTxnKind::ALL {
            assert_eq!(code.actions(kind).len(), kind.n_actions(), "{kind}");
        }
    }

    #[test]
    fn regions_do_not_overlap() {
        let code = TpccCode::new();
        let mut ranges: Vec<_> = TpccTxnKind::ALL
            .iter()
            .flat_map(|&k| code.actions(k).iter().copied())
            .chain(code.lib().all())
            .collect();
        ranges.sort_by_key(|r| r.start().value());
        for w in ranges.windows(2) {
            assert!(
                w[0].end().value() <= w[1].start().value(),
                "overlap between {:?} and {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn bigger_targets_get_more_code() {
        let code = TpccCode::new();
        let total = |k: TpccTxnKind| -> u64 { code.actions(k).iter().map(|r| r.len()).sum() };
        assert!(total(TpccTxnKind::NewOrder) > total(TpccTxnKind::StockLevel));
        assert!(total(TpccTxnKind::Payment) > total(TpccTxnKind::OrderStatus));
    }

    #[test]
    fn type_ids_are_distinct() {
        let mut ids: Vec<_> = TpccTxnKind::ALL.iter().map(|k| k.type_id()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 5);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(TpccTxnKind::NewOrder.to_string(), "NewOrder");
        assert_eq!(TpccTxnKind::StockLevel.name(), "StockLevel");
    }
}
