//! TPC-C database: schema, indexes and population.
//!
//! The nine TPC-C tables with primary-key B+trees (plus the customer
//! last-name secondary index that the 60 %-by-name Payment/Order-Status
//! variants probe). Cardinalities are scaled down from the specification
//! (3000 customers/district, 100 k items) to keep trace generation fast;
//! the *ratios* and hot/cold structure (10 districts per warehouse, one
//! next-order-id per district, NURand skew on items and customers) are
//! preserved, which is what drives the sharing patterns the paper measures.

use strex_sim::addr::Addr;

use crate::engine::{Arena, BTree, BufferPool, DataSink, HeapTable, LockManager, Wal};

/// Scaled-down cardinalities.
#[derive(Copy, Clone, Debug)]
pub struct TpccScale {
    /// Number of warehouses (1 for TPC-C-1, 10 for TPC-C-10).
    pub warehouses: u64,
    /// Customers per district (spec: 3000).
    pub customers_per_district: u64,
    /// Items in the catalog (spec: 100 000).
    pub items: u64,
    /// Initial orders per district.
    pub initial_orders_per_district: u64,
}

impl TpccScale {
    /// Standard scaled-down configuration for `warehouses` warehouses.
    pub fn new(warehouses: u64) -> Self {
        TpccScale {
            warehouses,
            customers_per_district: 300,
            items: 10_000,
            initial_orders_per_district: 100,
        }
    }

    /// Tiny configuration for unit tests.
    pub fn mini() -> Self {
        TpccScale {
            warehouses: 1,
            customers_per_district: 30,
            items: 200,
            initial_orders_per_district: 10,
        }
    }

    /// Districts are always 10 per warehouse (spec).
    pub fn districts_per_warehouse(&self) -> u64 {
        10
    }
}

/// Table identifiers used for lock-manager addressing.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
#[repr(u64)]
pub enum Table {
    /// WAREHOUSE
    Warehouse = 0,
    /// DISTRICT
    District = 1,
    /// CUSTOMER
    Customer = 2,
    /// ITEM
    Item = 3,
    /// STOCK
    Stock = 4,
    /// ORDERS
    Orders = 5,
    /// NEW_ORDER
    NewOrder = 6,
    /// ORDER_LINE
    OrderLine = 7,
    /// HISTORY
    History = 8,
}

/// Number of TPC-C tables.
pub const N_TABLES: u64 = 9;

/// One table: heap storage plus its primary index.
#[derive(Clone, Debug)]
pub struct IndexedTable {
    /// Tuple storage.
    pub heap: HeapTable,
    /// Primary-key index (key -> tuple address).
    pub index: BTree,
}

impl IndexedTable {
    fn new(arena: &mut Arena, name: &'static str, tuple_bytes: u64) -> Self {
        IndexedTable {
            heap: HeapTable::new(name, tuple_bytes),
            index: BTree::new(arena, name),
        }
    }

    /// Inserts a tuple and indexes it under `key`; returns the tuple address.
    pub fn insert(&mut self, key: u64, arena: &mut Arena, sink: &mut dyn DataSink) -> Addr {
        let addr = self.heap.insert(arena, sink);
        self.index.insert(key, addr.value(), arena, sink);
        addr
    }

    /// Looks `key` up in the index and reads the tuple.
    pub fn lookup(&self, key: u64, sink: &mut dyn DataSink) -> Option<Addr> {
        let addr = self.index.search(key, sink).map(Addr::new)?;
        self.heap.read(addr, sink);
        Some(addr)
    }

    /// Looks `key` up and rewrites the tuple in place.
    pub fn lookup_update(&mut self, key: u64, sink: &mut dyn DataSink) -> bool {
        match self.index.search(key, sink).map(Addr::new) {
            Some(addr) => {
                self.heap.update(addr, sink);
                true
            }
            None => false,
        }
    }
}

/// The populated TPC-C database.
#[derive(Clone, Debug)]
pub struct TpccDb {
    /// Address arena backing every structure.
    pub arena: Arena,
    /// Lock manager shared by all tables.
    pub locks: LockManager,
    /// Write-ahead log.
    pub wal: Wal,
    /// Buffer-pool metadata.
    pub buffer: BufferPool,
    /// WAREHOUSE table.
    pub warehouse: IndexedTable,
    /// DISTRICT table.
    pub district: IndexedTable,
    /// CUSTOMER table (primary index by id).
    pub customer: IndexedTable,
    /// CUSTOMER secondary index by last name (hash -> customer key).
    pub customer_by_name: BTree,
    /// ITEM table.
    pub item: IndexedTable,
    /// STOCK table.
    pub stock: IndexedTable,
    /// ORDERS table.
    pub orders: IndexedTable,
    /// NEW_ORDER table.
    pub new_order: IndexedTable,
    /// ORDER_LINE table.
    pub order_line: IndexedTable,
    /// HISTORY table (no index: append-only).
    pub history: HeapTable,
    /// Next order id per district (the spec's D_NEXT_O_ID).
    pub next_o_id: Vec<u64>,
    scale: TpccScale,
}

impl TpccDb {
    /// Key-encoding helpers. Districts: 10 per warehouse.
    pub fn district_key(w: u64, d: u64) -> u64 {
        w * 16 + d
    }

    /// Customer composite key.
    pub fn customer_key(w: u64, d: u64, c: u64) -> u64 {
        Self::district_key(w, d) * 4096 + c
    }

    /// Stock composite key.
    pub fn stock_key(w: u64, i: u64) -> u64 {
        w * 1_048_576 + i
    }

    /// Orders composite key.
    pub fn order_key(w: u64, d: u64, o: u64) -> u64 {
        Self::district_key(w, d) * 16_777_216 + o
    }

    /// Order-line composite key.
    pub fn order_line_key(order_key: u64, line: u64) -> u64 {
        order_key * 16 + line
    }

    /// Last-name index key: `name_hash` buckets of up to 64 customers.
    pub fn name_key(name_hash: u64, seq: u64) -> u64 {
        name_hash * 64 + seq
    }

    /// Builds and populates a database at `scale`.
    pub fn populate(scale: TpccScale) -> Self {
        let mut arena = Arena::new();
        let locks = LockManager::new(&mut arena, N_TABLES);
        let wal = Wal::new(&mut arena, 256 * 1024);
        let buffer = BufferPool::new(&mut arena);

        let mut db = TpccDb {
            warehouse: IndexedTable::new(&mut arena, "warehouse", 96),
            district: IndexedTable::new(&mut arena, "district", 96),
            customer: IndexedTable::new(&mut arena, "customer", 256),
            customer_by_name: BTree::new(&mut arena, "customer-by-name"),
            item: IndexedTable::new(&mut arena, "item", 96),
            stock: IndexedTable::new(&mut arena, "stock", 128),
            orders: IndexedTable::new(&mut arena, "orders", 64),
            new_order: IndexedTable::new(&mut arena, "new-order", 64),
            order_line: IndexedTable::new(&mut arena, "order-line", 64),
            history: HeapTable::new("history", 64),
            next_o_id: Vec::new(),
            locks,
            wal,
            buffer,
            arena,
            scale,
        };
        db.load();
        db
    }

    /// The scale this database was populated at.
    pub fn scale(&self) -> TpccScale {
        self.scale
    }

    fn load(&mut self) {
        // Population accesses are not traced; discard them.
        let mut sink = crate::engine::sink::RecordingSink::new();
        let s = self.scale;
        for i in 0..s.items {
            self.item.insert(i, &mut self.arena, &mut sink);
            sink.accesses.clear();
        }
        for w in 0..s.warehouses {
            self.warehouse.insert(w, &mut self.arena, &mut sink);
            for i in 0..s.items {
                self.stock
                    .insert(Self::stock_key(w, i), &mut self.arena, &mut sink);
                sink.accesses.clear();
            }
            for d in 0..s.districts_per_warehouse() {
                self.district
                    .insert(Self::district_key(w, d), &mut self.arena, &mut sink);
                for c in 0..s.customers_per_district {
                    let key = Self::customer_key(w, d, c);
                    self.customer.insert(key, &mut self.arena, &mut sink);
                    // Distribute customers over last-name buckets of ~3.
                    let name_hash = key % (s.customers_per_district / 3).max(1)
                        + Self::district_key(w, d) * 1024;
                    self.customer_by_name.insert(
                        Self::name_key(name_hash, c % 64),
                        key,
                        &mut self.arena,
                        &mut sink,
                    );
                    sink.accesses.clear();
                }
                for o in 0..s.initial_orders_per_district {
                    let okey = Self::order_key(w, d, o);
                    self.orders.insert(okey, &mut self.arena, &mut sink);
                    for l in 0..5 {
                        self.order_line.insert(
                            Self::order_line_key(okey, l),
                            &mut self.arena,
                            &mut sink,
                        );
                    }
                    sink.accesses.clear();
                }
                self.next_o_id.push(s.initial_orders_per_district);
            }
        }
    }

    /// Index of a district in `next_o_id`.
    pub fn district_index(&self, w: u64, d: u64) -> usize {
        (w * self.scale.districts_per_warehouse() + d) as usize
    }

    /// Claims and returns the next order id for `(w, d)` — the spec's
    /// D_NEXT_O_ID increment that makes district rows write-hot.
    pub fn claim_o_id(&mut self, w: u64, d: u64) -> u64 {
        let idx = self.district_index(w, d);
        let id = self.next_o_id[idx];
        self.next_o_id[idx] += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RecordingSink;

    #[test]
    fn mini_population_counts() {
        let db = TpccDb::populate(TpccScale::mini());
        let s = TpccScale::mini();
        assert_eq!(db.item.heap.len(), s.items);
        assert_eq!(db.warehouse.heap.len(), 1);
        assert_eq!(db.district.heap.len(), 10);
        assert_eq!(db.customer.heap.len(), 10 * s.customers_per_district);
        assert_eq!(db.stock.heap.len(), s.items);
        assert_eq!(db.orders.heap.len(), 10 * s.initial_orders_per_district);
    }

    #[test]
    fn lookup_populated_rows() {
        let db = TpccDb::populate(TpccScale::mini());
        let mut sink = RecordingSink::new();
        assert!(db.warehouse.lookup(0, &mut sink).is_some());
        assert!(db
            .customer
            .lookup(TpccDb::customer_key(0, 3, 7), &mut sink)
            .is_some());
        assert!(db
            .stock
            .lookup(TpccDb::stock_key(0, 42), &mut sink)
            .is_some());
        assert!(db.warehouse.lookup(99, &mut sink).is_none());
    }

    #[test]
    fn key_encodings_disjoint() {
        // Customer keys for adjacent districts must not collide.
        let a = TpccDb::customer_key(0, 0, 4095);
        let b = TpccDb::customer_key(0, 1, 0);
        assert!(a < b);
        let o1 = TpccDb::order_key(0, 0, 100);
        let o2 = TpccDb::order_key(0, 1, 0);
        assert!(o1 < o2);
    }

    #[test]
    fn o_id_claims_increment() {
        let mut db = TpccDb::populate(TpccScale::mini());
        let first = db.claim_o_id(0, 0);
        let second = db.claim_o_id(0, 0);
        assert_eq!(second, first + 1);
        assert_eq!(first, TpccScale::mini().initial_orders_per_district);
    }

    #[test]
    fn name_index_scan_finds_customers() {
        let db = TpccDb::populate(TpccScale::mini());
        let mut sink = RecordingSink::new();
        let s = TpccScale::mini();
        let name_hash = TpccDb::customer_key(0, 0, 5) % (s.customers_per_district / 3).max(1);
        let hits = db
            .customer_by_name
            .scan_from(TpccDb::name_key(name_hash, 0), 4, &mut sink);
        assert!(!hits.is_empty(), "name bucket must contain customers");
    }

    #[test]
    fn two_warehouse_scale_doubles_stock() {
        let mut s = TpccScale::mini();
        s.warehouses = 2;
        let db = TpccDb::populate(s);
        assert_eq!(db.stock.heap.len(), 2 * s.items);
        assert_eq!(db.next_o_id.len(), 20);
    }
}
