//! TPC-C workload model: database, code layout and transaction generation.
//!
//! The paper evaluates two TPC-C scales (TPC-C-1 with one warehouse,
//! TPC-C-10 with ten; Table 1). [`TpccWorkloadBuilder`] reproduces both and
//! generates transaction traces following the specification mix
//! (New Order ≈ 45 %, Payment ≈ 43 %, Order Status / Delivery /
//! Stock Level ≈ 4 % each — New Order + Payment are the "88 % of the mix"
//! Section 2 focuses on).

pub mod code;
pub mod db;
pub mod txns;

pub use code::{TpccCode, TpccTxnKind};
pub use db::{Table, TpccDb, TpccScale};
pub use txns::TpccGen;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::trace::TxnTrace;

/// Generates TPC-C transaction traces at a given scale.
///
/// # Examples
///
/// ```
/// use strex_oltp::tpcc::{TpccScale, TpccWorkloadBuilder};
///
/// let mut builder = TpccWorkloadBuilder::new(TpccScale::mini(), 7);
/// let txns = builder.mixed(4);
/// assert_eq!(txns.len(), 4);
/// ```
#[derive(Debug)]
pub struct TpccWorkloadBuilder {
    db: TpccDb,
    code: TpccCode,
    seed: u64,
    next_ordinal: u64,
}

impl TpccWorkloadBuilder {
    /// Populates a database at `scale`; all randomness derives from `seed`.
    pub fn new(scale: TpccScale, seed: u64) -> Self {
        TpccWorkloadBuilder {
            db: TpccDb::populate(scale),
            code: TpccCode::new(),
            seed,
            next_ordinal: 0,
        }
    }

    /// The code layout (shared with analyses).
    pub fn code(&self) -> &TpccCode {
        &self.code
    }

    /// The database (for data-footprint reporting).
    pub fn db(&self) -> &TpccDb {
        &self.db
    }

    /// Generates one transaction of `kind`.
    pub fn one(&mut self, kind: TpccTxnKind) -> TxnTrace {
        let ordinal = self.next_ordinal;
        self.next_ordinal += 1;
        TpccGen::new(&mut self.db, &self.code).build(kind, ordinal, self.seed)
    }

    /// Generates `n` transactions of one type (Figures 2, 4, 7).
    pub fn same_type(&mut self, kind: TpccTxnKind, n: usize) -> Vec<TxnTrace> {
        (0..n).map(|_| self.one(kind)).collect()
    }

    /// Generates `n` transactions following the specification mix.
    pub fn mixed(&mut self, n: usize) -> Vec<TxnTrace> {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0xA24B_AED4));
        (0..n)
            .map(|_| {
                let p: f64 = rng.gen();
                let kind = if p < 0.45 {
                    TpccTxnKind::NewOrder
                } else if p < 0.88 {
                    TpccTxnKind::Payment
                } else if p < 0.92 {
                    TpccTxnKind::OrderStatus
                } else if p < 0.96 {
                    TpccTxnKind::Delivery
                } else {
                    TpccTxnKind::StockLevel
                };
                self.one(kind)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_follows_spec_proportions() {
        let mut b = TpccWorkloadBuilder::new(TpccScale::mini(), 1);
        let txns = b.mixed(60);
        let new_orders = txns.iter().filter(|t| t.type_name() == "NewOrder").count();
        let payments = txns.iter().filter(|t| t.type_name() == "Payment").count();
        // New Order + Payment dominate (≈ 88 %).
        assert!(
            new_orders + payments > 60 * 7 / 10,
            "NO {new_orders} + P {payments}"
        );
    }

    #[test]
    fn same_type_instances_are_distinct() {
        let mut b = TpccWorkloadBuilder::new(TpccScale::mini(), 3);
        let txns = b.same_type(TpccTxnKind::Payment, 3);
        assert_ne!(txns[0].refs(), txns[1].refs());
        assert_ne!(txns[1].refs(), txns[2].refs());
        assert!(txns.iter().all(|t| t.type_name() == "Payment"));
    }

    #[test]
    fn builder_is_deterministic() {
        let run = || {
            let mut b = TpccWorkloadBuilder::new(TpccScale::mini(), 5);
            b.mixed(3)
                .iter()
                .map(|t| t.instr_total())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
