//! Instruction-footprint measurement (Table 3, Figure 1 tags).
//!
//! The hybrid mechanism of Section 5.5 profiles the per-type instruction
//! footprint into an FPTable, in L1-I-size units. This module computes the
//! same quantity offline from traces (the online profiling path lives in
//! the `strex` crate's hybrid scheduler and must agree with these numbers).

use std::collections::{BTreeMap, HashSet};

use crate::trace::TxnTrace;

/// Per-type average footprint over a set of instances.
#[derive(Clone, Debug, PartialEq)]
pub struct FootprintReport {
    /// `(type name, average unique code bytes, footprint units)` per type.
    pub entries: Vec<FootprintEntry>,
    /// L1-I bytes used as the unit.
    pub l1i_bytes: u64,
}

/// One type's footprint measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct FootprintEntry {
    /// Transaction type name.
    pub name: &'static str,
    /// Average unique code bytes per instance.
    pub avg_bytes: u64,
    /// Average footprint in L1-I units, rounded to nearest like the paper's
    /// FPTable ("rounded off to L1-I cache size units").
    pub units: u64,
    /// Instances measured.
    pub instances: usize,
}

/// Measures average per-type footprints across `txns`.
///
/// # Examples
///
/// ```
/// use strex_oltp::footprint::measure;
/// use strex_oltp::tpcc::{TpccScale, TpccTxnKind, TpccWorkloadBuilder};
///
/// let mut b = TpccWorkloadBuilder::new(TpccScale::mini(), 1);
/// let txns = b.same_type(TpccTxnKind::Payment, 2);
/// let report = measure(&txns, 32 * 1024);
/// assert_eq!(report.entries.len(), 1);
/// assert_eq!(report.entries[0].name, "Payment");
/// ```
pub fn measure(txns: &[TxnTrace], l1i_bytes: u64) -> FootprintReport {
    let mut by_type: BTreeMap<&'static str, (u64, usize)> = BTreeMap::new();
    for t in txns {
        let bytes = t.unique_code_blocks() as u64 * strex_sim::addr::BLOCK_SIZE;
        let e = by_type.entry(t.type_name()).or_insert((0, 0));
        e.0 += bytes;
        e.1 += 1;
    }
    let entries = by_type
        .into_iter()
        .map(|(name, (total, n))| {
            let avg = total / n as u64;
            FootprintEntry {
                name,
                avg_bytes: avg,
                units: ((avg as f64 / l1i_bytes as f64).round() as u64).max(1),
                instances: n,
            }
        })
        .collect();
    FootprintReport { entries, l1i_bytes }
}

/// Jaccard overlap of the unique code blocks of two traces — the quantity
/// behind the Section 2.2 observations.
pub fn code_overlap(a: &TxnTrace, b: &TxnTrace) -> f64 {
    let sa: HashSet<u64> = a
        .refs()
        .iter()
        .filter_map(|r| r.fetch_block().map(|blk| blk.index()))
        .collect();
    let sb: HashSet<u64> = b
        .refs()
        .iter()
        .filter_map(|r| r.fetch_block().map(|blk| blk.index()))
        .collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcc::{TpccScale, TpccTxnKind, TpccWorkloadBuilder};

    #[test]
    fn measure_groups_by_type() {
        let mut b = TpccWorkloadBuilder::new(TpccScale::mini(), 1);
        let mut txns = b.same_type(TpccTxnKind::Payment, 2);
        txns.extend(b.same_type(TpccTxnKind::StockLevel, 3));
        let r = measure(&txns, 32 * 1024);
        assert_eq!(r.entries.len(), 2);
        let payment = r.entries.iter().find(|e| e.name == "Payment").unwrap();
        assert_eq!(payment.instances, 2);
        assert!(payment.units >= 1);
    }

    #[test]
    fn same_type_overlap_exceeds_cross_type() {
        let mut b = TpccWorkloadBuilder::new(TpccScale::mini(), 2);
        let p1 = b.one(TpccTxnKind::Payment);
        let p2 = b.one(TpccTxnKind::Payment);
        let sl = b.one(TpccTxnKind::StockLevel);
        assert!(code_overlap(&p1, &p2) > code_overlap(&p1, &sl));
    }

    #[test]
    fn heavier_types_report_more_units() {
        let mut b = TpccWorkloadBuilder::new(TpccScale::mini(), 3);
        let mut txns = b.same_type(TpccTxnKind::NewOrder, 2);
        txns.extend(b.same_type(TpccTxnKind::StockLevel, 2));
        let r = measure(&txns, 32 * 1024);
        let units = |n: &str| r.entries.iter().find(|e| e.name == n).unwrap().units;
        assert!(units("NewOrder") > units("StockLevel"));
    }

    #[test]
    fn empty_traces_full_overlap() {
        use strex_sim::ids::TxnTypeId;
        let a = TxnTrace::new(TxnTypeId::new(0), "a", Vec::new());
        let b = TxnTrace::new(TxnTypeId::new(0), "b", Vec::new());
        assert_eq!(code_overlap(&a, &b), 1.0);
    }
}
