//! MapReduce control workload (Table 1: Hadoop/Mahout over Wikipedia).
//!
//! In the paper, MapReduce's role is a robustness check: its instruction
//! footprint *fits in the L1-I*, so a correct STREX must leave it untouched
//! (misses within 1 % of baseline, identical throughput — Sections 5.2 and
//! 5.3). The model reproduces the operative property: each of many worker
//! tasks loops over a small (< 32 KB) shared code region while streaming
//! through a large private data buffer with a small shared dictionary.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use strex_sim::addr::{Addr, AddrRange};
use strex_sim::ids::TxnTypeId;

use crate::codepath::{TraceBuilder, WalkConfig};
use crate::layout::CodeLayout;
#[cfg(test)]
use crate::trace::MemRef;
use crate::trace::TxnTrace;

/// Private input-buffer bytes per task.
const TASK_BUFFER: u64 = 256 * 1024;
/// Shared dictionary bytes (hot lookup structure).
const DICTIONARY: u64 = 16 * 1024;
/// Map/reduce loop code bytes — comfortably inside a 32 KB L1-I.
const TASK_CODE: u64 = 20 * 1024;
/// Base of the task data area.
const DATA_BASE: u64 = 0xC000_0000;

/// Task flavor (map tasks read input; reduce tasks also write output).
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum TaskKind {
    /// A map task.
    Map,
    /// A reduce task.
    Reduce,
}

impl TaskKind {
    /// Stable type id.
    pub fn type_id(self) -> TxnTypeId {
        TxnTypeId::new(match self {
            TaskKind::Map => 0,
            TaskKind::Reduce => 1,
        })
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TaskKind::Map => "Map",
            TaskKind::Reduce => "Reduce",
        }
    }
}

/// Generates MapReduce task traces.
///
/// # Examples
///
/// ```
/// use strex_oltp::mapreduce::MapReduceBuilder;
///
/// let mut b = MapReduceBuilder::new(5);
/// let tasks = b.tasks(4);
/// assert_eq!(tasks.len(), 4);
/// assert!(tasks[0].unique_code_blocks() * 64 < 32 * 1024, "fits in L1-I");
/// ```
#[derive(Debug)]
pub struct MapReduceBuilder {
    code_map: AddrRange,
    code_reduce: AddrRange,
    dictionary: AddrRange,
    seed: u64,
    next_ordinal: u64,
}

impl MapReduceBuilder {
    /// Creates the builder; all randomness flows from `seed`.
    pub fn new(seed: u64) -> Self {
        let mut layout = CodeLayout::new();
        MapReduceBuilder {
            code_map: layout.alloc_action(TASK_CODE),
            code_reduce: layout.alloc_action(TASK_CODE),
            dictionary: AddrRange::new(Addr::new(DATA_BASE), DICTIONARY),
            seed,
            next_ordinal: 0,
        }
    }

    /// Builds one task of `kind`.
    pub fn task(&mut self, kind: TaskKind) -> TxnTrace {
        let ordinal = self.next_ordinal;
        self.next_ordinal += 1;
        let mut rng = StdRng::seed_from_u64(self.seed ^ ordinal.wrapping_mul(0x5851_F42D));
        let stack = AddrRange::new(Addr::new(0xFC00_0000 + ordinal * 8 * 1024), 8 * 1024);
        // Tight loops, almost no divergence: analytics kernels are regular.
        let walk = WalkConfig {
            skip_prob: 0.01,
            backjump_prob: 0.0,
            backjump_span: 4,
            data_per_block: 3,
        };
        let mut tb = TraceBuilder::new(stack, walk);
        let code = match kind {
            TaskKind::Map => self.code_map,
            TaskKind::Reduce => self.code_reduce,
        };
        let buffer = AddrRange::new(
            Addr::new(DATA_BASE + DICTIONARY + ordinal * TASK_BUFFER),
            TASK_BUFFER,
        );
        // The task loops over its kernel, streaming through the buffer.
        let iterations = 12;
        let mut offset = 0u64;
        for _ in 0..iterations {
            // Queue streaming input reads + a dictionary probe.
            for _ in 0..24 {
                use crate::engine::sink::DataSink;
                tb.load(buffer.start().offset(offset % TASK_BUFFER));
                offset += 64;
                if rng.gen_bool(0.3) {
                    let slot = rng.gen_range(0..DICTIONARY / 64) * 64;
                    tb.load(self.dictionary.start().offset(slot));
                }
                if kind == TaskKind::Reduce && rng.gen_bool(0.2) {
                    tb.store(buffer.start().offset(offset % TASK_BUFFER));
                }
            }
            tb.walk(code, &mut rng);
        }
        tb.finish(kind.type_id(), kind.name())
    }

    /// Builds `n` tasks alternating map and reduce (the paper uses 300
    /// single-task threads).
    pub fn tasks(&mut self, n: usize) -> Vec<TxnTrace> {
        (0..n)
            .map(|i| {
                self.task(if i % 4 == 3 {
                    TaskKind::Reduce
                } else {
                    TaskKind::Map
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_fits_in_l1i() {
        let mut b = MapReduceBuilder::new(1);
        let t = b.task(TaskKind::Map);
        let bytes = t.unique_code_blocks() as u64 * 64;
        assert!(bytes < 32 * 1024, "footprint {bytes} must fit in L1-I");
        assert!(bytes > 8 * 1024, "but be non-trivial: {bytes}");
    }

    #[test]
    fn code_is_reused_across_iterations() {
        let mut b = MapReduceBuilder::new(2);
        let t = b.task(TaskKind::Map);
        let fetches = t
            .refs()
            .iter()
            .filter(|r| r.fetch_block().is_some())
            .count();
        assert!(
            fetches > 4 * t.unique_code_blocks(),
            "loops must refetch the kernel"
        );
    }

    #[test]
    fn reduce_tasks_write_output() {
        let mut b = MapReduceBuilder::new(3);
        let t = b.task(TaskKind::Reduce);
        let stores = t
            .refs()
            .iter()
            .filter(|r| matches!(r.decode(), MemRef::Store { addr } if addr.value() >= DATA_BASE && addr.value() < 0xF000_0000))
            .count();
        assert!(stores > 0, "reduce must write its buffer");
    }

    #[test]
    fn tasks_have_private_buffers() {
        let mut b = MapReduceBuilder::new(4);
        let t0 = b.task(TaskKind::Map);
        let t1 = b.task(TaskKind::Map);
        let bufs = |t: &TxnTrace| -> std::collections::HashSet<u64> {
            t.refs()
                .iter()
                .filter_map(|r| match r.decode() {
                    MemRef::Load { addr }
                        if addr.value() >= DATA_BASE + DICTIONARY && addr.value() < 0xF000_0000 =>
                    {
                        Some(addr.value())
                    }
                    _ => None,
                })
                .collect()
        };
        assert!(bufs(&t0).is_disjoint(&bufs(&t1)), "buffers must be private");
    }

    #[test]
    fn mixed_task_list() {
        let mut b = MapReduceBuilder::new(5);
        let ts = b.tasks(8);
        let reduces = ts.iter().filter(|t| t.type_name() == "Reduce").count();
        assert_eq!(reduces, 2);
    }
}
