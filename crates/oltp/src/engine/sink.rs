//! The data-access sink engine operations report into.
//!
//! Storage-engine operations (B+tree probes, heap reads, lock acquisitions,
//! log appends) do not build traces themselves; they announce every byte
//! they touch to a [`DataSink`]. The trace builder implements the trait by
//! interleaving the reported accesses with the instruction fetches of the
//! library code "executing" the operation.

use strex_sim::addr::Addr;

/// Receiver of the data accesses an engine operation performs.
pub trait DataSink {
    /// The operation read `addr`.
    fn load(&mut self, addr: Addr);
    /// The operation wrote `addr`.
    fn store(&mut self, addr: Addr);
}

/// A sink that simply records accesses, for tests and footprint analyses.
#[derive(Clone, Debug, Default)]
pub struct RecordingSink {
    /// `(addr, is_write)` pairs in access order.
    pub accesses: Vec<(Addr, bool)>,
}

impl RecordingSink {
    /// Creates an empty recording sink.
    pub fn new() -> Self {
        RecordingSink::default()
    }

    /// Number of recorded accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Number of recorded writes.
    pub fn writes(&self) -> usize {
        self.accesses.iter().filter(|(_, w)| *w).count()
    }
}

impl DataSink for RecordingSink {
    fn load(&mut self, addr: Addr) {
        self.accesses.push((addr, false));
    }

    fn store(&mut self, addr: Addr) {
        self.accesses.push((addr, true));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_sink_orders_accesses() {
        let mut s = RecordingSink::new();
        s.load(Addr::new(1));
        s.store(Addr::new(2));
        s.load(Addr::new(3));
        assert_eq!(s.len(), 3);
        assert_eq!(s.writes(), 1);
        assert_eq!(s.accesses[1], (Addr::new(2), true));
        assert!(!s.is_empty());
    }
}
