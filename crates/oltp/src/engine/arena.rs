//! Bump-allocated synthetic physical address space for the storage engine.
//!
//! Every engine structure (B+tree nodes, heap pages, lock words, log
//! buffers, catalog metadata) lives at a stable address handed out by an
//! [`Arena`]. Data accesses in transaction traces therefore point at *real*
//! structure locations, so sharing patterns (everyone reads the same index
//! root, everyone bumps the same table tail page) emerge from the data
//! structures themselves rather than from tuned constants.

use strex_sim::addr::{Addr, AddrRange, BLOCK_SIZE};

/// Base of the data address space, far from the code regions.
pub const DATA_BASE: u64 = 0x8000_0000;

/// A bump allocator over the synthetic data address space.
///
/// # Examples
///
/// ```
/// use strex_oltp::engine::arena::Arena;
///
/// let mut arena = Arena::new();
/// let a = arena.alloc(100, "lock-table");
/// let b = arena.alloc(100, "log");
/// assert!(b.start().value() >= a.end().value());
/// ```
#[derive(Clone, Debug)]
pub struct Arena {
    cursor: u64,
    allocated: u64,
    regions: Vec<(&'static str, AddrRange)>,
}

impl Default for Arena {
    fn default() -> Self {
        Arena::new()
    }
}

impl Arena {
    /// Creates an empty arena at [`DATA_BASE`].
    pub fn new() -> Self {
        Arena {
            cursor: DATA_BASE,
            allocated: 0,
            regions: Vec::new(),
        }
    }

    /// Allocates `bytes` bytes, block-aligned, labelled `label`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn alloc(&mut self, bytes: u64, label: &'static str) -> AddrRange {
        assert!(bytes > 0, "zero-sized allocation");
        let aligned = bytes.div_ceil(BLOCK_SIZE) * BLOCK_SIZE;
        let range = AddrRange::new(Addr::new(self.cursor), aligned);
        self.cursor += aligned;
        self.allocated += aligned;
        self.regions.push((label, range));
        range
    }

    /// Total bytes allocated (the workload's raw data footprint).
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated
    }

    /// Labelled regions allocated so far, in allocation order.
    pub fn regions(&self) -> &[(&'static str, AddrRange)] {
        &self.regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_block_aligned_and_disjoint() {
        let mut a = Arena::new();
        let r1 = a.alloc(1, "a");
        let r2 = a.alloc(65, "b");
        assert_eq!(r1.len(), BLOCK_SIZE);
        assert_eq!(r2.len(), 2 * BLOCK_SIZE);
        assert_eq!(r1.end().value(), r2.start().value());
        assert_eq!(r1.start().value() % BLOCK_SIZE, 0);
    }

    #[test]
    fn footprint_accumulates() {
        let mut a = Arena::new();
        a.alloc(64, "x");
        a.alloc(128, "y");
        assert_eq!(a.allocated_bytes(), 192);
        assert_eq!(a.regions().len(), 2);
        assert_eq!(a.regions()[0].0, "x");
    }

    #[test]
    #[should_panic(expected = "zero-sized allocation")]
    fn zero_alloc_panics() {
        let mut a = Arena::new();
        let _ = a.alloc(0, "bad");
    }
}
