//! The storage-manager model: the Shore-MT-equivalent substrate.
//!
//! The paper runs TPC-C and TPC-E on the Shore-MT storage manager. This
//! module is the reproduction's stand-in: B+tree indexes, slotted heap
//! tables, a lock manager, a write-ahead log and buffer-pool metadata, all
//! living at stable addresses in a synthetic physical address space. Engine
//! operations report the bytes they touch to a [`sink::DataSink`], and the
//! workload generators interleave those accesses with the instruction
//! fetches of the code regions "executing" them.
//!
//! What matters for the reproduction is that the *access patterns* are
//! structural, not synthetic: every probe of an index really walks from the
//! shared root; every insert really dirties the shared tail page; every
//! commit really appends at the shared log tail.

pub mod arena;
pub mod btree;
pub mod buffer;
pub mod heap;
pub mod lock;
pub mod sink;
pub mod wal;

pub use arena::Arena;
pub use btree::BTree;
pub use buffer::BufferPool;
pub use heap::HeapTable;
pub use lock::{LockManager, LockMode};
pub use sink::{DataSink, RecordingSink};
pub use wal::Wal;
