//! Lock manager: a hashed lock table plus per-table latches.
//!
//! Same-type transactions "access the same metadata and locks of the same
//! tables ... and they tend to do so in the same sequence" (Section 5.2) —
//! this module is where that happens. Acquiring a logical lock reads and
//! writes a lock word in a shared hash table; every operation on a table
//! also bumps that table's latch word. Under conventional scheduling these
//! writes ping-pong between cores; under STREX a team's accesses serialize
//! on one core and stay resident in its L1-D.

use strex_sim::addr::{Addr, AddrRange};

use super::arena::Arena;
use super::sink::DataSink;

/// Number of buckets in the lock hash table.
const BUCKETS: u64 = 4096;
/// Bytes per lock word/bucket entry.
const ENTRY_BYTES: u64 = 16;

/// Lock modes (only the access pattern differs: shared locks still write the
/// holder count word, as in a real lock manager).
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum LockMode {
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

/// The lock manager.
///
/// # Examples
///
/// ```
/// use strex_oltp::engine::arena::Arena;
/// use strex_oltp::engine::lock::{LockManager, LockMode};
/// use strex_oltp::engine::sink::RecordingSink;
///
/// let mut arena = Arena::new();
/// let mut lm = LockManager::new(&mut arena, 8);
/// let mut sink = RecordingSink::new();
/// lm.acquire(0, 42, LockMode::Exclusive, &mut sink);
/// lm.release(0, 42, &mut sink);
/// ```
#[derive(Clone, Debug)]
pub struct LockManager {
    table: AddrRange,
    latches: AddrRange,
    stats: AddrRange,
    n_tables: u64,
    acquisitions: u64,
}

impl LockManager {
    /// Creates a lock manager serving `n_tables` tables.
    ///
    /// # Panics
    ///
    /// Panics if `n_tables` is zero.
    pub fn new(arena: &mut Arena, n_tables: u64) -> Self {
        assert!(n_tables > 0, "need at least one table");
        LockManager {
            table: arena.alloc(BUCKETS * ENTRY_BYTES, "lock-table"),
            latches: arena.alloc(n_tables * 64, "table-latches"),
            stats: arena.alloc(8 * 64, "global-stats"),
            n_tables,
            acquisitions: 0,
        }
    }

    fn bucket_addr(&self, table: u64, key: u64) -> Addr {
        let h = (table
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(key)
            .wrapping_mul(0xFF51_AFD7_ED55_8CCD))
            % BUCKETS;
        self.table.start().offset(h * ENTRY_BYTES)
    }

    /// Address of a table's latch word — one hot shared block per table.
    pub fn latch_addr(&self, table: u64) -> Addr {
        self.latches.start().offset((table % self.n_tables) * 64)
    }

    /// Takes the table latch (read-modify-write of the latch word).
    pub fn latch(&mut self, table: u64, sink: &mut dyn DataSink) {
        let a = self.latch_addr(table);
        sink.load(a);
        sink.store(a);
    }

    /// Acquires a logical lock on `(table, key)`.
    pub fn acquire(&mut self, table: u64, key: u64, mode: LockMode, sink: &mut dyn DataSink) {
        self.latch(table, sink);
        let bucket = self.bucket_addr(table, key);
        sink.load(bucket);
        // Both modes write: shared locks bump a holder count, exclusive
        // locks take ownership.
        sink.store(bucket);
        // Global statistics counter (lock-manager bookkeeping) — volatile
        // shared words every transaction in the system bumps, a classic
        // OLTP coherence hog under conventional multi-core scheduling.
        let counter = self.stats.start().offset((table % 8) * 64);
        sink.load(counter);
        sink.store(counter);
        let _ = mode;
        self.acquisitions += 1;
    }

    /// Releases the lock on `(table, key)`.
    pub fn release(&mut self, table: u64, key: u64, sink: &mut dyn DataSink) {
        let bucket = self.bucket_addr(table, key);
        sink.load(bucket);
        sink.store(bucket);
    }

    /// Total acquisitions performed (diagnostic).
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::sink::RecordingSink;

    fn mgr() -> (LockManager, Arena) {
        let mut arena = Arena::new();
        let lm = LockManager::new(&mut arena, 4);
        (lm, arena)
    }

    #[test]
    fn same_key_hits_same_bucket() {
        let (mut lm, _a) = mgr();
        let mut s1 = RecordingSink::new();
        let mut s2 = RecordingSink::new();
        lm.acquire(1, 99, LockMode::Shared, &mut s1);
        lm.acquire(1, 99, LockMode::Exclusive, &mut s2);
        // Last access of each acquisition is the bucket store.
        assert_eq!(s1.accesses.last(), s2.accesses.last());
    }

    #[test]
    fn different_keys_usually_differ() {
        let (lm, _a) = mgr();
        let spread: std::collections::HashSet<u64> =
            (0..100).map(|k| lm.bucket_addr(0, k).value()).collect();
        assert!(spread.len() > 50, "hash must spread keys");
    }

    #[test]
    fn acquire_writes_latch_bucket_and_stats() {
        let (mut lm, _a) = mgr();
        let mut s = RecordingSink::new();
        lm.acquire(2, 7, LockMode::Exclusive, &mut s);
        assert_eq!(s.writes(), 3, "latch store + bucket store + stats bump");
        assert_eq!(lm.acquisitions(), 1);
    }

    #[test]
    fn stats_counters_are_shared_hot_words() {
        let (mut lm, _a) = mgr();
        let mut s1 = RecordingSink::new();
        let mut s2 = RecordingSink::new();
        // Same table from "different transactions" bumps the same counter.
        lm.acquire(1, 10, LockMode::Shared, &mut s1);
        lm.acquire(1, 999, LockMode::Exclusive, &mut s2);
        assert_eq!(
            s1.accesses.last(),
            s2.accesses.last(),
            "per-table stats word must be shared"
        );
    }

    #[test]
    fn latch_addr_is_per_table() {
        let (lm, _a) = mgr();
        assert_ne!(lm.latch_addr(0), lm.latch_addr(1));
        assert_eq!(lm.latch_addr(0), lm.latch_addr(4), "wraps at n_tables");
    }

    #[test]
    fn release_touches_bucket_only() {
        let (mut lm, _a) = mgr();
        let mut s = RecordingSink::new();
        lm.release(0, 1, &mut s);
        assert_eq!(s.len(), 2);
        assert_eq!(s.writes(), 1);
    }
}
