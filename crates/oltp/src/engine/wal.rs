//! Write-ahead log: an append-only ring whose tail every committing
//! transaction writes — the single hottest shared-write structure in any
//! OLTP engine, and a major contributor to coherence traffic under
//! conventional scheduling.

use strex_sim::addr::{Addr, AddrRange, BLOCK_SIZE};

use super::arena::Arena;
use super::sink::DataSink;

/// The write-ahead log.
///
/// # Examples
///
/// ```
/// use strex_oltp::engine::arena::Arena;
/// use strex_oltp::engine::sink::RecordingSink;
/// use strex_oltp::engine::wal::Wal;
///
/// let mut arena = Arena::new();
/// let mut wal = Wal::new(&mut arena, 64 * 1024);
/// let mut sink = RecordingSink::new();
/// wal.append(100, &mut sink);
/// assert!(wal.appended_bytes() >= 100);
/// ```
#[derive(Clone, Debug)]
pub struct Wal {
    buffer: AddrRange,
    tail: u64,
    appended: u64,
}

impl Wal {
    /// Creates a log with a `buffer_bytes` ring buffer.
    ///
    /// # Panics
    ///
    /// Panics if `buffer_bytes` is smaller than one block.
    pub fn new(arena: &mut Arena, buffer_bytes: u64) -> Self {
        assert!(buffer_bytes >= BLOCK_SIZE, "log buffer too small");
        Wal {
            buffer: arena.alloc(buffer_bytes, "wal"),
            tail: 0,
            appended: 0,
        }
    }

    /// Address of the current tail block (the contended insertion point).
    pub fn tail_addr(&self) -> Addr {
        self.buffer.start().offset(self.tail % self.buffer.len())
    }

    /// Appends a `bytes`-byte log record: reads the tail pointer (shared),
    /// then writes the covered buffer blocks.
    pub fn append(&mut self, bytes: u64, sink: &mut dyn DataSink) {
        // Claim space: read-modify-write of the tail pointer, which lives in
        // the first block of the buffer region.
        sink.load(self.buffer.start());
        sink.store(self.buffer.start());
        let start = self.tail;
        let end = start + bytes.max(1);
        let mut blk = start / BLOCK_SIZE;
        while blk * BLOCK_SIZE < end {
            let off = (blk * BLOCK_SIZE) % self.buffer.len();
            sink.store(self.buffer.start().offset(off));
            blk += 1;
        }
        self.tail = end;
        self.appended += bytes;
    }

    /// Total bytes appended.
    pub fn appended_bytes(&self) -> u64 {
        self.appended
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::sink::RecordingSink;

    #[test]
    fn append_writes_covered_blocks() {
        let mut arena = Arena::new();
        let mut wal = Wal::new(&mut arena, 4096);
        let mut s = RecordingSink::new();
        wal.append(200, &mut s);
        // Tail pointer RMW + ceil(200/64)=4 block writes.
        assert!(s.writes() >= 4);
        assert_eq!(wal.appended_bytes(), 200);
    }

    #[test]
    fn consecutive_appends_advance_tail() {
        let mut arena = Arena::new();
        let mut wal = Wal::new(&mut arena, 4096);
        let mut s = RecordingSink::new();
        let t0 = wal.tail_addr();
        wal.append(64, &mut s);
        assert_ne!(wal.tail_addr(), t0);
    }

    #[test]
    fn ring_wraps_around() {
        let mut arena = Arena::new();
        let mut wal = Wal::new(&mut arena, 256);
        let mut s = RecordingSink::new();
        for _ in 0..10 {
            wal.append(100, &mut s);
        }
        // Tail stays inside the buffer.
        assert!(wal.tail_addr().value() < wal.buffer.end().value());
        assert!(wal.tail_addr().value() >= wal.buffer.start().value());
    }

    #[test]
    fn every_append_touches_tail_pointer() {
        let mut arena = Arena::new();
        let mut wal = Wal::new(&mut arena, 4096);
        let mut s = RecordingSink::new();
        wal.append(1, &mut s);
        assert_eq!(s.accesses[0], (wal.buffer.start(), false));
        assert_eq!(s.accesses[1], (wal.buffer.start(), true));
    }
}
