//! Buffer-pool metadata: the page table every page access consults.
//!
//! The paper's workloads run with the database fully cached in the buffer
//! pool (Section 5.1), so no I/O occurs — but every logical page access
//! still probes the buffer manager's hash table and occasionally bumps
//! replacement metadata. Those probes are read-mostly shared accesses that
//! all same-type transactions repeat in the same order.

use strex_sim::addr::{Addr, AddrRange};

use super::arena::Arena;
use super::sink::DataSink;

/// Buckets in the page-table hash.
const BUCKETS: u64 = 8192;
/// Bytes per frame descriptor.
const DESC_BYTES: u64 = 64;
/// A replacement-metadata write happens once per this many pins.
const TOUCH_PERIOD: u64 = 16;

/// The buffer-pool page table.
///
/// # Examples
///
/// ```
/// use strex_oltp::engine::arena::Arena;
/// use strex_oltp::engine::buffer::BufferPool;
/// use strex_oltp::engine::sink::RecordingSink;
/// use strex_sim::addr::Addr;
///
/// let mut arena = Arena::new();
/// let mut bp = BufferPool::new(&mut arena);
/// let mut sink = RecordingSink::new();
/// bp.pin(Addr::new(0x8000_0000), &mut sink);
/// ```
#[derive(Clone, Debug)]
pub struct BufferPool {
    page_table: AddrRange,
    pins: u64,
}

impl BufferPool {
    /// Creates the page table.
    pub fn new(arena: &mut Arena) -> Self {
        BufferPool {
            page_table: arena.alloc(BUCKETS * DESC_BYTES, "buffer-page-table"),
            pins: 0,
        }
    }

    fn descriptor_addr(&self, page_addr: Addr) -> Addr {
        let page = page_addr.value() >> 12; // 4 KB pages
        let h = page.wrapping_mul(0x2545_F491_4F6C_DD1D) % BUCKETS;
        self.page_table.start().offset(h * DESC_BYTES)
    }

    /// Pins the page containing `page_addr`: reads its frame descriptor and
    /// periodically updates replacement metadata.
    pub fn pin(&mut self, page_addr: Addr, sink: &mut dyn DataSink) {
        let desc = self.descriptor_addr(page_addr);
        sink.load(desc);
        self.pins += 1;
        if self.pins.is_multiple_of(TOUCH_PERIOD) {
            sink.store(desc);
        }
    }

    /// Total pins performed.
    pub fn pins(&self) -> u64 {
        self.pins
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::sink::RecordingSink;

    #[test]
    fn pin_reads_descriptor() {
        let mut arena = Arena::new();
        let mut bp = BufferPool::new(&mut arena);
        let mut s = RecordingSink::new();
        bp.pin(Addr::new(0x9000_0000), &mut s);
        assert_eq!(s.len(), 1);
        assert_eq!(s.writes(), 0);
        assert_eq!(bp.pins(), 1);
    }

    #[test]
    fn same_page_same_descriptor() {
        let mut arena = Arena::new();
        let bp = BufferPool::new(&mut arena);
        let a = bp.descriptor_addr(Addr::new(0x9000_0000));
        let b = bp.descriptor_addr(Addr::new(0x9000_0040)); // same 4 KB page
        assert_eq!(a, b);
    }

    #[test]
    fn periodic_metadata_write() {
        let mut arena = Arena::new();
        let mut bp = BufferPool::new(&mut arena);
        let mut s = RecordingSink::new();
        for i in 0..32u64 {
            bp.pin(Addr::new(0x9000_0000 + i * 4096), &mut s);
        }
        assert_eq!(s.writes(), 2, "one write per {TOUCH_PERIOD} pins");
    }
}
