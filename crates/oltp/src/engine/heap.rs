//! Heap tables: slotted tuple storage over arena pages.
//!
//! Each table owns a growing sequence of fixed-size pages. Tuples are
//! addressed directly (the B+tree payloads are tuple addresses). Inserts
//! append to the table's tail page — a classically contended block that all
//! concurrent inserters dirty, one of the sharing patterns behind the
//! baseline's rising D-MPKI (Section 5.2).

use strex_sim::addr::{Addr, AddrRange};

use super::arena::Arena;
use super::sink::DataSink;

/// Bytes per heap page.
const PAGE_BYTES: u64 = 4096;

/// A heap table.
///
/// # Examples
///
/// ```
/// use strex_oltp::engine::arena::Arena;
/// use strex_oltp::engine::heap::HeapTable;
/// use strex_oltp::engine::sink::RecordingSink;
///
/// let mut arena = Arena::new();
/// let mut t = HeapTable::new("orders", 128);
/// let mut sink = RecordingSink::new();
/// let tuple = t.insert(&mut arena, &mut sink);
/// t.read(tuple, &mut sink);
/// ```
#[derive(Clone, Debug)]
pub struct HeapTable {
    name: &'static str,
    tuple_bytes: u64,
    pages: Vec<AddrRange>,
    /// Tuples stored so far; also determines the tail-slot position.
    len: u64,
    tuples_per_page: u64,
}

impl HeapTable {
    /// Creates an empty table with `tuple_bytes`-sized rows.
    ///
    /// # Panics
    ///
    /// Panics if `tuple_bytes` is zero or exceeds a page.
    pub fn new(name: &'static str, tuple_bytes: u64) -> Self {
        assert!(
            tuple_bytes > 0 && tuple_bytes <= PAGE_BYTES,
            "tuple size out of range"
        );
        HeapTable {
            name,
            tuple_bytes,
            pages: Vec::new(),
            len: 0,
            tuples_per_page: PAGE_BYTES / tuple_bytes,
        }
    }

    /// Table name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of tuples.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when the table holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn slot_addr(&self, tuple_id: u64) -> Addr {
        let page = (tuple_id / self.tuples_per_page) as usize;
        let slot = tuple_id % self.tuples_per_page;
        self.pages[page].start().offset(slot * self.tuple_bytes)
    }

    /// Appends a tuple; returns its address. Reports the page-header and
    /// slot writes (the tail page is shared by every concurrent inserter).
    pub fn insert(&mut self, arena: &mut Arena, sink: &mut dyn DataSink) -> Addr {
        if self.len.is_multiple_of(self.tuples_per_page) {
            let page = arena.alloc(PAGE_BYTES, "heap-page");
            self.pages.push(page);
        }
        let addr = self.slot_addr(self.len);
        let page = self.pages[self.pages.len() - 1];
        // Bump the slot counter in the page header, then write the tuple.
        sink.store(page.start());
        sink.store(addr);
        if self.tuple_bytes > strex_sim::addr::BLOCK_SIZE {
            sink.store(addr.offset(self.tuple_bytes - 1));
        }
        self.len += 1;
        addr
    }

    /// Reads the tuple at `addr`, touching every cache block it spans.
    pub fn read(&self, addr: Addr, sink: &mut dyn DataSink) {
        let mut off = 0;
        while off < self.tuple_bytes {
            sink.load(addr.offset(off));
            off += strex_sim::addr::BLOCK_SIZE;
        }
        sink.load(addr.offset(self.tuple_bytes - 1));
    }

    /// Rewrites part of the tuple at `addr` (read-modify-write).
    pub fn update(&self, addr: Addr, sink: &mut dyn DataSink) {
        sink.load(addr);
        sink.store(addr);
    }

    /// Address of tuple `tuple_id` for id-based navigation.
    ///
    /// # Panics
    ///
    /// Panics if `tuple_id >= len()`.
    pub fn tuple_addr(&self, tuple_id: u64) -> Addr {
        assert!(tuple_id < self.len, "tuple id out of bounds");
        self.slot_addr(tuple_id)
    }

    /// Data footprint in bytes (whole pages).
    pub fn bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::sink::RecordingSink;

    #[test]
    fn inserts_advance_addresses() {
        let mut arena = Arena::new();
        let mut t = HeapTable::new("t", 100);
        let mut sink = RecordingSink::new();
        let a = t.insert(&mut arena, &mut sink);
        let b = t.insert(&mut arena, &mut sink);
        assert_eq!(b.value() - a.value(), 100);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn page_rollover_allocates_new_page() {
        let mut arena = Arena::new();
        let mut t = HeapTable::new("t", 1024); // 4 per page
        let mut sink = RecordingSink::new();
        let addrs: Vec<_> = (0..5).map(|_| t.insert(&mut arena, &mut sink)).collect();
        assert_eq!(t.bytes(), 2 * PAGE_BYTES);
        // Fifth tuple lands on the second page.
        assert!(addrs[4].value() >= addrs[0].value() + PAGE_BYTES);
    }

    #[test]
    fn tuple_addr_navigates_by_id() {
        let mut arena = Arena::new();
        let mut t = HeapTable::new("t", 64);
        let mut sink = RecordingSink::new();
        let a0 = t.insert(&mut arena, &mut sink);
        let a1 = t.insert(&mut arena, &mut sink);
        assert_eq!(t.tuple_addr(0), a0);
        assert_eq!(t.tuple_addr(1), a1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn tuple_addr_bounds_checked() {
        let t = HeapTable::new("t", 64);
        let _ = t.tuple_addr(0);
    }

    #[test]
    fn insert_dirties_header_and_slot() {
        let mut arena = Arena::new();
        let mut t = HeapTable::new("t", 64);
        let mut sink = RecordingSink::new();
        t.insert(&mut arena, &mut sink);
        assert!(sink.writes() >= 2, "header bump + tuple write");
    }

    #[test]
    fn wide_tuples_touch_every_block() {
        let mut arena = Arena::new();
        let mut t = HeapTable::new("t", 256);
        let mut sink = RecordingSink::new();
        let a = t.insert(&mut arena, &mut sink);
        let mut read_sink = RecordingSink::new();
        t.read(a, &mut read_sink);
        // 256-byte tuple spans 4 blocks + the trailing-byte touch.
        assert_eq!(read_sink.len(), 5);
    }

    #[test]
    #[should_panic(expected = "tuple size out of range")]
    fn oversized_tuple_panics() {
        let _ = HeapTable::new("t", PAGE_BYTES + 1);
    }
}
