//! B+tree index over arena-allocated nodes.
//!
//! The index maps `u64` keys to `u64` payloads (tuple addresses). Nodes are
//! real arena allocations, so a probe's data accesses — root block, inner
//! node blocks along the descent, leaf block — happen at the addresses every
//! concurrent transaction shares. That sharing (everyone reads the same
//! root, inserts dirty the same right-edge leaves) is the substrate for the
//! paper's coherence-driven D-MPKI observations (Section 5.2).

use strex_sim::addr::{Addr, AddrRange};

use super::arena::Arena;
use super::sink::DataSink;

/// Maximum keys per node; chosen so a node spans a handful of cache blocks
/// like a real slotted index page.
const FANOUT: usize = 16;

/// Bytes per node allocated from the arena (header + slots).
const NODE_BYTES: u64 = 512;

#[derive(Clone, Debug)]
struct Node {
    range: AddrRange,
    keys: Vec<u64>,
    /// Leaf: payloads; inner: child node ids (index into `nodes`).
    values: Vec<u64>,
    is_leaf: bool,
}

impl Node {
    fn header_addr(&self) -> Addr {
        self.range.start()
    }

    /// Address of the slot holding key index `i` (a few keys per block).
    fn slot_addr(&self, i: usize) -> Addr {
        self.range.start().offset(64 + (i as u64) * 16)
    }
}

/// A B+tree index.
///
/// # Examples
///
/// ```
/// use strex_oltp::engine::arena::Arena;
/// use strex_oltp::engine::btree::BTree;
/// use strex_oltp::engine::sink::RecordingSink;
///
/// let mut arena = Arena::new();
/// let mut idx = BTree::new(&mut arena, "i_customer");
/// let mut sink = RecordingSink::new();
/// idx.insert(42, 0xdead, &mut arena, &mut sink);
/// assert_eq!(idx.search(42, &mut sink), Some(0xdead));
/// ```
#[derive(Clone, Debug)]
pub struct BTree {
    name: &'static str,
    nodes: Vec<Node>,
    root: usize,
    len: usize,
}

impl BTree {
    /// Creates an empty index whose nodes come from `arena`.
    pub fn new(arena: &mut Arena, name: &'static str) -> Self {
        let root_range = arena.alloc(NODE_BYTES, "btree-node");
        BTree {
            name,
            nodes: vec![Node {
                range: root_range,
                keys: Vec::new(),
                values: Vec::new(),
                is_leaf: true,
            }],
            root: 0,
            len: 0,
        }
    }

    /// Index name (for diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of levels from root to leaf.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut n = self.root;
        while !self.nodes[n].is_leaf {
            n = self.nodes[n].values[0] as usize;
            h += 1;
        }
        h
    }

    /// Address of the root header — the hottest shared read in the system.
    pub fn root_addr(&self) -> Addr {
        self.nodes[self.root].header_addr()
    }

    fn alloc_node(&mut self, arena: &mut Arena, is_leaf: bool) -> usize {
        let range = arena.alloc(NODE_BYTES, "btree-node");
        self.nodes.push(Node {
            range,
            keys: Vec::new(),
            values: Vec::new(),
            is_leaf,
        });
        self.nodes.len() - 1
    }

    /// Descends from the root to the leaf that owns `key`, reporting the
    /// node blocks read along the way. Returns the node id path.
    fn descend(&self, key: u64, sink: &mut dyn DataSink) -> Vec<usize> {
        let mut path = vec![self.root];
        loop {
            let n = &self.nodes[*path.last().expect("path non-empty")];
            // Latch crabbing: taking even a read latch increments a shared
            // counter in the node header — the classic root-latch line that
            // ping-pongs between cores under conventional scheduling.
            sink.load(n.header_addr());
            sink.store(n.header_addr());
            // Binary search touches ~log2(slots) key slots across the node.
            let pos = n.keys.partition_point(|&k| k <= key);
            if !n.keys.is_empty() {
                let len = n.keys.len();
                let mut lo = 0usize;
                let mut hi = len;
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    sink.load(n.slot_addr(mid));
                    if n.keys[mid] <= key {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                sink.load(n.slot_addr(pos.min(len - 1)));
            }
            if n.is_leaf {
                return path;
            }
            let child = n.values[pos.min(n.values.len() - 1)] as usize;
            path.push(child);
        }
    }

    /// Point lookup: returns the payload for `key`, reporting data accesses.
    pub fn search(&self, key: u64, sink: &mut dyn DataSink) -> Option<u64> {
        let path = self.descend(key, sink);
        let leaf = &self.nodes[*path.last().expect("path non-empty")];
        match leaf.keys.binary_search(&key) {
            Ok(i) => {
                sink.load(leaf.slot_addr(i));
                Some(leaf.values[i])
            }
            Err(_) => None,
        }
    }

    /// Range scan starting at `key` for up to `limit` entries (index scans,
    /// the paper's `IT(...)` basic function). Returns matching payloads.
    pub fn scan_from(&self, key: u64, limit: usize, sink: &mut dyn DataSink) -> Vec<u64> {
        let path = self.descend(key, sink);
        let mut out = Vec::new();
        let mut node_id = *path.last().expect("path non-empty");
        let mut idx = self.nodes[node_id].keys.partition_point(|&k| k < key);
        'scan: loop {
            let n = &self.nodes[node_id];
            while idx < n.keys.len() {
                sink.load(n.slot_addr(idx));
                out.push(n.values[idx]);
                if out.len() >= limit {
                    break 'scan;
                }
                idx += 1;
            }
            // Next-leaf pointer: in this flattened representation, leaves
            // are ordered by node id within the logical key order via the
            // parent; emulate the sibling hop with a fresh descent.
            match self.next_leaf(node_id) {
                Some(next) => {
                    sink.load(self.nodes[next].header_addr());
                    node_id = next;
                    idx = 0;
                }
                None => break,
            }
        }
        out
    }

    fn next_leaf(&self, leaf: usize) -> Option<usize> {
        let last_key = *self.nodes[leaf].keys.last()?;
        // Find the leaf owning the successor key via a silent descent.
        let mut n = self.root;
        loop {
            let node = &self.nodes[n];
            if node.is_leaf {
                return if n != leaf && !node.keys.is_empty() {
                    Some(n)
                } else {
                    None
                };
            }
            let pos = node.keys.partition_point(|&k| k <= last_key + 1);
            n = node.values[pos.min(node.values.len() - 1)] as usize;
        }
    }

    /// Inserts `key -> payload`, reporting accesses; splits full leaves like
    /// a real index (new right sibling, separator into the parent).
    pub fn insert(&mut self, key: u64, payload: u64, arena: &mut Arena, sink: &mut dyn DataSink) {
        let path = self.descend(key, sink);
        let leaf_id = *path.last().expect("path non-empty");
        {
            let leaf = &mut self.nodes[leaf_id];
            let pos = leaf.keys.partition_point(|&k| k < key);
            leaf.keys.insert(pos, key);
            leaf.values.insert(pos, payload);
            let slot = leaf.slot_addr(pos);
            sink.store(slot);
            sink.store(leaf.header_addr()); // bump slot count
        }
        self.len += 1;
        self.split_up(path, arena, sink);
    }

    fn split_up(&mut self, mut path: Vec<usize>, arena: &mut Arena, sink: &mut dyn DataSink) {
        while let Some(&node_id) = path.last() {
            if self.nodes[node_id].keys.len() <= FANOUT {
                return;
            }
            path.pop();
            let is_leaf = self.nodes[node_id].is_leaf;
            let right_id = self.alloc_node(arena, is_leaf);
            let mid = self.nodes[node_id].keys.len() / 2;
            let (sep, right_keys, right_vals) = {
                let n = &mut self.nodes[node_id];
                if is_leaf {
                    // Leaf: right sibling keeps keys[mid..]; the separator is
                    // the right sibling's first key (it stays in the leaf).
                    let right_keys: Vec<u64> = n.keys.split_off(mid);
                    let right_vals: Vec<u64> = n.values.split_off(mid);
                    (right_keys[0], right_keys, right_vals)
                } else {
                    // Inner: keys[mid] moves up as the separator; the right
                    // sibling takes keys[mid+1..] and values[mid+1..],
                    // preserving the values = keys + 1 invariant on both.
                    let right_keys: Vec<u64> = n.keys.split_off(mid + 1);
                    let right_vals: Vec<u64> = n.values.split_off(mid + 1);
                    let sep = n.keys.pop().expect("inner node separator");
                    (sep, right_keys, right_vals)
                }
            };
            self.nodes[right_id].keys = right_keys;
            self.nodes[right_id].values = right_vals;
            sink.store(self.nodes[node_id].header_addr());
            sink.store(self.nodes[right_id].header_addr());

            match path.last() {
                Some(&parent_id) => {
                    let parent = &mut self.nodes[parent_id];
                    let pos = parent.keys.partition_point(|&k| k < sep);
                    parent.keys.insert(pos, sep);
                    parent.values.insert(pos + 1, right_id as u64);
                    let slot = parent.slot_addr(pos);
                    sink.store(slot);
                }
                None => {
                    // Split reached the root: grow the tree by one level.
                    let new_root = self.alloc_node(arena, false);
                    self.nodes[new_root].keys = vec![sep];
                    self.nodes[new_root].values = vec![node_id as u64, right_id as u64];
                    sink.store(self.nodes[new_root].header_addr());
                    self.root = new_root;
                    return;
                }
            }
        }
    }

    /// Rewrites the payload of `key` in place (index-maintained update).
    /// Returns `false` if the key is absent.
    pub fn update(&mut self, key: u64, payload: u64, sink: &mut dyn DataSink) -> bool {
        let path = self.descend(key, sink);
        let leaf_id = *path.last().expect("path non-empty");
        let leaf = &mut self.nodes[leaf_id];
        match leaf.keys.binary_search(&key) {
            Ok(i) => {
                leaf.values[i] = payload;
                let slot = leaf.slot_addr(i);
                sink.store(slot);
                true
            }
            Err(_) => false,
        }
    }

    /// Removes `key`, reporting accesses. Returns the payload if present.
    /// (Leaves may underflow; real engines tolerate this too between
    /// reorganizations, and it does not affect access patterns.)
    pub fn remove(&mut self, key: u64, sink: &mut dyn DataSink) -> Option<u64> {
        let path = self.descend(key, sink);
        let leaf_id = *path.last().expect("path non-empty");
        let leaf = &mut self.nodes[leaf_id];
        match leaf.keys.binary_search(&key) {
            Ok(i) => {
                leaf.keys.remove(i);
                let v = leaf.values.remove(i);
                let header = leaf.header_addr();
                sink.store(header);
                self.len -= 1;
                Some(v)
            }
            Err(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::sink::RecordingSink;

    fn build(n: u64) -> (BTree, Arena) {
        let mut arena = Arena::new();
        let mut t = BTree::new(&mut arena, "test");
        let mut sink = RecordingSink::new();
        for k in 0..n {
            // Insert in a scrambled order to exercise mid-leaf inserts.
            let key = (k * 7919) % n;
            t.insert(key, key + 1_000_000, &mut arena, &mut sink);
        }
        (t, arena)
    }

    #[test]
    fn insert_then_search_all() {
        let (t, _a) = build(500);
        let mut sink = RecordingSink::new();
        for k in 0..500 {
            assert_eq!(t.search(k, &mut sink), Some(k + 1_000_000), "key {k}");
        }
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn missing_keys_return_none() {
        let (t, _a) = build(100);
        let mut sink = RecordingSink::new();
        assert_eq!(t.search(100, &mut sink), None);
        assert_eq!(t.search(u64::MAX, &mut sink), None);
    }

    #[test]
    fn tree_grows_in_height() {
        let (small, _) = build(10);
        let (big, _) = build(2000);
        assert_eq!(small.height(), 1);
        assert!(big.height() >= 3, "height {}", big.height());
    }

    #[test]
    fn search_reports_root_access() {
        let (t, _a) = build(200);
        let mut sink = RecordingSink::new();
        t.search(55, &mut sink);
        assert_eq!(
            sink.accesses[0],
            (t.root_addr(), false),
            "descent starts at the shared root"
        );
        assert!(sink.len() >= t.height());
    }

    #[test]
    fn update_changes_payload_and_writes() {
        let (mut t, _a) = build(100);
        let mut sink = RecordingSink::new();
        assert!(t.update(10, 77, &mut sink));
        assert!(sink.writes() >= 1);
        assert_eq!(t.search(10, &mut RecordingSink::new()), Some(77));
        assert!(!t.update(5000, 1, &mut sink));
    }

    #[test]
    fn remove_deletes_key() {
        let (mut t, _a) = build(100);
        let mut sink = RecordingSink::new();
        assert_eq!(t.remove(42, &mut sink), Some(1_000_042));
        assert_eq!(t.search(42, &mut RecordingSink::new()), None);
        assert_eq!(t.len(), 99);
        assert_eq!(t.remove(42, &mut sink), None);
    }

    #[test]
    fn scan_returns_sorted_run() {
        let (t, _a) = build(300);
        let mut sink = RecordingSink::new();
        let got = t.scan_from(50, 20, &mut sink);
        assert_eq!(got.len(), 20);
        assert_eq!(got[0], 1_000_050);
        // Payloads encode keys, so the run must be consecutive.
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, 1_000_050 + i as u64);
        }
    }

    #[test]
    fn inserts_write_leaf_blocks() {
        let mut arena = Arena::new();
        let mut t = BTree::new(&mut arena, "w");
        let mut sink = RecordingSink::new();
        t.insert(1, 2, &mut arena, &mut sink);
        assert!(sink.writes() >= 1, "insert must dirty the leaf");
    }

    #[test]
    fn duplicate_region_allocation_is_disjoint() {
        let (t, _a) = build(2000);
        // All node ranges must be pairwise disjoint.
        let mut starts: Vec<u64> = t.nodes.iter().map(|n| n.range.start().value()).collect();
        starts.sort_unstable();
        starts.dedup();
        assert_eq!(starts.len(), t.nodes.len());
    }
}
