//! Workload presets matching Table 1 of the paper.
//!
//! A [`Workload`] is a named pool of transaction traces. The presets mirror
//! the paper's four workloads — TPC-C-1, TPC-C-10, TPC-E and MapReduce —
//! with a `size` knob controlling how many transactions the pool holds
//! (experiments use modest pools; the schedulers see up to 30 at a time,
//! matching Section 4.3).

use crate::mapreduce::MapReduceBuilder;
use crate::tpcc::{TpccScale, TpccTxnKind, TpccWorkloadBuilder};
use crate::tpce::{TpceTxnKind, TpceWorkloadBuilder};
use crate::trace::TxnTrace;

/// Which of the paper's workloads to generate.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum WorkloadKind {
    /// TPC-C with 1 warehouse (Table 1: 84 MB).
    TpccW1,
    /// TPC-C with 10 warehouses (Table 1: 1 GB).
    TpccW10,
    /// TPC-E (Table 1: 1000 customers).
    Tpce,
    /// MapReduce (CloudSuite data analytics).
    MapReduce,
}

impl WorkloadKind {
    /// The four workloads in Figure 5/6 order.
    pub const ALL: [WorkloadKind; 4] = [
        WorkloadKind::TpccW1,
        WorkloadKind::TpccW10,
        WorkloadKind::Tpce,
        WorkloadKind::MapReduce,
    ];

    /// Display name as used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::TpccW1 => "TPC-C-1",
            WorkloadKind::TpccW10 => "TPC-C-10",
            WorkloadKind::Tpce => "TPC-E",
            WorkloadKind::MapReduce => "MapReduce",
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A named pool of transaction traces ready for scheduling.
#[derive(Clone, Debug)]
pub struct Workload {
    name: &'static str,
    txns: Vec<TxnTrace>,
}

impl Workload {
    /// Wraps a transaction pool under `name`.
    pub fn new(name: &'static str, txns: Vec<TxnTrace>) -> Self {
        Workload { name, txns }
    }

    /// Workload name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The transaction pool in arrival order.
    pub fn txns(&self) -> &[TxnTrace] {
        &self.txns
    }

    /// Consumes the workload, returning the pool.
    pub fn into_txns(self) -> Vec<TxnTrace> {
        self.txns
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// `true` if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Total instructions across the pool.
    pub fn total_instructions(&self) -> u64 {
        self.txns.iter().map(|t| t.instr_total()).sum()
    }

    /// Generates a preset workload of roughly `size` transactions.
    pub fn preset(kind: WorkloadKind, size: usize, seed: u64) -> Workload {
        match kind {
            WorkloadKind::TpccW1 => {
                let mut b = TpccWorkloadBuilder::new(TpccScale::new(1), seed);
                Workload::new(kind.name(), b.mixed(size))
            }
            WorkloadKind::TpccW10 => {
                let mut b = TpccWorkloadBuilder::new(TpccScale::new(10), seed);
                Workload::new(kind.name(), b.mixed(size))
            }
            WorkloadKind::Tpce => {
                let mut b = TpceWorkloadBuilder::new(1000, seed);
                Workload::new(kind.name(), b.mixed(size))
            }
            WorkloadKind::MapReduce => {
                let mut b = MapReduceBuilder::new(seed);
                Workload::new(kind.name(), b.tasks(size))
            }
        }
    }

    /// A small-scale preset for tests and examples: same structure, scaled
    /// databases, faster generation.
    pub fn preset_small(kind: WorkloadKind, size: usize, seed: u64) -> Workload {
        match kind {
            WorkloadKind::TpccW1 => {
                let mut b = TpccWorkloadBuilder::new(TpccScale::mini(), seed);
                Workload::new(kind.name(), b.mixed(size))
            }
            WorkloadKind::TpccW10 => {
                let mut scale = TpccScale::mini();
                scale.warehouses = 2;
                let mut b = TpccWorkloadBuilder::new(scale, seed);
                Workload::new(kind.name(), b.mixed(size))
            }
            WorkloadKind::Tpce => {
                let mut b = TpceWorkloadBuilder::new(64, seed);
                Workload::new(kind.name(), b.mixed(size))
            }
            WorkloadKind::MapReduce => {
                let mut b = MapReduceBuilder::new(seed);
                Workload::new(kind.name(), b.tasks(size))
            }
        }
    }

    /// A pool of same-type TPC-C transactions (Figures 2, 4, 7).
    pub fn tpcc_same_type(kind: TpccTxnKind, warehouses: u64, n: usize, seed: u64) -> Workload {
        let mut b = TpccWorkloadBuilder::new(TpccScale::new(warehouses), seed);
        Workload::new(kind.name(), b.same_type(kind, n))
    }

    /// A pool of same-type TPC-E transactions (Figure 4).
    pub fn tpce_same_type(kind: TpceTxnKind, n: usize, seed: u64) -> Workload {
        let mut b = TpceWorkloadBuilder::new(1000, seed);
        Workload::new(kind.name(), b.same_type(kind, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_presets_build_for_all_kinds() {
        for kind in WorkloadKind::ALL {
            let w = Workload::preset_small(kind, 4, 1);
            assert_eq!(w.len(), 4, "{kind}");
            assert!(w.total_instructions() > 0);
            assert_eq!(w.name(), kind.name());
        }
    }

    #[test]
    fn same_type_pool_is_uniform() {
        let w = Workload::tpcc_same_type(TpccTxnKind::Payment, 1, 3, 2);
        assert!(w.txns().iter().all(|t| t.type_name() == "Payment"));
    }

    #[test]
    fn presets_are_deterministic() {
        let a = Workload::preset_small(WorkloadKind::Tpce, 3, 9);
        let b = Workload::preset_small(WorkloadKind::Tpce, 3, 9);
        let sig = |w: &Workload| -> Vec<u64> { w.txns().iter().map(|t| t.instr_total()).collect() };
        assert_eq!(sig(&a), sig(&b));
    }

    #[test]
    fn names_match_figures() {
        assert_eq!(WorkloadKind::TpccW10.to_string(), "TPC-C-10");
        assert_eq!(WorkloadKind::MapReduce.name(), "MapReduce");
    }
}
