//! Temporal-overlap analysis (Figure 2 of the paper).
//!
//! The experiment: 16 randomly chosen same-type transactions run
//! concurrently on 16 cores, each with a 32 KB L1-I, at one instruction per
//! cycle. Every 100 instructions per core, the unique instruction blocks
//! touched in the interval are checked against all 16 L1-I caches; the
//! metric is how many caches hold each block (ranges 1, < 5, < 10, ≥ 10).
//! Measurement stops when at least half the threads finish.

use std::collections::HashSet;

use strex_sim::addr::BlockAddr;
use strex_sim::cache::{CacheGeometry, SetAssocCache};
use strex_sim::replacement::ReplacementKind;

use crate::trace::{MemRef, TraceCursor, TxnTrace};

/// One sampling interval's overlap histogram, as fractions of the blocks
/// touched in the interval.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct OverlapSample {
    /// Cumulative instructions per core at the sample point.
    pub k_instructions: f64,
    /// Fraction of touched blocks resident in exactly one cache.
    pub one: f64,
    /// Fraction resident in 2..=4 caches.
    pub lt5: f64,
    /// Fraction resident in 5..=9 caches.
    pub lt10: f64,
    /// Fraction resident in 10 or more caches.
    pub ge10: f64,
}

impl OverlapSample {
    /// Fraction resident in at least five caches (the paper's headline
    /// "more than 70 % ... appear in at least five other cores").
    pub fn ge5(&self) -> f64 {
        self.lt10 + self.ge10
    }
}

/// Configuration of the overlap experiment.
#[derive(Copy, Clone, Debug)]
pub struct OverlapConfig {
    /// L1-I bytes per core (paper: 32 KB).
    pub l1i_bytes: u64,
    /// L1-I associativity.
    pub l1i_assoc: usize,
    /// Instructions per core per sampling interval (paper: 100).
    pub interval_instrs: u64,
}

impl Default for OverlapConfig {
    fn default() -> Self {
        OverlapConfig {
            l1i_bytes: 32 * 1024,
            l1i_assoc: 8,
            interval_instrs: 100,
        }
    }
}

/// Runs the Figure 2 analysis over `txns`, one per simulated core.
///
/// Returns one sample per interval until at least half the threads have
/// completed.
///
/// # Panics
///
/// Panics if `txns` is empty.
///
/// # Examples
///
/// ```
/// use strex_oltp::overlap::{analyze, OverlapConfig};
/// use strex_oltp::tpcc::{TpccScale, TpccTxnKind, TpccWorkloadBuilder};
///
/// let mut b = TpccWorkloadBuilder::new(TpccScale::mini(), 1);
/// let txns = b.same_type(TpccTxnKind::Payment, 4);
/// let samples = analyze(&txns, OverlapConfig::default());
/// assert!(!samples.is_empty());
/// ```
pub fn analyze(txns: &[TxnTrace], cfg: OverlapConfig) -> Vec<OverlapSample> {
    assert!(!txns.is_empty(), "need at least one transaction");
    let n = txns.len();
    let geom = CacheGeometry::new(cfg.l1i_bytes, cfg.l1i_assoc);
    let mut caches: Vec<SetAssocCache> = (0..n)
        .map(|_| SetAssocCache::new(geom, ReplacementKind::Lru))
        .collect();
    let mut cursors = vec![TraceCursor::new(); n];
    let mut touched: Vec<HashSet<BlockAddr>> = vec![HashSet::new(); n];
    let mut samples = Vec::new();
    let mut interval = 0u64;

    loop {
        // Advance each live thread by one interval of instructions.
        let mut live = 0;
        for i in 0..n {
            let mut executed = 0u64;
            while executed < cfg.interval_instrs {
                match cursors[i].peek(&txns[i]) {
                    Some(MemRef::IFetch { block, instrs }) => {
                        caches[i].access(block, 0);
                        touched[i].insert(block);
                        executed += instrs as u64;
                        cursors[i].advance();
                    }
                    Some(_) => cursors[i].advance(),
                    None => break,
                }
            }
            if !cursors[i].done(&txns[i]) {
                live += 1;
            }
        }
        interval += 1;

        // Histogram of holder counts over the interval's touched blocks.
        let mut counts = [0usize; 4];
        let mut total = 0usize;
        for tset in &touched {
            for &b in tset.iter() {
                let holders = caches.iter().filter(|c| c.contains(b)).count();
                total += 1;
                match holders {
                    0..=1 => counts[0] += 1,
                    2..=4 => counts[1] += 1,
                    5..=9 => counts[2] += 1,
                    _ => counts[3] += 1,
                }
            }
        }
        if total > 0 {
            let f = |c: usize| c as f64 / total as f64;
            samples.push(OverlapSample {
                k_instructions: (interval * cfg.interval_instrs) as f64 / 1000.0,
                one: f(counts[0]),
                lt5: f(counts[1]),
                lt10: f(counts[2]),
                ge10: f(counts[3]),
            });
        }
        for t in &mut touched {
            t.clear();
        }
        // Stop when at least half the threads completed (paper's rule).
        if live * 2 <= n {
            break;
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcc::{TpccScale, TpccTxnKind, TpccWorkloadBuilder};

    fn same_type_txns(n: usize) -> Vec<TxnTrace> {
        let mut b = TpccWorkloadBuilder::new(TpccScale::mini(), 7);
        b.same_type(TpccTxnKind::Payment, n)
    }

    #[test]
    fn fractions_sum_to_one() {
        let txns = same_type_txns(4);
        let samples = analyze(&txns, OverlapConfig::default());
        for s in &samples {
            let sum = s.one + s.lt5 + s.lt10 + s.ge10;
            assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        }
    }

    #[test]
    fn same_type_threads_share_most_blocks() {
        let txns = same_type_txns(8);
        let samples = analyze(&txns, OverlapConfig::default());
        // Mid-run samples should show heavy sharing (the paper reports the
        // 16-thread case; with 8 threads "2..=4" plus higher buckets still
        // dominate over singletons).
        let mid = &samples[samples.len() / 2];
        assert!(mid.one < 0.5, "singleton fraction too high: {}", mid.one);
    }

    #[test]
    fn sixteen_threads_reach_ge5_majority() {
        let txns = same_type_txns(16);
        let samples = analyze(&txns, OverlapConfig::default());
        // Average ge5 share over the run: the paper's headline is > 70 %.
        let avg: f64 = samples.iter().map(OverlapSample::ge5).sum::<f64>() / samples.len() as f64;
        assert!(avg > 0.5, "≥5-sharer fraction too low: {avg}");
    }

    #[test]
    fn samples_have_increasing_timestamps() {
        let txns = same_type_txns(4);
        let samples = analyze(&txns, OverlapConfig::default());
        for w in samples.windows(2) {
            assert!(w[1].k_instructions > w[0].k_instructions);
        }
    }

    #[test]
    #[should_panic(expected = "at least one transaction")]
    fn empty_pool_panics() {
        let _ = analyze(&[], OverlapConfig::default());
    }
}
