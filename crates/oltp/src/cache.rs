//! Process-wide sharing of generated trace pools.
//!
//! Trace generation is deterministic — [`Workload::preset`] /
//! [`Workload::preset_small`] with the same `(kind, size, seed)` always
//! build byte-identical pools — but it is not free: a quick-matrix pool
//! is tens of thousands of packed trace words, and the fan-out paths
//! used to regenerate the full workload set once per shard invocation,
//! once per dispatch job, and once more for a `--verify` check. The
//! [`WorkloadCache`] makes each pool a once-per-process cost: the first
//! request under a key generates, every later one clones an [`Arc`] to
//! the same immutable pool, shared across cells, shards and jobs.
//!
//! Determinism is what makes this safe: a cached pool is
//! indistinguishable from a freshly generated one, so routing a path
//! through the cache can never perturb results (the golden snapshot and
//! the dispatch bit-identity tests pin this).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::workload::{Workload, WorkloadKind};

#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
struct Key {
    kind: WorkloadKind,
    size: usize,
    seed: u64,
    small: bool,
}

static CACHE: OnceLock<Mutex<HashMap<Key, Arc<Workload>>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Counters describing what the process-wide cache has done so far.
#[derive(Copy, Clone, Debug)]
pub struct CacheStats {
    /// Distinct pools generated (and retained) by this process.
    pub entries: usize,
    /// Requests served from an already-generated pool.
    pub hits: u64,
    /// Requests that had to generate.
    pub misses: u64,
}

/// The process-wide trace-pool cache. Stateless handle: all state is a
/// process-global keyed by the preset parameters.
pub struct WorkloadCache;

impl WorkloadCache {
    /// [`Workload::preset`] through the cache: generated at most once
    /// per process per `(kind, size, seed)`.
    pub fn preset(kind: WorkloadKind, size: usize, seed: u64) -> Arc<Workload> {
        Self::get(
            Key {
                kind,
                size,
                seed,
                small: false,
            },
            || Workload::preset(kind, size, seed),
        )
    }

    /// [`Workload::preset_small`] through the cache.
    pub fn preset_small(kind: WorkloadKind, size: usize, seed: u64) -> Arc<Workload> {
        Self::get(
            Key {
                kind,
                size,
                seed,
                small: true,
            },
            || Workload::preset_small(kind, size, seed),
        )
    }

    fn get(key: Key, generate: impl FnOnce() -> Workload) -> Arc<Workload> {
        let map = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        // Generation happens under the lock on purpose: two racing
        // requests for the same key must not both pay it — "once per
        // process" is the whole contract.
        let mut map = map.lock().expect("workload cache");
        if let Some(w) = map.get(&key) {
            HITS.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(w);
        }
        MISSES.fetch_add(1, Ordering::Relaxed);
        let w = Arc::new(generate());
        map.insert(key, Arc::clone(&w));
        w
    }

    /// Current cache counters.
    pub fn stats() -> CacheStats {
        let entries = CACHE
            .get()
            .map(|m| m.lock().expect("workload cache").len())
            .unwrap_or(0);
        CacheStats {
            entries,
            hits: HITS.load(Ordering::Relaxed),
            misses: MISSES.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_requests_share_one_generated_pool() {
        let a = WorkloadCache::preset_small(WorkloadKind::Tpce, 5, 77);
        let b = WorkloadCache::preset_small(WorkloadKind::Tpce, 5, 77);
        assert!(Arc::ptr_eq(&a, &b), "same pool instance, not a copy");

        // Different parameters are different pools.
        let c = WorkloadCache::preset_small(WorkloadKind::Tpce, 5, 78);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn cached_pools_match_direct_generation() {
        let cached = WorkloadCache::preset_small(WorkloadKind::TpccW1, 6, 3);
        let direct = Workload::preset_small(WorkloadKind::TpccW1, 6, 3);
        let sig = |w: &Workload| -> Vec<u64> { w.txns().iter().map(|t| t.instr_total()).collect() };
        assert_eq!(sig(&cached), sig(&direct));
        assert_eq!(cached.name(), direct.name());
    }

    #[test]
    fn small_and_full_presets_do_not_collide() {
        // Same (kind, size, seed), different scale: must be distinct
        // entries — a collision would silently swap trace pools.
        let small = WorkloadCache::preset_small(WorkloadKind::MapReduce, 4, 9);
        let full = WorkloadCache::preset(WorkloadKind::MapReduce, 4, 9);
        assert!(!Arc::ptr_eq(&small, &full));
    }

    #[test]
    fn stats_observe_hits_and_misses() {
        let before = WorkloadCache::stats();
        let _w = WorkloadCache::preset_small(WorkloadKind::TpccW10, 3, 12345);
        let _w = WorkloadCache::preset_small(WorkloadKind::TpccW10, 3, 12345);
        let after = WorkloadCache::stats();
        assert!(after.misses > before.misses);
        assert!(after.hits > before.hits);
        assert!(after.entries > 0);
    }
}
