//! # strex-oltp
//!
//! OLTP **workload model and trace generator** — the software substrate of
//! the STREX (ISCA 2013) reproduction, standing in for Shore-MT running
//! TPC-C and TPC-E (Table 1 of the paper).
//!
//! The crate has three layers:
//!
//! 1. **Storage engine** ([`engine`]): B+tree indexes, slotted heap tables,
//!    a lock manager, a write-ahead log and buffer-pool metadata over a
//!    synthetic physical address space. Operations report every byte they
//!    touch, so data-sharing patterns (index roots, lock words, log tail)
//!    are structural, not synthetic.
//! 2. **Code model** ([`layout`], [`codepath`]): transactions execute over
//!    a synthetic code address space — shared storage-manager library
//!    regions plus per-action regions sized to the paper's Table 3
//!    footprints — with data-dependent divergence between instances.
//! 3. **Workloads** ([`tpcc`], [`tpce`], [`mapreduce`], [`workload`]): the
//!    paper's four workloads, generating [`trace::TxnTrace`]s that the
//!    schedulers in the `strex` crate replay.
//!
//! Analyses used directly by the paper's figures live in [`footprint`]
//! (Table 3) and [`overlap`] (Figure 2).
//!
//! ## Quick example
//!
//! ```
//! use strex_oltp::workload::{Workload, WorkloadKind};
//!
//! let w = Workload::preset_small(WorkloadKind::TpccW1, 3, 42);
//! assert_eq!(w.len(), 3);
//! for txn in w.txns() {
//!     println!("{}: {} instructions", txn.type_name(), txn.instr_total());
//! }
//! ```

pub mod cache;
pub mod codepath;
pub mod engine;
pub mod footprint;
pub mod layout;
pub mod mapreduce;
pub mod overlap;
pub mod tpcc;
pub mod tpce;
pub mod trace;
pub mod workload;

pub use cache::{CacheStats, WorkloadCache};
pub use trace::{MemRef, TraceCursor, TxnTrace};
pub use workload::{Workload, WorkloadKind};
