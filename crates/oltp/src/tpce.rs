//! TPC-E workload model (Table 1: brokerage house; Table 3 footprints).
//!
//! The paper evaluates seven TPC-E transaction types: Broker Volume,
//! Customer Position, Market Feed, Security Detail, Trade Status,
//! Trade Update and Trade Lookup. Their footprints (Table 3) are smaller
//! than TPC-C's (5-9 L1-I units), which is why the hybrid mechanism flips
//! to SLICC at 8+ cores for TPC-E but only at ~12+ for TPC-C.
//!
//! The schema here is a condensed brokerage core — CUSTOMER, ACCOUNT,
//! BROKER, SECURITY, TRADE, HOLDING with primary B+trees — and each
//! transaction type is a flow of the same `R`/`U`/`I`/`IT` basic functions
//! as TPC-C, over its own action code regions sized to the Table 3 targets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use strex_sim::addr::{Addr, AddrRange};
use strex_sim::ids::TxnTypeId;

use crate::codepath::{TraceBuilder, WalkConfig};
use crate::engine::{Arena, BTree, BufferPool, DataSink, HeapTable, LockManager, LockMode, Wal};
use crate::layout::{CodeLayout, LibRegions};
use crate::trace::TxnTrace;

/// Base of the TPC-E per-thread stack area (distinct from TPC-C's).
const STACK_BASE: u64 = 0xFA00_0000;
const STACK_BYTES: u64 = 16 * 1024;

/// The seven evaluated TPC-E transaction types.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum TpceTxnKind {
    /// Broker Volume.
    Broker,
    /// Customer Position.
    Customer,
    /// Market Feed/Watch.
    Market,
    /// Security Detail.
    Security,
    /// Trade Status.
    TradeStatus,
    /// Trade Update.
    TradeUpdate,
    /// Trade Lookup.
    TradeLookup,
}

impl TpceTxnKind {
    /// All types in Table 3 order.
    pub const ALL: [TpceTxnKind; 7] = [
        TpceTxnKind::Broker,
        TpceTxnKind::Customer,
        TpceTxnKind::Market,
        TpceTxnKind::Security,
        TpceTxnKind::TradeStatus,
        TpceTxnKind::TradeUpdate,
        TpceTxnKind::TradeLookup,
    ];

    /// Stable type id for team formation.
    pub fn type_id(self) -> TxnTypeId {
        TxnTypeId::new(match self {
            TpceTxnKind::Broker => 0,
            TpceTxnKind::Customer => 1,
            TpceTxnKind::Market => 2,
            TpceTxnKind::Security => 3,
            TpceTxnKind::TradeStatus => 4,
            TpceTxnKind::TradeUpdate => 5,
            TpceTxnKind::TradeLookup => 6,
        })
    }

    /// Display name as in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            TpceTxnKind::Broker => "Broker",
            TpceTxnKind::Customer => "Customer",
            TpceTxnKind::Market => "Market",
            TpceTxnKind::Security => "Security",
            TpceTxnKind::TradeStatus => "Tr_Stat",
            TpceTxnKind::TradeUpdate => "Tr_Upd",
            TpceTxnKind::TradeLookup => "Tr_Look",
        }
    }

    /// Table 3 footprint target in L1-I units.
    pub fn footprint_units(self) -> u64 {
        match self {
            TpceTxnKind::Broker => 7,
            TpceTxnKind::Customer => 9,
            TpceTxnKind::Market => 9,
            TpceTxnKind::Security => 5,
            TpceTxnKind::TradeStatus => 9,
            TpceTxnKind::TradeUpdate => 8,
            TpceTxnKind::TradeLookup => 8,
        }
    }

    /// Distinct action regions in the flow.
    pub fn n_actions(self) -> usize {
        match self {
            TpceTxnKind::Security => 4,
            TpceTxnKind::Broker => 5,
            _ => 6,
        }
    }
}

impl std::fmt::Display for TpceTxnKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Brokerage tables.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
#[repr(u64)]
enum Table {
    Customer = 0,
    Account = 1,
    Broker = 2,
    Security = 3,
    Trade = 4,
    Holding = 5,
}

const N_TABLES: u64 = 6;

/// The populated TPC-E database.
#[derive(Debug)]
pub struct TpceDb {
    arena: Arena,
    locks: LockManager,
    wal: Wal,
    buffer: BufferPool,
    customer: (HeapTable, BTree),
    account: (HeapTable, BTree),
    broker: (HeapTable, BTree),
    security: (HeapTable, BTree),
    trade: (HeapTable, BTree),
    holding: (HeapTable, BTree),
    next_trade_id: u64,
    customers: u64,
}

impl TpceDb {
    /// Populates the brokerage database for `customers` customers
    /// (Table 1 uses 1000; tests may scale down).
    pub fn populate(customers: u64) -> Self {
        let mut arena = Arena::new();
        let locks = LockManager::new(&mut arena, N_TABLES);
        let wal = Wal::new(&mut arena, 256 * 1024);
        let buffer = BufferPool::new(&mut arena);
        let mk = |arena: &mut Arena, name: &'static str, bytes: u64| {
            (HeapTable::new(name, bytes), BTree::new(arena, name))
        };
        let mut db = TpceDb {
            customer: mk(&mut arena, "customer", 192),
            account: mk(&mut arena, "account", 96),
            broker: mk(&mut arena, "broker", 96),
            security: mk(&mut arena, "security", 128),
            trade: mk(&mut arena, "trade", 96),
            holding: mk(&mut arena, "holding", 64),
            next_trade_id: 0,
            customers,
            locks,
            wal,
            buffer,
            arena,
        };
        db.load();
        db
    }

    fn load(&mut self) {
        let mut sink = crate::engine::RecordingSink::new();
        let brokers = (self.customers / 100).max(4);
        let securities = (self.customers * 2).max(64);
        for b in 0..brokers {
            Self::insert_into(&mut self.broker, b, &mut self.arena, &mut sink);
        }
        for s in 0..securities {
            Self::insert_into(&mut self.security, s, &mut self.arena, &mut sink);
            sink.accesses.clear();
        }
        for c in 0..self.customers {
            Self::insert_into(&mut self.customer, c, &mut self.arena, &mut sink);
            // Two accounts per customer, a few holdings each.
            for a in 0..2 {
                let acct = c * 4 + a;
                Self::insert_into(&mut self.account, acct, &mut self.arena, &mut sink);
                for h in 0..3 {
                    Self::insert_into(&mut self.holding, acct * 16 + h, &mut self.arena, &mut sink);
                }
            }
            // Initial trades.
            for _ in 0..2 {
                let t = self.next_trade_id;
                self.next_trade_id += 1;
                Self::insert_into(&mut self.trade, t, &mut self.arena, &mut sink);
            }
            sink.accesses.clear();
        }
    }

    fn insert_into(
        table: &mut (HeapTable, BTree),
        key: u64,
        arena: &mut Arena,
        sink: &mut dyn DataSink,
    ) {
        let addr = table.0.insert(arena, sink);
        table.1.insert(key, addr.value(), arena, sink);
    }

    fn table_mut(&mut self, t: Table) -> &mut (HeapTable, BTree) {
        match t {
            Table::Customer => &mut self.customer,
            Table::Account => &mut self.account,
            Table::Broker => &mut self.broker,
            Table::Security => &mut self.security,
            Table::Trade => &mut self.trade,
            Table::Holding => &mut self.holding,
        }
    }

    /// Number of customers populated.
    pub fn customers(&self) -> u64 {
        self.customers
    }
}

/// Code regions for the seven TPC-E types.
#[derive(Clone, Debug)]
pub struct TpceCode {
    layout: CodeLayout,
    actions: [Vec<AddrRange>; 7],
}

impl Default for TpceCode {
    fn default() -> Self {
        TpceCode::new()
    }
}

impl TpceCode {
    /// Lays out library + per-action regions to the Table 3 targets.
    pub fn new() -> Self {
        let mut layout = CodeLayout::new();
        let mut actions: [Vec<AddrRange>; 7] = Default::default();
        for kind in TpceTxnKind::ALL {
            let bytes = layout.action_bytes_for_target(kind.footprint_units(), kind.n_actions());
            actions[kind.type_id().as_usize()] = (0..kind.n_actions())
                .map(|_| layout.alloc_action(bytes))
                .collect();
        }
        TpceCode { layout, actions }
    }

    /// Shared library regions.
    pub fn lib(&self) -> &LibRegions {
        self.layout.lib()
    }

    /// Action regions of one type.
    pub fn actions(&self, kind: TpceTxnKind) -> &[AddrRange] {
        &self.actions[kind.type_id().as_usize()]
    }
}

/// Generates TPC-E transaction traces.
///
/// # Examples
///
/// ```
/// use strex_oltp::tpce::{TpceTxnKind, TpceWorkloadBuilder};
///
/// let mut b = TpceWorkloadBuilder::new(64, 3);
/// let t = b.one(TpceTxnKind::Security);
/// assert_eq!(t.type_name(), "Security");
/// ```
#[derive(Debug)]
pub struct TpceWorkloadBuilder {
    db: TpceDb,
    code: TpceCode,
    seed: u64,
    next_ordinal: u64,
}

impl TpceWorkloadBuilder {
    /// Populates the database with `customers` customers.
    pub fn new(customers: u64, seed: u64) -> Self {
        TpceWorkloadBuilder {
            db: TpceDb::populate(customers),
            code: TpceCode::new(),
            seed,
            next_ordinal: 0,
        }
    }

    /// The code layout.
    pub fn code(&self) -> &TpceCode {
        &self.code
    }

    /// Generates one transaction of `kind`.
    pub fn one(&mut self, kind: TpceTxnKind) -> TxnTrace {
        let ordinal = self.next_ordinal;
        self.next_ordinal += 1;
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ ordinal.wrapping_mul(0xD134_2543_DE82_EF95));
        let stack = AddrRange::new(Addr::new(STACK_BASE + ordinal * STACK_BYTES), STACK_BYTES);
        let mut cx = Cx {
            db: &mut self.db,
            code: &self.code,
            tb: TraceBuilder::new(stack, WalkConfig::default()),
            rng: &mut rng,
            op_seq: 0,
        };
        cx.run(kind);
        cx.tb.finish(kind.type_id(), kind.name())
    }

    /// `n` transactions of one type.
    pub fn same_type(&mut self, kind: TpceTxnKind, n: usize) -> Vec<TxnTrace> {
        (0..n).map(|_| self.one(kind)).collect()
    }

    /// `n` transactions over a representative read-heavy TPC-E mix.
    pub fn mixed(&mut self, n: usize) -> Vec<TxnTrace> {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0x94D0_49BB));
        (0..n)
            .map(|_| {
                let p: f64 = rng.gen();
                let kind = if p < 0.19 {
                    TpceTxnKind::TradeStatus
                } else if p < 0.35 {
                    TpceTxnKind::Market
                } else if p < 0.50 {
                    TpceTxnKind::Customer
                } else if p < 0.64 {
                    TpceTxnKind::Security
                } else if p < 0.78 {
                    TpceTxnKind::TradeLookup
                } else if p < 0.90 {
                    TpceTxnKind::TradeUpdate
                } else {
                    TpceTxnKind::Broker
                };
                self.one(kind)
            })
            .collect()
    }
}

struct Cx<'a, 'b> {
    db: &'a mut TpceDb,
    code: &'a TpceCode,
    tb: TraceBuilder,
    rng: &'b mut StdRng,
    op_seq: u64,
}

impl Cx<'_, '_> {
    /// Hot-path library call; see the TPC-C builder for the rationale.
    fn lib_call(&mut self, region: AddrRange, frac: f64) {
        let slots = 8u64;
        let off = (self.op_seq % slots) as f64 / slots as f64 * (1.0 - frac);
        self.tb.walk_span(region, off, off + frac, self.rng);
        self.op_seq += 1;
    }

    fn begin(&mut self) {
        let lib = *self.code.lib();
        self.tb.walk_span(lib.txn_mgmt, 0.0, 0.5, self.rng);
        self.tb.walk_span(lib.kernel, 0.0, 0.3, self.rng);
    }

    fn commit(&mut self, log_bytes: u64) {
        let lib = *self.code.lib();
        self.db.wal.append(log_bytes, &mut self.tb);
        self.tb.walk(lib.wal, self.rng);
        self.tb.walk_span(lib.txn_mgmt, 0.5, 1.0, self.rng);
    }

    fn lookup(&mut self, action: AddrRange, table: Table, key: u64) {
        let lib = *self.code.lib();
        self.tb.walk_span(action, 0.0, 0.5, self.rng);
        self.db
            .locks
            .acquire(table as u64, key, LockMode::Shared, &mut self.tb);
        self.lib_call(lib.lock, 0.3);
        let (heap, index) = self.db.table_mut(table);
        if let Some(addr) = index.search(key, &mut self.tb).map(Addr::new) {
            heap.read(addr, &mut self.tb);
            self.db.buffer.pin(addr, &mut self.tb);
        }
        self.lib_call(lib.btree_search, 0.35);
        self.lib_call(lib.buffer, 0.25);
        self.tb.walk_span(action, 0.5, 1.0, self.rng);
    }

    fn update(&mut self, action: AddrRange, table: Table, key: u64) {
        let lib = *self.code.lib();
        self.tb.walk_span(action, 0.0, 0.5, self.rng);
        self.db
            .locks
            .acquire(table as u64, key, LockMode::Exclusive, &mut self.tb);
        self.lib_call(lib.lock, 0.35);
        let (heap, index) = self.db.table_mut(table);
        if let Some(addr) = index.search(key, &mut self.tb).map(Addr::new) {
            heap.update(addr, &mut self.tb);
        }
        self.lib_call(lib.btree_search, 0.35);
        self.db.wal.append(96, &mut self.tb);
        self.lib_call(lib.wal, 0.3);
        self.tb.walk_span(action, 0.5, 1.0, self.rng);
    }

    fn insert(&mut self, action: AddrRange, table: Table, key: u64) {
        let lib = *self.code.lib();
        self.tb.walk_span(action, 0.0, 0.5, self.rng);
        self.db
            .locks
            .acquire(table as u64, key, LockMode::Exclusive, &mut self.tb);
        self.lib_call(lib.lock, 0.35);
        let mut arena = std::mem::take(&mut self.db.arena);
        let (heap, index) = self.db.table_mut(table);
        let addr = heap.insert(&mut arena, &mut self.tb);
        index.insert(key, addr.value(), &mut arena, &mut self.tb);
        self.db.arena = arena;
        self.lib_call(lib.btree_insert, 0.4);
        self.db.wal.append(128, &mut self.tb);
        self.lib_call(lib.wal, 0.35);
        self.tb.walk_span(action, 0.5, 1.0, self.rng);
    }

    fn scan(&mut self, action: AddrRange, table: Table, from_key: u64, limit: usize) {
        let lib = *self.code.lib();
        self.tb.walk_span(action, 0.0, 0.4, self.rng);
        self.db
            .locks
            .acquire(table as u64, from_key, LockMode::Shared, &mut self.tb);
        self.lib_call(lib.lock, 0.3);
        let (_, index) = self.db.table_mut(table);
        let _ = index.scan_from(from_key, limit, &mut self.tb);
        self.lib_call(lib.btree_scan, 0.5);
        self.tb.walk_span(action, 0.4, 1.0, self.rng);
    }

    fn run(&mut self, kind: TpceTxnKind) {
        let a: Vec<AddrRange> = self.code.actions(kind).to_vec();
        let customers = self.db.customers;
        let c = self.rng.gen_range(0..customers);
        let acct = c * 4 + self.rng.gen_range(0..2);
        let securities = (customers * 2).max(64);
        let s = self.rng.gen_range(0..securities);
        self.begin();
        match kind {
            TpceTxnKind::Broker => {
                let b = self.rng.gen_range(0..(customers / 100).max(4));
                self.tb.walk(a[0], self.rng);
                self.lookup(a[1], Table::Broker, b);
                self.scan(a[2], Table::Trade, b * 8, 12);
                self.lookup(a[3], Table::Security, s);
                self.tb.walk(a[4], self.rng);
                self.commit(48);
            }
            TpceTxnKind::Customer => {
                self.tb.walk(a[0], self.rng);
                self.lookup(a[1], Table::Customer, c);
                self.lookup(a[2], Table::Account, acct);
                self.scan(a[3], Table::Holding, acct * 16, 6);
                self.lookup(a[4], Table::Security, s);
                self.tb.walk(a[5], self.rng);
                self.commit(32);
            }
            TpceTxnKind::Market => {
                self.tb.walk(a[0], self.rng);
                for k in 0..4 {
                    self.lookup(a[1], Table::Security, (s + k * 17) % securities);
                    self.update(a[2], Table::Security, (s + k * 17) % securities);
                }
                self.scan(
                    a[3],
                    Table::Trade,
                    self.db.next_trade_id.saturating_sub(8),
                    8,
                );
                self.lookup(a[4], Table::Broker, 0);
                self.tb.walk(a[5], self.rng);
                self.commit(160);
            }
            TpceTxnKind::Security => {
                self.tb.walk(a[0], self.rng);
                self.lookup(a[1], Table::Security, s);
                self.scan(a[2], Table::Trade, s * 4, 8);
                self.tb.walk(a[3], self.rng);
                self.commit(16);
            }
            TpceTxnKind::TradeStatus => {
                self.tb.walk(a[0], self.rng);
                self.lookup(a[1], Table::Customer, c);
                self.lookup(a[2], Table::Account, acct);
                self.scan(a[3], Table::Trade, acct * 8, 10);
                self.lookup(a[4], Table::Broker, c % (customers / 100).max(4));
                self.tb.walk(a[5], self.rng);
                self.commit(24);
            }
            TpceTxnKind::TradeUpdate => {
                self.tb.walk(a[0], self.rng);
                let t0 = self.rng.gen_range(0..self.db.next_trade_id.max(1));
                self.lookup(a[1], Table::Trade, t0);
                for k in 0..3 {
                    self.update(a[2], Table::Trade, (t0 + k) % self.db.next_trade_id.max(1));
                }
                let tid = self.db.next_trade_id;
                self.db.next_trade_id += 1;
                self.insert(a[3], Table::Trade, tid);
                self.update(a[4], Table::Holding, acct * 16);
                self.tb.walk(a[5], self.rng);
                self.commit(224);
            }
            TpceTxnKind::TradeLookup => {
                self.tb.walk(a[0], self.rng);
                let t0 = self.rng.gen_range(0..self.db.next_trade_id.max(1));
                self.scan(a[1], Table::Trade, t0, 10);
                self.lookup(a[2], Table::Account, acct);
                self.lookup(a[3], Table::Security, s);
                self.scan(a[4], Table::Holding, acct * 16, 4);
                self.tb.walk(a[5], self.rng);
                self.commit(24);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_types_build() {
        let mut b = TpceWorkloadBuilder::new(64, 1);
        for kind in TpceTxnKind::ALL {
            let t = b.one(kind);
            assert!(t.instr_total() > 5_000, "{kind}: {}", t.instr_total());
            assert_eq!(t.type_name(), kind.name());
        }
    }

    #[test]
    fn footprints_track_table3_ordering() {
        let mut b = TpceWorkloadBuilder::new(64, 2);
        let fp = |k: TpceTxnKind, b: &mut TpceWorkloadBuilder| b.one(k).unique_code_blocks();
        let sec = fp(TpceTxnKind::Security, &mut b);
        let cust = fp(TpceTxnKind::Customer, &mut b);
        assert!(
            cust > sec,
            "Customer (9u) must exceed Security (5u): {cust} vs {sec}"
        );
    }

    #[test]
    fn same_type_overlap_is_high() {
        let mut b = TpceWorkloadBuilder::new(64, 3);
        let t1 = b.one(TpceTxnKind::TradeStatus);
        let t2 = b.one(TpceTxnKind::TradeStatus);
        let blocks = |t: &crate::trace::TxnTrace| -> HashSet<u64> {
            t.refs()
                .iter()
                .filter_map(|r| r.fetch_block().map(|b| b.index()))
                .collect()
        };
        let (s1, s2) = (blocks(&t1), blocks(&t2));
        let inter = s1.intersection(&s2).count() as f64;
        let frac = inter / s1.len().min(s2.len()) as f64;
        assert!(frac > 0.7, "overlap {frac}");
    }

    #[test]
    fn mixed_covers_multiple_types() {
        let mut b = TpceWorkloadBuilder::new(64, 4);
        let names: HashSet<_> = b.mixed(30).iter().map(|t| t.type_name()).collect();
        assert!(names.len() >= 4, "mix too narrow: {names:?}");
    }

    #[test]
    fn trade_update_appends_trades() {
        let mut b = TpceWorkloadBuilder::new(64, 5);
        let before = b.db.next_trade_id;
        let _ = b.one(TpceTxnKind::TradeUpdate);
        assert_eq!(b.db.next_trade_id, before + 1);
    }
}
