//! Synthetic code address-space layout.
//!
//! Section 2.1 of the paper describes OLTP transactions as sequences of
//! *actions* (index lookup `R`, update `U`, insert `I`, index scan `IT`,
//! plus glue logic), each with an instruction-cache footprint far larger
//! than the function call itself: parser, plan fragments, locking, logging
//! and buffer-manager code all execute per action. This module carves the
//! instruction address space into:
//!
//! * **shared library regions** — the storage-manager code (B+tree search /
//!   insert / scan, lock manager, log manager, buffer manager, transaction
//!   management, and a kernel/runtime slab) executed by *every* transaction
//!   type, producing the inter-type overlap of Section 2.1;
//! * **per-action regions** — code unique to one action of one transaction
//!   type (statement-specific plan/glue), producing the bulk of the
//!   per-type footprint.
//!
//! Per-action region sizes are derived from the per-type footprint targets
//! of Table 3 (in 32 KB L1-I units), since Figure 1's per-action tags are
//! the only finer-grained data in the paper and the totals are what the
//! FPTable mechanism consumes. The derivation accounts for the shared
//! library and for path divergence (an instance skips ~8 % of a region's
//! blocks on data-dependent branches).

use strex_sim::addr::{Addr, AddrRange};

/// Base of the code address space (distinct from the data arena).
pub const CODE_BASE: u64 = 0x0100_0000;

/// L1-I capacity used as the footprint unit everywhere (Table 3).
pub const L1I_UNIT: u64 = 32 * 1024;

/// Fraction of a region an instance actually touches (branch divergence).
pub const COVERAGE: f64 = 0.92;

/// The shared storage-manager code regions.
#[derive(Copy, Clone, Debug)]
pub struct LibRegions {
    /// B+tree descent code (search path).
    pub btree_search: AddrRange,
    /// B+tree insert and split code.
    pub btree_insert: AddrRange,
    /// B+tree range-scan code.
    pub btree_scan: AddrRange,
    /// Lock-manager code.
    pub lock: AddrRange,
    /// Log-manager (WAL append) code.
    pub wal: AddrRange,
    /// Buffer-manager (pin/unpin) code.
    pub buffer: AddrRange,
    /// Transaction begin/commit code.
    pub txn_mgmt: AddrRange,
    /// Kernel/runtime slab (syscalls, allocator, libc) touched throughout.
    pub kernel: AddrRange,
}

impl LibRegions {
    /// Total library bytes.
    pub fn total_bytes(&self) -> u64 {
        self.btree_search.len()
            + self.btree_insert.len()
            + self.btree_scan.len()
            + self.lock.len()
            + self.wal.len()
            + self.buffer.len()
            + self.txn_mgmt.len()
            + self.kernel.len()
    }

    /// All regions, for footprint accounting.
    pub fn all(&self) -> [AddrRange; 8] {
        [
            self.btree_search,
            self.btree_insert,
            self.btree_scan,
            self.lock,
            self.wal,
            self.buffer,
            self.txn_mgmt,
            self.kernel,
        ]
    }
}

/// Allocates code regions sequentially.
///
/// # Examples
///
/// ```
/// use strex_oltp::layout::CodeLayout;
///
/// let mut layout = CodeLayout::new();
/// let action = layout.alloc_action(36 * 1024);
/// assert_eq!(action.len(), 36 * 1024);
/// assert!(layout.lib().total_bytes() > 0);
/// ```
#[derive(Clone, Debug)]
pub struct CodeLayout {
    cursor: u64,
    lib: LibRegions,
}

impl Default for CodeLayout {
    fn default() -> Self {
        CodeLayout::new()
    }
}

impl CodeLayout {
    /// Creates the layout, placing the shared library first.
    pub fn new() -> Self {
        let mut cursor = CODE_BASE;
        let mut take = |bytes: u64| {
            let r = AddrRange::new(Addr::new(cursor), bytes);
            cursor += bytes;
            r
        };
        let lib = LibRegions {
            btree_search: take(12 * 1024),
            btree_insert: take(8 * 1024),
            btree_scan: take(6 * 1024),
            lock: take(8 * 1024),
            wal: take(6 * 1024),
            buffer: take(8 * 1024),
            txn_mgmt: take(12 * 1024),
            kernel: take(16 * 1024),
        };
        CodeLayout { cursor, lib }
    }

    /// The shared library regions.
    pub fn lib(&self) -> &LibRegions {
        &self.lib
    }

    /// Allocates a per-action code region of `bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn alloc_action(&mut self, bytes: u64) -> AddrRange {
        assert!(bytes > 0, "zero-sized code region");
        let r = AddrRange::new(Addr::new(self.cursor), bytes);
        self.cursor += bytes;
        r
    }

    /// Bytes of code allocated so far (library + actions).
    pub fn total_bytes(&self) -> u64 {
        self.cursor - CODE_BASE
    }

    /// Splits a per-type unique-code budget across `n_actions` actions.
    ///
    /// Given a Table 3 footprint target in L1-I units, the per-action region
    /// size is what remains after the library share, inflated by the
    /// divergence coverage factor so that *touched* blocks (not allocated
    /// blocks) hit the target.
    ///
    /// # Panics
    ///
    /// Panics if the budget is too small to cover the shared library.
    pub fn action_bytes_for_target(&self, target_units: u64, n_actions: usize) -> u64 {
        let target = target_units * L1I_UNIT;
        let lib_touched = (self.lib.total_bytes() as f64 * COVERAGE) as u64;
        assert!(
            target > lib_touched,
            "footprint target smaller than the shared library"
        );
        let unique_needed = ((target - lib_touched) as f64 / COVERAGE) as u64;
        (unique_needed / n_actions as u64).max(4 * 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lib_regions_are_disjoint_and_ordered() {
        let l = CodeLayout::new();
        let all = l.lib().all();
        for w in all.windows(2) {
            assert_eq!(w[0].end().value(), w[1].start().value());
        }
        assert_eq!(l.lib().total_bytes(), 76 * 1024);
    }

    #[test]
    fn actions_allocated_after_lib() {
        let mut l = CodeLayout::new();
        let a = l.alloc_action(1024);
        assert!(a.start().value() >= l.lib().kernel.end().value());
        let b = l.alloc_action(2048);
        assert_eq!(b.start().value(), a.end().value());
        assert_eq!(l.total_bytes(), 76 * 1024 + 3072);
    }

    #[test]
    fn target_sizing_reaches_table3_totals() {
        let l = CodeLayout::new();
        // New Order: 14 units over 10 actions.
        let per_action = l.action_bytes_for_target(14, 10);
        let touched = (10 * per_action) as f64 * COVERAGE + l.lib().total_bytes() as f64 * COVERAGE;
        let units = touched / L1I_UNIT as f64;
        assert!(
            (units - 14.0).abs() < 1.0,
            "calibrated footprint {units} units, want 14"
        );
    }

    #[test]
    #[should_panic(expected = "smaller than the shared library")]
    fn tiny_target_panics() {
        let l = CodeLayout::new();
        let _ = l.action_bytes_for_target(2, 4);
    }

    #[test]
    fn code_and_data_spaces_disjoint() {
        let mut l = CodeLayout::new();
        for _ in 0..100 {
            l.alloc_action(64 * 1024);
        }
        assert!(
            CODE_BASE + l.total_bytes() < crate::engine::arena::DATA_BASE,
            "code grew into the data arena"
        );
    }
}
