//! Property-based tests of the workload generator: trace well-formedness,
//! footprint calibration and overlap structure across seeds.

use proptest::prelude::*;
use strex_oltp::mapreduce::{MapReduceBuilder, TaskKind};
use strex_oltp::tpcc::{TpccScale, TpccTxnKind, TpccWorkloadBuilder};
use strex_oltp::trace::MemRef;
use strex_sim::addr::BLOCK_SIZE;

fn any_tpcc_kind() -> impl Strategy<Value = TpccTxnKind> {
    prop_oneof![
        Just(TpccTxnKind::NewOrder),
        Just(TpccTxnKind::Payment),
        Just(TpccTxnKind::OrderStatus),
        Just(TpccTxnKind::Delivery),
        Just(TpccTxnKind::StockLevel),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every generated trace is well-formed: non-empty, instruction totals
    /// match the fetch groups, code and data address spaces are disjoint.
    #[test]
    fn traces_are_well_formed(kind in any_tpcc_kind(), seed in 0u64..1000) {
        let mut b = TpccWorkloadBuilder::new(TpccScale::mini(), seed);
        let t = b.one(kind);
        prop_assert!(!t.is_empty());
        prop_assert_eq!(t.type_name(), kind.name());
        let sum: u64 = t.refs().iter().map(|r| r.instrs()).sum();
        prop_assert_eq!(sum, t.instr_total());
        for r in t.refs() {
            match r.decode() {
                MemRef::IFetch { block, instrs } => {
                    prop_assert!(instrs > 0, "empty fetch group");
                    // Code lives below the data arena.
                    prop_assert!(
                        block.base_addr().value()
                            < strex_oltp::engine::arena::DATA_BASE,
                        "instruction fetch from the data space"
                    );
                }
                MemRef::Load { addr } | MemRef::Store { addr } => {
                    prop_assert!(
                        addr.value() >= strex_oltp::engine::arena::DATA_BASE
                            || addr.value() >= 0xC000_0000,
                        "data access into the code space: {addr}"
                    );
                }
            }
        }
    }

    /// Footprints stay within one L1-I unit of the Table 3 target for any
    /// seed (the calibration must hold across the input distribution).
    #[test]
    fn footprints_track_table3(kind in any_tpcc_kind(), seed in 0u64..500) {
        let mut b = TpccWorkloadBuilder::new(TpccScale::mini(), seed);
        let t = b.one(kind);
        let units =
            (t.unique_code_blocks() as u64 * BLOCK_SIZE) as f64 / (32.0 * 1024.0);
        let target = kind.footprint_units() as f64;
        // Per-instance variation comes from conditional actions (Payment's
        // 60%-by-name IT(CUST) branch, New Order's OL_CNT loop); the
        // FPTable records a rounded average, so individual instances may
        // sit up to ~2 units from the Table 3 target.
        prop_assert!(
            (units - target).abs() <= 2.0,
            "{kind}: measured {units:.1} units vs target {target}"
        );
    }

    /// Same-type instances from any pair of ordinals overlap heavily in
    /// code; the trace-level property behind Figure 2.
    #[test]
    fn same_type_overlap_holds_for_any_seed(seed in 0u64..300) {
        let mut b = TpccWorkloadBuilder::new(TpccScale::mini(), seed);
        let a = b.one(TpccTxnKind::Payment);
        let c = b.one(TpccTxnKind::Payment);
        let overlap = strex_oltp::footprint::code_overlap(&a, &c);
        prop_assert!(overlap > 0.6, "overlap {overlap:.2} too low at seed {seed}");
    }

    /// MapReduce tasks always fit in the L1-I regardless of seed.
    #[test]
    fn mapreduce_fits_l1i(seed in 0u64..300, reduce in any::<bool>()) {
        let mut b = MapReduceBuilder::new(seed);
        let kind = if reduce { TaskKind::Reduce } else { TaskKind::Map };
        let t = b.task(kind);
        prop_assert!(
            t.unique_code_blocks() as u64 * BLOCK_SIZE <= 32 * 1024,
            "task footprint exceeds the L1-I"
        );
    }

    /// The generator is a pure function of (scale, seed, call sequence).
    #[test]
    fn generation_is_deterministic(seed in 0u64..200) {
        let run = || {
            let mut b = TpccWorkloadBuilder::new(TpccScale::mini(), seed);
            let t = b.one(TpccTxnKind::NewOrder);
            (t.instr_total(), t.len(), t.unique_code_blocks())
        };
        prop_assert_eq!(run(), run());
    }
}
