//! End-to-end scheduler benchmarks: simulation speed for each scheduling
//! policy on a small TPC-C pool, and core-count scaling.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use strex::config::SchedulerKind;
use strex::driver::{run, SimConfig};
use strex_oltp::workload::{Workload, WorkloadKind};

fn bench_schedulers(c: &mut Criterion) {
    let workload = Workload::preset_small(WorkloadKind::TpccW1, 12, 7);
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    for kind in SchedulerKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| black_box(run(&workload, &SimConfig::new(4, kind))));
        });
    }
    group.finish();
}

fn bench_core_scaling(c: &mut Criterion) {
    let workload = Workload::preset_small(WorkloadKind::TpccW1, 12, 7);
    let mut group = c.benchmark_group("strex_cores");
    group.sample_size(10);
    for cores in [2usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(cores), &cores, |b, &cores| {
            b.iter(|| black_box(run(&workload, &SimConfig::new(cores, SchedulerKind::Strex))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers, bench_core_scaling);
criterion_main!(benches);
