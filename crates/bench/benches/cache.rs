//! Microbenchmarks of the cache substrate: access paths per replacement
//! policy, victim peeking (STREX's hot path), coherence, and signatures.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use strex_sim::addr::{Addr, BlockAddr};
use strex_sim::cache::{CacheGeometry, SetAssocCache};
use strex_sim::coherence::Directory;
use strex_sim::hierarchy::MemorySystem;
use strex_sim::ids::CoreId;
use strex_sim::replacement::ReplacementKind;
use strex_sim::signature::CacheSignature;
use strex_sim::SystemConfig;

fn bench_cache_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("l1_access");
    for kind in ReplacementKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            let mut cache = SetAssocCache::new(CacheGeometry::new(32 * 1024, 8), kind);
            let mut i = 0u64;
            b.iter(|| {
                // Mix of hits and thrashing misses over a 64 KB span.
                i = (i + 7) % 1024;
                black_box(cache.access(BlockAddr::new(i), (i % 256) as u8))
            });
        });
    }
    group.finish();
}

fn bench_peek_victim(c: &mut Criterion) {
    c.bench_function("peek_victim", |b| {
        let mut cache = SetAssocCache::new(CacheGeometry::new(32 * 1024, 8), ReplacementKind::Lru);
        for i in 0..1024u64 {
            cache.access(BlockAddr::new(i), 0);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 13) % 4096;
            black_box(cache.peek_victim(BlockAddr::new(i + 10_000)))
        });
    });
}

fn bench_coherence(c: &mut Criterion) {
    c.bench_function("mesi_rw_pingpong", |b| {
        let mut dir = Directory::new(16);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let core = CoreId::new((i % 16) as u16);
            let block = BlockAddr::new(i % 64);
            if i.is_multiple_of(3) {
                black_box(dir.on_write(core, block))
            } else {
                black_box(dir.on_read(core, block))
            }
        });
    });
}

fn bench_signature(c: &mut Criterion) {
    c.bench_function("signature_insert_query", |b| {
        let mut sig = CacheSignature::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            sig.insert(BlockAddr::new(i % 512));
            black_box(sig.may_contain(BlockAddr::new(i % 1024)))
        });
    });
}

fn bench_hierarchy(c: &mut Criterion) {
    c.bench_function("hierarchy_fetch_inst", |b| {
        let mut mem = MemorySystem::new(SystemConfig::with_cores(4));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let core = CoreId::new((i % 4) as u16);
            black_box(mem.fetch_inst(core, BlockAddr::new(i % 2048), 0, i))
        });
    });
    c.bench_function("hierarchy_access_data", |b| {
        let mut mem = MemorySystem::new(SystemConfig::with_cores(4));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let core = CoreId::new((i % 4) as u16);
            let addr = Addr::new(0x8000_0000 + (i % 4096) * 64);
            black_box(mem.access_data(core, addr, i.is_multiple_of(5), i))
        });
    });
}

criterion_group!(
    benches,
    bench_cache_access,
    bench_peek_victim,
    bench_coherence,
    bench_signature,
    bench_hierarchy
);
criterion_main!(benches);
