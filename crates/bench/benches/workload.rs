//! Benchmarks of the workload substrate: database population, transaction
//! trace generation, and the B+tree engine.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use strex_oltp::engine::{Arena, BTree, RecordingSink};
use strex_oltp::tpcc::{TpccScale, TpccTxnKind, TpccWorkloadBuilder};

fn bench_btree(c: &mut Criterion) {
    c.bench_function("btree_search_10k", |b| {
        let mut arena = Arena::new();
        let mut tree = BTree::new(&mut arena, "bench");
        let mut sink = RecordingSink::new();
        for k in 0..10_000u64 {
            tree.insert((k * 7919) % 10_000, k, &mut arena, &mut sink);
            sink.accesses.clear();
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 31) % 10_000;
            let mut s = RecordingSink::new();
            black_box(tree.search(i, &mut s))
        });
    });
    c.bench_function("btree_insert", |b| {
        let mut arena = Arena::new();
        let mut tree = BTree::new(&mut arena, "bench");
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut s = RecordingSink::new();
            tree.insert(i, i, &mut arena, &mut s);
            black_box(s.len())
        });
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("txn_trace");
    group.sample_size(20);
    for kind in [TpccTxnKind::Payment, TpccTxnKind::NewOrder] {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            let mut builder = TpccWorkloadBuilder::new(TpccScale::mini(), 1);
            b.iter(|| black_box(builder.one(kind)));
        });
    }
    group.finish();
}

fn bench_population(c: &mut Criterion) {
    let mut group = c.benchmark_group("populate");
    group.sample_size(10);
    group.bench_function("tpcc_mini", |b| {
        b.iter(|| black_box(strex_oltp::tpcc::TpccDb::populate(TpccScale::mini())));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_btree,
    bench_trace_generation,
    bench_population
);
criterion_main!(benches);
