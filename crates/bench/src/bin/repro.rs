//! Regenerates every table and figure of the STREX paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! repro [fig1|fig2|fig4|fig5|fig6|fig7|fig8|fig9|table3|table4|config|all] [--quick] [--json]
//! repro scale
//! repro check PATH [--procs N] [--wire json|bin] [--connect ADDR [--shards N]]
//! repro dist [--procs N] [--wire json|bin]
//! repro shard I/N [--pin CORE] [--wire json|bin] [--scenario PATH]
//! repro serve --listen ADDR [--jobs N] [--timeout-ms MS] [--wire json|bin]
//!            [--burst N] [--refill-ms MS] [--max-pending N]
//! repro work --connect ADDR [--pin CORE] [--name LABEL] [--wire json|bin]
//! repro submit --connect ADDR [--shards N] [--verify] [--scenario PATH]
//! repro status --connect ADDR [--watch]
//! repro --bench-json [--check [baseline.json]]
//! ```
//!
//! `fig5`/`fig6` share one run matrix, as do `fig7`/`fig8`. With `--quick`
//! the pools and databases shrink so the whole suite finishes in well under
//! a minute (used by CI); shapes are preserved, magnitudes are noisier.
//! With `--json` the figure 5/6 scheduler campaign is additionally emitted
//! as one JSON document (the `BENCH_*.json` trajectory format).
//!
//! `scale` is the scale-out mode: it sweeps the sharded campaign
//! executor's worker count over the quick matrix (1, 2, 4, … up to the
//! host's parallelism), checks every sweep point bit-identical to the
//! sequential run, and prints aggregate events/sec, events/sec-per-core
//! and scaling efficiency per point. It always runs the quick matrix
//! (the sweep multiplies it by the worker counts), so `--quick` and
//! `--json` are rejected rather than silently ignored.
//!
//! `dist` is `scale`'s multi-**process** sibling: it re-executes this
//! very binary as `repro shard i/N` child processes (deterministic
//! key-hash shards of the quick matrix), collects each child's shard
//! over stdout — negotiating JSON vs binwire by the first byte — merges
//! them, checks the merged campaign bit-identical to the in-process
//! sequential run, and prints the same scale-out table — pinned (each
//! child under `sched_setaffinity` on core `i mod host cores`) and
//! unpinned, per wire format (`--wire` restricts to one). Process
//! fan-out sidesteps the shared allocator and LLC contention that caps
//! thread scaling, and the same wire formats cross a socket to another
//! machine.
//!
//! `check` evaluates declarative scenarios (`strex::scenario`; format
//! reference in `docs/SCENARIOS.md`): `PATH` is one scenario JSON file
//! or a directory of them (`*.json`, sorted, non-recursive — the
//! committed `scenarios/` directory encodes the paper's headline
//! claims). Each scenario's scheduler × workload × cores × team-size
//! matrix runs through the campaign executor — in-process by default,
//! fanned out to `--procs N` `repro shard` child processes carrying
//! `--scenario PATH` (the shards merge bit-identical to the in-process
//! run, so the assertions judge the same numbers either way), or
//! dispatched to a running fleet with `--connect ADDR [--shards N]`,
//! where the coordinator evaluates the assertions on the merged result
//! and returns the same diagnostics — and every assertion prints one
//! PASS/FAIL line with the expected bound, the observed value and the
//! cell key. The output format is identical across all three execution
//! modes, so CI diffs a remote check against an in-process one byte for
//! byte. Exit code 0 means every assertion of every scenario passed; 1
//! means at least one assertion failed; 2 means the check could not run
//! (usage, I/O, or a scenario file that does not validate).
//!
//! `shard I/N` is the child half of `dist`: it executes shard `I` of `N`
//! of the quick matrix sequentially (cells workload-major, so the packed
//! trace stream stays LLC-hot across cells sharing a workload) and
//! writes exactly one document — the shard — to stdout: a JSON line by
//! default, the length-prefixed binwire bytes under `--wire bin`.
//! `--pin C` pins the process to core `C` first (best-effort; a no-op
//! off Linux). With `--scenario PATH` the shard comes from that
//! scenario file's declared matrix instead of the quick matrix — the
//! child half of `check --procs`.
//!
//! `serve` / `work` / `submit` / `status` are `dist` grown into a
//! service (the `strex::dispatch` TCP campaign dispatcher; wire format
//! in `docs/PROTOCOL.md`, operations in `docs/DISPATCHER.md`). `serve`
//! binds a coordinator that accepts campaign and scenario submissions
//! and hands shards to capability-matched workers, tracking their
//! liveness by heartbeat and re-queueing shards from dead or straggling
//! workers (`--jobs N` exits cleanly after N jobs — the CI smoke's run
//! bound; `--burst`/`--refill-ms` tune per-submitter token-bucket rate
//! limiting, `--max-pending` bounds the job queue). `work` connects a
//! worker that registers its detected capabilities and executes shards
//! until the coordinator closes the connection. `submit` submits the
//! quick matrix — or, with `--scenario PATH`, that scenario document —
//! split `--shards` ways and prints the merged campaign's summary plus
//! any coordinator-evaluated assertion diagnostics; `--verify`
//! additionally runs the same work in-process sequentially and fails
//! unless the dispatched result (and diagnostics) are bit-identical —
//! the end-to-end determinism check CI runs on loopback. `status` polls
//! a coordinator for one fleet snapshot (`--watch` re-polls every 2 s).
//!
//! `--bench-json` is a standalone mode: it times the quick reproduction
//! suite cell by cell, merges the result with the committed same-session
//! baselines (seed, PR 2 and PR 3 engines), the sharded-executor scaling
//! section, the multi-process `dist` fan-out grid (1/2/4 shard children,
//! pinned vs unpinned, json vs bin wire), the same-run transport-vs-
//! compute accounting, the host core count, the PGO-vs-plain ratio when
//! CI exports `BENCH_PLAIN_EPS`, and the same-run hot-path microbenches,
//! and writes the trajectory record to `${BENCH_ARTIFACT}.json` in the
//! working directory (the perf document CI gates on and uploads). The
//! artifact name is derived in exactly one place (`perf::bench_artifact`,
//! default `BENCH_PR7`).
//!
//! `--bench-json --check [baseline.json]` additionally re-derives the
//! seed-vs-current throughput ratio from the fresh measurement and fails
//! (non-zero exit) if it regresses more than 10% below the ratio recorded
//! in the committed document — the CI perf-regression gate. The baseline
//! path defaults to the committed `${BENCH_ARTIFACT}.json`; a missing or
//! malformed file is a clear error, not a panic. The fresh side is a
//! per-cell best-of-3 minimum, which strips one-sided load noise on the
//! runner; the seed side is the committed record's wall-times, which are
//! from the machine that recorded the baseline, so the comparison is
//! like-for-like on comparable runners but a runner class much slower
//! than the recording machine will depress the ratio. If the gate trips
//! on a runner change rather than a code change, re-record the baseline
//! there (see `crates/bench/src/baseline_seed.rs`).

use std::env;
use std::process::ExitCode;

use strex_bench::experiments::{
    self, ablation, config_dump, fig1, fig2, fig4, fig5_fig6, fig7_fig8, fig9, future_work, table3,
    table4, Effort,
};

/// Fraction of the committed ratio a fresh measurement may fall to before
/// the gate fails (10% regression tolerance).
const CHECK_TOLERANCE: f64 = 0.9;

fn main() -> ExitCode {
    let mut args: Vec<String> = env::args().skip(1).collect();
    // `shard` and `dist` carry their own value-taking flags (`--pin`,
    // `--procs`), so they dispatch before the generic flag check below
    // would reject those. Both require the subcommand word first.
    match args.first().map(String::as_str) {
        Some("shard") => return shard_mode(&args[1..]),
        Some("check") => return check_mode(&args[1..]),
        Some("dist") => return dist_mode(&args[1..]),
        Some("serve") => return serve_mode(&args[1..]),
        Some("work") => return work_mode(&args[1..]),
        Some("submit") => return submit_mode(&args[1..]),
        Some("status") => return status_mode(&args[1..]),
        Some("chaos-proxy") => return chaos_proxy_mode(&args[1..]),
        _ => {}
    }
    // `--check [path]` takes an optional value: extract it before flag
    // parsing. Without a value it defaults to the committed artifact,
    // whose name comes from the same single source as the output filename.
    let check_path = match args.iter().position(|a| a == "--check") {
        Some(i) => {
            let path = if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                args.remove(i + 1)
            } else {
                strex_bench::perf::bench_artifact_path()
            };
            args.remove(i);
            Some(path)
        }
        None => None,
    };
    for flag in args.iter().filter(|a| a.starts_with("--")) {
        if flag != "--quick" && flag != "--json" && flag != "--bench-json" {
            eprintln!(
                "unknown flag `{flag}`; known flags: --quick --json --bench-json --check [path]"
            );
            return ExitCode::FAILURE;
        }
    }
    if check_path.is_some() && !args.iter().any(|a| a == "--bench-json") {
        eprintln!("--check only applies to --bench-json");
        return ExitCode::FAILURE;
    }
    if args.iter().any(|a| a == "--bench-json") {
        // Standalone mode: refuse positional targets rather than silently
        // ignoring them.
        if let Some(extra) = args.iter().find(|a| !a.starts_with("--")) {
            eprintln!("--bench-json is standalone; unexpected target `{extra}`");
            return ExitCode::FAILURE;
        }
        return bench_json_mode(check_path.as_deref());
    }
    if args.iter().any(|a| a == "scale") {
        // Standalone mode, same strictness as --bench-json: no silently
        // ignored targets or flags (scale always runs the quick matrix
        // and has no JSON form).
        if let Some(extra) = args.iter().find(|a| a.as_str() != "scale") {
            eprintln!("scale is standalone and always uses the quick matrix; unexpected `{extra}`");
            return ExitCode::FAILURE;
        }
        return scale_mode();
    }
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let effort = if quick { Effort::Quick } else { Effort::Full };
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let want = |name: &str| -> bool {
        targets.is_empty()
            || targets.contains(&"all")
            || targets.contains(&name)
            || (name == "fig5" && targets.contains(&"fig6"))
            || (name == "fig7" && targets.contains(&"fig8"))
    };
    let known = [
        "all", "fig1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table3", "table4",
        "config", "ablation", "future",
    ];
    for t in &targets {
        if !known.contains(t) {
            eprintln!("unknown target `{t}`; known: {known:?} [--quick]");
            return ExitCode::FAILURE;
        }
    }

    if json && !(want("fig5") || want("fig6")) {
        eprintln!("note: --json only applies to the fig5/fig6 campaign, which is not selected");
    }
    println!(
        "STREX reproduction — seed {} — {:?} effort\n",
        experiments::SEED,
        effort
    );
    if want("config") {
        println!("{}", config_dump());
    }
    if want("fig1") {
        println!("{}", fig1());
    }
    if want("fig2") {
        println!("{}", fig2(effort).0);
    }
    if want("fig4") {
        println!("{}", fig4(effort).0);
    }
    if want("fig5") || want("fig6") {
        if json {
            let ((text, _), campaign) = experiments::fig5_fig6_campaign(effort);
            println!("{text}");
            println!("{}", campaign.to_json());
        } else {
            println!("{}", fig5_fig6(effort).0);
        }
    }
    if want("fig7") || want("fig8") {
        println!("{}", fig7_fig8(effort).0);
    }
    if want("fig9") {
        println!("{}", fig9(effort).0);
    }
    if want("table3") {
        println!("{}", table3(effort).0);
    }
    if want("table4") {
        println!("{}", table4());
    }
    if want("ablation") {
        println!("{}", ablation(effort).0);
    }
    if want("future") {
        println!("{}", future_work(effort).0);
    }
    ExitCode::SUCCESS
}

/// Sweeps the sharded campaign executor's worker count over the quick
/// matrix and prints the scale-out table: aggregate events/sec,
/// events/sec-per-core (per *effective* core), and scaling efficiency
/// against the 1-worker point.
fn scale_mode() -> ExitCode {
    use strex_bench::perf;

    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // 1, 2, 4, … up to the host's parallelism, plus 4 (the committed
    // record's point) and the host maximum itself.
    let mut sweep: Vec<usize> = std::iter::successors(Some(1usize), |w| Some(w * 2))
        .take_while(|&w| w < avail)
        .collect();
    sweep.push(avail);
    sweep.push(4);
    sweep.sort_unstable();
    sweep.dedup();

    println!("Sharded campaign executor scale-out — quick matrix, {avail} host cores");
    println!(
        "(one shared sequential baseline; every sweep point is checked bit-identical to it)\n"
    );
    println!("workers  eff.cores  events/sec  events/sec-per-core  efficiency");
    for s in perf::campaign_scaling_sweep(&sweep) {
        println!(
            "{:>7}  {:>9}  {:>10.0}  {:>19.0}  {:>10.3}",
            s.workers,
            s.effective_cores,
            s.events_per_sec,
            s.events_per_sec_per_core(),
            s.efficiency(),
        );
    }
    println!(
        "\nefficiency = events/sec over (1-worker events/sec x effective cores); \
         effective cores = min(workers, host cores)."
    );
    ExitCode::SUCCESS
}

/// The child half of `dist`: executes one deterministic shard of the
/// quick matrix and writes the shard — and nothing else — to stdout in
/// the requested wire format (JSON line or binwire bytes), so the parent
/// can pipe it straight into `CampaignShard::from_json` / `from_bin`,
/// negotiating by the first byte.
fn shard_mode(rest: &[String]) -> ExitCode {
    let mut spec: Option<strex::campaign::ShardSpec> = None;
    let mut pin: Option<usize> = None;
    let mut wire = strex::WireFormat::Json;
    let mut scenario: Option<String> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg == "--pin" {
            pin = match it.next().and_then(|v| v.parse().ok()) {
                Some(core) => Some(core),
                None => {
                    eprintln!("--pin needs a core index");
                    return ExitCode::FAILURE;
                }
            };
        } else if arg == "--scenario" {
            scenario = match it.next() {
                Some(path) => Some(path.clone()),
                None => {
                    eprintln!("--scenario needs a scenario file path");
                    return ExitCode::FAILURE;
                }
            };
        } else if arg == "--wire" {
            wire = match it.next().map(|v| strex::WireFormat::parse(v)) {
                Some(Ok(w)) => w,
                _ => {
                    eprintln!("--wire needs `json` or `bin`");
                    return ExitCode::FAILURE;
                }
            };
        } else if spec.is_none() {
            let parsed = arg
                .split_once('/')
                .and_then(|(i, n)| Some((i.parse::<usize>().ok()?, n.parse::<usize>().ok()?)));
            spec = match parsed.and_then(|(i, n)| strex::campaign::ShardSpec::new(i, n).ok()) {
                Some(s) => Some(s),
                None => {
                    eprintln!("`{arg}` is not a valid shard spec (expected I/N with I < N)");
                    return ExitCode::FAILURE;
                }
            };
        } else {
            eprintln!(
                "shard takes one I/N spec and optionally --pin CORE / --wire {{json,bin}} / \
                 --scenario PATH; unexpected `{arg}`"
            );
            return ExitCode::FAILURE;
        }
    }
    let Some(spec) = spec else {
        eprintln!("usage: repro shard I/N [--pin CORE] [--wire {{json,bin}}] [--scenario PATH]");
        return ExitCode::FAILURE;
    };
    if let Some(core) = pin {
        // Best-effort by design: an unpinnable child still computes the
        // right answer, it just floats (and the parent's "pinned" label
        // stays honest only on Linux — which is where dist runs in CI).
        if !strex::affinity::pin_to_core(core) {
            eprintln!("note: could not pin to core {core}; running unpinned");
        }
    }
    let shard = match &scenario {
        // A scenario child re-parses the file itself: the parent and
        // every sibling agree on the matrix because they all decode the
        // same validated document, not because anyone re-encoded it.
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("cannot read scenario {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let s = match strex::scenario::Scenario::from_json(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let workloads = s.workloads();
            match s.campaign(&workloads).run_shard(spec) {
                Ok(shard) => shard,
                Err(e) => {
                    eprintln!("{path}: invalid matrix: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => strex_bench::perf::run_quick_shard(spec),
    };
    match wire {
        strex::WireFormat::Json => println!("{}", shard.to_json()),
        strex::WireFormat::Bin => {
            use std::io::Write;
            // Raw bytes, no trailing newline: the parent reads to EOF and
            // negotiates by the leading magic byte.
            let mut out = std::io::stdout().lock();
            if out
                .write_all(&shard.to_bin())
                .and_then(|()| out.flush())
                .is_err()
            {
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Evaluates declarative scenarios: runs each file's declared matrix
/// through the campaign executor (in-process, `--procs N` shard
/// children carrying `--scenario`, or — with `--connect ADDR` — a
/// running dispatcher fleet, which evaluates the assertions
/// coordinator-side and returns the same diagnostics), judges every
/// assertion, and prints one PASS/FAIL diagnostic per assertion. The
/// output format is identical across all three execution modes, so CI
/// can diff a remote check against an in-process one byte for byte.
/// Exit 0 = all passed, 1 = an assertion failed, 2 = the check could
/// not run (usage, I/O, or an invalid scenario file).
fn check_mode(rest: &[String]) -> ExitCode {
    use strex::scenario::{EvaluatorRegistry, Scenario};

    let mut path: Option<String> = None;
    let mut procs: Option<usize> = None;
    let mut connect: Option<String> = None;
    let mut shards: usize = 4;
    let mut wire = strex::WireFormat::default();
    let mut wire_set = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg == "--procs" {
            procs = match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => Some(n),
                _ => {
                    eprintln!("--procs needs a positive process count");
                    return ExitCode::from(2);
                }
            };
        } else if arg == "--connect" {
            connect = match it.next() {
                Some(addr) => Some(addr.clone()),
                None => {
                    eprintln!("--connect needs an ADDR");
                    return ExitCode::from(2);
                }
            };
        } else if arg == "--shards" {
            shards = match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => n,
                _ => {
                    eprintln!("--shards needs a positive shard count");
                    return ExitCode::from(2);
                }
            };
        } else if arg == "--wire" {
            wire = match it.next().map(|v| strex::WireFormat::parse(v)) {
                Some(Ok(w)) => w,
                _ => {
                    eprintln!("--wire needs `json` or `bin`");
                    return ExitCode::from(2);
                }
            };
            wire_set = true;
        } else if path.is_none() && !arg.starts_with("--") {
            path = Some(arg.clone());
        } else {
            eprintln!(
                "check takes one scenario file or directory and optionally --procs N / \
                 --wire {{json,bin}} / --connect ADDR [--shards N]; unexpected `{arg}`"
            );
            return ExitCode::from(2);
        }
    }
    let Some(path) = path else {
        eprintln!(
            "usage: repro check PATH [--procs N] [--wire {{json,bin}}] \
             [--connect ADDR [--shards N]]"
        );
        return ExitCode::from(2);
    };
    if connect.is_some() && (procs.is_some() || wire_set) {
        // Remote checks run on the fleet's workers; the local fan-out
        // knobs have nothing to apply to.
        eprintln!("--connect is exclusive with --procs/--wire (the fleet runs the shards)");
        return ExitCode::from(2);
    }
    if wire_set && procs.is_none() {
        // The wire format only shapes shard transport; silently accepting
        // it in-process would let a CI invocation believe it tested a
        // format it never exercised.
        eprintln!("--wire only applies with --procs (in-process runs have no shard transport)");
        return ExitCode::from(2);
    }

    // A directory means every `*.json` directly inside it, sorted by
    // name so the report order (and any first-failure exit) is stable.
    let root = std::path::Path::new(&path);
    let files: Vec<std::path::PathBuf> = if root.is_dir() {
        let entries = match std::fs::read_dir(root) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("cannot read scenario directory {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let mut files: Vec<_> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_file() && p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        files.sort();
        if files.is_empty() {
            eprintln!("no `*.json` scenario files in {path}");
            return ExitCode::from(2);
        }
        files
    } else {
        vec![root.to_path_buf()]
    };

    let registry = EvaluatorRegistry::with_defaults();
    let exe = match procs {
        Some(_) => match env::current_exe() {
            Ok(exe) => Some(exe),
            Err(e) => {
                eprintln!("cannot locate the repro binary to re-execute: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let mut broken = 0usize;
    let mut assertions = 0usize;
    let mut failed = 0usize;
    for file in &files {
        let display = file.display();
        let text = match std::fs::read_to_string(file) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read scenario {display}: {e}");
                broken += 1;
                continue;
            }
        };
        let scenario = match Scenario::from_json(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{display}: {e}");
                broken += 1;
                continue;
            }
        };
        println!("scenario {} ({display})", scenario.name);
        if let Some(d) = &scenario.description {
            println!("  {d}");
        }
        // Remote mode: the fleet runs the matrix and the coordinator
        // returns the evaluated diagnostics — nothing to judge locally.
        if let Some(addr) = &connect {
            match strex::dispatch::submit_scenario(addr.as_str(), &scenario, shards) {
                Ok((_, outcomes)) => {
                    for o in &outcomes {
                        println!("  {o}");
                    }
                    assertions += outcomes.len();
                    failed += outcomes.iter().filter(|o| !o.passed).count();
                }
                Err(e) => {
                    eprintln!("{display}: dispatch failed: {e}");
                    broken += 1;
                }
            }
            continue;
        }
        let result = match (procs, &exe) {
            (Some(procs), Some(exe)) => {
                match strex_bench::perf::scenario_fan_out(exe, file, procs, wire) {
                    Ok(result) => result,
                    Err(e) => {
                        eprintln!("{display}: fan-out failed: {e}");
                        broken += 1;
                        continue;
                    }
                }
            }
            _ => {
                let workloads = scenario.workloads();
                match scenario.campaign(&workloads).run() {
                    Ok(result) => result,
                    Err(e) => {
                        eprintln!("{display}: invalid matrix: {e}");
                        broken += 1;
                        continue;
                    }
                }
            }
        };
        match scenario.evaluate(&result, &registry) {
            Ok(outcomes) => {
                for o in &outcomes {
                    println!("  {o}");
                }
                assertions += outcomes.len();
                failed += outcomes.iter().filter(|o| !o.passed).count();
            }
            Err(e) => {
                eprintln!("{display}: {e}");
                broken += 1;
            }
        }
    }
    println!(
        "checked {} scenario file(s): {assertions} assertion(s), {failed} failed{}",
        files.len(),
        if broken > 0 {
            format!(", {broken} file(s) could not be evaluated")
        } else {
            String::new()
        },
    );
    if broken > 0 {
        ExitCode::from(2)
    } else if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Multi-process scale-out: fans the quick matrix out to `--procs` child
/// processes (pinned and unpinned, per wire format), merges their shards,
/// checks the merged campaign bit-identical to the in-process sequential
/// run, and prints the scale-out table next to what `scale` prints for
/// threads. `--wire {json,bin}` restricts the sweep to one shard
/// encoding; by default both are measured side by side.
fn dist_mode(rest: &[String]) -> ExitCode {
    use strex_bench::perf;

    let mut procs: Option<usize> = None;
    let mut wires = vec![strex::WireFormat::Json, strex::WireFormat::Bin];
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg == "--procs" {
            procs = match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => Some(n),
                _ => {
                    eprintln!("--procs needs a positive process count");
                    return ExitCode::FAILURE;
                }
            };
        } else if arg == "--wire" {
            wires = match it.next().map(|v| strex::WireFormat::parse(v)) {
                Some(Ok(w)) => vec![w],
                _ => {
                    eprintln!("--wire needs `json` or `bin`");
                    return ExitCode::FAILURE;
                }
            };
        } else {
            eprintln!("dist takes --procs N and --wire {{json,bin}}; unexpected `{arg}`");
            return ExitCode::FAILURE;
        }
    }
    let avail = perf::host_cores();
    // Even a 1-core host demonstrates the fan-out with 2 processes; the
    // efficiency framing against effective cores keeps the table honest.
    let procs = procs.unwrap_or_else(|| avail.max(2));
    let exe = match env::current_exe() {
        Ok(exe) => exe,
        Err(e) => {
            eprintln!("cannot locate the repro binary to re-execute: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "Multi-process campaign fan-out — quick matrix, {procs} shard processes, \
         {avail} host cores"
    );
    println!(
        "(children re-execute this binary as `repro shard i/{procs}`; every merged \
         result is checked bit-identical to the sequential run)\n"
    );
    let mut sweep = vec![1, procs];
    sweep.dedup();
    let scaling = match perf::dist_scaling(&exe, &sweep, None, &wires) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dist fan-out failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("  procs  wire  pinned  eff.cores  events/sec  events/sec-per-core  efficiency");
    for p in &scaling.points {
        println!(
            "{:>7}  {:>4}  {:>6}  {:>9}  {:>10.0}  {:>19.0}  {:>10.3}",
            p.procs,
            p.wire.to_string(),
            if p.pinned { "yes" } else { "no" },
            p.effective_cores,
            p.events_per_sec(),
            p.events_per_sec_per_core(),
            p.efficiency(),
        );
    }
    println!(
        "\nefficiency = events/sec over (same (wire, pinned) flavor's 1-process \
         events/sec x effective cores); wall time includes process startup, one \
         workload generation per child (shared in-process via the WorkloadCache) \
         and shard transport in the row's wire format. pinned = children under \
         sched_setaffinity on core i mod host cores."
    );
    ExitCode::SUCCESS
}

/// The coordinator half of the dispatcher: binds `--listen ADDR`, accepts
/// campaign submissions and worker registrations, and serves until
/// `--jobs N` jobs complete (forever without it). Workers silent for
/// `--timeout-ms` (default 10s) are dropped and their shards re-queued.
fn serve_mode(rest: &[String]) -> ExitCode {
    use std::sync::Arc;
    use strex::dispatch::{DispatchConfig, ServeOptions, Server, SystemClock};

    let mut listen: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut journal: Option<std::path::PathBuf> = None;
    let mut wire = strex::WireFormat::default();
    let mut cfg = DispatchConfig::default();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--wire" => match it.next().map(|v| strex::WireFormat::parse(v)) {
                Some(Ok(w)) => wire = w,
                Some(Err(e)) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--wire needs a format (json or bin)");
                    return ExitCode::FAILURE;
                }
            },
            "--listen" => match it.next() {
                Some(addr) => listen = Some(addr.clone()),
                None => {
                    eprintln!("--listen needs an ADDR (e.g. 127.0.0.1:7700)");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => jobs = Some(n),
                _ => {
                    eprintln!("--jobs needs a positive job count");
                    return ExitCode::FAILURE;
                }
            },
            "--timeout-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(ms) if ms >= 1 => {
                    cfg.worker_timeout_ms = ms;
                    // Keep the advertised cadence consistent with the
                    // timeout (workers beat 4x faster than they may die).
                    cfg.heartbeat_interval_ms = (ms / 4).max(1);
                }
                _ => {
                    eprintln!("--timeout-ms needs a positive millisecond count");
                    return ExitCode::FAILURE;
                }
            },
            "--burst" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => cfg.submit_burst = n,
                _ => {
                    eprintln!("--burst needs a positive token count");
                    return ExitCode::FAILURE;
                }
            },
            "--refill-ms" => match it.next().and_then(|v| v.parse().ok()) {
                // 0 is meaningful: it disables rate limiting entirely.
                Some(ms) => cfg.submit_refill_ms = ms,
                None => {
                    eprintln!("--refill-ms needs a millisecond count (0 disables rate limiting)");
                    return ExitCode::FAILURE;
                }
            },
            "--max-pending" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => cfg.max_pending_jobs = n,
                _ => {
                    eprintln!("--max-pending needs a positive job count");
                    return ExitCode::FAILURE;
                }
            },
            "--journal" => match it.next() {
                Some(path) => journal = Some(std::path::PathBuf::from(path)),
                None => {
                    eprintln!("--journal needs a ledger file path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!(
                    "serve takes --listen ADDR [--jobs N] [--journal PATH] [--timeout-ms MS] \
                     [--burst N] [--refill-ms MS] [--max-pending N] [--wire json|bin]; \
                     unexpected `{other}`"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(listen) = listen else {
        eprintln!(
            "usage: repro serve --listen ADDR [--jobs N] [--journal PATH] [--timeout-ms MS] \
             [--burst N] [--refill-ms MS] [--max-pending N] [--wire json|bin]"
        );
        return ExitCode::FAILURE;
    };
    let server = match Server::bind(
        listen.as_str(),
        cfg,
        strex_bench::perf::dispatch_catalog(),
        Arc::new(SystemClock::new()),
    ) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("serving campaign dispatch on {addr}"),
        Err(_) => println!("serving campaign dispatch on {listen}"),
    }
    match server.run(ServeOptions {
        max_jobs: jobs,
        wire,
        journal,
        stop: None,
    }) {
        Ok(summary) => {
            println!("served {} job(s); exiting", summary.jobs_completed);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The worker half of the dispatcher: connects to `--connect ADDR`,
/// registers, and executes assigned quick-matrix shards until the
/// coordinator closes the connection. `--pin C` pins the process first
/// (best-effort, like `shard`); `--name` labels it in coordinator logs.
/// `--reconnect N` survives N coordinator outages: a transport failure
/// re-dials under jittered exponential backoff and re-registers, so a
/// fleet rides out a coordinator restart (`serve --journal`) without
/// being relaunched.
fn work_mode(rest: &[String]) -> ExitCode {
    use strex::dispatch::{connect_with_retry, run_worker, Backoff, DispatchError, WorkerOptions};

    let mut connect: Option<String> = None;
    let mut pin: Option<usize> = None;
    let mut reconnect: usize = 0;
    let mut opts = WorkerOptions::default();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => match it.next() {
                Some(addr) => connect = Some(addr.clone()),
                None => {
                    eprintln!("--connect needs an ADDR");
                    return ExitCode::FAILURE;
                }
            },
            "--pin" => match it.next().and_then(|v| v.parse().ok()) {
                Some(core) => pin = Some(core),
                None => {
                    eprintln!("--pin needs a core index");
                    return ExitCode::FAILURE;
                }
            },
            "--name" => match it.next() {
                Some(name) => opts.name = name.clone(),
                None => {
                    eprintln!("--name needs a label");
                    return ExitCode::FAILURE;
                }
            },
            "--wire" => match it.next().map(|v| strex::WireFormat::parse(v)) {
                Some(Ok(w)) => opts.wire = w,
                Some(Err(e)) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--wire needs a format (json or bin)");
                    return ExitCode::FAILURE;
                }
            },
            "--reconnect" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => reconnect = n,
                None => {
                    eprintln!("--reconnect needs a retry count (0 disables)");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!(
                    "work takes --connect ADDR [--pin CORE] [--name LABEL] [--reconnect N] \
                     [--wire json|bin]; unexpected `{other}`"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(connect) = connect else {
        eprintln!(
            "usage: repro work --connect ADDR [--pin CORE] [--name LABEL] [--reconnect N] \
             [--wire json|bin]"
        );
        return ExitCode::FAILURE;
    };
    if let Some(core) = pin {
        if !strex::affinity::pin_to_core(core) {
            eprintln!("note: could not pin to core {core}; running unpinned");
        }
    }
    // Workers and the coordinator start concurrently in CI; absorb the
    // bind race instead of failing the fleet.
    let stream =
        match connect_with_retry(connect.as_str(), 50, std::time::Duration::from_millis(100)) {
            Ok(stream) => stream,
            Err(e) => {
                eprintln!("cannot reach coordinator {connect}: {e}");
                return ExitCode::FAILURE;
            }
        };
    drop(stream);
    let mut runner = strex_bench::perf::dispatch_runner();
    // Transport failures are survivable up to --reconnect times: the
    // coordinator crashed or the network hiccuped, and a journal-backed
    // coordinator will come back with the same jobs. Typed rejections
    // and runner errors are final — retrying those is a retry storm.
    let mut backoff = Backoff::new(200, 10_000, u64::from(std::process::id()));
    let mut reconnects_left = reconnect;
    let mut total_shards = 0usize;
    loop {
        match run_worker(connect.as_str(), &opts, &mut runner) {
            Ok(summary) if reconnects_left > 0 => {
                // EOF with reconnects left: a restarting (or
                // chaos-killed) coordinator closes connections exactly
                // like a finished one — come back and see.
                total_shards += summary.shards_run;
                reconnects_left -= 1;
                let delay = backoff.next_delay_ms();
                std::thread::sleep(std::time::Duration::from_millis(delay));
            }
            Ok(summary) => {
                total_shards += summary.shards_run;
                println!(
                    "worker {} done: {} shard(s) executed",
                    opts.name, total_shards
                );
                return ExitCode::SUCCESS;
            }
            Err(e @ (DispatchError::Io(_) | DispatchError::Proto(_))) if reconnects_left > 0 => {
                reconnects_left -= 1;
                let delay = backoff.next_delay_ms();
                eprintln!(
                    "worker {}: coordinator unreachable ({e}); reconnecting in {delay} ms \
                     ({reconnects_left} reconnect(s) left)",
                    opts.name
                );
                std::thread::sleep(std::time::Duration::from_millis(delay));
            }
            Err(e) => {
                eprintln!("worker {} failed: {e}", opts.name);
                return ExitCode::FAILURE;
            }
        }
    }
}

/// The submitter: sends the quick matrix — or, with `--scenario PATH`,
/// that scenario's declared matrix — split `--shards` ways to
/// `--connect ADDR`, blocks for the merged campaign, and prints its
/// summary line. A scenario submission also prints the coordinator's
/// per-assertion diagnostics (same format as `repro check`) and exits
/// nonzero if any assertion failed. `--verify` re-runs the matrix
/// in-process sequentially and fails unless the dispatched result (and,
/// for scenarios, every diagnostic) is bit-identical.
fn submit_mode(rest: &[String]) -> ExitCode {
    use strex_bench::perf;

    let mut connect: Option<String> = None;
    let mut scenario_path: Option<String> = None;
    let mut shards: usize = 4;
    let mut verify = false;
    let mut retry: usize = 1;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => match it.next() {
                Some(addr) => connect = Some(addr.clone()),
                None => {
                    eprintln!("--connect needs an ADDR");
                    return ExitCode::FAILURE;
                }
            },
            "--scenario" => match it.next() {
                Some(path) => scenario_path = Some(path.clone()),
                None => {
                    eprintln!("--scenario needs a scenario JSON file path");
                    return ExitCode::FAILURE;
                }
            },
            "--shards" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => shards = n,
                _ => {
                    eprintln!("--shards needs a positive shard count");
                    return ExitCode::FAILURE;
                }
            },
            "--verify" => verify = true,
            "--retry" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => retry = n,
                _ => {
                    eprintln!("--retry needs a positive attempt count");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!(
                    "submit takes --connect ADDR [--scenario PATH] [--shards N] [--retry N] \
                     [--verify]; unexpected `{other}`"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(connect) = connect else {
        eprintln!(
            "usage: repro submit --connect ADDR [--scenario PATH] [--shards N] [--retry N] \
             [--verify]"
        );
        return ExitCode::FAILURE;
    };
    // The scenario must validate locally before anything crosses the
    // wire — a typo'd file should fail here, not as a coordinator reject.
    let scenario = match &scenario_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match strex::Scenario::from_json(&text) {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("cannot read scenario {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    // Same bind-race absorption as `work`: the coordinator may still be
    // starting when the fleet launches together (as the CI smoke does).
    if let Err(e) = strex::dispatch::connect_with_retry(
        connect.as_str(),
        50,
        std::time::Duration::from_millis(100),
    ) {
        eprintln!("cannot reach coordinator {connect}: {e}");
        return ExitCode::FAILURE;
    }
    // `--retry N` rides the coordinator's idempotency: a resubmission
    // after a crash attaches to the journal-restored job (or its cached
    // result), so N attempts never run the matrix more than once.
    let (result, outcomes) = match &scenario {
        Some(s) => {
            match strex::dispatch::submit_scenario_with_retry(connect.as_str(), s, shards, retry) {
                Ok(pair) => pair,
                Err(e) => {
                    eprintln!("submit failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => match strex::dispatch::submit_with_retry(
            connect.as_str(),
            perf::QUICK_CAMPAIGN,
            shards,
            retry,
        ) {
            Ok(result) => (result, Vec::new()),
            Err(e) => {
                eprintln!("submit failed: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    if let Some(s) = &scenario {
        println!("scenario {} (dispatched to {connect})", s.name);
        for o in &outcomes {
            println!("  {o}");
        }
    }
    println!(
        "dispatched campaign merged: {} cells, {} events simulated",
        result.cells().len(),
        result.perf().total_events,
    );
    if verify {
        let (sequential, local_outcomes) = match &scenario {
            Some(s) => {
                let workloads = s.workloads();
                let sequential = match s.campaign(&workloads).parallelism(1).run() {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("verify: scenario matrix failed to run in-process: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let registry = strex::EvaluatorRegistry::with_defaults();
                let local = match s.evaluate(&sequential, &registry) {
                    Ok(o) => o,
                    Err(e) => {
                        eprintln!("verify: local evaluation failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                (sequential, Some(local))
            }
            None => {
                let workloads = perf::quick_matrix_workloads();
                let sequential = perf::quick_campaign(&workloads)
                    .parallelism(1)
                    .run()
                    .expect("quick matrix is valid");
                (sequential, None)
            }
        };
        if sequential.to_json() != result.to_json() {
            eprintln!("verify: FAILED — dispatched result diverged from the sequential run");
            return ExitCode::FAILURE;
        }
        if let Some(local) = local_outcomes {
            if local != outcomes {
                eprintln!(
                    "verify: FAILED — coordinator diagnostics diverged from local evaluation"
                );
                return ExitCode::FAILURE;
            }
        }
        println!("verify: ok — dispatched result bit-identical to the sequential run");
    }
    if outcomes.iter().any(|o| !o.passed) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// A deterministic fault-injecting TCP proxy between dispatcher peers:
/// listens on `--listen`, forwards frames to `--connect`, mangling them
/// per the [`strex::dispatch::FaultPlan`] derived from `--seed N`
/// (`--benign` forwards untouched). Point `work`/`submit` at the proxy
/// instead of the coordinator; same seed, same fault schedule. Runs
/// until killed — the chaos CI smoke owns its lifetime.
fn chaos_proxy_mode(rest: &[String]) -> ExitCode {
    use strex::dispatch::{ChaosProxy, FaultPlan};

    let mut listen: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut seed: u64 = 0;
    let mut benign = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => match it.next() {
                Some(addr) => listen = Some(addr.clone()),
                None => {
                    eprintln!("--listen needs an ADDR");
                    return ExitCode::FAILURE;
                }
            },
            "--connect" => match it.next() {
                Some(addr) => connect = Some(addr.clone()),
                None => {
                    eprintln!("--connect needs the upstream coordinator ADDR");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => seed = n,
                None => {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--benign" => benign = true,
            other => {
                eprintln!(
                    "chaos-proxy takes --listen ADDR --connect ADDR [--seed N] [--benign]; \
                     unexpected `{other}`"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let (Some(listen), Some(connect)) = (listen, connect) else {
        eprintln!("usage: repro chaos-proxy --listen ADDR --connect ADDR [--seed N] [--benign]");
        return ExitCode::FAILURE;
    };
    let upstream = match std::net::ToSocketAddrs::to_socket_addrs(&connect.as_str())
        .ok()
        .and_then(|mut addrs| addrs.next())
    {
        Some(addr) => addr,
        None => {
            eprintln!("cannot resolve upstream {connect}");
            return ExitCode::FAILURE;
        }
    };
    let plan = if benign {
        FaultPlan::benign(seed)
    } else {
        FaultPlan::from_seed(seed)
    };
    let proxy = match ChaosProxy::start(listen.as_str(), upstream, plan) {
        Ok(proxy) => proxy,
        Err(e) => {
            eprintln!("cannot bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "chaos proxy on {} -> {upstream}, plan {plan:?}",
        proxy.local_addr()
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Asks a running coordinator for a fleet snapshot and prints it
/// (`--watch` polls every 2 seconds until interrupted).
fn status_mode(rest: &[String]) -> ExitCode {
    let mut connect: Option<String> = None;
    let mut watch = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => match it.next() {
                Some(addr) => connect = Some(addr.clone()),
                None => {
                    eprintln!("--connect needs an ADDR");
                    return ExitCode::FAILURE;
                }
            },
            "--watch" => watch = true,
            other => {
                eprintln!("status takes --connect ADDR [--watch]; unexpected `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(connect) = connect else {
        eprintln!("usage: repro status --connect ADDR [--watch]");
        return ExitCode::FAILURE;
    };
    loop {
        match strex::dispatch::status(connect.as_str()) {
            Ok(report) => print!("{report}"),
            Err(e) => {
                eprintln!("status failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        if !watch {
            return ExitCode::SUCCESS;
        }
        println!();
        std::thread::sleep(std::time::Duration::from_secs(2));
    }
}

/// Times the quick suite, merges with the committed baselines, writes
/// `${BENCH_ARTIFACT}.json`, and (with `--check`) gates the fresh
/// seed-vs-current ratio against the committed one.
fn bench_json_mode(check_path: Option<&str>) -> ExitCode {
    use strex_bench::{baseline_seed, perf};

    // Snapshot the committed document *before* measuring: the fresh record
    // is written to the same conventional path, and the gate must compare
    // against what was committed, not against what this run just wrote.
    let committed = match check_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => Some((path, text)),
            Err(e) => {
                eprintln!(
                    "check: cannot read committed baseline {path}: {e}\n\
                     check: the gate needs the committed ${{BENCH_ARTIFACT}}.json from the \
                     repository root; if BENCH_ARTIFACT was bumped, commit the new record \
                     (repro --bench-json) alongside the bump"
                );
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let revision = env::var("GITHUB_SHA").unwrap_or_else(|_| "working-tree".to_string());
    // CI keeps the default of 3 rounds (bounded job time); the committed
    // record is produced with BENCH_ROUNDS matching the committed
    // baselines' best-of depth so the fresh side isn't systematically
    // noisier than the cells it is compared against.
    let rounds: usize = env::var("BENCH_ROUNDS")
        .ok()
        .and_then(|r| r.parse().ok())
        .unwrap_or(3);
    println!("Timing the quick reproduction suite (sequential cells, best of {rounds} rounds)...");
    let current = perf::quick_suite_best_of("current", &revision, rounds);
    let baseline = baseline_seed::seed_baseline();
    let pr2 = baseline_seed::pr2_record();
    let pr3 = baseline_seed::pr3_record();
    println!("Measuring the sharded executor (1 worker vs 4 workers)...");
    // The sweep's sequential run doubles as the dist grid's golden, so
    // the matrix is simulated once for both references.
    let (mut scalings, golden) = perf::campaign_scaling_sweep_with_golden(&[4]);
    let scaling = scalings.pop().expect("one sweep point in, one out");
    println!(
        "Measuring the multi-process fan-out (1/2/4 procs, pinned and unpinned, \
         json and bin wire)..."
    );
    let wires = [strex::WireFormat::Json, strex::WireFormat::Bin];
    let dist = match env::current_exe()
        .and_then(|exe| perf::dist_scaling(&exe, &[1, 2, 4], Some(&golden), &wires))
    {
        Ok(dist) => dist,
        Err(e) => {
            eprintln!("dist fan-out measurement failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("Measuring transport vs compute (4 shards, json and bin wire)...");
    let transport = perf::transport_accounting(4);
    println!("Running the same-run hot-path microbenches...");
    let micros = perf::same_run_micros();
    let pgo = perf::PgoComparison::from_env();
    let doc = perf::bench_json(
        &current, &baseline, &pr2, &pr3, &micros, &scaling, &dist, &transport, pgo,
    );
    // One source of truth with CI: perf::bench_artifact reads the
    // BENCH_ARTIFACT the workflow exports; the filename written here, the
    // default --check path above and the artifact uploaded by CI all
    // follow it. The default matches the committed record.
    let path = perf::bench_artifact_path();
    if let Err(e) = std::fs::write(&path, &doc) {
        eprintln!("failed to write {path}: {e}");
        return ExitCode::FAILURE;
    }
    let speedup = if baseline.events_per_sec() > 0.0 {
        current.events_per_sec() / baseline.events_per_sec()
    } else {
        0.0
    };
    println!(
        "{} cells, {} events in {:.2}s — {:.0} events/sec \
         ({:.2}x the committed seed baseline's {:.0}; PR 2 was {:.2}x, PR 3 {:.2}x)",
        current.cells.len(),
        current.total_events(),
        current.total_wall_seconds(),
        current.events_per_sec(),
        speedup,
        baseline.events_per_sec(),
        pr2.events_per_sec() / baseline.events_per_sec(),
        pr3.events_per_sec() / baseline.events_per_sec(),
    );
    println!(
        "campaign: {:.0} events/sec on {} workers ({} effective cores) — \
         {:.0} events/sec-per-core, scaling efficiency {:.3}",
        scaling.events_per_sec,
        scaling.workers,
        scaling.effective_cores,
        scaling.events_per_sec_per_core(),
        scaling.efficiency(),
    );
    for p in &dist.points {
        println!(
            "dist: {} procs ({}, {} wire) — {:.0} events/sec, efficiency {:.3}",
            p.procs,
            if p.pinned { "pinned" } else { "unpinned" },
            p.wire,
            p.events_per_sec(),
            p.efficiency(),
        );
    }
    for t in &transport.wires {
        println!(
            "transport: {} — {} bytes/{} shards, encode {:.4}s + decode {:.4}s \
             ({:.1}% of {:.2}s shard compute)",
            t.wire,
            t.bytes,
            transport.shards,
            t.encode_seconds,
            t.decode_seconds,
            100.0 * t.round_trip_seconds() / transport.compute_seconds.max(f64::MIN_POSITIVE),
            transport.compute_seconds,
        );
    }
    println!(
        "transport: bin round trip is {:.3}x the json round trip",
        transport.bin_round_trip_vs_json(),
    );
    if let Some(pgo) = pgo {
        println!(
            "pgo: {:.0} events/sec vs plain {:.0} — {:.3}x",
            current.events_per_sec(),
            pgo.plain_events_per_sec,
            pgo.ratio(current.events_per_sec()),
        );
    }
    println!(
        "same-run: cache {:.1} vs {:.1} ns/op ({:.2}x) — trace {:.2} vs {:.2} ns/ev ({:.2}x) — driver {:.1} vs {:.1} ns/ev ({:.2}x)",
        micros.cache.reference_ns_per_op,
        micros.cache.soa_ns_per_op,
        micros.cache.speedup(),
        micros.trace.legacy_ns_per_event,
        micros.trace.packed_ns_per_event,
        micros.trace.speedup(),
        micros.driver.generic_ns_per_event,
        micros.driver.passive_ns_per_event,
        micros.driver.speedup(),
    );
    println!("wrote {path}");
    match committed {
        Some((committed_path, text)) => match check_regression(&current, committed_path, &text) {
            Ok(msg) => {
                println!("{msg}");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        },
        None => ExitCode::SUCCESS,
    }
}

/// The perf-regression gate: recomputes the seed-vs-current ratio from the
/// fresh measurement (`current` events/sec over the committed seed
/// baseline's) and fails if it fell more than 10% below the ratio the
/// committed document recorded. Also fails — loudly and unconditionally —
/// if the fresh run simulated a different event count than the committed
/// baseline, because that means behavior (not performance) changed.
fn check_regression(
    current: &strex_bench::perf::BenchRecord,
    committed_path: &str,
    committed_text: &str,
) -> Result<String, String> {
    use strex::jsonval::JsonValue;

    let doc =
        JsonValue::parse(committed_text).map_err(|e| format!("check: {committed_path}: {e}"))?;
    let field = |path: &str| -> Result<f64, String> {
        doc.get(path)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("check: {committed_path} has no numeric `{path}`"))
    };
    let base_events = field("baseline.total_events")?;
    let base_wall = field("baseline.total_wall_seconds")?;
    let committed_ratio = field("speedup_vs_committed_baseline")?;
    if base_wall <= 0.0 || committed_ratio <= 0.0 {
        return Err(format!(
            "check: {committed_path} carries degenerate baseline numbers"
        ));
    }
    if current.total_events() as f64 != base_events {
        return Err(format!(
            "check: FAILED — fresh run simulated {} events but the committed \
             baseline simulated {}; the simulation's behavior drifted (this is \
             a correctness regression, not a performance one — see the golden \
             snapshot test)",
            current.total_events(),
            base_events
        ));
    }
    let fresh_ratio = current.events_per_sec() / (base_events / base_wall);
    let floor = committed_ratio * CHECK_TOLERANCE;
    if fresh_ratio < floor {
        Err(format!(
            "check: FAILED — fresh seed-vs-current ratio {fresh_ratio:.3}x is below \
             {floor:.3}x (committed {committed_ratio:.3}x minus the 10% tolerance); \
             the hot path regressed"
        ))
    } else {
        Ok(format!(
            "check: ok — fresh seed-vs-current ratio {fresh_ratio:.3}x vs committed \
             {committed_ratio:.3}x (floor {floor:.3}x)"
        ))
    }
}
