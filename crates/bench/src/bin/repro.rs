//! Regenerates every table and figure of the STREX paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! repro [fig1|fig2|fig4|fig5|fig6|fig7|fig8|fig9|table3|table4|config|all] [--quick] [--json]
//! ```
//!
//! `fig5`/`fig6` share one run matrix, as do `fig7`/`fig8`. With `--quick`
//! the pools and databases shrink so the whole suite finishes in well under
//! a minute (used by CI); shapes are preserved, magnitudes are noisier.
//! With `--json` the figure 5/6 scheduler campaign is additionally emitted
//! as one JSON document (the `BENCH_*.json` trajectory format).
//!
//! `--bench-json` is a standalone mode: it times the quick reproduction
//! suite cell by cell, merges the result with the committed pre-refactor
//! baseline, and writes the before/after record to `BENCH_PR2.json` in the
//! working directory (the perf trajectory CI uploads).

use std::env;
use std::process::ExitCode;

use strex_bench::experiments::{
    self, ablation, config_dump, fig1, fig2, fig4, fig5_fig6, fig7_fig8, fig9,
    future_work, table3, table4, Effort,
};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    for flag in args.iter().filter(|a| a.starts_with("--")) {
        if flag != "--quick" && flag != "--json" && flag != "--bench-json" {
            eprintln!("unknown flag `{flag}`; known flags: --quick --json --bench-json");
            return ExitCode::FAILURE;
        }
    }
    if args.iter().any(|a| a == "--bench-json") {
        // Standalone mode: refuse positional targets rather than silently
        // ignoring them.
        if let Some(extra) = args.iter().find(|a| !a.starts_with("--")) {
            eprintln!("--bench-json is standalone; unexpected target `{extra}`");
            return ExitCode::FAILURE;
        }
        return bench_json_mode();
    }
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let effort = if quick { Effort::Quick } else { Effort::Full };
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let want = |name: &str| -> bool {
        targets.is_empty()
            || targets.contains(&"all")
            || targets.contains(&name)
            || (name == "fig5" && targets.contains(&"fig6"))
            || (name == "fig7" && targets.contains(&"fig8"))
    };
    let known = [
        "all", "fig1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table3",
        "table4", "config", "ablation", "future",
    ];
    for t in &targets {
        if !known.contains(t) {
            eprintln!("unknown target `{t}`; known: {known:?} [--quick]");
            return ExitCode::FAILURE;
        }
    }

    if json && !(want("fig5") || want("fig6")) {
        eprintln!("note: --json only applies to the fig5/fig6 campaign, which is not selected");
    }
    println!(
        "STREX reproduction — seed {} — {:?} effort\n",
        experiments::SEED, effort
    );
    if want("config") {
        println!("{}", config_dump());
    }
    if want("fig1") {
        println!("{}", fig1());
    }
    if want("fig2") {
        println!("{}", fig2(effort).0);
    }
    if want("fig4") {
        println!("{}", fig4(effort).0);
    }
    if want("fig5") || want("fig6") {
        if json {
            let ((text, _), campaign) = experiments::fig5_fig6_campaign(effort);
            println!("{text}");
            println!("{}", campaign.to_json());
        } else {
            println!("{}", fig5_fig6(effort).0);
        }
    }
    if want("fig7") || want("fig8") {
        println!("{}", fig7_fig8(effort).0);
    }
    if want("fig9") {
        println!("{}", fig9(effort).0);
    }
    if want("table3") {
        println!("{}", table3(effort).0);
    }
    if want("table4") {
        println!("{}", table4());
    }
    if want("ablation") {
        println!("{}", ablation(effort).0);
    }
    if want("future") {
        println!("{}", future_work(effort).0);
    }
    ExitCode::SUCCESS
}

/// Times the quick suite, merges with the committed baseline, and writes
/// `BENCH_PR2.json`.
fn bench_json_mode() -> ExitCode {
    use strex_bench::{baseline_pr2, perf};

    let revision = env::var("GITHUB_SHA").unwrap_or_else(|_| "working-tree".to_string());
    println!("Timing the quick reproduction suite (sequential cells)...");
    let current = perf::quick_suite("current", &revision);
    let baseline = baseline_pr2::seed_baseline();
    let micro = perf::cache_microbench();
    let doc = perf::bench_json(&current, &baseline, &micro);
    let path = "BENCH_PR2.json";
    if let Err(e) = std::fs::write(path, &doc) {
        eprintln!("failed to write {path}: {e}");
        return ExitCode::FAILURE;
    }
    let speedup = if baseline.events_per_sec() > 0.0 {
        current.events_per_sec() / baseline.events_per_sec()
    } else {
        0.0
    };
    println!(
        "{} cells, {} events in {:.2}s — {:.0} events/sec \
         ({:.2}x the committed baseline's {:.0}; cross-machine ratios are \
         indicative only — the same-run line below is portable)",
        current.cells.len(),
        current.total_events(),
        current.total_wall_seconds(),
        current.events_per_sec(),
        speedup,
        baseline.events_per_sec(),
    );
    println!(
        "cache hot path (same-run): reference {:.1} ns/op vs SoA {:.1} ns/op — {:.2}x",
        micro.reference_ns_per_op,
        micro.soa_ns_per_op,
        micro.speedup(),
    );
    println!("wrote {path}");
    ExitCode::SUCCESS
}
