//! Minimal fixed-width text-table rendering for experiment output.

/// A text table with a header row.
///
/// # Examples
///
/// ```
/// use strex_bench::table::TextTable;
///
/// let mut t = TextTable::new(vec!["workload", "I-MPKI"]);
/// t.row(vec!["TPC-C-1".to_string(), "38.2".to_string()]);
/// let s = t.render();
/// assert!(s.contains("TPC-C-1"));
/// ```
#[derive(Clone, Debug)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(r[c].len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{:>width$}", cell, width = widths[c]));
            }
            out.push('\n');
        };
        render_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            render_row(r, &widths, &mut out);
        }
        out
    }
}

/// Formats a float with one decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(vec!["a", "long-header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["yy".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.256), "1.26");
    }
}
