//! The pre-refactor (seed) throughput baseline for the PR 2 cache-hot-path
//! optimization, measured with [`crate::perf::quick_suite`] at the commit
//! *before* the structure-of-arrays cache landed.
//!
//! `repro --bench-json` merges this record with a fresh measurement of the
//! current build so `BENCH_PR2.json` always carries the before/after pair
//! and their ratio. The wall-clock numbers are machine-specific — the
//! ratio is only meaningful on the machine that recorded this baseline
//! (the record itself was taken by running the seed engine and the SoA
//! build interleaved in one session). On any other machine, rely on the
//! `cache_hot_path_same_run` section of `BENCH_PR2.json`, which times
//! both implementations inside the producing run.

use crate::perf::{BenchRecord, CellTiming};

/// (workload, scheduler, cores, events, instructions, wall_seconds)
/// measured at the pre-refactor commit.
const CELLS: &[(&str, &str, usize, u64, u64, f64)] = &[
    ("TPC-C-1", "baseline", 2, 974694, 10586194, 0.142235105),
    ("TPC-C-1", "baseline", 4, 974694, 10586194, 0.140574512),
    ("TPC-C-1", "strex", 2, 974694, 10586194, 0.12935776),
    ("TPC-C-1", "strex", 4, 974694, 10586194, 0.133122189),
    ("TPC-C-1", "slicc", 2, 974694, 10586194, 0.143719182),
    ("TPC-C-1", "slicc", 4, 974694, 10586194, 0.153704814),
    ("TPC-C-1", "hybrid", 2, 974694, 10586194, 0.141361477),
    ("TPC-C-1", "hybrid", 4, 974694, 10586194, 0.146293483),
    ("TPC-C-10", "baseline", 2, 978621, 10618467, 0.128478663),
    ("TPC-C-10", "baseline", 4, 978621, 10618467, 0.145654457),
    ("TPC-C-10", "strex", 2, 978621, 10618467, 0.124710947),
    ("TPC-C-10", "strex", 4, 978621, 10618467, 0.12363683),
    ("TPC-C-10", "slicc", 2, 978621, 10618467, 0.140091087),
    ("TPC-C-10", "slicc", 4, 978621, 10618467, 0.166797845),
    ("TPC-C-10", "hybrid", 2, 978621, 10618467, 0.132735123),
    ("TPC-C-10", "hybrid", 4, 978621, 10618467, 0.139941205),
    ("TPC-E", "baseline", 2, 191514, 2105352, 0.021640475),
    ("TPC-E", "baseline", 4, 191514, 2105352, 0.023915851),
    ("TPC-E", "strex", 2, 191514, 2105352, 0.023563291),
    ("TPC-E", "strex", 4, 191514, 2105352, 0.025984252),
    ("TPC-E", "slicc", 2, 191514, 2105352, 0.024759977),
    ("TPC-E", "slicc", 4, 191514, 2105352, 0.026691163),
    ("TPC-E", "hybrid", 2, 191514, 2105352, 0.023394646),
    ("TPC-E", "hybrid", 4, 191514, 2105352, 0.026421386),
    ("MapReduce", "baseline", 2, 154241, 1596780, 0.007986093),
    ("MapReduce", "baseline", 4, 154241, 1596780, 0.007571488),
    ("MapReduce", "strex", 2, 154241, 1596780, 0.007596385),
    ("MapReduce", "strex", 4, 154241, 1596780, 0.007686892),
    ("MapReduce", "slicc", 2, 154241, 1596780, 0.008033579),
    ("MapReduce", "slicc", 4, 154241, 1596780, 0.007852942),
    ("MapReduce", "hybrid", 2, 154241, 1596780, 0.008070787),
    ("MapReduce", "hybrid", 4, 154241, 1596780, 0.008119274),
];

/// Revision the baseline was recorded at (the commit before the SoA cache
/// refactor).
const REVISION: &str = "21f110e (pre-refactor seed engine, measured same-session as the SoA build)";

/// The committed pre-refactor baseline record.
pub fn seed_baseline() -> BenchRecord {
    BenchRecord {
        label: "seed baseline (pre-refactor)".to_string(),
        revision: REVISION.to_string(),
        cells: CELLS
            .iter()
            .map(
                |&(workload, scheduler, cores, events, instructions, wall_seconds)| CellTiming {
                    workload: workload.to_string(),
                    scheduler,
                    cores,
                    events,
                    instructions,
                    wall_seconds,
                },
            )
            .collect(),
    }
}
