//! One function per figure/table of the paper's evaluation (Section 5).
//!
//! Every function returns rendered text plus structured rows so tests can
//! assert on the numbers. The `Effort` knob scales pool sizes: `Full`
//! matches the experiment index in DESIGN.md; `Quick` runs the same code in
//! seconds for CI.

use std::sync::Arc;

use strex::campaign::Campaign;
use strex::config::{SchedulerKind, SimConfig, SliccParams, StrexParams};
use strex::cost::{CostBreakdown, CostParams};
use strex::driver::run;
use strex::report::Report;
use strex::sched::FpTable;
use strex_oltp::cache::WorkloadCache;
use strex_oltp::overlap::{analyze, OverlapConfig};
use strex_oltp::tpcc::{TpccCode, TpccTxnKind};
use strex_oltp::tpce::TpceTxnKind;
use strex_oltp::workload::{Workload, WorkloadKind};
use strex_sim::prefetch::PrefetcherKind;
use strex_sim::replacement::ReplacementKind;

use crate::table::{f1, f2, TextTable};

/// Experiment scale.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum Effort {
    /// Small pools, scaled databases — seconds, for CI.
    Quick,
    /// The DESIGN.md experiment index — minutes.
    Full,
}

/// Transaction-pool size the figure 5/6 matrix scales down from (also
/// the quick suite `perf::quick_suite` times).
pub const MATRIX_POOL: usize = 240;

impl Effort {
    /// Pool size at this effort, scaled down from the full-effort `full`.
    pub fn pool(self, full: usize) -> usize {
        match self {
            Effort::Quick => (full / 8).max(8),
            Effort::Full => full,
        }
    }

    /// The workload a figure uses at this effort, served through the
    /// process-wide [`WorkloadCache`]: generated once per process per
    /// `(kind, size, seed)`, shared by every figure, shard and job that
    /// asks again.
    pub fn workload(self, kind: WorkloadKind, size: usize, seed: u64) -> Arc<Workload> {
        match self {
            Effort::Quick => WorkloadCache::preset_small(kind, self.pool(size), seed),
            Effort::Full => WorkloadCache::preset(kind, size, seed),
        }
    }

    /// Core counts the run matrices sweep at this effort.
    pub fn core_counts(self) -> Vec<usize> {
        match self {
            Effort::Quick => vec![2, 4],
            Effort::Full => vec![2, 4, 8, 16],
        }
    }
}

/// The global experiment seed (fixed for reproducibility).
pub const SEED: u64 = 20130624;

fn sim(cores: usize, kind: SchedulerKind) -> SimConfig {
    SimConfig::builder()
        .cores(cores)
        .scheduler(kind)
        .build()
        .expect("experiment configurations are valid")
}

fn sim_prefetch(cores: usize, pf: PrefetcherKind) -> SimConfig {
    SimConfig::builder()
        .cores(cores)
        .prefetcher(pf)
        .build()
        .expect("experiment configurations are valid")
}

/// Figure 1: transaction flow graphs with per-action instruction footprints.
pub fn fig1() -> String {
    let code = TpccCode::new();
    let mut out = String::from(
        "Figure 1: TPC-C action flow graphs with instruction footprints\n\
         (R = lookup, U = update, I = insert, IT = index scan)\n\n",
    );
    let flows: [(&str, Vec<&str>); 2] = [
        (
            "NewOrder",
            vec![
                "begin",
                "R(WH)",
                "R(DIST)",
                "U(DIST)",
                "R(CUST)",
                "I(ORD)",
                "I(NORD)",
                "loop x OL_CNT { R(ITEM)",
                "R(STOCK)+U(STOCK)",
                "I(OL) }",
                "commit",
            ],
        ),
        (
            "Payment",
            vec![
                "begin",
                "R(WH)+U(WH)",
                "R(DIST)+U(DIST)",
                "IT(CUST)?",
                "R(CUST)",
                "U(CUST)",
                "I(HIST)",
                "commit",
            ],
        ),
    ];
    for (name, actions) in flows {
        let kind = if name == "NewOrder" {
            TpccTxnKind::NewOrder
        } else {
            TpccTxnKind::Payment
        };
        out.push_str(&format!(
            "{name} (Table 3 target: {} L1-I units)\n",
            kind.footprint_units()
        ));
        for (action, region) in actions.iter().zip(code.actions(kind)) {
            out.push_str(&format!("  {:28} {:>4} KB\n", action, region.len() / 1024));
        }
        out.push('\n');
    }
    out
}

/// Figure 2: temporal overlap of 16 same-type transactions on 16 cores.
pub fn fig2(effort: Effort) -> (String, Vec<(f64, f64)>) {
    let mut out = String::from("Figure 2: temporal instruction overlap\n\n");
    let mut headline = Vec::new();
    for kind in [TpccTxnKind::NewOrder, TpccTxnKind::Payment] {
        let n = match effort {
            Effort::Quick => 8,
            Effort::Full => 16,
        };
        let w = Workload::tpcc_same_type(kind, 1, n, SEED);
        let samples = analyze(w.txns(), OverlapConfig::default());
        let mut t = TextTable::new(vec!["K-instr", "=1", "<5", "<10", ">=10", ">=5"]);
        let step = (samples.len() / 12).max(1);
        for s in samples.iter().step_by(step) {
            t.row(vec![
                f1(s.k_instructions),
                f2(s.one),
                f2(s.lt5),
                f2(s.lt10),
                f2(s.ge10),
                f2(s.ge5()),
            ]);
        }
        let avg_ge5: f64 =
            samples.iter().map(|s| s.ge5()).sum::<f64>() / samples.len().max(1) as f64;
        out.push_str(&format!(
            "{kind}: mean fraction of touched blocks in >=5 caches: {:.2}\n{}\n",
            avg_ge5,
            t.render()
        ));
        headline.push((avg_ge5, samples.len() as f64));
    }
    (out, headline)
}

/// A Figure 4 data point: baseline vs identical-transaction STREX I-MPKI.
#[derive(Clone, Debug)]
pub struct Fig4Row {
    /// Transaction type name.
    pub name: &'static str,
    /// Baseline I-MPKI.
    pub base: f64,
    /// STREX-with-identical-transactions I-MPKI.
    pub ctx_identical: f64,
}

/// Figure 4: I-MPKI with the optimal synchronization of identical
/// transactions (10 instances, each replicated 10 times).
pub fn fig4(effort: Effort) -> (String, Vec<Fig4Row>) {
    let (instances, replicas) = match effort {
        Effort::Quick => (2, 3),
        Effort::Full => (10, 10),
    };
    let mut rows = Vec::new();
    let mut collect = |name: &'static str, pool: Vec<strex_oltp::TxnTrace>| {
        let mut txns = Vec::new();
        for t in pool.into_iter().take(instances) {
            for _ in 0..replicas {
                txns.push(t.clone());
            }
        }
        let w = Workload::new(name, txns);
        let base = run(&w, &sim(1, SchedulerKind::Baseline));
        let strex = run(&w, &sim(1, SchedulerKind::Strex));
        rows.push(Fig4Row {
            name,
            base: base.i_mpki(),
            ctx_identical: strex.i_mpki(),
        });
    };
    for kind in TpccTxnKind::ALL {
        let w = Workload::tpcc_same_type(kind, 1, instances, SEED);
        collect(kind.name(), w.into_txns());
    }
    for kind in TpceTxnKind::ALL {
        let w = Workload::tpce_same_type(kind, instances, SEED);
        collect(kind.name(), w.into_txns());
    }
    let mut t = TextTable::new(vec!["type", "Baseline", "CTX-Identical", "reduction"]);
    for r in &rows {
        t.row(vec![
            r.name.to_string(),
            f1(r.base),
            f1(r.ctx_identical),
            format!("{:.0}%", (1.0 - r.ctx_identical / r.base) * 100.0),
        ]);
    }
    (
        format!("Figure 4: I-MPKI, identical transactions\n\n{}", t.render()),
        rows,
    )
}

/// A Figure 5/6 data point.
#[derive(Clone, Debug)]
pub struct MatrixRow {
    /// Workload name.
    pub workload: &'static str,
    /// Core count.
    pub cores: usize,
    /// Scheduler/technique label.
    pub technique: String,
    /// Instruction MPKI.
    pub i_mpki: f64,
    /// Data MPKI.
    pub d_mpki: f64,
    /// Throughput relative to the workload's 2-core baseline.
    pub rel_throughput: f64,
}

/// Figures 5 and 6: the full scheduler x core-count x workload matrix.
///
/// Figure 5 reads the `i_mpki`/`d_mpki` columns (Base/SLICC/STREX); Figure 6
/// reads `rel_throughput` (adding next-line, PIF and the hybrid). The
/// matrix is declared as a [`Campaign`] per technique family and executed
/// on a worker pool; results are read back by cell key, so row order is
/// independent of execution order.
pub fn fig5_fig6(effort: Effort) -> (String, Vec<MatrixRow>) {
    fig5_fig6_campaign(effort).0
}

/// [`fig5_fig6`] plus the raw scheduler campaign (for JSON export).
pub fn fig5_fig6_campaign(
    effort: Effort,
) -> ((String, Vec<MatrixRow>), strex::campaign::CampaignResult) {
    let kinds = [
        SchedulerKind::Baseline,
        SchedulerKind::Slicc,
        SchedulerKind::Strex,
        SchedulerKind::Hybrid,
    ];
    let workloads: Vec<Arc<Workload>> = WorkloadKind::ALL
        .into_iter()
        .map(|wk| effort.workload(wk, MATRIX_POOL, SEED))
        .collect();
    let core_counts = effort.core_counts();

    let sched_matrix = Campaign::new(sim(2, SchedulerKind::Baseline))
        .over_schedulers(kinds)
        .over_workloads(workloads.iter().map(|w| &**w))
        .over_cores(core_counts.iter().copied())
        .run()
        .expect("figure 5/6 scheduler matrix is valid");
    let pf_matrices: Vec<(PrefetcherKind, strex::campaign::CampaignResult)> =
        [PrefetcherKind::NextLine, PrefetcherKind::PifIdeal]
            .into_iter()
            .map(|pf| {
                let m = Campaign::new(sim_prefetch(2, pf))
                    .over_workloads(workloads.iter().map(|w| &**w))
                    .over_cores(core_counts.iter().copied())
                    .run()
                    .expect("figure 6 prefetcher matrix is valid");
                (pf, m)
            })
            .collect();

    let mut rows = Vec::new();
    for (wk, w) in WorkloadKind::ALL.into_iter().zip(&workloads) {
        let base2 = sched_matrix
            .report(w.name(), SchedulerKind::Baseline.key(), 2)
            .expect("2-core baseline is part of the matrix");
        for &cores in &core_counts {
            let mut push = |label: String, r: &Report| {
                rows.push(MatrixRow {
                    workload: wk.name(),
                    cores,
                    technique: label,
                    i_mpki: r.i_mpki(),
                    d_mpki: r.d_mpki(),
                    rel_throughput: r.relative_throughput(base2),
                });
            };
            for kind in kinds {
                let r = sched_matrix
                    .report(w.name(), kind.key(), cores)
                    .expect("every scheduler cell ran");
                push(format!("{kind}"), r);
            }
            for (pf, matrix) in &pf_matrices {
                let r = matrix
                    .report(w.name(), SchedulerKind::Baseline.key(), cores)
                    .expect("every prefetcher cell ran");
                push(format!("{pf}"), r);
            }
        }
    }
    let mut t = TextTable::new(vec![
        "workload",
        "cores",
        "technique",
        "I-MPKI",
        "D-MPKI",
        "rel-tput",
    ]);
    for r in &rows {
        t.row(vec![
            r.workload.to_string(),
            r.cores.to_string(),
            r.technique.clone(),
            f1(r.i_mpki),
            f2(r.d_mpki),
            f2(r.rel_throughput),
        ]);
    }
    (
        (
            format!(
                "Figures 5 & 6: L1 misses and relative throughput\n\n{}",
                t.render()
            ),
            rows,
        ),
        sched_matrix,
    )
}

/// A Figure 7/8 data point.
#[derive(Clone, Debug)]
pub struct TeamSizeRow {
    /// Configuration label (STREX-xT or SLICC-x).
    pub label: String,
    /// Mean transaction latency in M-cycles.
    pub mean_latency_mcycles: f64,
    /// Relative throughput vs the baseline on the same cores.
    pub rel_throughput: f64,
    /// Latency distribution (bin upper edge in M-cycles, fraction).
    pub histogram: Vec<(f64, f64)>,
}

/// Figures 7 and 8: latency distribution and throughput vs team size.
pub fn fig7_fig8(effort: Effort) -> (String, Vec<TeamSizeRow>) {
    let w = effort.workload(WorkloadKind::TpccW10, 240, SEED);
    let cores = 16;
    let base = run(&w, &sim(cores, SchedulerKind::Baseline));
    let mut rows = Vec::new();
    let bin = 2_000_000u64;
    let mut push = |label: String, r: &Report| {
        rows.push(TeamSizeRow {
            label,
            mean_latency_mcycles: r.mean_latency() / 1e6,
            rel_throughput: r.relative_throughput(&base),
            histogram: r
                .latency_histogram(bin, 25)
                .into_iter()
                .map(|(edge, f)| (edge as f64 / 1e6, f))
                .collect(),
        });
    };
    push("Baseline".to_string(), &base);
    let team_sizes: Vec<usize> = match effort {
        Effort::Quick => vec![2, 10],
        Effort::Full => vec![2, 4, 6, 8, 10, 12, 16, 20],
    };
    let strex_sweep = Campaign::new(sim(cores, SchedulerKind::Strex))
        .over_workloads([&*w])
        .over_team_sizes(team_sizes.iter().copied())
        .run()
        .expect("figure 7/8 team-size sweep is valid");
    for (&ts, cell) in team_sizes.iter().zip(strex_sweep.cells()) {
        debug_assert_eq!(cell.key.team_size, ts);
        push(format!("STREX-{ts}T"), &cell.report);
    }
    let slicc_sweep = Campaign::new(sim(2, SchedulerKind::Slicc))
        .over_workloads([&*w])
        .over_cores(effort.core_counts())
        .run()
        .expect("figure 8 SLICC core sweep is valid");
    for cell in slicc_sweep.cells() {
        push(format!("SLICC-{}", cell.key.cores), &cell.report);
    }
    let mut t = TextTable::new(vec!["config", "mean latency (M-cyc)", "rel-tput"]);
    for r in &rows {
        t.row(vec![
            r.label.clone(),
            f2(r.mean_latency_mcycles),
            f2(r.rel_throughput),
        ]);
    }
    (
        format!(
            "Figures 7 & 8: transaction latency vs team size (TPC-C-10)\n\n{}",
            t.render()
        ),
        rows,
    )
}

/// A Figure 9 data point.
#[derive(Clone, Debug)]
pub struct ReplacementRow {
    /// Workload name.
    pub workload: &'static str,
    /// Policy label.
    pub policy: String,
    /// Instruction MPKI.
    pub i_mpki: f64,
}

/// Figure 9: replacement policies with and without STREX, 8 cores.
pub fn fig9(effort: Effort) -> (String, Vec<ReplacementRow>) {
    let mut rows = Vec::new();
    for wk in [WorkloadKind::TpccW10, WorkloadKind::Tpce] {
        let w = effort.workload(wk, 240, SEED);
        for kind in ReplacementKind::ALL {
            let cfg = SimConfig::builder()
                .cores(8)
                .l1i_replacement(kind)
                .build()
                .expect("experiment configurations are valid");
            let r = run(&w, &cfg);
            rows.push(ReplacementRow {
                workload: wk.name(),
                policy: kind.to_string(),
                i_mpki: r.i_mpki(),
            });
        }
        for kind in [
            ReplacementKind::Lru,
            ReplacementKind::Bip,
            ReplacementKind::Brrip,
        ] {
            let cfg = SimConfig::builder()
                .cores(8)
                .scheduler(SchedulerKind::Strex)
                .l1i_replacement(kind)
                .build()
                .expect("experiment configurations are valid");
            let r = run(&w, &cfg);
            rows.push(ReplacementRow {
                workload: wk.name(),
                policy: format!("STREX+{kind}"),
                i_mpki: r.i_mpki(),
            });
        }
    }
    let mut t = TextTable::new(vec!["workload", "policy", "I-MPKI"]);
    for r in &rows {
        t.row(vec![r.workload.to_string(), r.policy.clone(), f1(r.i_mpki)]);
    }
    (
        format!(
            "Figure 9: replacement policies vs STREX (8 cores)\n\n{}",
            t.render()
        ),
        rows,
    )
}

/// An ablation data point.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Parameter setting label.
    pub setting: String,
    /// Instruction MPKI.
    pub i_mpki: f64,
    /// Throughput relative to the defaults.
    pub rel_throughput: f64,
    /// Context switches performed.
    pub context_switches: u64,
}

/// Ablations of the design choices DESIGN.md calls out: the
/// minimum-progress guard (Section 4.4.2) and the context-switch state
/// size (Section 4.4.2's save/restore through the L2).
pub fn ablation(effort: Effort) -> (String, Vec<AblationRow>) {
    let w = effort.workload(WorkloadKind::TpccW1, 120, SEED);
    let cores = 2;
    let reference = run(&w, &sim(cores, SchedulerKind::Strex));
    let mut rows = Vec::new();
    for min_q in [0u32, 32, 96, 256, 1024] {
        let cfg = SimConfig::builder()
            .cores(cores)
            .scheduler(SchedulerKind::Strex)
            .min_quantum_fetches(min_q)
            .build()
            .expect("experiment configurations are valid");
        let r = run(&w, &cfg);
        rows.push(AblationRow {
            setting: format!("min_quantum_fetches={min_q}"),
            i_mpki: r.i_mpki(),
            rel_throughput: r.relative_throughput(&reference),
            context_switches: r.context_switches,
        });
    }
    for blocks in [1u64, 4, 16, 64] {
        let cfg = SimConfig::builder()
            .cores(cores)
            .scheduler(SchedulerKind::Strex)
            .ctx_state_blocks(blocks)
            .build()
            .expect("experiment configurations are valid");
        let r = run(&w, &cfg);
        rows.push(AblationRow {
            setting: format!("ctx_state_blocks={blocks}"),
            i_mpki: r.i_mpki(),
            rel_throughput: r.relative_throughput(&reference),
            context_switches: r.context_switches,
        });
    }
    let mut t = TextTable::new(vec!["setting", "I-MPKI", "rel-tput", "switches"]);
    for r in &rows {
        t.row(vec![
            r.setting.clone(),
            f1(r.i_mpki),
            f2(r.rel_throughput),
            r.context_switches.to_string(),
        ]);
    }
    (
        format!(
            "Ablations: STREX design-choice sensitivity (TPC-C-1, 2 cores)\n\n{}",
            t.render()
        ),
        rows,
    )
}

/// A future-work data point (Section 4.4.3).
#[derive(Clone, Debug)]
pub struct ComboRow {
    /// Technique label.
    pub technique: String,
    /// Instruction MPKI (hidden misses excluded, as the paper counts).
    pub i_mpki: f64,
    /// L2 accesses per kilo-instruction — the bandwidth cost prefetching
    /// adds and STREX avoids.
    pub l2_apki: f64,
    /// Throughput relative to the baseline.
    pub rel_throughput: f64,
}

/// Section 4.4.3's open question: STREX combined with prefetching.
///
/// "STREX can avoid many of the misses that PIF has to incur thus possibly
/// reducing the storage, power, and bandwidth overheads of PIF. PIF could
/// reduce execution time for the lead transaction" — the configuration
/// system composes them, so this experiment runs the combinations the
/// paper leaves for future work.
pub fn future_work(effort: Effort) -> (String, Vec<ComboRow>) {
    let w = effort.workload(WorkloadKind::TpccW1, 160, SEED);
    let cores = 4;
    let base = run(&w, &sim(cores, SchedulerKind::Baseline));
    let mut rows = Vec::new();
    let mut push = |label: &str, r: &Report| {
        let instr = r.stats.instructions().max(1) as f64;
        rows.push(ComboRow {
            technique: label.to_string(),
            i_mpki: r.i_mpki(),
            l2_apki: r.stats.shared.l2_accesses as f64 * 1000.0 / instr,
            rel_throughput: r.relative_throughput(&base),
        });
    };
    push("Base", &base);
    for (label, sched, pf) in [
        ("STREX", SchedulerKind::Strex, PrefetcherKind::None),
        (
            "Base+next-line",
            SchedulerKind::Baseline,
            PrefetcherKind::NextLine,
        ),
        (
            "STREX+next-line",
            SchedulerKind::Strex,
            PrefetcherKind::NextLine,
        ),
        (
            "Base+PIF",
            SchedulerKind::Baseline,
            PrefetcherKind::PifIdeal,
        ),
        ("STREX+PIF", SchedulerKind::Strex, PrefetcherKind::PifIdeal),
    ] {
        let cfg = SimConfig::builder()
            .cores(cores)
            .scheduler(sched)
            .prefetcher(pf)
            .build()
            .expect("experiment configurations are valid");
        let r = run(&w, &cfg);
        push(label, &r);
    }
    let mut t = TextTable::new(vec!["technique", "I-MPKI", "L2-APKI", "rel-tput"]);
    for r in &rows {
        t.row(vec![
            r.technique.clone(),
            f1(r.i_mpki),
            f1(r.l2_apki),
            f2(r.rel_throughput),
        ]);
    }
    (
        format!(
            "Future work (Section 4.4.3): STREX x prefetching (TPC-C-1, 4 cores)\n\n{}",
            t.render()
        ),
        rows,
    )
}

/// Table 3: the FPTable — per-type instruction footprints in L1-I units.
pub fn table3(effort: Effort) -> (String, Vec<(String, u64)>) {
    let mut rows = Vec::new();
    let n = match effort {
        Effort::Quick => 2,
        Effort::Full => 4,
    };
    let mut profile = |txns: Vec<strex_oltp::TxnTrace>| {
        let fp = FpTable::profile(&txns, 32 * 1024);
        for t in &txns {
            if let Some(u) = fp.units(t.txn_type()) {
                if !rows.iter().any(|(name, _)| name == t.type_name()) {
                    rows.push((t.type_name().to_string(), u));
                }
            }
        }
    };
    let mut tpcc_pool = Vec::new();
    for kind in TpccTxnKind::ALL {
        tpcc_pool.extend(Workload::tpcc_same_type(kind, 1, n, SEED).into_txns());
    }
    profile(tpcc_pool);
    let mut tpce_pool = Vec::new();
    for kind in TpceTxnKind::ALL {
        tpce_pool.extend(Workload::tpce_same_type(kind, n, SEED).into_txns());
    }
    profile(tpce_pool);

    let mut t = TextTable::new(vec!["type", "measured units", "paper units"]);
    let paper = |name: &str| -> u64 {
        TpccTxnKind::ALL
            .iter()
            .find(|k| k.name() == name)
            .map(|k| k.footprint_units())
            .or_else(|| {
                TpceTxnKind::ALL
                    .iter()
                    .find(|k| k.name() == name)
                    .map(|k| k.footprint_units())
            })
            .unwrap_or(0)
    };
    for (name, units) in &rows {
        t.row(vec![
            name.clone(),
            units.to_string(),
            paper(name).to_string(),
        ]);
    }
    (
        format!(
            "Table 3: FPTable instruction footprints (L1-I units)\n\n{}",
            t.render()
        ),
        rows,
    )
}

/// Table 4: hardware storage cost breakdown.
pub fn table4() -> String {
    let b = CostBreakdown::compute(&CostParams::default());
    let mut t = TextTable::new(vec!["component", "bits", "bytes"]);
    t.row(vec![
        "Thread scheduler (queue + phaseID + PIDT)".to_string(),
        b.thread_scheduler_bits.to_string(),
        format!("{:.1}", b.thread_scheduler_bits as f64 / 8.0),
    ]);
    t.row(vec![
        "Team formation (management table)".to_string(),
        b.team_formation_bits.to_string(),
        format!("{:.1}", b.team_formation_bits as f64 / 8.0),
    ]);
    t.row(vec![
        "SLICC cache monitor (hybrid only)".to_string(),
        b.slicc_monitor_bits.to_string(),
        format!("{:.1}", b.slicc_monitor_bits as f64 / 8.0),
    ]);
    format!(
        "Table 4: per-core storage cost\n\n{}\nSTREX total: {:.1} B, hybrid total: {:.1} B \
         (paper: 665.5 B scheduler, 225 B team unit, 276 B SLICC monitor)\n",
        t.render(),
        b.strex_bytes(),
        b.hybrid_bytes()
    )
}

/// Tables 1 and 2: the workload and system configuration in use.
pub fn config_dump() -> String {
    let sys = strex_sim::SystemConfig::with_cores(16);
    format!(
        "Table 1 workloads: TPC-C-1 (1 warehouse), TPC-C-10 (10 warehouses), \
         TPC-E (1000 customers), MapReduce (analytics tasks)\n\
         Table 2 system: {} cores @ {} GHz, L1 {}KB/{}-way, \
         L2 {}MB/core {}-way ({}-cycle hit), {}-cycle hops, \
         STREX params: {:?}, SLICC params: {:?}\n",
        sys.n_cores,
        sys.clock_ghz,
        sys.l1i_geometry.size_bytes() / 1024,
        sys.l1i_geometry.assoc(),
        sys.l2_bytes_per_core / (1024 * 1024),
        sys.l2_assoc,
        sys.l2_hit_latency,
        sys.hop_latency,
        StrexParams::default(),
        SliccParams::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_lists_both_flows() {
        let s = fig1();
        assert!(s.contains("NewOrder"));
        assert!(s.contains("Payment"));
        assert!(s.contains("R(WH)"));
    }

    #[test]
    fn fig2_quick_shows_sharing() {
        let (_, headline) = fig2(Effort::Quick);
        assert_eq!(headline.len(), 2);
        for (ge5, samples) in headline {
            assert!(samples > 0.0);
            assert!((0.0..=1.0).contains(&ge5));
        }
    }

    #[test]
    fn fig4_quick_reduces_misses_for_all_types() {
        let (_, rows) = fig4(Effort::Quick);
        assert_eq!(rows.len(), 12);
        for r in &rows {
            assert!(
                r.ctx_identical < r.base,
                "{}: {} !< {}",
                r.name,
                r.ctx_identical,
                r.base
            );
        }
    }

    #[test]
    fn table4_matches_paper_budget() {
        let s = table4();
        assert!(s.contains("5324"));
        assert!(s.contains("1800"));
        assert!(s.contains("2208"));
    }

    #[test]
    fn config_dump_mentions_table2() {
        let s = config_dump();
        assert!(s.contains("2.5 GHz"));
        assert!(s.contains("32KB/8-way"));
    }
}
