//! Committed throughput baselines for the `BENCH_PR3.json` trajectory:
//! the seed engine and the PR 2 (SoA-cache) engine, both re-measured in
//! the PR 3 session on the machine that recorded `BENCH_PR3.json`.
//!
//! The three builds — seed (pre-SoA, `21f110e`), PR 2 (`dd07f8d`) and the
//! PR 3 working tree — were run *interleaved in one session* (four rounds
//! each, per-cell best-of), so the two committed records here and the
//! fresh `current` record in `BENCH_PR3.json` share one machine and one
//! load environment and their ratios are meaningful. On any other machine
//! the absolute events/sec shift together; `repro --bench-json --check`
//! therefore gates on the *ratio* of a fresh measurement to the seed
//! record, not on absolute wall clock.
//!
//! All three builds simulate the exact same cells bit-identically (the
//! `events`/`instructions` columns match row for row — the golden snapshot
//! pins this), which is what makes events-per-second comparable at all.

use crate::perf::{BenchRecord, CellTiming};

/// (workload, scheduler, cores, events, instructions, wall_seconds).
type Cell = (&'static str, &'static str, usize, u64, u64, f64);

/// Seed-engine quick-suite cells (best-of-4, PR 3 session).
const SEED_CELLS: &[Cell] = &[
    ("TPC-C-1", "baseline", 2, 974694, 10586194, 0.125718991),
    ("TPC-C-1", "baseline", 4, 974694, 10586194, 0.139732817),
    ("TPC-C-1", "strex", 2, 974694, 10586194, 0.121408267),
    ("TPC-C-1", "strex", 4, 974694, 10586194, 0.133850388),
    ("TPC-C-1", "slicc", 2, 974694, 10586194, 0.148566157),
    ("TPC-C-1", "slicc", 4, 974694, 10586194, 0.150473005),
    ("TPC-C-1", "hybrid", 2, 974694, 10586194, 0.128706490),
    ("TPC-C-1", "hybrid", 4, 974694, 10586194, 0.140463774),
    ("TPC-C-10", "baseline", 2, 978621, 10618467, 0.126385788),
    ("TPC-C-10", "baseline", 4, 978621, 10618467, 0.137864514),
    ("TPC-C-10", "strex", 2, 978621, 10618467, 0.127344930),
    ("TPC-C-10", "strex", 4, 978621, 10618467, 0.132482200),
    ("TPC-C-10", "slicc", 2, 978621, 10618467, 0.148697083),
    ("TPC-C-10", "slicc", 4, 978621, 10618467, 0.148486666),
    ("TPC-C-10", "hybrid", 2, 978621, 10618467, 0.133421959),
    ("TPC-C-10", "hybrid", 4, 978621, 10618467, 0.143045452),
    ("TPC-E", "baseline", 2, 191514, 2105352, 0.023393155),
    ("TPC-E", "baseline", 4, 191514, 2105352, 0.026402431),
    ("TPC-E", "strex", 2, 191514, 2105352, 0.024356425),
    ("TPC-E", "strex", 4, 191514, 2105352, 0.025953094),
    ("TPC-E", "slicc", 2, 191514, 2105352, 0.026256177),
    ("TPC-E", "slicc", 4, 191514, 2105352, 0.029121281),
    ("TPC-E", "hybrid", 2, 191514, 2105352, 0.028057666),
    ("TPC-E", "hybrid", 4, 191514, 2105352, 0.027936994),
    ("MapReduce", "baseline", 2, 154241, 1596780, 0.008973109),
    ("MapReduce", "baseline", 4, 154241, 1596780, 0.008931059),
    ("MapReduce", "strex", 2, 154241, 1596780, 0.008777839),
    ("MapReduce", "strex", 4, 154241, 1596780, 0.008221943),
    ("MapReduce", "slicc", 2, 154241, 1596780, 0.008851044),
    ("MapReduce", "slicc", 4, 154241, 1596780, 0.009215821),
    ("MapReduce", "hybrid", 2, 154241, 1596780, 0.009237573),
    ("MapReduce", "hybrid", 4, 154241, 1596780, 0.010233724),
];

/// PR 2 (SoA-cache) engine quick-suite cells (best-of-4, PR 3 session).
const PR2_CELLS: &[Cell] = &[
    ("TPC-C-1", "baseline", 2, 974694, 10586194, 0.096414049),
    ("TPC-C-1", "baseline", 4, 974694, 10586194, 0.098685126),
    ("TPC-C-1", "strex", 2, 974694, 10586194, 0.089695801),
    ("TPC-C-1", "strex", 4, 974694, 10586194, 0.089011634),
    ("TPC-C-1", "slicc", 2, 974694, 10586194, 0.114642297),
    ("TPC-C-1", "slicc", 4, 974694, 10586194, 0.113455186),
    ("TPC-C-1", "hybrid", 2, 974694, 10586194, 0.100994370),
    ("TPC-C-1", "hybrid", 4, 974694, 10586194, 0.102221125),
    ("TPC-C-10", "baseline", 2, 978621, 10618467, 0.088327295),
    ("TPC-C-10", "baseline", 4, 978621, 10618467, 0.092183087),
    ("TPC-C-10", "strex", 2, 978621, 10618467, 0.090451801),
    ("TPC-C-10", "strex", 4, 978621, 10618467, 0.090959270),
    ("TPC-C-10", "slicc", 2, 978621, 10618467, 0.113548839),
    ("TPC-C-10", "slicc", 4, 978621, 10618467, 0.104376434),
    ("TPC-C-10", "hybrid", 2, 978621, 10618467, 0.085158683),
    ("TPC-C-10", "hybrid", 4, 978621, 10618467, 0.093290909),
    ("TPC-E", "baseline", 2, 191514, 2105352, 0.016957657),
    ("TPC-E", "baseline", 4, 191514, 2105352, 0.016565060),
    ("TPC-E", "strex", 2, 191514, 2105352, 0.016059706),
    ("TPC-E", "strex", 4, 191514, 2105352, 0.016616662),
    ("TPC-E", "slicc", 2, 191514, 2105352, 0.018654640),
    ("TPC-E", "slicc", 4, 191514, 2105352, 0.018982442),
    ("TPC-E", "hybrid", 2, 191514, 2105352, 0.016863803),
    ("TPC-E", "hybrid", 4, 191514, 2105352, 0.017574079),
    ("MapReduce", "baseline", 2, 154241, 1596780, 0.006331466),
    ("MapReduce", "baseline", 4, 154241, 1596780, 0.005822972),
    ("MapReduce", "strex", 2, 154241, 1596780, 0.006535381),
    ("MapReduce", "strex", 4, 154241, 1596780, 0.006114899),
    ("MapReduce", "slicc", 2, 154241, 1596780, 0.006507957),
    ("MapReduce", "slicc", 4, 154241, 1596780, 0.005892089),
    ("MapReduce", "hybrid", 2, 154241, 1596780, 0.006491782),
    ("MapReduce", "hybrid", 4, 154241, 1596780, 0.006219246),
];

fn record(label: &str, revision: &str, cells: &'static [Cell]) -> BenchRecord {
    BenchRecord {
        label: label.to_string(),
        revision: revision.to_string(),
        cells: cells
            .iter()
            .map(
                |&(workload, scheduler, cores, events, instructions, wall_seconds)| CellTiming {
                    workload: workload.to_string(),
                    scheduler,
                    cores,
                    events,
                    instructions,
                    wall_seconds,
                },
            )
            .collect(),
    }
}

/// The committed seed-engine baseline — the 1.0x the trajectory ratios
/// normalize to.
pub fn seed_baseline() -> BenchRecord {
    record(
        "seed engine",
        "21f110e (pre-SoA engine, re-measured interleaved in the PR 3 session)",
        SEED_CELLS,
    )
}

/// The committed PR 2 (SoA cache) record — the intermediate trajectory
/// point between the seed and the current build.
pub fn pr2_record() -> BenchRecord {
    record(
        "PR 2 SoA engine",
        "dd07f8d (SoA cache hot path, re-measured interleaved in the PR 3 session)",
        PR2_CELLS,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_cover_the_full_quick_matrix() {
        let seed = seed_baseline();
        let pr2 = pr2_record();
        assert_eq!(
            seed.cells.len(),
            32,
            "4 workloads x 4 schedulers x 2 core counts"
        );
        assert_eq!(pr2.cells.len(), 32);
        // Bit-identical simulations: the work columns must match row for row.
        for (a, b) in seed.cells.iter().zip(pr2.cells.iter()) {
            assert_eq!(
                (&a.workload, a.scheduler, a.cores),
                (&b.workload, b.scheduler, b.cores)
            );
            assert_eq!(a.events, b.events);
            assert_eq!(a.instructions, b.instructions);
        }
        assert!(seed.events_per_sec() > 0.0);
    }

    #[test]
    fn trajectory_is_monotone() {
        // The very claim the trajectory records: PR 2 beat the seed.
        assert!(pr2_record().events_per_sec() > seed_baseline().events_per_sec());
    }
}
