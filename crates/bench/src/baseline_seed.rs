//! Committed throughput baselines for the `BENCH_*.json` trajectory:
//! the seed engine, the PR 2 (SoA-cache) engine and the PR 3 (packed
//! events + passive fast path + short-tag L2) engine, all re-measured in
//! the PR 4 session on the machine that recorded `BENCH_PR4.json`.
//!
//! The four builds — seed (pre-SoA, `21f110e`), PR 2 (`dd07f8d`), PR 3
//! (`ef2f437`) and the PR 4 working tree — were run *interleaved in one
//! session* (six rounds each, per-cell best-of), so the three committed
//! records here and the fresh `current` record in `BENCH_PR4.json` share
//! one machine and one load environment and their ratios are meaningful.
//! On any other machine the absolute events/sec shift together; `repro
//! --bench-json --check` therefore gates on the *ratio* of a fresh
//! measurement to the seed record, not on absolute wall clock.
//!
//! All four builds simulate the exact same cells bit-identically (the
//! `events`/`instructions` columns match row for row — the golden snapshot
//! pins this), which is what makes events-per-second comparable at all.

use crate::perf::{BenchRecord, CellTiming};

/// (workload, scheduler, cores, events, instructions, wall_seconds).
type Cell = (&'static str, &'static str, usize, u64, u64, f64);

/// Seed-engine quick-suite cells (best-of-6, PR 4 session).
const SEED_CELLS: &[Cell] = &[
    ("TPC-C-1", "baseline", 2, 974694, 10586194, 0.123452756),
    ("TPC-C-1", "baseline", 4, 974694, 10586194, 0.134583104),
    ("TPC-C-1", "strex", 2, 974694, 10586194, 0.117811114),
    ("TPC-C-1", "strex", 4, 974694, 10586194, 0.122888557),
    ("TPC-C-1", "slicc", 2, 974694, 10586194, 0.139539833),
    ("TPC-C-1", "slicc", 4, 974694, 10586194, 0.147358238),
    ("TPC-C-1", "hybrid", 2, 974694, 10586194, 0.126766137),
    ("TPC-C-1", "hybrid", 4, 974694, 10586194, 0.139159564),
    ("TPC-C-10", "baseline", 2, 978621, 10618467, 0.115405008),
    ("TPC-C-10", "baseline", 4, 978621, 10618467, 0.128810847),
    ("TPC-C-10", "strex", 2, 978621, 10618467, 0.115413202),
    ("TPC-C-10", "strex", 4, 978621, 10618467, 0.123369667),
    ("TPC-C-10", "slicc", 2, 978621, 10618467, 0.138517159),
    ("TPC-C-10", "slicc", 4, 978621, 10618467, 0.144416011),
    ("TPC-C-10", "hybrid", 2, 978621, 10618467, 0.125693935),
    ("TPC-C-10", "hybrid", 4, 978621, 10618467, 0.133594958),
    ("TPC-E", "baseline", 2, 191514, 2105352, 0.022871936),
    ("TPC-E", "baseline", 4, 191514, 2105352, 0.024571092),
    ("TPC-E", "strex", 2, 191514, 2105352, 0.023002458),
    ("TPC-E", "strex", 4, 191514, 2105352, 0.024712668),
    ("TPC-E", "slicc", 2, 191514, 2105352, 0.025159129),
    ("TPC-E", "slicc", 4, 191514, 2105352, 0.026783366),
    ("TPC-E", "hybrid", 2, 191514, 2105352, 0.023120001),
    ("TPC-E", "hybrid", 4, 191514, 2105352, 0.025622561),
    ("MapReduce", "baseline", 2, 154241, 1596780, 0.008045343),
    ("MapReduce", "baseline", 4, 154241, 1596780, 0.007574587),
    ("MapReduce", "strex", 2, 154241, 1596780, 0.007789103),
    ("MapReduce", "strex", 4, 154241, 1596780, 0.007474720),
    ("MapReduce", "slicc", 2, 154241, 1596780, 0.008071219),
    ("MapReduce", "slicc", 4, 154241, 1596780, 0.008192213),
    ("MapReduce", "hybrid", 2, 154241, 1596780, 0.008941484),
    ("MapReduce", "hybrid", 4, 154241, 1596780, 0.008650384),
];

/// PR 2 (SoA-cache) engine quick-suite cells (best-of-6, PR 4 session).
const PR2_CELLS: &[Cell] = &[
    ("TPC-C-1", "baseline", 2, 974694, 10586194, 0.085823398),
    ("TPC-C-1", "baseline", 4, 974694, 10586194, 0.087118966),
    ("TPC-C-1", "strex", 2, 974694, 10586194, 0.082462241),
    ("TPC-C-1", "strex", 4, 974694, 10586194, 0.084649987),
    ("TPC-C-1", "slicc", 2, 974694, 10586194, 0.108266033),
    ("TPC-C-1", "slicc", 4, 974694, 10586194, 0.106589763),
    ("TPC-C-1", "hybrid", 2, 974694, 10586194, 0.092923840),
    ("TPC-C-1", "hybrid", 4, 974694, 10586194, 0.091407434),
    ("TPC-C-10", "baseline", 2, 978621, 10618467, 0.088604793),
    ("TPC-C-10", "baseline", 4, 978621, 10618467, 0.089093550),
    ("TPC-C-10", "strex", 2, 978621, 10618467, 0.082510908),
    ("TPC-C-10", "strex", 4, 978621, 10618467, 0.087977841),
    ("TPC-C-10", "slicc", 2, 978621, 10618467, 0.107120314),
    ("TPC-C-10", "slicc", 4, 978621, 10618467, 0.111031462),
    ("TPC-C-10", "hybrid", 2, 978621, 10618467, 0.088475528),
    ("TPC-C-10", "hybrid", 4, 978621, 10618467, 0.094734244),
    ("TPC-E", "baseline", 2, 191514, 2105352, 0.016714099),
    ("TPC-E", "baseline", 4, 191514, 2105352, 0.016592169),
    ("TPC-E", "strex", 2, 191514, 2105352, 0.016712719),
    ("TPC-E", "strex", 4, 191514, 2105352, 0.016055372),
    ("TPC-E", "slicc", 2, 191514, 2105352, 0.018140654),
    ("TPC-E", "slicc", 4, 191514, 2105352, 0.019278076),
    ("TPC-E", "hybrid", 2, 191514, 2105352, 0.016584049),
    ("TPC-E", "hybrid", 4, 191514, 2105352, 0.017870981),
    ("MapReduce", "baseline", 2, 154241, 1596780, 0.006024982),
    ("MapReduce", "baseline", 4, 154241, 1596780, 0.005888329),
    ("MapReduce", "strex", 2, 154241, 1596780, 0.006398452),
    ("MapReduce", "strex", 4, 154241, 1596780, 0.005935976),
    ("MapReduce", "slicc", 2, 154241, 1596780, 0.005983926),
    ("MapReduce", "slicc", 4, 154241, 1596780, 0.005837504),
    ("MapReduce", "hybrid", 2, 154241, 1596780, 0.006175698),
    ("MapReduce", "hybrid", 4, 154241, 1596780, 0.006125793),
];

/// PR 3 (packed events + passive fast path + short-tag L2) engine
/// quick-suite cells (best-of-6, PR 4 session).
const PR3_CELLS: &[Cell] = &[
    ("TPC-C-1", "baseline", 2, 974694, 10586194, 0.081017094),
    ("TPC-C-1", "baseline", 4, 974694, 10586194, 0.084019277),
    ("TPC-C-1", "strex", 2, 974694, 10586194, 0.083917766),
    ("TPC-C-1", "strex", 4, 974694, 10586194, 0.087029018),
    ("TPC-C-1", "slicc", 2, 974694, 10586194, 0.092991061),
    ("TPC-C-1", "slicc", 4, 974694, 10586194, 0.095196048),
    ("TPC-C-1", "hybrid", 2, 974694, 10586194, 0.083698392),
    ("TPC-C-1", "hybrid", 4, 974694, 10586194, 0.089926482),
    ("TPC-C-10", "baseline", 2, 978621, 10618467, 0.082711453),
    ("TPC-C-10", "baseline", 4, 978621, 10618467, 0.086355227),
    ("TPC-C-10", "strex", 2, 978621, 10618467, 0.084606529),
    ("TPC-C-10", "strex", 4, 978621, 10618467, 0.083551627),
    ("TPC-C-10", "slicc", 2, 978621, 10618467, 0.092238113),
    ("TPC-C-10", "slicc", 4, 978621, 10618467, 0.096888769),
    ("TPC-C-10", "hybrid", 2, 978621, 10618467, 0.090121909),
    ("TPC-C-10", "hybrid", 4, 978621, 10618467, 0.091744688),
    ("TPC-E", "baseline", 2, 191514, 2105352, 0.016028728),
    ("TPC-E", "baseline", 4, 191514, 2105352, 0.015706689),
    ("TPC-E", "strex", 2, 191514, 2105352, 0.015912217),
    ("TPC-E", "strex", 4, 191514, 2105352, 0.016060207),
    ("TPC-E", "slicc", 2, 191514, 2105352, 0.016306018),
    ("TPC-E", "slicc", 4, 191514, 2105352, 0.016450733),
    ("TPC-E", "hybrid", 2, 191514, 2105352, 0.016250814),
    ("TPC-E", "hybrid", 4, 191514, 2105352, 0.017290887),
    ("MapReduce", "baseline", 2, 154241, 1596780, 0.005312965),
    ("MapReduce", "baseline", 4, 154241, 1596780, 0.005046525),
    ("MapReduce", "strex", 2, 154241, 1596780, 0.006093455),
    ("MapReduce", "strex", 4, 154241, 1596780, 0.006122294),
    ("MapReduce", "slicc", 2, 154241, 1596780, 0.005611514),
    ("MapReduce", "slicc", 4, 154241, 1596780, 0.005995639),
    ("MapReduce", "hybrid", 2, 154241, 1596780, 0.005940208),
    ("MapReduce", "hybrid", 4, 154241, 1596780, 0.005738519),
];

fn record(label: &str, revision: &str, cells: &'static [Cell]) -> BenchRecord {
    BenchRecord {
        label: label.to_string(),
        revision: revision.to_string(),
        cells: cells
            .iter()
            .map(
                |&(workload, scheduler, cores, events, instructions, wall_seconds)| CellTiming {
                    workload: workload.to_string(),
                    scheduler,
                    cores,
                    events,
                    instructions,
                    wall_seconds,
                },
            )
            .collect(),
    }
}

/// The committed seed-engine baseline — the 1.0x the trajectory ratios
/// normalize to.
pub fn seed_baseline() -> BenchRecord {
    record(
        "seed engine",
        "21f110e (pre-SoA engine, re-measured interleaved in the PR 4 session)",
        SEED_CELLS,
    )
}

/// The committed PR 2 (SoA cache) record — the first intermediate
/// trajectory point between the seed and the current build.
pub fn pr2_record() -> BenchRecord {
    record(
        "PR 2 SoA engine",
        "dd07f8d (SoA cache hot path, re-measured interleaved in the PR 4 session)",
        PR2_CELLS,
    )
}

/// The committed PR 3 (packed trace events, passive driver fast path,
/// short-tag L2 scan) record — the second intermediate trajectory point.
pub fn pr3_record() -> BenchRecord {
    record(
        "PR 3 packed-events engine",
        "ef2f437 (packed events + passive fast path + short-tag L2, re-measured interleaved in the PR 4 session)",
        PR3_CELLS,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_cover_the_full_quick_matrix() {
        let seed = seed_baseline();
        let pr2 = pr2_record();
        let pr3 = pr3_record();
        assert_eq!(
            seed.cells.len(),
            32,
            "4 workloads x 4 schedulers x 2 core counts"
        );
        assert_eq!(pr2.cells.len(), 32);
        assert_eq!(pr3.cells.len(), 32);
        // Bit-identical simulations: the work columns must match row for row.
        for ((a, b), c) in seed
            .cells
            .iter()
            .zip(pr2.cells.iter())
            .zip(pr3.cells.iter())
        {
            assert_eq!(
                (&a.workload, a.scheduler, a.cores),
                (&b.workload, b.scheduler, b.cores)
            );
            assert_eq!(
                (&a.workload, a.scheduler, a.cores),
                (&c.workload, c.scheduler, c.cores)
            );
            assert_eq!(a.events, b.events);
            assert_eq!(a.events, c.events);
            assert_eq!(a.instructions, b.instructions);
            assert_eq!(a.instructions, c.instructions);
        }
        assert!(seed.events_per_sec() > 0.0);
    }

    #[test]
    fn trajectory_is_monotone() {
        // The very claims the trajectory records: each PR beat its
        // predecessor on the session that measured all of them together.
        assert!(pr2_record().events_per_sec() > seed_baseline().events_per_sec());
        assert!(pr3_record().events_per_sec() > pr2_record().events_per_sec());
    }
}
