//! # strex-bench
//!
//! Experiment harness for the STREX (ISCA 2013) reproduction: one function
//! per table and figure of the paper's evaluation section, plus Criterion
//! microbenchmarks of the substrates.
//!
//! The `repro` binary drives everything:
//!
//! ```text
//! cargo run --release -p strex-bench --bin repro -- all
//! cargo run --release -p strex-bench --bin repro -- fig6 --quick
//! ```
//!
//! See [`experiments`] for the per-figure entry points and DESIGN.md for
//! the experiment index mapping each figure to the modules that implement
//! its pieces.

pub mod baseline_seed;
pub mod experiments;
pub mod perf;
pub mod table;

pub use experiments::Effort;
