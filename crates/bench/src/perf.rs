//! Simulation-throughput measurement — the `BENCH_*.json` trajectory.
//!
//! [`quick_suite`] replays the quick reproduction matrix (every workload ×
//! every scheduler × the quick core counts, the same cells CI reproduces
//! for Figures 5/6) through [`strex::driver::run`], timing each cell and
//! counting the memory-reference events it simulates. The headline metric
//! is **events per second**: how many L1 accesses the simulator retires
//! per wall-clock second, aggregated over the whole suite.
//!
//! Records serialize to JSON via [`strex::json::JsonWriter`] (the
//! workspace is offline, so no serde). [`bench_json`] merges a freshly
//! measured record with the committed pre-refactor baseline
//! ([`crate::baseline_pr2`]) and reports the speedup, producing the
//! `BENCH_PR2.json` document the CI `bench-smoke` job uploads.

use std::time::Instant;

use strex::config::SchedulerKind;
use strex::driver::run;
use strex::json::JsonWriter;
use strex_oltp::workload::{Workload, WorkloadKind};
use strex_sim::addr::BlockAddr;
use strex_sim::cache::{CacheGeometry, SetAssocCache};
use strex_sim::refcache::RefSetAssocCache;
use strex_sim::replacement::ReplacementKind;

use crate::experiments::{Effort, MATRIX_POOL, SEED};

/// Timing of one campaign cell.
#[derive(Clone, Debug)]
pub struct CellTiming {
    /// Workload name.
    pub workload: String,
    /// Scheduler registry key.
    pub scheduler: &'static str,
    /// Core count.
    pub cores: usize,
    /// Memory-reference events simulated (L1-I + L1-D accesses).
    pub events: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Wall-clock seconds the cell took.
    pub wall_seconds: f64,
}

impl CellTiming {
    /// Events simulated per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.events as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// One full measurement of the quick suite.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// What was measured (e.g. `"seed baseline"`, `"current"`).
    pub label: String,
    /// Git revision or description of the code measured.
    pub revision: String,
    /// Per-cell timings.
    pub cells: Vec<CellTiming>,
}

impl BenchRecord {
    /// Total events across all cells.
    pub fn total_events(&self) -> u64 {
        self.cells.iter().map(|c| c.events).sum()
    }

    /// Total wall-clock seconds across all cells.
    pub fn total_wall_seconds(&self) -> f64 {
        self.cells.iter().map(|c| c.wall_seconds).sum()
    }

    /// Aggregate events per second over the whole suite.
    pub fn events_per_sec(&self) -> f64 {
        let wall = self.total_wall_seconds();
        if wall > 0.0 {
            self.total_events() as f64 / wall
        } else {
            0.0
        }
    }

    fn write_into(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("label");
        w.string(&self.label);
        w.key("revision");
        w.string(&self.revision);
        w.key("total_events");
        w.number_u64(self.total_events());
        w.key("total_wall_seconds");
        w.float(self.total_wall_seconds());
        w.key("events_per_sec");
        w.float(self.events_per_sec());
        w.key("cells");
        w.begin_array();
        for c in &self.cells {
            w.begin_object();
            w.key("workload");
            w.string(&c.workload);
            w.key("scheduler");
            w.string(c.scheduler);
            w.key("cores");
            w.number_u64(c.cores as u64);
            w.key("events");
            w.number_u64(c.events);
            w.key("instructions");
            w.number_u64(c.instructions);
            w.key("wall_seconds");
            w.float(c.wall_seconds);
            w.key("events_per_sec");
            w.float(c.events_per_sec());
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }

    /// This record alone as a JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_into(&mut w);
        w.finish()
    }
}

/// Measures the quick reproduction suite cell by cell.
///
/// Cells run sequentially (unlike the parallel [`strex::campaign`]
/// executor) so each wall-clock measurement is unperturbed by sibling
/// runs.
pub fn quick_suite(label: &str, revision: &str) -> BenchRecord {
    // The exact cells the quick fig5/6 reproduction runs, via the same
    // Effort accessors, so the suite and the benchmark can't drift apart.
    let workloads: Vec<Workload> = WorkloadKind::ALL
        .into_iter()
        .map(|wk| Effort::Quick.workload(wk, MATRIX_POOL, SEED))
        .collect();
    let core_counts = Effort::Quick.core_counts();
    let mut cells = Vec::new();
    for w in &workloads {
        for kind in SchedulerKind::ALL {
            for &cores in &core_counts {
                let cfg = strex::config::SimConfig::builder()
                    .cores(cores)
                    .scheduler(kind)
                    .build()
                    .expect("bench configurations are valid");
                let start = Instant::now();
                let report = run(w, &cfg);
                let wall_seconds = start.elapsed().as_secs_f64();
                let agg = report.stats.aggregate();
                cells.push(CellTiming {
                    workload: w.name().to_string(),
                    scheduler: kind.key(),
                    cores,
                    events: agg.i_accesses + agg.d_accesses,
                    instructions: agg.instructions,
                    wall_seconds,
                });
            }
        }
    }
    BenchRecord {
        label: label.to_string(),
        revision: revision.to_string(),
        cells,
    }
}

/// Same-run microbenchmark of the cache hot path: one identical access
/// stream (fetch-style accesses with interleaved victim peeks, STREX's
/// per-fetch pattern) driven through the reference (seed) implementation
/// and the SoA single-probe cache.
#[derive(Copy, Clone, Debug)]
pub struct CacheMicrobench {
    /// Operations per implementation (one access + one peek each).
    pub ops: u64,
    /// Nanoseconds per operation, reference (seed) implementation.
    pub reference_ns_per_op: f64,
    /// Nanoseconds per operation, SoA single-probe implementation.
    pub soa_ns_per_op: f64,
}

impl CacheMicrobench {
    /// Reference time over SoA time.
    pub fn speedup(&self) -> f64 {
        if self.soa_ns_per_op > 0.0 {
            self.reference_ns_per_op / self.soa_ns_per_op
        } else {
            0.0
        }
    }
}

/// Runs the cache hot-path microbenchmark (Table 2 L1-I geometry, LRU,
/// a thrashing OLTP-like fetch stream). Panics if the two implementations
/// ever disagree on an outcome — the benchmark doubles as a smoke-level
/// differential test.
pub fn cache_microbench() -> CacheMicrobench {
    const OPS: u64 = 2_000_000;
    let geom = CacheGeometry::new(32 * 1024, 8);

    fn stream(i: u64) -> (BlockAddr, BlockAddr, u8) {
        // Looping code footprint ~2x the cache, with a striding conflict
        // probe for the victim monitor.
        let access = BlockAddr::new((i * 7) % 1024);
        let peek = BlockAddr::new(4096 + (i * 13) % 2048);
        (access, peek, (i % 7) as u8)
    }

    let mut reference = RefSetAssocCache::new(geom, ReplacementKind::Lru);
    let mut ref_hits = 0u64;
    let t0 = Instant::now();
    for i in 0..OPS {
        let (b, p, aux) = stream(i);
        ref_hits += u64::from(reference.peek_victim(p).is_some());
        ref_hits += u64::from(reference.access(b, aux).is_hit());
    }
    let ref_ns = t0.elapsed().as_nanos() as f64 / OPS as f64;

    let mut soa = SetAssocCache::new(geom, ReplacementKind::Lru);
    let mut soa_hits = 0u64;
    let t0 = Instant::now();
    for i in 0..OPS {
        let (b, p, aux) = stream(i);
        soa_hits += u64::from(soa.peek_victim(p).is_some());
        soa_hits += u64::from(soa.access(b, aux).is_hit());
    }
    let soa_ns = t0.elapsed().as_nanos() as f64 / OPS as f64;

    assert_eq!(
        ref_hits, soa_hits,
        "reference and SoA cache diverged under the benchmark stream"
    );
    CacheMicrobench {
        ops: OPS,
        reference_ns_per_op: ref_ns,
        soa_ns_per_op: soa_ns,
    }
}

/// The full `BENCH_PR2.json` document: the committed pre-refactor
/// baseline, a fresh measurement of the current build, the speedup
/// between them, and a same-run microbenchmark of the cache hot path
/// (reference vs SoA implementation, both timed by this very run).
pub fn bench_json(
    current: &BenchRecord,
    baseline: &BenchRecord,
    micro: &CacheMicrobench,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("bench");
    w.string("strex-sim quick reproduction suite");
    w.key("metric");
    w.string("memory-reference events simulated per wall-clock second");
    w.key("baseline");
    baseline.write_into(&mut w);
    w.key("current");
    current.write_into(&mut w);
    w.key("speedup_vs_committed_baseline");
    let b = baseline.events_per_sec();
    w.float(if b > 0.0 {
        current.events_per_sec() / b
    } else {
        0.0
    });
    w.key("baseline_note");
    w.string(
        "the committed baseline's wall-clock times are from the machine that \
         recorded it; this ratio is only meaningful there — on other machines \
         use cache_hot_path_same_run, which this run measured for both \
         implementations",
    );
    w.key("cache_hot_path_same_run");
    w.begin_object();
    w.key("description");
    w.string("identical access+peek stream through the seed (reference) and SoA cache implementations, timed in this run");
    w.key("ops");
    w.number_u64(micro.ops);
    w.key("reference_ns_per_op");
    w.float(micro.reference_ns_per_op);
    w.key("soa_ns_per_op");
    w.float(micro.soa_ns_per_op);
    w.key("speedup");
    w.float(micro.speedup());
    w.end_object();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_record() -> BenchRecord {
        BenchRecord {
            label: "t".into(),
            revision: "r".into(),
            cells: vec![CellTiming {
                workload: "w".into(),
                scheduler: "baseline",
                cores: 2,
                events: 1000,
                instructions: 5000,
                wall_seconds: 0.5,
            }],
        }
    }

    #[test]
    fn events_per_sec_aggregates() {
        let r = tiny_record();
        assert_eq!(r.total_events(), 1000);
        assert!((r.events_per_sec() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn json_shape() {
        let r = tiny_record();
        let j = r.to_json();
        assert!(j.contains(r#""label":"t""#));
        assert!(j.contains(r#""events":1000"#));
        let micro = CacheMicrobench {
            ops: 100,
            reference_ns_per_op: 20.0,
            soa_ns_per_op: 10.0,
        };
        assert!((micro.speedup() - 2.0).abs() < 1e-9);
        let merged = bench_json(&r, &r, &micro);
        assert!(merged.contains(r#""baseline":"#));
        assert!(merged.contains(r#""current":"#));
        assert!(merged.contains(r#""speedup_vs_committed_baseline":1"#));
        assert!(merged.contains(r#""cache_hot_path_same_run""#));
        assert!(merged.contains(r#""speedup":2"#), "microbench speedup");
    }
}
