//! Simulation-throughput measurement — the `BENCH_*.json` trajectory.
//!
//! [`quick_suite`] replays the quick reproduction matrix (every workload ×
//! every scheduler × the quick core counts, the same cells CI reproduces
//! for Figures 5/6) through [`strex::driver::run`], timing each cell and
//! counting the memory-reference events it simulates. The headline metric
//! is **events per second**: how many L1 accesses the simulator retires
//! per wall-clock second, aggregated over the whole suite.
//!
//! Records serialize to JSON via [`strex::json::JsonWriter`] (the
//! workspace is offline, so no serde). [`bench_json`] merges a freshly
//! measured record with the committed same-session baselines
//! ([`crate::baseline_seed`]) and reports the trajectory ratios, producing
//! the `BENCH_PR7.json` document the CI `bench-smoke` job gates on and
//! uploads (the name comes from [`bench_artifact`], the single source CI
//! and the binary share). Alongside the suite-level record, the document
//! carries the sharded-executor scale-out section ([`campaign_scaling`]:
//! aggregate events/sec, events/sec-per-core, scaling efficiency), the
//! multi-process fan-out grid ([`dist_scaling`]: `repro shard` children
//! at 1/2/4 processes, pinned vs unpinned per wire format, merged
//! results verified bit-identical before any number is recorded), the
//! same-run transport-vs-compute accounting
//! ([`transport_accounting`]), the measuring host's
//! core count, the PGO-vs-plain ratio when CI provides one
//! ([`PgoComparison`]), and three *same-run* microbenches timing each
//! optimized hot path against its in-tree reference implementation inside
//! the producing process — those ratios are portable across machines by
//! construction.

use std::io;
use std::path::Path;
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::Instant;

use strex::binwire;
use strex::binwire::WireFormat;
use strex::campaign::{
    merge, scaling_efficiency, Campaign, CampaignResult, CampaignShard, ShardSpec,
};
use strex::config::SchedulerKind;
use strex::driver::{run, run_with, run_with_generic_loop};
use strex::json::JsonWriter;
use strex::report::Report;
use strex::sched::BaselineSched;
use strex_oltp::trace::{MemRef, PackedRef};
use strex_oltp::workload::{Workload, WorkloadKind};
use strex_sim::addr::BlockAddr;
use strex_sim::cache::{CacheGeometry, SetAssocCache};
use strex_sim::refcache::RefSetAssocCache;
use strex_sim::replacement::ReplacementKind;

use crate::experiments::{Effort, MATRIX_POOL, SEED};

/// The single source of truth for the bench record's base name: the
/// `BENCH_ARTIFACT` environment variable (exported by CI) with the
/// committed default. `repro --bench-json` derives its output filename
/// *and* the default `--check` baseline path from here, and CI's upload
/// step publishes the same name — bump the default (and the committed
/// record) together, in one place each.
pub fn bench_artifact() -> String {
    std::env::var("BENCH_ARTIFACT").unwrap_or_else(|_| "BENCH_PR7".to_string())
}

/// The host's available parallelism — recorded into the bench JSON so
/// cross-run comparisons know what machine class produced a record.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Whether this host would actually grant the core pinning a `procs`-way
/// pinned fan-out requests (Linux, with cores `0..min(procs, host
/// cores)` allowed by the process's cpuset). Probed from scratch threads
/// so the caller's own affinity is never touched. [`dist_scaling`] skips
/// the pinned grid flavor when this is false, so a recorded
/// `pinned: true` point always means the pin really happened.
pub fn pinning_available(procs: usize) -> bool {
    let cores = host_cores();
    (0..procs.min(cores).max(1)).all(|core| {
        std::thread::spawn(move || strex::affinity::pin_to_core(core))
            .join()
            .unwrap_or(false)
    })
}

/// `{bench_artifact()}.json` — the on-disk form of [`bench_artifact`].
pub fn bench_artifact_path() -> String {
    format!("{}.json", bench_artifact())
}

/// Timing of one campaign cell.
#[derive(Clone, Debug)]
pub struct CellTiming {
    /// Workload name.
    pub workload: String,
    /// Scheduler registry key.
    pub scheduler: &'static str,
    /// Core count.
    pub cores: usize,
    /// Memory-reference events simulated (L1-I + L1-D accesses).
    pub events: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Wall-clock seconds the cell took.
    pub wall_seconds: f64,
}

impl CellTiming {
    /// Events simulated per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.events as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// One full measurement of the quick suite.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// What was measured (e.g. `"seed baseline"`, `"current"`).
    pub label: String,
    /// Git revision or description of the code measured.
    pub revision: String,
    /// Per-cell timings.
    pub cells: Vec<CellTiming>,
}

impl BenchRecord {
    /// Total events across all cells.
    pub fn total_events(&self) -> u64 {
        self.cells.iter().map(|c| c.events).sum()
    }

    /// Total wall-clock seconds across all cells.
    pub fn total_wall_seconds(&self) -> f64 {
        self.cells.iter().map(|c| c.wall_seconds).sum()
    }

    /// Aggregate events per second over the whole suite.
    pub fn events_per_sec(&self) -> f64 {
        let wall = self.total_wall_seconds();
        if wall > 0.0 {
            self.total_events() as f64 / wall
        } else {
            0.0
        }
    }

    fn write_into(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("label");
        w.string(&self.label);
        w.key("revision");
        w.string(&self.revision);
        w.key("total_events");
        w.number_u64(self.total_events());
        w.key("total_wall_seconds");
        w.float(self.total_wall_seconds());
        w.key("events_per_sec");
        w.float(self.events_per_sec());
        w.key("cells");
        w.begin_array();
        for c in &self.cells {
            w.begin_object();
            w.key("workload");
            w.string(&c.workload);
            w.key("scheduler");
            w.string(c.scheduler);
            w.key("cores");
            w.number_u64(c.cores as u64);
            w.key("events");
            w.number_u64(c.events);
            w.key("instructions");
            w.number_u64(c.instructions);
            w.key("wall_seconds");
            w.float(c.wall_seconds);
            w.key("events_per_sec");
            w.float(c.events_per_sec());
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }

    /// This record alone as a JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_into(&mut w);
        w.finish()
    }
}

/// Measures the quick reproduction suite cell by cell.
///
/// Cells run sequentially (unlike the parallel [`strex::campaign`]
/// executor) so each wall-clock measurement is unperturbed by sibling
/// runs.
pub fn quick_suite(label: &str, revision: &str) -> BenchRecord {
    quick_suite_best_of(label, revision, 1)
}

/// Like [`quick_suite`] but replays the whole matrix `rounds` times and
/// keeps each cell's *fastest* wall time. Taking per-cell minima over a
/// few rounds strips one-sided scheduler/load noise from a shared runner,
/// which is what keeps the `--check` regression gate from flaking; the
/// committed baselines were recorded the same way, so the ratio compares
/// like with like.
pub fn quick_suite_best_of(label: &str, revision: &str, rounds: usize) -> BenchRecord {
    // The exact cells the quick fig5/6 reproduction runs, via the same
    // Effort accessors, so the suite and the benchmark can't drift apart.
    let workloads: Vec<Arc<Workload>> = WorkloadKind::ALL
        .into_iter()
        .map(|wk| Effort::Quick.workload(wk, MATRIX_POOL, SEED))
        .collect();
    let core_counts = Effort::Quick.core_counts();
    let mut cells: Vec<CellTiming> = Vec::new();
    for round in 0..rounds.max(1) {
        let mut idx = 0usize;
        for w in &workloads {
            for kind in SchedulerKind::ALL {
                for &cores in &core_counts {
                    let cfg = strex::config::SimConfig::builder()
                        .cores(cores)
                        .scheduler(kind)
                        .build()
                        .expect("bench configurations are valid");
                    let start = Instant::now();
                    let report = run(w, &cfg);
                    let wall_seconds = start.elapsed().as_secs_f64();
                    let agg = report.stats.aggregate();
                    let cell = CellTiming {
                        workload: w.name().to_string(),
                        scheduler: kind.key(),
                        cores,
                        events: agg.i_accesses + agg.d_accesses,
                        instructions: agg.instructions,
                        wall_seconds,
                    };
                    if round == 0 {
                        cells.push(cell);
                    } else {
                        let best = &mut cells[idx];
                        assert_eq!(
                            (best.events, best.instructions),
                            (cell.events, cell.instructions),
                            "nondeterministic simulation across rounds"
                        );
                        if cell.wall_seconds < best.wall_seconds {
                            best.wall_seconds = cell.wall_seconds;
                        }
                    }
                    idx += 1;
                }
            }
        }
    }
    BenchRecord {
        label: label.to_string(),
        revision: revision.to_string(),
        cells,
    }
}

/// Same-run microbenchmark of the cache hot path: one identical access
/// stream (fetch-style accesses with interleaved victim peeks, STREX's
/// per-fetch pattern) driven through the reference (seed) implementation
/// and the SoA single-probe cache.
#[derive(Copy, Clone, Debug)]
pub struct CacheMicrobench {
    /// Operations per implementation (one access + one peek each).
    pub ops: u64,
    /// Nanoseconds per operation, reference (seed) implementation.
    pub reference_ns_per_op: f64,
    /// Nanoseconds per operation, SoA single-probe implementation.
    pub soa_ns_per_op: f64,
}

impl CacheMicrobench {
    /// Reference time over SoA time.
    pub fn speedup(&self) -> f64 {
        if self.soa_ns_per_op > 0.0 {
            self.reference_ns_per_op / self.soa_ns_per_op
        } else {
            0.0
        }
    }
}

/// Runs the cache hot-path microbenchmark (Table 2 L1-I geometry, LRU,
/// a thrashing OLTP-like fetch stream). Panics if the two implementations
/// ever disagree on an outcome — the benchmark doubles as a smoke-level
/// differential test.
pub fn cache_microbench() -> CacheMicrobench {
    const OPS: u64 = 2_000_000;
    let geom = CacheGeometry::new(32 * 1024, 8);

    fn stream(i: u64) -> (BlockAddr, BlockAddr, u8) {
        // Looping code footprint ~2x the cache, with a striding conflict
        // probe for the victim monitor.
        let access = BlockAddr::new((i * 7) % 1024);
        let peek = BlockAddr::new(4096 + (i * 13) % 2048);
        (access, peek, (i % 7) as u8)
    }

    let mut reference = RefSetAssocCache::new(geom, ReplacementKind::Lru);
    let mut ref_hits = 0u64;
    let t0 = Instant::now();
    for i in 0..OPS {
        let (b, p, aux) = stream(i);
        ref_hits += u64::from(reference.peek_victim(p).is_some());
        ref_hits += u64::from(reference.access(b, aux).is_hit());
    }
    let ref_ns = t0.elapsed().as_nanos() as f64 / OPS as f64;

    let mut soa = SetAssocCache::new(geom, ReplacementKind::Lru);
    let mut soa_hits = 0u64;
    let t0 = Instant::now();
    for i in 0..OPS {
        let (b, p, aux) = stream(i);
        soa_hits += u64::from(soa.peek_victim(p).is_some());
        soa_hits += u64::from(soa.access(b, aux).is_hit());
    }
    let soa_ns = t0.elapsed().as_nanos() as f64 / OPS as f64;

    assert_eq!(
        ref_hits, soa_hits,
        "reference and SoA cache diverged under the benchmark stream"
    );
    CacheMicrobench {
        ops: OPS,
        reference_ns_per_op: ref_ns,
        soa_ns_per_op: soa_ns,
    }
}

/// Same-run microbenchmark of the trace-event representation: one real
/// TPC-C trace pool replayed as the legacy 16-byte [`MemRef`] vector and
/// as the packed 8-byte [`PackedRef`] stream, decoding and consuming every
/// event both ways.
#[derive(Copy, Clone, Debug)]
pub struct TraceMicrobench {
    /// Events replayed per representation.
    pub events: u64,
    /// Nanoseconds per event, legacy enum-vector stream.
    pub legacy_ns_per_event: f64,
    /// Nanoseconds per event, packed u64 stream.
    pub packed_ns_per_event: f64,
}

impl TraceMicrobench {
    /// Legacy time over packed time.
    pub fn speedup(&self) -> f64 {
        if self.packed_ns_per_event > 0.0 {
            self.legacy_ns_per_event / self.packed_ns_per_event
        } else {
            0.0
        }
    }
}

/// Runs the trace-stream microbenchmark on real generated traces. Panics
/// if the two representations ever disagree on a decoded event — the
/// benchmark doubles as a smoke-level differential test of the packing.
pub fn trace_microbench() -> TraceMicrobench {
    const PASSES: usize = 8;
    // The full matrix pool (240 transactions, ~2M events): large enough
    // that the legacy stream (~32 MB) spills the host caches the packed
    // stream (~16 MB) still straddles — the bandwidth effect the packing
    // targets, not just decode arithmetic.
    let w = Workload::preset_small(WorkloadKind::TpccW1, MATRIX_POOL, SEED);
    let packed: Vec<&[PackedRef]> = w.txns().iter().map(|t| t.refs()).collect();
    let legacy: Vec<Vec<MemRef>> = w.txns().iter().map(|t| t.decode_refs()).collect();
    let events: u64 = packed.iter().map(|t| t.len() as u64).sum();

    // The consumption mirrors the driver's per-event work: dispatch on the
    // event kind and fold the payload into a checksum the optimizer cannot
    // discard.
    #[inline]
    fn consume(r: MemRef, acc: &mut u64) {
        match r {
            MemRef::IFetch { block, instrs } => {
                *acc = acc.wrapping_add(block.index() + instrs as u64)
            }
            MemRef::Load { addr } => *acc ^= addr.value(),
            MemRef::Store { addr } => *acc = acc.rotate_left(1) ^ addr.value(),
        }
    }

    let mut legacy_acc = 0u64;
    let t0 = Instant::now();
    for _ in 0..PASSES {
        for trace in &legacy {
            for &r in trace {
                consume(r, &mut legacy_acc);
            }
        }
    }
    let legacy_ns = t0.elapsed().as_nanos() as f64 / (events * PASSES as u64) as f64;

    let mut packed_acc = 0u64;
    let t0 = Instant::now();
    for _ in 0..PASSES {
        for trace in &packed {
            for &r in *trace {
                consume(r.decode(), &mut packed_acc);
            }
        }
    }
    let packed_ns = t0.elapsed().as_nanos() as f64 / (events * PASSES as u64) as f64;

    assert_eq!(
        legacy_acc, packed_acc,
        "packed and legacy trace streams decoded differently"
    );
    TraceMicrobench {
        events,
        legacy_ns_per_event: legacy_ns,
        packed_ns_per_event: packed_ns,
    }
}

/// Same-run microbenchmark of the driver dispatch: one baseline-scheduler
/// cell simulated through the generic (per-event virtual dispatch) loop
/// and through the monomorphized passive fast path.
#[derive(Copy, Clone, Debug)]
pub struct DriverMicrobench {
    /// Memory-reference events simulated per run.
    pub events: u64,
    /// Nanoseconds per event through the generic loop.
    pub generic_ns_per_event: f64,
    /// Nanoseconds per event through the passive fast path.
    pub passive_ns_per_event: f64,
}

impl DriverMicrobench {
    /// Generic-loop time over fast-path time.
    pub fn speedup(&self) -> f64 {
        if self.passive_ns_per_event > 0.0 {
            self.generic_ns_per_event / self.passive_ns_per_event
        } else {
            0.0
        }
    }
}

/// Runs the driver-dispatch microbenchmark (TPC-C-1 quick cell, baseline
/// scheduler, 4 cores; best of three alternating runs per path). Panics if
/// the two paths ever produce different results — it doubles as a
/// differential test of the fast path.
pub fn driver_microbench() -> DriverMicrobench {
    let w = Workload::preset_small(WorkloadKind::TpccW1, MATRIX_POOL / 8, SEED);
    let cfg = strex::config::SimConfig::builder()
        .cores(4)
        .scheduler(SchedulerKind::Baseline)
        .build()
        .expect("bench configuration is valid");

    fn timed(run_once: &mut dyn FnMut() -> Report) -> (Report, f64) {
        let t0 = Instant::now();
        let r = run_once();
        (r, t0.elapsed().as_secs_f64())
    }

    let mut generic_best = f64::INFINITY;
    let mut passive_best = f64::INFINITY;
    let mut reference: Option<Report> = None;
    for _ in 0..3 {
        let (rg, tg) = timed(&mut || run_with_generic_loop(&w, &cfg, &mut BaselineSched::new()));
        let (rp, tp) = timed(&mut || run_with(&w, &cfg, &mut BaselineSched::new()));
        assert_eq!(rg.makespan, rp.makespan, "fast path diverged from generic");
        assert_eq!(
            rg.latencies, rp.latencies,
            "fast path diverged from generic"
        );
        if let Some(reference) = &reference {
            assert_eq!(reference.makespan, rg.makespan, "nondeterministic run");
        }
        reference = Some(rg);
        generic_best = generic_best.min(tg);
        passive_best = passive_best.min(tp);
    }
    let r = reference.expect("three rounds ran");
    let agg = r.stats.aggregate();
    let events = agg.i_accesses + agg.d_accesses;
    DriverMicrobench {
        events,
        generic_ns_per_event: generic_best * 1e9 / events as f64,
        passive_ns_per_event: passive_best * 1e9 / events as f64,
    }
}

/// Scale-out measurement of the sharded campaign executor over the quick
/// matrix: the same cells as [`quick_suite`], run once sequentially
/// (1 worker) and once on `workers` workers, with the two results checked
/// bit-identical before any number is reported.
#[derive(Copy, Clone, Debug)]
pub struct CampaignScaling {
    /// Worker threads of the multi-worker run.
    pub workers: usize,
    /// `min(workers, available_parallelism)` — the parallelism the host
    /// could actually grant, which scaling efficiency is judged against
    /// (oversubscribing a small host is not a scaling failure of the
    /// executor; see [`strex::campaign::scaling_efficiency`]).
    pub effective_cores: usize,
    /// Memory-reference events the matrix simulates (identical both runs).
    pub total_events: u64,
    /// Aggregate events/sec of the 1-worker (sequential) run.
    pub single_events_per_sec: f64,
    /// Aggregate events/sec of the `workers`-worker run.
    pub events_per_sec: f64,
}

impl CampaignScaling {
    /// Multi-worker throughput normalized per *effective* core.
    pub fn events_per_sec_per_core(&self) -> f64 {
        if self.effective_cores > 0 {
            self.events_per_sec / self.effective_cores as f64
        } else {
            0.0
        }
    }

    /// Scaling efficiency against the sequential run on the effective
    /// cores (1.0 = perfect linear scaling).
    pub fn efficiency(&self) -> f64 {
        scaling_efficiency(
            self.single_events_per_sec,
            self.events_per_sec,
            self.effective_cores,
        )
    }
}

/// Runs the quick matrix through the sharded executor at 1 worker and at
/// `workers` workers, asserting the two results bit-identical (the
/// executor's determinism guarantee doubles as a smoke test here) and
/// returning the throughput comparison.
pub fn campaign_scaling(workers: usize) -> CampaignScaling {
    campaign_scaling_sweep(&[workers])
        .pop()
        .expect("one sweep point in, one out")
}

/// The quick reproduction matrix's workloads — one source shared by the
/// suite timer, the in-process scaling sweep, and every `repro shard`
/// child (all processes of a fan-out must agree on the matrix cell for
/// cell, which they do because each rebuilds it from this function and
/// the fixed [`SEED`]). Within one process the pools come from the
/// [`WorkloadCache`](strex_oltp::cache::WorkloadCache), so a dispatch
/// worker serving many shards, or a `submit --verify` run, generates
/// each trace pool exactly once.
pub fn quick_matrix_workloads() -> Vec<Arc<Workload>> {
    WorkloadKind::ALL
        .into_iter()
        .map(|wk| Effort::Quick.workload(wk, MATRIX_POOL, SEED))
        .collect()
}

/// The quick matrix (every workload × every scheduler × the quick core
/// counts) as a campaign over `workloads`.
pub fn quick_campaign(workloads: &[Arc<Workload>]) -> Campaign<'_> {
    let base = strex::config::SimConfig::builder()
        .build()
        .expect("default configuration is valid");
    Campaign::new(base)
        .over_schedulers(SchedulerKind::ALL)
        .over_workloads(workloads.iter().map(|w| &**w))
        .over_cores(Effort::Quick.core_counts())
}

/// Executes shard `spec` of the quick matrix — the body of a
/// `repro shard i/N` child process.
pub fn run_quick_shard(spec: ShardSpec) -> CampaignShard {
    let workloads = quick_matrix_workloads();
    quick_campaign(&workloads)
        .run_shard(spec)
        .expect("quick matrix is valid")
}

/// The catalog name the dispatcher knows the quick matrix by: what
/// `repro serve` accepts, `repro submit` submits, and `repro work` maps
/// to [`run_quick_shard`]. One constant so the three CLIs cannot drift.
pub const QUICK_CAMPAIGN: &str = "quick";

/// The campaign names a `repro serve` coordinator accepts.
pub fn dispatch_catalog() -> Vec<String> {
    vec![QUICK_CAMPAIGN.to_string()]
}

/// The [`strex::dispatch::ShardRunner`] a `repro work` worker serves
/// with: maps the catalog names to their shard executors, resumably —
/// a shard re-assigned with a checkpoint skips the cells some dead
/// worker already simulated, and progress is reported cell by cell so
/// the coordinator always holds a fresh resume point.
#[derive(Default)]
pub struct QuickRunner;

impl strex::dispatch::ShardRunner for QuickRunner {
    fn run(&mut self, campaign: &str, spec: ShardSpec) -> Result<CampaignShard, String> {
        self.run_resumable(campaign, spec, None, &mut |_| {})
    }

    fn run_resumable(
        &mut self,
        campaign: &str,
        spec: ShardSpec,
        checkpoint: Option<strex::campaign::ShardCheckpoint>,
        on_cell: &mut dyn FnMut(&strex::campaign::ShardCheckpoint),
    ) -> Result<CampaignShard, String> {
        if campaign != QUICK_CAMPAIGN {
            return Err(format!("worker has no runner for campaign {campaign:?}"));
        }
        let workloads = quick_matrix_workloads();
        let quick = quick_campaign(&workloads);
        let run = match quick.run_shard_resumable(spec, checkpoint, on_cell) {
            // A checkpoint that does not line up with this build's quick
            // matrix (version skew across the fleet) costs a fresh run,
            // never a failed worker.
            Err(strex::ConfigError::CheckpointMismatch { .. }) => {
                quick.run_shard_resumable(spec, None, on_cell)
            }
            other => other,
        };
        run.map_err(|e| e.to_string())
    }
}

/// The runner a `repro work` worker serves with.
pub fn dispatch_runner() -> QuickRunner {
    QuickRunner
}

/// [`campaign_scaling`] for a whole worker-count sweep: the sequential
/// (1-worker) run is measured **once** and every sweep point is judged
/// against that same baseline — K points cost K+1 matrix executions, not
/// 2K, and all efficiencies share one denominator instead of K noisy
/// re-measurements of it.
pub fn campaign_scaling_sweep(worker_counts: &[usize]) -> Vec<CampaignScaling> {
    campaign_scaling_sweep_with_golden(worker_counts).0
}

/// [`campaign_scaling_sweep`] that also hands back the sequential run's
/// serialized campaign — the golden every sweep point was checked
/// against. `repro --bench-json` feeds it to [`dist_scaling`] so the
/// multi-process grid reuses this run instead of re-simulating the whole
/// matrix for its own reference.
pub fn campaign_scaling_sweep_with_golden(
    worker_counts: &[usize],
) -> (Vec<CampaignScaling>, String) {
    let workloads = quick_matrix_workloads();
    let run_at = |parallelism: usize| {
        quick_campaign(&workloads)
            .parallelism(parallelism)
            .run()
            .expect("quick matrix is valid")
    };
    let single = run_at(1);
    let single_json = single.to_json();
    let avail = host_cores();
    let points = worker_counts
        .iter()
        .map(|&workers| {
            let multi = run_at(workers);
            assert_eq!(
                single_json,
                multi.to_json(),
                "sharded executor diverged from sequential at {workers} workers"
            );
            CampaignScaling {
                workers,
                effective_cores: avail.min(workers).max(1),
                total_events: multi.perf().total_events,
                single_events_per_sec: single.perf().events_per_sec(),
                events_per_sec: multi.perf().events_per_sec(),
            }
        })
        .collect();
    (points, single_json)
}

/// One multi-process fan-out measurement: the quick matrix split into
/// `procs` shards, each executed by a freshly spawned `repro shard`
/// child, the shards merged back and verified bit-identical to the
/// sequential run before any number is reported.
#[derive(Copy, Clone, Debug)]
pub struct DistPoint {
    /// Child processes the matrix was fanned out to.
    pub procs: usize,
    /// Whether each child was pinned to a core (`--pin i mod host
    /// cores`). Only ever `true` when [`pinning_available`] confirmed the
    /// host grants the affinity, so the flag records what happened, not
    /// what was asked for.
    pub pinned: bool,
    /// The encoding the children shipped their shards back in.
    pub wire: WireFormat,
    /// `min(procs, host cores)` — what efficiency is judged against.
    pub effective_cores: usize,
    /// Memory-reference events the matrix simulates.
    pub total_events: u64,
    /// Parent-measured wall seconds, first spawn to last shard parsed —
    /// process startup, workload regeneration and JSON transport all
    /// included, because a real fan-out pays all of them.
    pub wall_seconds: f64,
    /// The same flavor's 1-process fan-out throughput (the baseline its
    /// efficiency is judged against — also a child process, so spawn
    /// overhead cancels out of the ratio).
    pub single_events_per_sec: f64,
}

impl DistPoint {
    /// Aggregate events per parent-measured wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.total_events as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Throughput normalized per *effective* core.
    pub fn events_per_sec_per_core(&self) -> f64 {
        if self.effective_cores > 0 {
            self.events_per_sec() / self.effective_cores as f64
        } else {
            0.0
        }
    }

    /// Scaling efficiency against the same-flavor 1-process fan-out on
    /// the effective cores (1.0 = perfect linear scaling).
    pub fn efficiency(&self) -> f64 {
        scaling_efficiency(
            self.single_events_per_sec,
            self.events_per_sec(),
            self.effective_cores,
        )
    }
}

/// A full multi-process scaling measurement: the pinned and unpinned
/// fan-out grids over one process-count list, plus the host's core count
/// (recorded so a committed record says what machine class produced it).
#[derive(Clone, Debug)]
pub struct DistScaling {
    /// `std::thread::available_parallelism` of the measuring host.
    pub host_cores: usize,
    /// Pinned points first (in `procs_list` order), then unpinned.
    pub points: Vec<DistPoint>,
}

/// Spawns `procs` children of `exe` (`repro shard i/procs --wire W`,
/// plus `--pin i mod host cores` when `pin`), collects their shards from
/// stdout, and merges them. The parent negotiates each child's output by
/// its first byte — a [`strex::binwire`] magic opens the binary
/// decoder, anything else is the JSON path — so `wire` only tells the
/// children what to emit. Returns the merged result and the
/// parent-measured wall seconds. Child failures, unparseable output and
/// incomplete shard sets are `io::Error`s, not panics.
pub fn dist_fan_out(
    exe: &Path,
    procs: usize,
    pin: bool,
    wire: WireFormat,
) -> io::Result<(CampaignResult, f64)> {
    fan_out_with_args(exe, procs, pin, wire, &[])
}

/// Fans a **scenario's** matrix out to `procs` child processes — the
/// `repro check --procs N` execution path. Children are `repro shard
/// i/procs --scenario <path> --wire W`: each re-parses the scenario file
/// itself (so the parent and children agree on the matrix by
/// construction — same file, same validated parse) and ships its shard
/// back exactly like a quick-matrix fan-out. The merged result is what
/// the caller evaluates assertions against; by the executor's
/// determinism guarantee it is bit-identical to an in-process
/// [`Campaign::run`](strex::campaign::Campaign::run) of the same matrix.
pub fn scenario_fan_out(
    exe: &Path,
    scenario_path: &Path,
    procs: usize,
    wire: WireFormat,
) -> io::Result<CampaignResult> {
    let extra = [
        "--scenario".to_string(),
        scenario_path.display().to_string(),
    ];
    fan_out_with_args(exe, procs, false, wire, &extra).map(|(merged, _)| merged)
}

/// The shared spawn/drain/merge engine behind [`dist_fan_out`] and
/// [`scenario_fan_out`]: spawns `procs` `repro shard i/procs` children
/// with `extra_args` appended, drains each child's stdout on its own
/// thread, negotiates the wire format by first byte, and merges the
/// shards.
fn fan_out_with_args(
    exe: &Path,
    procs: usize,
    pin: bool,
    wire: WireFormat,
    extra_args: &[String],
) -> io::Result<(CampaignResult, f64)> {
    // Kills and reaps already-spawned children when a later spawn fails —
    // no zombies (or whole shards burning CPU for a result nobody will
    // read) behind a library call. After the spawn loop, each child is
    // waited on by its own drain thread instead.
    fn reap(children: impl Iterator<Item = std::process::Child>) {
        for mut child in children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    let cores = host_cores();
    let start = Instant::now();
    let mut children = Vec::with_capacity(procs);
    for i in 0..procs {
        let mut cmd = Command::new(exe);
        cmd.arg("shard")
            .arg(format!("{i}/{procs}"))
            .arg("--wire")
            .arg(wire.to_string());
        if pin {
            cmd.arg("--pin").arg((i % cores).to_string());
        }
        cmd.args(extra_args);
        cmd.stdout(Stdio::piped());
        // Stderr is captured too, so a failing child's own words travel
        // into the error the caller sees instead of a bare exit status.
        cmd.stderr(Stdio::piped());
        match cmd.spawn() {
            Ok(child) => children.push(child),
            Err(e) => {
                reap(children.into_iter());
                return Err(e);
            }
        }
    }
    // One drain thread per child: the ~64 KiB pipe buffer means a child
    // that finishes while the parent is reading a sibling would otherwise
    // block in write(2), serializing JSON transport into the measured
    // wall time. Concurrent drains keep transport overlapped — and every
    // child is waited on by its own thread, so no error path leaves a
    // zombie.
    let readers: Vec<_> = children
        .into_iter()
        .enumerate()
        .map(|(i, child)| {
            std::thread::spawn(move || -> io::Result<CampaignShard> {
                let out = child.wait_with_output()?;
                if !out.status.success() {
                    // Same rendering the dispatcher uses for a lost
                    // worker: peer, exit status, and its stderr.
                    return Err(io::Error::other(strex::dispatch::peer_failure(
                        &format!("shard child {i}/{procs}"),
                        &out.status.to_string(),
                        &String::from_utf8_lossy(&out.stderr),
                    )));
                }
                // Negotiate by first byte, exactly like the dispatch
                // protocol reader: binary shards open with the binwire
                // magic, which no JSON (or UTF-8) output can start with.
                if out.stdout.first().copied().is_some_and(binwire::is_binary) {
                    return CampaignShard::from_bin(&out.stdout)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
                }
                let text = std::str::from_utf8(&out.stdout)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                CampaignShard::from_json(text.trim())
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
            })
        })
        .collect();
    let mut shards: Vec<CampaignShard> = Vec::with_capacity(procs);
    let mut first_err: Option<io::Error> = None;
    for handle in readers {
        match handle.join() {
            Ok(Ok(shard)) => shards.push(shard),
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => {
                first_err = first_err.or_else(|| Some(io::Error::other("shard drain panicked")))
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    let merged =
        merge(shards).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let wall_seconds = start.elapsed().as_secs_f64();
    Ok((merged, wall_seconds))
}

/// Measures the multi-process fan-out grid: for each wire format in
/// `wires` and each pinning flavor, a 1-process baseline plus every
/// count in `procs_list`, each point's merged result checked
/// **bit-identical** to an in-process sequential run before its
/// throughput is recorded. Efficiency is judged against the same
/// `(wire, pinned)` flavor's own 1-process baseline, so the per-wire
/// grids are directly comparable.
///
/// `exe` is the `repro` binary itself (`std::env::current_exe()` in the
/// caller) — the children are `repro shard` invocations. `golden` is the
/// sequential campaign's serialized form when the caller already has one
/// (e.g. from [`campaign_scaling_sweep_with_golden`], saving a redundant
/// full-matrix simulation); `None` computes it here.
pub fn dist_scaling(
    exe: &Path,
    procs_list: &[usize],
    golden: Option<&str>,
    wires: &[WireFormat],
) -> io::Result<DistScaling> {
    let golden = match golden {
        Some(g) => g.to_string(),
        None => {
            let workloads = quick_matrix_workloads();
            quick_campaign(&workloads)
                .parallelism(1)
                .run()
                .expect("quick matrix is valid")
                .to_json()
        }
    };
    let cores = host_cores();
    let mut points = Vec::new();
    // The pinned flavor runs only where pinning would actually stick
    // (Linux, cores inside the cpuset) — the recorded `pinned` flag
    // reports an outcome, not an intent.
    let max_procs = procs_list.iter().copied().max().unwrap_or(1);
    let flavors: &[bool] = if pinning_available(max_procs) {
        &[true, false]
    } else {
        &[false]
    };
    for &wire in wires {
        for &pinned in flavors {
            let measure = |procs: usize, single_eps: f64| -> io::Result<DistPoint> {
                let (merged, wall_seconds) = dist_fan_out(exe, procs, pinned, wire)?;
                if merged.to_json() != golden {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "merged {procs}-process campaign diverged from the sequential run \
                             (pinned={pinned}, wire={wire})"
                        ),
                    ));
                }
                Ok(DistPoint {
                    procs,
                    pinned,
                    wire,
                    effective_cores: cores.min(procs).max(1),
                    total_events: merged.perf().total_events,
                    wall_seconds,
                    single_events_per_sec: single_eps,
                })
            };
            let mut baseline = measure(1, 0.0)?;
            let single_eps = baseline.events_per_sec();
            baseline.single_events_per_sec = single_eps;
            for &procs in procs_list {
                if procs == 1 {
                    points.push(baseline);
                } else {
                    points.push(measure(procs, single_eps)?);
                }
            }
        }
    }
    Ok(DistScaling {
        host_cores: cores,
        points,
    })
}

/// One wire format's share of the transport tax: what encoding and
/// decoding every shard of the accounting matrix costs, and how many
/// bytes cross the process boundary.
#[derive(Clone, Debug)]
pub struct WireTiming {
    /// Which encoding was timed.
    pub wire: WireFormat,
    /// Encoded bytes across all shards.
    pub bytes: u64,
    /// Wall seconds to encode every shard (best of the measuring passes).
    pub encode_seconds: f64,
    /// Wall seconds to decode every shard back (best of the passes).
    pub decode_seconds: f64,
}

impl WireTiming {
    /// Encode + decode: the CPU cost one full transport round trip pays.
    pub fn round_trip_seconds(&self) -> f64 {
        self.encode_seconds + self.decode_seconds
    }
}

/// Same-run transport-vs-compute accounting: the quick matrix split into
/// `shards` shards and executed once in-process (the compute
/// denominator), then every shard encoded and decoded under each wire
/// format (the transport numerator). This is what locates the fan-out's
/// efficiency loss: if a wire's round trip is a large fraction of shard
/// compute, the children are paying serialization, not simulation.
#[derive(Clone, Debug)]
pub struct TransportAccounting {
    /// How many shards the matrix was split into.
    pub shards: usize,
    /// Wall seconds to execute all shards sequentially in-process.
    pub compute_seconds: f64,
    /// Per-wire-format timings, JSON first.
    pub wires: Vec<WireTiming>,
}

impl TransportAccounting {
    /// The timing recorded for `wire`, if measured.
    pub fn timing(&self, wire: WireFormat) -> Option<&WireTiming> {
        self.wires.iter().find(|t| t.wire == wire)
    }

    /// Binary round-trip cost as a fraction of the JSON round-trip cost
    /// (< 1.0 means the binary path is cheaper).
    pub fn bin_round_trip_vs_json(&self) -> f64 {
        match (self.timing(WireFormat::Bin), self.timing(WireFormat::Json)) {
            (Some(bin), Some(json)) if json.round_trip_seconds() > 0.0 => {
                bin.round_trip_seconds() / json.round_trip_seconds()
            }
            _ => 0.0,
        }
    }
}

/// Measures [`TransportAccounting`] for the quick matrix split
/// `shard_count` ways: runs every shard once (timed), then encodes and
/// decodes each under both wire formats, keeping the fastest of a few
/// passes per direction. Every decode is asserted bit-identical (via the
/// canonical JSON re-serialization) to the shard it came from, so the
/// numbers can never come from a lossy path.
pub fn transport_accounting(shard_count: usize) -> TransportAccounting {
    let workloads = quick_matrix_workloads();
    let campaign = quick_campaign(&workloads);
    let start = Instant::now();
    let shards: Vec<CampaignShard> = (0..shard_count)
        .map(|i| {
            campaign
                .run_shard(ShardSpec::new(i, shard_count).expect("valid spec"))
                .expect("quick matrix is valid")
        })
        .collect();
    let compute_seconds = start.elapsed().as_secs_f64();

    const PASSES: usize = 5;
    let encode = |wire: WireFormat, s: &CampaignShard| -> Vec<u8> {
        match wire {
            WireFormat::Json => s.to_json().into_bytes(),
            WireFormat::Bin => s.to_bin(),
        }
    };
    let decode = |wire: WireFormat, p: &[u8]| -> CampaignShard {
        match wire {
            WireFormat::Json => {
                CampaignShard::from_json(std::str::from_utf8(p).expect("JSON payloads are UTF-8"))
            }
            WireFormat::Bin => CampaignShard::from_bin(p),
        }
        .expect("self-encoded shards decode")
    };
    let wires = [WireFormat::Json, WireFormat::Bin]
        .into_iter()
        .map(|wire| {
            let mut encode_seconds = f64::INFINITY;
            let mut payloads: Vec<Vec<u8>> = Vec::new();
            for _ in 0..PASSES {
                let start = Instant::now();
                let encoded: Vec<Vec<u8>> = shards.iter().map(|s| encode(wire, s)).collect();
                encode_seconds = encode_seconds.min(start.elapsed().as_secs_f64());
                payloads = encoded;
            }
            let bytes: u64 = payloads.iter().map(|p| p.len() as u64).sum();
            let mut decode_seconds = f64::INFINITY;
            for _ in 0..PASSES {
                let start = Instant::now();
                for p in &payloads {
                    std::hint::black_box(decode(wire, p));
                }
                decode_seconds = decode_seconds.min(start.elapsed().as_secs_f64());
            }
            for (s, p) in shards.iter().zip(&payloads) {
                assert_eq!(
                    decode(wire, p).to_json(),
                    s.to_json(),
                    "transport accounting round trip must be bit-identical ({wire})"
                );
            }
            WireTiming {
                wire,
                bytes,
                encode_seconds,
                decode_seconds,
            }
        })
        .collect();
    TransportAccounting {
        shards: shard_count,
        compute_seconds,
        wires,
    }
}

/// The PGO comparison CI records: the plain (non-PGO) build's aggregate
/// quick-suite throughput, exported by the workflow through
/// `BENCH_PLAIN_EPS` before the PGO-built gate run re-measures.
#[derive(Copy, Clone, Debug)]
pub struct PgoComparison {
    /// `current.events_per_sec` of the plain build's record.
    pub plain_events_per_sec: f64,
}

impl PgoComparison {
    /// Reads the plain build's throughput from `BENCH_PLAIN_EPS`, if the
    /// producing workflow exported one.
    pub fn from_env() -> Option<PgoComparison> {
        let eps: f64 = std::env::var("BENCH_PLAIN_EPS").ok()?.parse().ok()?;
        (eps > 0.0).then_some(PgoComparison {
            plain_events_per_sec: eps,
        })
    }

    /// PGO-built throughput over plain-built throughput.
    pub fn ratio(&self, pgo_events_per_sec: f64) -> f64 {
        if self.plain_events_per_sec > 0.0 {
            pgo_events_per_sec / self.plain_events_per_sec
        } else {
            0.0
        }
    }
}

/// The three same-run microbenches bundled for [`bench_json`].
#[derive(Copy, Clone, Debug)]
pub struct SameRunMicros {
    /// Reference-vs-SoA cache hot path.
    pub cache: CacheMicrobench,
    /// Legacy-vs-packed trace stream.
    pub trace: TraceMicrobench,
    /// Generic-vs-passive driver loop.
    pub driver: DriverMicrobench,
}

/// Measures all three same-run microbenches.
pub fn same_run_micros() -> SameRunMicros {
    SameRunMicros {
        cache: cache_microbench(),
        trace: trace_microbench(),
        driver: driver_microbench(),
    }
}

/// The full `BENCH_PR7.json` document: the committed same-session seed,
/// PR 2 and PR 3 baselines, a fresh measurement of the current build, the
/// trajectory ratios between them, the sharded-executor scale-out section
/// (aggregate events/sec, events/sec-per-core, scaling efficiency), the
/// multi-process `dist` fan-out grid (events/sec at each process count,
/// pinned vs unpinned, per wire format), the same-run transport-vs-compute
/// accounting, the measuring host's core count, the CI-recorded
/// PGO-vs-plain ratio when available, and the three same-run hot-path
/// microbenchmarks (each timing the optimized path against its in-tree
/// reference inside this very run, so those ratios are portable across
/// machines).
// One parameter per document section, passed by the single producer
// (`repro --bench-json`) and the shape tests; a bundling struct would
// just restate the section names.
#[allow(clippy::too_many_arguments)]
pub fn bench_json(
    current: &BenchRecord,
    baseline: &BenchRecord,
    pr2: &BenchRecord,
    pr3: &BenchRecord,
    micros: &SameRunMicros,
    scaling: &CampaignScaling,
    dist: &DistScaling,
    transport: &TransportAccounting,
    pgo: Option<PgoComparison>,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("bench");
    w.string("strex-sim quick reproduction suite");
    w.key("metric");
    w.string("memory-reference events simulated per wall-clock second");
    // What machine class produced this record: absolute numbers and
    // scaling points are only comparable across runs on similar hosts.
    w.key("host_cores");
    w.number_u64(dist.host_cores as u64);
    w.key("baseline");
    baseline.write_into(&mut w);
    w.key("pr2");
    pr2.write_into(&mut w);
    w.key("pr3");
    pr3.write_into(&mut w);
    w.key("current");
    current.write_into(&mut w);
    let b = baseline.events_per_sec();
    let ratio_vs_seed = |eps: f64| if b > 0.0 { eps / b } else { 0.0 };
    w.key("speedup_vs_committed_baseline");
    w.float(ratio_vs_seed(current.events_per_sec()));
    w.key("pr2_speedup_vs_committed_baseline");
    w.float(ratio_vs_seed(pr2.events_per_sec()));
    w.key("pr3_speedup_vs_committed_baseline");
    w.float(ratio_vs_seed(pr3.events_per_sec()));
    w.key("campaign");
    w.begin_object();
    w.key("description");
    w.string(
        "the quick matrix executed by the sharded campaign executor, once \
         sequentially and once on `workers` workers (bit-identical results \
         asserted); scaling efficiency is judged against \
         effective_cores = min(workers, available cores), so the committed \
         record stays meaningful on small recording machines",
    );
    w.key("workers");
    w.number_u64(scaling.workers as u64);
    w.key("effective_cores");
    w.number_u64(scaling.effective_cores as u64);
    w.key("total_events");
    w.number_u64(scaling.total_events);
    w.key("single_worker_events_per_sec");
    w.float(scaling.single_events_per_sec);
    w.key("events_per_sec");
    w.float(scaling.events_per_sec);
    w.key("events_per_sec_per_core");
    w.float(scaling.events_per_sec_per_core());
    w.key("scaling_efficiency");
    w.float(scaling.efficiency());
    w.end_object();
    w.key("dist");
    w.begin_object();
    w.key("description");
    w.string(
        "the quick matrix fanned out to `procs` child processes (`repro \
         shard i/procs --wire W`), shards shipped back over stdout in the \
         point's wire format, merged, and checked bit-identical to the \
         sequential run; wall time is parent-measured and includes process \
         startup, one workload generation per child process (shared \
         in-process via the WorkloadCache) and shard transport. pinned \
         points run each child under sched_setaffinity on core i mod \
         host_cores. efficiency is against the same (wire, pinned) \
         flavor's 1-process fan-out on \
         effective_cores = min(procs, host cores)",
    );
    w.key("points");
    w.begin_array();
    for p in &dist.points {
        w.begin_object();
        w.key("procs");
        w.number_u64(p.procs as u64);
        w.key("pinned");
        w.boolean(p.pinned);
        w.key("wire");
        w.string(&p.wire.to_string());
        w.key("effective_cores");
        w.number_u64(p.effective_cores as u64);
        w.key("total_events");
        w.number_u64(p.total_events);
        w.key("wall_seconds");
        w.float(p.wall_seconds);
        w.key("events_per_sec");
        w.float(p.events_per_sec());
        w.key("events_per_sec_per_core");
        w.float(p.events_per_sec_per_core());
        w.key("scaling_efficiency");
        w.float(p.efficiency());
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.key("transport");
    w.begin_object();
    w.key("description");
    w.string(
        "same-run transport-vs-compute accounting: the quick matrix split \
         into `shards` shards and executed once in-process \
         (compute_seconds), then every shard encoded and decoded under \
         each wire format (best of 5 passes per direction, every decode \
         asserted bit-identical). bin_round_trip_vs_json < 1.0 means the \
         binary wire is cheaper than JSON",
    );
    w.key("shards");
    w.number_u64(transport.shards as u64);
    w.key("compute_seconds");
    w.float(transport.compute_seconds);
    w.key("wires");
    w.begin_array();
    for t in &transport.wires {
        w.begin_object();
        w.key("wire");
        w.string(&t.wire.to_string());
        w.key("bytes");
        w.number_u64(t.bytes);
        w.key("encode_seconds");
        w.float(t.encode_seconds);
        w.key("decode_seconds");
        w.float(t.decode_seconds);
        w.key("round_trip_seconds");
        w.float(t.round_trip_seconds());
        w.key("round_trip_vs_compute");
        w.float(if transport.compute_seconds > 0.0 {
            t.round_trip_seconds() / transport.compute_seconds
        } else {
            0.0
        });
        w.end_object();
    }
    w.end_array();
    w.key("bin_round_trip_vs_json");
    w.float(transport.bin_round_trip_vs_json());
    w.end_object();
    if let Some(pgo) = pgo {
        w.key("pgo");
        w.begin_object();
        w.key("description");
        w.string(
            "this record was produced by a PGO-built binary; \
             plain_events_per_sec is the non-PGO build of the same source \
             measured immediately before in the same CI job",
        );
        w.key("plain_events_per_sec");
        w.float(pgo.plain_events_per_sec);
        w.key("pgo_events_per_sec");
        w.float(current.events_per_sec());
        w.key("pgo_vs_plain");
        w.float(pgo.ratio(current.events_per_sec()));
        w.end_object();
    }
    w.key("baseline_note");
    w.string(
        "the committed baseline and pr2 records were measured interleaved \
         with the current build in one session on the machine that recorded \
         this file; absolute wall-clock numbers are machine-specific, the \
         ratios are the trajectory. `repro --bench-json --check` recomputes \
         the seed-vs-current ratio from a fresh best-of-3 measurement \
         against this committed seed record and gates on it — meaningful \
         on runners comparable to the recording machine; re-record the \
         baseline if the runner class changes. The same_run section is \
         measured entirely inside the producing run and is portable \
         everywhere.",
    );
    w.key("same_run");
    w.begin_object();
    w.key("cache_hot_path");
    w.begin_object();
    w.key("description");
    w.string("identical access+peek stream through the seed (reference) and SoA cache implementations, timed in this run");
    w.key("ops");
    w.number_u64(micros.cache.ops);
    w.key("reference_ns_per_op");
    w.float(micros.cache.reference_ns_per_op);
    w.key("soa_ns_per_op");
    w.float(micros.cache.soa_ns_per_op);
    w.key("speedup");
    w.float(micros.cache.speedup());
    w.end_object();
    w.key("packed_trace");
    w.begin_object();
    w.key("description");
    w.string("real TPC-C trace pool replayed as the legacy 16-byte enum vector vs the packed 8-byte stream, decoded event by event in this run");
    w.key("events");
    w.number_u64(micros.trace.events);
    w.key("legacy_ns_per_event");
    w.float(micros.trace.legacy_ns_per_event);
    w.key("packed_ns_per_event");
    w.float(micros.trace.packed_ns_per_event);
    w.key("speedup");
    w.float(micros.trace.speedup());
    w.end_object();
    w.key("passive_driver");
    w.begin_object();
    w.key("description");
    w.string("baseline-scheduler cell simulated through the generic per-event-dyn-dispatch loop vs the monomorphized passive fast path, both in this run");
    w.key("events");
    w.number_u64(micros.driver.events);
    w.key("generic_ns_per_event");
    w.float(micros.driver.generic_ns_per_event);
    w.key("passive_ns_per_event");
    w.float(micros.driver.passive_ns_per_event);
    w.key("speedup");
    w.float(micros.driver.speedup());
    w.end_object();
    w.end_object();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_record() -> BenchRecord {
        BenchRecord {
            label: "t".into(),
            revision: "r".into(),
            cells: vec![CellTiming {
                workload: "w".into(),
                scheduler: "baseline",
                cores: 2,
                events: 1000,
                instructions: 5000,
                wall_seconds: 0.5,
            }],
        }
    }

    #[test]
    fn events_per_sec_aggregates() {
        let r = tiny_record();
        assert_eq!(r.total_events(), 1000);
        assert!((r.events_per_sec() - 2000.0).abs() < 1e-9);
    }

    fn tiny_micros() -> SameRunMicros {
        SameRunMicros {
            cache: CacheMicrobench {
                ops: 100,
                reference_ns_per_op: 20.0,
                soa_ns_per_op: 10.0,
            },
            trace: TraceMicrobench {
                events: 100,
                legacy_ns_per_event: 3.0,
                packed_ns_per_event: 2.0,
            },
            driver: DriverMicrobench {
                events: 100,
                generic_ns_per_event: 90.0,
                passive_ns_per_event: 60.0,
            },
        }
    }

    fn tiny_scaling() -> CampaignScaling {
        CampaignScaling {
            workers: 4,
            effective_cores: 4,
            total_events: 1000,
            single_events_per_sec: 1000.0,
            events_per_sec: 3200.0,
        }
    }

    fn tiny_dist() -> DistScaling {
        DistScaling {
            host_cores: 4,
            points: vec![
                DistPoint {
                    procs: 1,
                    pinned: true,
                    wire: WireFormat::Bin,
                    effective_cores: 1,
                    total_events: 1000,
                    wall_seconds: 1.0,
                    single_events_per_sec: 1000.0,
                },
                DistPoint {
                    procs: 4,
                    pinned: true,
                    wire: WireFormat::Bin,
                    effective_cores: 4,
                    total_events: 1000,
                    wall_seconds: 0.3125,
                    single_events_per_sec: 1000.0,
                },
            ],
        }
    }

    fn tiny_transport() -> TransportAccounting {
        TransportAccounting {
            shards: 2,
            compute_seconds: 1.0,
            wires: vec![
                WireTiming {
                    wire: WireFormat::Json,
                    bytes: 4000,
                    encode_seconds: 0.06,
                    decode_seconds: 0.04,
                },
                WireTiming {
                    wire: WireFormat::Bin,
                    bytes: 1000,
                    encode_seconds: 0.015,
                    decode_seconds: 0.01,
                },
            ],
        }
    }

    #[test]
    fn dist_point_arithmetic() {
        let p = &tiny_dist().points[1];
        assert!((p.events_per_sec() - 3200.0).abs() < 1e-9);
        assert!((p.events_per_sec_per_core() - 800.0).abs() < 1e-9);
        assert!((p.efficiency() - 0.8).abs() < 1e-9);
        let degenerate = DistPoint {
            procs: 0,
            pinned: false,
            wire: WireFormat::Json,
            effective_cores: 0,
            total_events: 0,
            wall_seconds: 0.0,
            single_events_per_sec: 0.0,
        };
        assert_eq!(degenerate.events_per_sec(), 0.0);
        assert_eq!(degenerate.events_per_sec_per_core(), 0.0);
        assert_eq!(degenerate.efficiency(), 0.0);
    }

    #[test]
    fn json_shape() {
        let r = tiny_record();
        let j = r.to_json();
        assert!(j.contains(r#""label":"t""#));
        assert!(j.contains(r#""events":1000"#));
        let micros = tiny_micros();
        assert!((micros.cache.speedup() - 2.0).abs() < 1e-9);
        assert!((micros.trace.speedup() - 1.5).abs() < 1e-9);
        assert!((micros.driver.speedup() - 1.5).abs() < 1e-9);
        let scaling = tiny_scaling();
        assert!((scaling.events_per_sec_per_core() - 800.0).abs() < 1e-9);
        assert!((scaling.efficiency() - 0.8).abs() < 1e-9);
        let transport = tiny_transport();
        assert!((transport.bin_round_trip_vs_json() - 0.25).abs() < 1e-9);
        let merged = bench_json(
            &r,
            &r,
            &r,
            &r,
            &micros,
            &scaling,
            &tiny_dist(),
            &transport,
            None,
        );
        assert!(merged.contains(r#""host_cores":4"#));
        assert!(merged.contains(r#""baseline":"#));
        assert!(merged.contains(r#""pr2":"#));
        assert!(merged.contains(r#""pr3":"#));
        assert!(merged.contains(r#""current":"#));
        assert!(merged.contains(r#""speedup_vs_committed_baseline":1"#));
        assert!(merged.contains(r#""pr3_speedup_vs_committed_baseline":1"#));
        assert!(merged.contains(r#""campaign":"#));
        assert!(merged.contains(r#""events_per_sec_per_core":800"#));
        assert!(merged.contains(r#""scaling_efficiency":0.8"#));
        assert!(merged.contains(r#""dist":"#));
        assert!(merged.contains(r#""procs":4"#));
        assert!(merged.contains(r#""pinned":true"#));
        assert!(merged.contains(r#""wire":"bin""#));
        assert!(merged.contains(r#""transport":"#));
        assert!(merged.contains(r#""bin_round_trip_vs_json":0.25"#));
        assert!(
            !merged.contains(r#""pgo":"#),
            "no pgo section without CI env"
        );
        assert!(merged.contains(r#""same_run""#));
        assert!(merged.contains(r#""cache_hot_path""#));
        assert!(merged.contains(r#""packed_trace""#));
        assert!(merged.contains(r#""passive_driver""#));
        assert!(merged.contains(r#""speedup":2"#), "microbench speedup");
        // The document parses back through the in-tree reader (the gate's
        // path) and the dist section round-trips numerically.
        let doc = strex::jsonval::JsonValue::parse(&merged).expect("well-formed");
        assert_eq!(doc.req_u64("host_cores").unwrap(), 4);
        let points = doc.get("dist.points").unwrap().as_array().unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].req_u64("procs").unwrap(), 4);
    }

    #[test]
    fn pgo_section_records_the_ratio() {
        let r = tiny_record();
        let pgo = PgoComparison {
            plain_events_per_sec: 1000.0,
        };
        // tiny_record: 1000 events in 0.5 s = 2000 events/sec → 2x plain.
        assert!((pgo.ratio(tiny_record().events_per_sec()) - 2.0).abs() < 1e-9);
        let merged = bench_json(
            &r,
            &r,
            &r,
            &r,
            &tiny_micros(),
            &tiny_scaling(),
            &tiny_dist(),
            &tiny_transport(),
            Some(pgo),
        );
        assert!(merged.contains(r#""pgo":"#));
        assert!(merged.contains(r#""plain_events_per_sec":1000"#));
        assert!(merged.contains(r#""pgo_vs_plain":2"#));
    }

    #[test]
    fn artifact_name_has_a_committed_default() {
        // Do not mutate the process environment here (tests run threaded);
        // just pin the default's shape when CI has not exported an
        // override.
        let name = bench_artifact();
        assert!(name.starts_with("BENCH_"), "{name}");
        assert_eq!(bench_artifact_path(), format!("{name}.json"));
    }

    #[test]
    fn same_run_micros_agree_and_measure() {
        // Small but real: each microbench validates its two paths against
        // each other (they panic on divergence) and must produce positive
        // timings.
        let t = trace_microbench();
        assert!(t.events > 10_000);
        assert!(t.legacy_ns_per_event > 0.0 && t.packed_ns_per_event > 0.0);
        let d = driver_microbench();
        assert!(d.events > 100_000);
        assert!(d.generic_ns_per_event > 0.0 && d.passive_ns_per_event > 0.0);
    }
}
