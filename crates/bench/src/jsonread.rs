//! Compatibility shim: the JSON reader moved to [`strex::jsonval`].
//!
//! The parser started life here as a perf-gate convenience (reading the
//! committed `BENCH_*.json` back for `repro --bench-json --check`). When
//! campaign shards started crossing process boundaries it was promoted
//! into `strex` — parse fidelity became a correctness requirement of the
//! `repro dist` wire format, including full `\uXXXX` escape decoding —
//! and this module now just re-exports it for the gate's existing
//! `crate::jsonread::JsonValue` callers.

pub use strex::jsonval::{JsonError, JsonValue};
