//! Minimal JSON reader for the perf-regression gate.
//!
//! The workspace is offline (no serde), and the only JSON the tooling ever
//! *reads* is the committed `BENCH_*.json` it itself wrote through
//! [`strex::json::JsonWriter`]. This is a small recursive-descent parser
//! for exactly that need: strict enough to reject malformed documents
//! loudly, with path-based accessors (`doc.get("baseline.total_events")`)
//! so the `--check` gate stays readable.
//!
//! Not supported (none of it appears in our documents): `\u` escapes are
//! kept verbatim, and numbers outside `f64` range lose precision.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Number(f64),
    /// A string (escapes resolved, except `\u`).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Key order is not preserved (irrelevant to the gate).
    Object(BTreeMap<String, JsonValue>),
}

/// Why parsing failed: byte offset and message.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Walks a dot-separated path of object keys (`"baseline.total_events"`).
    /// Returns `None` if any component is missing or not an object.
    pub fn get(&self, path: &str) -> Option<&JsonValue> {
        let mut cur = self;
        for key in path.split('.') {
            match cur {
                JsonValue::Object(map) => cur = map.get(key)?,
                _ => return None,
            }
        }
        Some(cur)
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        // Keep \uXXXX verbatim; our writer never emits it.
                        b'u' => out.push_str("\\u"),
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so byte
                    // boundaries are valid).
                    let start = self.pos;
                    let mut end = self.pos + 1;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            JsonValue::parse("-1.5e2").unwrap(),
            JsonValue::Number(-150.0)
        );
        assert_eq!(
            JsonValue::parse(r#""a\nb""#).unwrap(),
            JsonValue::String("a\nb".into())
        );
    }

    #[test]
    fn parses_nested_structures_and_paths() {
        let doc = JsonValue::parse(
            r#"{"baseline":{"total_events":123,"cells":[{"w":"x"},{"w":"y"}]},"ratio":1.25}"#,
        )
        .unwrap();
        assert_eq!(
            doc.get("baseline.total_events").unwrap().as_f64(),
            Some(123.0)
        );
        assert_eq!(doc.get("ratio").unwrap().as_f64(), Some(1.25));
        let cells = doc.get("baseline.cells").unwrap().as_array().unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[1].get("w").unwrap().as_str(), Some("y"));
        assert!(doc.get("missing.path").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("12 34").is_err());
        assert!(JsonValue::parse(r#"{"a" 1}"#).is_err());
        assert!(JsonValue::parse("tru").is_err());
    }

    #[test]
    fn round_trips_a_writer_document() {
        // The exact producer this reader exists for.
        let mut w = strex::json::JsonWriter::new();
        w.begin_object();
        w.key("label");
        w.string("seed \"quoted\"");
        w.key("events_per_sec");
        w.float(7.49e6);
        w.key("cells");
        w.begin_array();
        w.begin_object();
        w.key("n");
        w.number_u64(42);
        w.end_object();
        w.end_array();
        w.end_object();
        let doc = JsonValue::parse(&w.finish()).unwrap();
        assert_eq!(doc.get("label").unwrap().as_str(), Some("seed \"quoted\""));
        assert_eq!(doc.get("events_per_sec").unwrap().as_f64(), Some(7.49e6));
        assert_eq!(
            doc.get("cells").unwrap().as_array().unwrap()[0]
                .get("n")
                .unwrap()
                .as_f64(),
            Some(42.0)
        );
    }
}
