//! Property-based tests of the replacement policies and cache invariants,
//! including differential tests of the SoA single-probe cache against the
//! reference (pre-optimization) implementation.

use proptest::prelude::*;
use strex_sim::addr::BlockAddr;
use strex_sim::cache::{CacheGeometry, SetAssocCache};
use strex_sim::refcache::RefSetAssocCache;
use strex_sim::replacement::{Replacement, ReplacementKind};

fn any_kind() -> impl Strategy<Value = ReplacementKind> {
    prop_oneof![
        Just(ReplacementKind::Lru),
        Just(ReplacementKind::Lip),
        Just(ReplacementKind::Bip),
        Just(ReplacementKind::Srrip),
        Just(ReplacementKind::Brrip),
    ]
}

/// Operations applied to one set of a replacement instance.
#[derive(Copy, Clone, Debug)]
enum Op {
    Hit(usize),
    Fill(usize),
    Evict,
    Invalidate(usize),
}

fn any_op(assoc: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..assoc).prop_map(Op::Hit),
        (0..assoc).prop_map(Op::Fill),
        Just(Op::Evict),
        (0..assoc).prop_map(Op::Invalidate),
    ]
}

proptest! {
    /// The victim way is always a legal way, and peeking never changes the
    /// answer (calling victim_way twice gives the same way).
    #[test]
    fn victim_way_is_stable_and_legal(
        kind in any_kind(),
        ops in prop::collection::vec(any_op(8), 1..200),
    ) {
        let mut r = Replacement::new(kind, 2, 8);
        for op in ops {
            match op {
                Op::Hit(w) => r.on_hit(0, w),
                Op::Fill(w) => r.on_fill(0, w),
                Op::Evict => {
                    let first = r.victim_way(0);
                    let second = r.victim_way(0);
                    prop_assert_eq!(first, second, "peek must be pure");
                    let evicted = r.evict(0);
                    prop_assert_eq!(first, evicted, "peek must match evict");
                    prop_assert!(evicted < 8);
                }
                Op::Invalidate(w) => r.on_invalidate(0, w),
            }
            prop_assert!(r.victim_way(0) < 8);
            // The untouched set keeps a legal victim too.
            prop_assert!(r.victim_way(1) < 8);
        }
    }

    /// After an invalidation, the invalidated way is the next victim for
    /// LRU-family policies (free ways are preferred by the cache layer).
    #[test]
    fn invalidated_way_becomes_victim(
        way in 0usize..4,
        prefill_hits in prop::collection::vec(0usize..4, 0..16),
    ) {
        let mut r = Replacement::new(ReplacementKind::Lru, 1, 4);
        for w in 0..4 {
            r.on_fill(0, w);
        }
        for w in prefill_hits {
            r.on_hit(0, w);
        }
        r.on_invalidate(0, way);
        prop_assert_eq!(r.victim_way(0), way);
    }

    /// An MRU block is never the victim under LRU immediately after a hit.
    #[test]
    fn lru_never_evicts_most_recent(accesses in prop::collection::vec(0u64..64, 1..300)) {
        let mut cache = SetAssocCache::new(
            CacheGeometry::new(2048, 4), // 8 sets x 4 ways
            ReplacementKind::Lru,
        );
        for blk in accesses {
            let block = BlockAddr::new(blk);
            cache.access(block, 0);
            if let Some(victim) = cache.peek_victim(BlockAddr::new(blk + 8 * 100)) {
                // The conflicting fill maps to the same set only when
                // blk + 800 ≡ blk (mod 8); peek may be None otherwise.
                prop_assert_ne!(victim.block, block, "MRU block chosen as victim");
            }
        }
    }

    /// Aux tags survive arbitrary access interleavings: the tag read back
    /// is always the one most recently written for that block.
    #[test]
    fn aux_tags_track_last_write(
        accesses in prop::collection::vec((0u64..32, 0u8..16), 1..200),
    ) {
        let mut cache = SetAssocCache::new(
            CacheGeometry::new(4096, 8),
            ReplacementKind::Lru,
        );
        let mut last: std::collections::HashMap<u64, u8> = Default::default();
        for (blk, aux) in accesses {
            let block = BlockAddr::new(blk);
            cache.access(block, aux);
            last.insert(blk, aux);
            // 32 distinct blocks over 64 frames: nothing is ever evicted,
            // so every recorded tag must be readable.
            for (&b, &expect) in &last {
                prop_assert_eq!(cache.aux(BlockAddr::new(b)), Some(expect));
            }
        }
    }

    /// Differential bit-identity: arbitrary interleavings of accesses,
    /// writes, conditional fills, invalidations, cleans and victim peeks
    /// behave identically on the SoA single-probe cache and the reference
    /// (seed) implementation, for every replacement kind.
    #[test]
    fn soa_cache_matches_reference(
        kind in any_kind(),
        ops in prop::collection::vec((0u8..6, 0u64..48, 0u8..16), 1..300),
    ) {
        let geom = CacheGeometry::new(2048, 4); // 8 sets x 4 ways
        let mut soa = SetAssocCache::new(geom, kind);
        let mut reference = RefSetAssocCache::new(geom, kind);
        for (op, blk, aux) in ops {
            let block = BlockAddr::new(blk);
            match op {
                0 => {
                    let a = soa.access(block, aux);
                    let b = reference.access(block, aux);
                    prop_assert_eq!(a.is_hit(), b.is_hit());
                    prop_assert_eq!(a.evicted(), b.evicted());
                }
                1 => {
                    let a = soa.access_write(block, aux);
                    let b = reference.access_write(block, aux);
                    prop_assert_eq!(a.is_hit(), b.is_hit());
                    prop_assert_eq!(a.evicted(), b.evicted());
                }
                2 => {
                    // fill_if_absent vs the contains-then-fill idiom it
                    // replaced.
                    let a = soa.fill_if_absent(block, aux);
                    let b = if reference.contains(block) {
                        None
                    } else {
                        Some(reference.fill(block, aux))
                    };
                    prop_assert_eq!(a.is_hit(), b.is_none());
                    prop_assert_eq!(a.evicted(), b.flatten());
                }
                3 => {
                    prop_assert_eq!(soa.invalidate(block), reference.invalidate(block));
                }
                4 => {
                    prop_assert_eq!(soa.clean(block), reference.clean(block));
                }
                _ => {
                    prop_assert_eq!(soa.peek_victim(block), reference.peek_victim(block));
                }
            }
            prop_assert_eq!(soa.aux(block), reference.aux(block));
            prop_assert_eq!(soa.occupancy(), reference.occupancy());
        }
    }

    /// The victim monitor contract under arbitrary traffic: whenever
    /// `peek_victim` names a victim, the very next access of that block
    /// evicts exactly it — for every replacement kind, with invalidations
    /// interleaved.
    #[test]
    fn peek_victim_agrees_with_next_eviction(
        kind in any_kind(),
        ops in prop::collection::vec((0u8..4, 0u64..64, 0u8..8), 1..300),
    ) {
        let mut cache = SetAssocCache::new(CacheGeometry::new(1024, 4), kind);
        for (op, blk, aux) in ops {
            let block = BlockAddr::new(blk);
            let peek = cache.peek_victim(block);
            match op {
                0 | 1 => {
                    let got = cache.access(block, aux);
                    prop_assert!(!got.is_hit() || peek.is_none());
                    prop_assert_eq!(peek, got.evicted());
                }
                2 => {
                    cache.invalidate(block);
                }
                _ => {
                    // A pure peek must not disturb the next prediction.
                    prop_assert_eq!(cache.peek_victim(block), peek);
                }
            }
        }
    }

    /// Flush restores the pristine state: empty, and behaviour matches a
    /// freshly constructed cache for the next access sequence.
    #[test]
    fn flush_equals_fresh(
        kind in any_kind(),
        before in prop::collection::vec(0u64..64, 0..100),
        after in prop::collection::vec(0u64..64, 1..100),
    ) {
        let geom = CacheGeometry::new(2048, 4);
        let mut warmed = SetAssocCache::new(geom, kind);
        for blk in before {
            warmed.access(BlockAddr::new(blk), 0);
        }
        warmed.flush();
        prop_assert_eq!(warmed.occupancy(), 0);
        let mut fresh = SetAssocCache::new(geom, kind);
        for blk in after {
            let a = warmed.access(BlockAddr::new(blk), 0).is_hit();
            let b = fresh.access(BlockAddr::new(blk), 0).is_hit();
            prop_assert_eq!(a, b, "flushed cache diverged from fresh cache");
        }
    }
}
