//! Physical address and cache-block address newtypes.
//!
//! The simulator works on a synthetic 64-bit physical address space. Code and
//! data regions are carved out of this space by the workload generator
//! (`strex-oltp`). Caches operate on [`BlockAddr`] granularity (64-byte
//! blocks, per Table 2 of the paper).

use std::fmt;

/// Cache block size in bytes (Table 2: 64 B blocks at every level).
pub const BLOCK_SIZE: u64 = 64;

/// Log2 of [`BLOCK_SIZE`], used for address-to-block conversions.
pub const BLOCK_SHIFT: u32 = 6;

/// A byte-granularity physical address in the simulated machine.
///
/// # Examples
///
/// ```
/// use strex_sim::addr::{Addr, BLOCK_SIZE};
///
/// let a = Addr::new(3 * BLOCK_SIZE + 17);
/// assert_eq!(a.block().index(), 3);
/// assert_eq!(a.block_offset(), 17);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw 64-bit value.
    pub fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw 64-bit value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Returns the cache block containing this address.
    pub fn block(self) -> BlockAddr {
        BlockAddr(self.0 >> BLOCK_SHIFT)
    }

    /// Returns the byte offset of this address within its cache block.
    pub fn block_offset(self) -> u64 {
        self.0 & (BLOCK_SIZE - 1)
    }

    /// Returns the address advanced by `bytes`.
    ///
    /// # Panics
    ///
    /// Panics on address-space overflow (debug builds only).
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0.wrapping_add(bytes))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-block-granularity address (block index = byte address / 64).
///
/// # Examples
///
/// ```
/// use strex_sim::addr::BlockAddr;
///
/// let b = BlockAddr::new(42);
/// assert_eq!(b.next().index(), 43);
/// assert_eq!(b.base_addr().value(), 42 * 64);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a block index.
    pub fn new(index: u64) -> Self {
        BlockAddr(index)
    }

    /// Returns the block index.
    pub fn index(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte of the block.
    pub fn base_addr(self) -> Addr {
        Addr(self.0 << BLOCK_SHIFT)
    }

    /// Returns the sequentially next block (used by the next-line prefetcher).
    pub fn next(self) -> BlockAddr {
        BlockAddr(self.0.wrapping_add(1))
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:{:#x}", self.0)
    }
}

impl From<Addr> for BlockAddr {
    fn from(addr: Addr) -> Self {
        addr.block()
    }
}

/// A half-open range of bytes in the simulated address space.
///
/// Used by the workload generator to describe code regions and by the
/// footprint analyses to iterate over the blocks of a region.
///
/// # Examples
///
/// ```
/// use strex_sim::addr::{Addr, AddrRange};
///
/// let r = AddrRange::new(Addr::new(0), 256);
/// assert_eq!(r.blocks().count(), 4);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct AddrRange {
    start: Addr,
    len: u64,
}

impl AddrRange {
    /// Creates a range starting at `start` spanning `len` bytes.
    pub fn new(start: Addr, len: u64) -> Self {
        AddrRange { start, len }
    }

    /// Returns the first address of the range.
    pub fn start(self) -> Addr {
        self.start
    }

    /// Returns the length of the range in bytes.
    pub fn len(self) -> u64 {
        self.len
    }

    /// Returns `true` if the range spans zero bytes.
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// Returns the first address past the end of the range.
    pub fn end(self) -> Addr {
        self.start.offset(self.len)
    }

    /// Returns `true` if `addr` falls within the range.
    pub fn contains(self, addr: Addr) -> bool {
        addr.value() >= self.start.value() && addr.value() < self.start.value() + self.len
    }

    /// Iterates over every cache block overlapped by the range.
    pub fn blocks(self) -> impl Iterator<Item = BlockAddr> {
        let first = self.start.block().index();
        let last = if self.len == 0 {
            first
        } else {
            self.start.offset(self.len - 1).block().index() + 1
        };
        (first..last).map(BlockAddr::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_block_mapping() {
        assert_eq!(Addr::new(0).block(), BlockAddr::new(0));
        assert_eq!(Addr::new(63).block(), BlockAddr::new(0));
        assert_eq!(Addr::new(64).block(), BlockAddr::new(1));
        assert_eq!(Addr::new(64).block_offset(), 0);
        assert_eq!(Addr::new(65).block_offset(), 1);
    }

    #[test]
    fn block_round_trip() {
        let b = BlockAddr::new(1234);
        assert_eq!(b.base_addr().block(), b);
        assert_eq!(b.next().index(), 1235);
    }

    #[test]
    fn addr_display_is_hex() {
        assert_eq!(Addr::new(255).to_string(), "0xff");
    }

    #[test]
    fn range_contains_boundaries() {
        let r = AddrRange::new(Addr::new(100), 10);
        assert!(r.contains(Addr::new(100)));
        assert!(r.contains(Addr::new(109)));
        assert!(!r.contains(Addr::new(110)));
        assert!(!r.contains(Addr::new(99)));
        assert_eq!(r.end().value(), 110);
    }

    #[test]
    fn range_blocks_partial_coverage() {
        // Spans bytes 60..70 -> blocks 0 and 1.
        let r = AddrRange::new(Addr::new(60), 10);
        let blocks: Vec<_> = r.blocks().collect();
        assert_eq!(blocks, vec![BlockAddr::new(0), BlockAddr::new(1)]);
    }

    #[test]
    fn empty_range_has_no_blocks() {
        let r = AddrRange::new(Addr::new(128), 0);
        assert!(r.is_empty());
        assert_eq!(r.blocks().count(), 0);
    }

    #[test]
    fn aligned_range_block_count() {
        let r = AddrRange::new(Addr::new(0), 32 * 1024);
        assert_eq!(r.blocks().count(), 512); // 32 KB / 64 B
    }
}
