//! Miss and instruction counters, and the MPKI metrics the paper reports.

/// Counters for one core's private caches.
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub struct CoreStats {
    /// Instructions executed (retired) on this core.
    pub instructions: u64,
    /// L1-I accesses (block-granularity fetch groups).
    pub i_accesses: u64,
    /// L1-I misses.
    pub i_misses: u64,
    /// L1-I misses hidden by the idealized PIF model (still L2 traffic).
    pub i_misses_hidden: u64,
    /// Prefetches issued by this core's L1-I prefetcher.
    pub prefetches: u64,
    /// Prefetched blocks that were later demanded (useful prefetches).
    pub useful_prefetches: u64,
    /// L1-D accesses.
    pub d_accesses: u64,
    /// L1-D misses.
    pub d_misses: u64,
    /// L1-D misses caused by coherence invalidations.
    pub d_coherence_misses: u64,
    /// Writes that required invalidating other sharers.
    pub upgrade_invalidations: u64,
    /// Cycles this core spent stalled on instruction fetch.
    pub i_stall_cycles: u64,
    /// Cycles this core spent stalled on data access.
    pub d_stall_cycles: u64,
}

impl CoreStats {
    /// Instruction misses per kilo-instruction.
    pub fn i_mpki(&self) -> f64 {
        mpki(self.i_misses, self.instructions)
    }

    /// Data misses per kilo-instruction.
    pub fn d_mpki(&self) -> f64 {
        mpki(self.d_misses, self.instructions)
    }

    /// Adds another core's counters into this one (for aggregation).
    pub fn merge(&mut self, other: &CoreStats) {
        self.instructions += other.instructions;
        self.i_accesses += other.i_accesses;
        self.i_misses += other.i_misses;
        self.i_misses_hidden += other.i_misses_hidden;
        self.prefetches += other.prefetches;
        self.useful_prefetches += other.useful_prefetches;
        self.d_accesses += other.d_accesses;
        self.d_misses += other.d_misses;
        self.d_coherence_misses += other.d_coherence_misses;
        self.upgrade_invalidations += other.upgrade_invalidations;
        self.i_stall_cycles += other.i_stall_cycles;
        self.d_stall_cycles += other.d_stall_cycles;
    }
}

/// Counters for the shared levels.
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub struct SharedStats {
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L2 misses (went to memory).
    pub l2_misses: u64,
    /// Dirty writebacks received from L1-Ds.
    pub writebacks: u64,
}

/// Whole-system statistics: per-core plus shared counters.
#[derive(Clone, Debug, Default)]
pub struct SystemStats {
    /// One entry per core.
    pub cores: Vec<CoreStats>,
    /// Shared-cache and memory counters.
    pub shared: SharedStats,
}

impl SystemStats {
    /// Creates zeroed statistics for `n_cores` cores.
    pub fn new(n_cores: usize) -> Self {
        SystemStats {
            cores: vec![CoreStats::default(); n_cores],
            shared: SharedStats::default(),
        }
    }

    /// Sums every core's counters.
    pub fn aggregate(&self) -> CoreStats {
        let mut total = CoreStats::default();
        for c in &self.cores {
            total.merge(c);
        }
        total
    }

    /// System-wide instruction MPKI (Figures 4, 5 and 9).
    pub fn i_mpki(&self) -> f64 {
        self.aggregate().i_mpki()
    }

    /// System-wide data MPKI (Figure 5).
    pub fn d_mpki(&self) -> f64 {
        self.aggregate().d_mpki()
    }

    /// Total instructions executed.
    pub fn instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instructions).sum()
    }
}

/// Misses per kilo-instruction; zero when no instructions retired.
pub fn mpki(misses: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        misses as f64 * 1000.0 / instructions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_basic() {
        assert_eq!(mpki(0, 1000), 0.0);
        assert_eq!(mpki(10, 1000), 10.0);
        assert_eq!(mpki(5, 0), 0.0, "no instructions -> 0, not NaN");
    }

    #[test]
    fn core_stats_mpki() {
        let s = CoreStats {
            instructions: 2000,
            i_misses: 50,
            d_misses: 20,
            ..CoreStats::default()
        };
        assert_eq!(s.i_mpki(), 25.0);
        assert_eq!(s.d_mpki(), 10.0);
    }

    #[test]
    fn aggregate_sums_cores() {
        let mut sys = SystemStats::new(2);
        sys.cores[0].instructions = 1000;
        sys.cores[0].i_misses = 10;
        sys.cores[1].instructions = 3000;
        sys.cores[1].i_misses = 30;
        let agg = sys.aggregate();
        assert_eq!(agg.instructions, 4000);
        assert_eq!(agg.i_misses, 40);
        assert_eq!(sys.i_mpki(), 10.0);
    }

    #[test]
    fn merge_covers_all_fields() {
        let a = CoreStats {
            instructions: 1,
            i_accesses: 2,
            i_misses: 3,
            i_misses_hidden: 4,
            prefetches: 5,
            useful_prefetches: 6,
            d_accesses: 7,
            d_misses: 8,
            d_coherence_misses: 9,
            upgrade_invalidations: 10,
            i_stall_cycles: 11,
            d_stall_cycles: 12,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.instructions, 2);
        assert_eq!(b.d_stall_cycles, 24);
        assert_eq!(b.upgrade_invalidations, 20);
    }
}
