//! Generic set-associative cache with per-frame auxiliary tags.
//!
//! Two features distinguish this cache from a textbook model, both required
//! by STREX (Section 4.3 of the paper):
//!
//! 1. **Auxiliary 8-bit tag per frame.** STREX maintains a phase-ID table
//!    (PIDT) parallel to the L1-I tag array; here the PIDT is an `aux` byte
//!    stored alongside each frame. The cache itself attaches no meaning to
//!    the byte.
//! 2. **Victim monitoring.** STREX must observe which block a fill is about
//!    to evict *and its phase tag*. [`SetAssocCache::peek_victim`] answers
//!    that question without side effects, and is guaranteed to agree with
//!    the victim subsequently chosen by [`SetAssocCache::fill`].

use crate::addr::{BlockAddr, BLOCK_SIZE};
use crate::replacement::{Replacement, ReplacementKind};

/// Shape of one cache: capacity, associativity and block size.
///
/// # Examples
///
/// ```
/// use strex_sim::cache::CacheGeometry;
///
/// let l1 = CacheGeometry::new(32 * 1024, 8); // Table 2: 32 KB, 8-way
/// assert_eq!(l1.sets(), 64);
/// assert_eq!(l1.blocks(), 512);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct CacheGeometry {
    size_bytes: u64,
    assoc: usize,
}

impl CacheGeometry {
    /// Creates a geometry of `size_bytes` capacity and `assoc` ways with the
    /// global 64 B block size.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not an exact multiple of
    /// `assoc * BLOCK_SIZE` or if either argument is zero.
    pub fn new(size_bytes: u64, assoc: usize) -> Self {
        assert!(size_bytes > 0 && assoc > 0, "degenerate cache geometry");
        assert_eq!(
            size_bytes % (assoc as u64 * BLOCK_SIZE),
            0,
            "capacity must divide evenly into sets"
        );
        CacheGeometry { size_bytes, assoc }
    }

    /// Total capacity in bytes.
    pub fn size_bytes(self) -> u64 {
        self.size_bytes
    }

    /// Number of ways per set.
    pub fn assoc(self) -> usize {
        self.assoc
    }

    /// Number of sets.
    pub fn sets(self) -> usize {
        (self.size_bytes / (self.assoc as u64 * BLOCK_SIZE)) as usize
    }

    /// Total number of block frames.
    pub fn blocks(self) -> usize {
        (self.size_bytes / BLOCK_SIZE) as usize
    }

    /// Maps a block address to its set index.
    pub fn set_of(self, block: BlockAddr) -> usize {
        (block.index() % self.sets() as u64) as usize
    }
}

/// A block about to be (or just) evicted, with its auxiliary tag.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct Victim {
    /// The evicted block's address.
    pub block: BlockAddr,
    /// The auxiliary tag (STREX phase ID) the block carried.
    pub aux: u8,
    /// Whether the block was dirty (data caches only).
    pub dirty: bool,
}

#[derive(Copy, Clone, Debug, Default)]
struct Frame {
    block: BlockAddr,
    valid: bool,
    dirty: bool,
    aux: u8,
}

/// Outcome of [`SetAssocCache::access`].
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum AccessOutcome {
    /// The block was resident.
    Hit,
    /// The block was installed; `evicted` names the displaced block, if any.
    Miss {
        /// The block displaced by the fill, `None` if an invalid way was used.
        evicted: Option<Victim>,
    },
}

impl AccessOutcome {
    /// Returns `true` for [`AccessOutcome::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }

    /// Returns the evicted victim of a miss, if any.
    pub fn evicted(self) -> Option<Victim> {
        match self {
            AccessOutcome::Hit => None,
            AccessOutcome::Miss { evicted } => evicted,
        }
    }
}

/// A set-associative cache with pluggable replacement and per-frame aux tags.
///
/// # Examples
///
/// ```
/// use strex_sim::addr::BlockAddr;
/// use strex_sim::cache::{CacheGeometry, SetAssocCache};
/// use strex_sim::replacement::ReplacementKind;
///
/// let mut c = SetAssocCache::new(CacheGeometry::new(4096, 4), ReplacementKind::Lru);
/// let b = BlockAddr::new(10);
/// assert!(!c.access(b, 0).is_hit());
/// assert!(c.access(b, 0).is_hit());
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    geom: CacheGeometry,
    frames: Vec<Frame>,
    repl: Replacement,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry and replacement policy.
    pub fn new(geom: CacheGeometry, repl: ReplacementKind) -> Self {
        SetAssocCache {
            geom,
            frames: vec![Frame::default(); geom.blocks()],
            repl: Replacement::new(repl, geom.sets(), geom.assoc()),
        }
    }

    /// Returns the cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Returns the replacement policy family.
    pub fn replacement_kind(&self) -> ReplacementKind {
        self.repl.kind()
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        let base = set * self.geom.assoc();
        base..base + self.geom.assoc()
    }

    fn find(&self, block: BlockAddr) -> Option<(usize, usize)> {
        let set = self.geom.set_of(block);
        for (way, idx) in self.set_range(set).enumerate() {
            let f = &self.frames[idx];
            if f.valid && f.block == block {
                return Some((set, way));
            }
        }
        None
    }

    /// Returns `true` if `block` is resident, without touching policy state.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.find(block).is_some()
    }

    /// Returns the aux tag of a resident block.
    pub fn aux(&self, block: BlockAddr) -> Option<u8> {
        self.find(block)
            .map(|(set, way)| self.frames[set * self.geom.assoc() + way].aux)
    }

    /// Overwrites the aux tag of a resident block; returns `false` if the
    /// block is not resident.
    pub fn set_aux(&mut self, block: BlockAddr, aux: u8) -> bool {
        if let Some((set, way)) = self.find(block) {
            self.frames[set * self.geom.assoc() + way].aux = aux;
            true
        } else {
            false
        }
    }

    /// Reports which block a fill of `block` would displace.
    ///
    /// Returns `None` when `block` is already resident or the set still has
    /// an invalid way (the fill would be eviction-free). The answer agrees
    /// exactly with the eviction performed by a subsequent
    /// [`access`](SetAssocCache::access) or [`fill`](SetAssocCache::fill) of
    /// the same block, provided no other mutation intervenes.
    pub fn peek_victim(&self, block: BlockAddr) -> Option<Victim> {
        if self.contains(block) {
            return None;
        }
        let set = self.geom.set_of(block);
        // An invalid way absorbs the fill without eviction.
        for idx in self.set_range(set) {
            if !self.frames[idx].valid {
                return None;
            }
        }
        let way = self.repl.victim_way(set);
        let f = &self.frames[set * self.geom.assoc() + way];
        Some(Victim {
            block: f.block,
            aux: f.aux,
            dirty: f.dirty,
        })
    }

    /// Accesses `block`, tagging the frame with `aux` whether the access hits
    /// or misses (STREX tags blocks with the current phase on *every* touch).
    pub fn access(&mut self, block: BlockAddr, aux: u8) -> AccessOutcome {
        if let Some((set, way)) = self.find(block) {
            self.repl.on_hit(set, way);
            self.frames[set * self.geom.assoc() + way].aux = aux;
            return AccessOutcome::Hit;
        }
        let evicted = self.fill(block, aux);
        AccessOutcome::Miss { evicted }
    }

    /// Accesses `block` for writing; like [`access`](SetAssocCache::access)
    /// but also marks the frame dirty.
    pub fn access_write(&mut self, block: BlockAddr, aux: u8) -> AccessOutcome {
        let outcome = self.access(block, aux);
        if let Some((set, way)) = self.find(block) {
            self.frames[set * self.geom.assoc() + way].dirty = true;
        }
        outcome
    }

    /// Installs `block` (which must not be resident), returning any victim.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the block is already resident.
    pub fn fill(&mut self, block: BlockAddr, aux: u8) -> Option<Victim> {
        debug_assert!(!self.contains(block), "fill of resident block");
        let set = self.geom.set_of(block);
        let assoc = self.geom.assoc();
        // Prefer an invalid way.
        let mut target = None;
        for (way, idx) in self.set_range(set).enumerate() {
            if !self.frames[idx].valid {
                target = Some((way, None));
                break;
            }
        }
        let (way, victim) = match target {
            Some(t) => t,
            None => {
                let way = self.repl.evict(set);
                let f = &self.frames[set * assoc + way];
                (
                    way,
                    Some(Victim {
                        block: f.block,
                        aux: f.aux,
                        dirty: f.dirty,
                    }),
                )
            }
        };
        self.frames[set * assoc + way] = Frame {
            block,
            valid: true,
            dirty: false,
            aux,
        };
        self.repl.on_fill(set, way);
        (way, victim).1
    }

    /// Invalidates `block` if resident (coherence), returning its frame info.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<Victim> {
        if let Some((set, way)) = self.find(block) {
            let idx = set * self.geom.assoc() + way;
            let f = self.frames[idx];
            self.frames[idx].valid = false;
            self.frames[idx].dirty = false;
            self.repl.on_invalidate(set, way);
            Some(Victim {
                block: f.block,
                aux: f.aux,
                dirty: f.dirty,
            })
        } else {
            None
        }
    }

    /// Clears the dirty bit of a resident block (coherence downgrade),
    /// returning whether it was dirty.
    pub fn clean(&mut self, block: BlockAddr) -> bool {
        if let Some((set, way)) = self.find(block) {
            let idx = set * self.geom.assoc() + way;
            let was = self.frames[idx].dirty;
            self.frames[idx].dirty = false;
            was
        } else {
            false
        }
    }

    /// Iterates over all resident blocks (used by cache signatures and the
    /// temporal-overlap analysis of Figure 2).
    pub fn resident_blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.frames.iter().filter(|f| f.valid).map(|f| f.block)
    }

    /// Number of resident (valid) blocks.
    pub fn occupancy(&self) -> usize {
        self.frames.iter().filter(|f| f.valid).count()
    }

    /// Invalidates every frame, returning the cache to its initial state.
    pub fn flush(&mut self) {
        let kind = self.repl.kind();
        self.frames.iter_mut().for_each(|f| *f = Frame::default());
        self.repl = Replacement::new(kind, self.geom.sets(), self.geom.assoc());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 2 sets x 2 ways.
        SetAssocCache::new(CacheGeometry::new(256, 2), ReplacementKind::Lru)
    }

    #[test]
    fn geometry_math() {
        let g = CacheGeometry::new(32 * 1024, 8);
        assert_eq!(g.sets(), 64);
        assert_eq!(g.blocks(), 512);
        assert_eq!(g.set_of(BlockAddr::new(64)), 0);
        assert_eq!(g.set_of(BlockAddr::new(65)), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must divide evenly")]
    fn bad_geometry_panics() {
        let _ = CacheGeometry::new(100, 3);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        let b = BlockAddr::new(4);
        assert!(!c.access(b, 1).is_hit());
        assert!(c.access(b, 2).is_hit());
        assert_eq!(c.aux(b), Some(2), "aux retagged on hit");
    }

    #[test]
    fn eviction_in_full_set() {
        let mut c = small();
        // Blocks 0, 2, 4 all map to set 0 (2 sets).
        c.access(BlockAddr::new(0), 0);
        c.access(BlockAddr::new(2), 0);
        let out = c.access(BlockAddr::new(4), 0);
        let v = out.evicted().expect("set was full");
        assert_eq!(v.block, BlockAddr::new(0), "LRU victim");
        assert!(!c.contains(BlockAddr::new(0)));
        assert!(c.contains(BlockAddr::new(2)));
        assert!(c.contains(BlockAddr::new(4)));
    }

    #[test]
    fn peek_agrees_with_fill() {
        let mut c = small();
        c.access(BlockAddr::new(0), 7);
        c.access(BlockAddr::new(2), 8);
        let peek = c.peek_victim(BlockAddr::new(4)).expect("set full");
        let actual = c.access(BlockAddr::new(4), 0).evicted().unwrap();
        assert_eq!(peek, actual);
        assert_eq!(peek.aux, 7);
    }

    #[test]
    fn peek_none_when_resident_or_free() {
        let mut c = small();
        assert!(c.peek_victim(BlockAddr::new(0)).is_none(), "free way");
        c.access(BlockAddr::new(0), 0);
        assert!(c.peek_victim(BlockAddr::new(0)).is_none(), "resident");
    }

    #[test]
    fn dirty_victims_reported() {
        let mut c = small();
        c.access_write(BlockAddr::new(0), 0);
        c.access(BlockAddr::new(2), 0);
        c.access(BlockAddr::new(2), 0); // block 2 MRU; block 0 is victim
        let v = c.access(BlockAddr::new(4), 0).evicted().unwrap();
        assert_eq!(v.block, BlockAddr::new(0));
        assert!(v.dirty);
    }

    #[test]
    fn invalidate_frees_way() {
        let mut c = small();
        c.access(BlockAddr::new(0), 0);
        c.access(BlockAddr::new(2), 0);
        assert!(c.invalidate(BlockAddr::new(0)).is_some());
        assert!(!c.contains(BlockAddr::new(0)));
        // Set has a free way again: no victim for the next fill.
        assert!(c.access(BlockAddr::new(4), 0).evicted().is_none());
    }

    #[test]
    fn clean_clears_dirty() {
        let mut c = small();
        c.access_write(BlockAddr::new(0), 0);
        assert!(c.clean(BlockAddr::new(0)));
        assert!(!c.clean(BlockAddr::new(0)));
    }

    #[test]
    fn resident_blocks_and_occupancy() {
        let mut c = small();
        c.access(BlockAddr::new(0), 0);
        c.access(BlockAddr::new(1), 0);
        c.access(BlockAddr::new(2), 0);
        assert_eq!(c.occupancy(), 3);
        let mut blocks: Vec<_> = c.resident_blocks().map(BlockAddr::index).collect();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![0, 1, 2]);
        c.flush();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn aux_round_trip() {
        let mut c = small();
        c.access(BlockAddr::new(5), 9);
        assert_eq!(c.aux(BlockAddr::new(5)), Some(9));
        assert!(c.set_aux(BlockAddr::new(5), 11));
        assert_eq!(c.aux(BlockAddr::new(5)), Some(11));
        assert!(!c.set_aux(BlockAddr::new(99), 1));
        assert_eq!(c.aux(BlockAddr::new(99)), None);
    }

    #[test]
    fn works_with_all_replacement_kinds() {
        for kind in ReplacementKind::ALL {
            let mut c = SetAssocCache::new(CacheGeometry::new(512, 2), kind);
            for i in 0..64u64 {
                c.access(BlockAddr::new(i % 12), (i % 256) as u8);
                if let Some(peek) = c.peek_victim(BlockAddr::new(100 + i)) {
                    let got = c.access(BlockAddr::new(100 + i), 0).evicted().unwrap();
                    assert_eq!(peek, got, "{kind}");
                }
            }
        }
    }
}
