//! Generic set-associative cache with per-frame auxiliary tags.
//!
//! Two features distinguish this cache from a textbook model, both required
//! by STREX (Section 4.3 of the paper):
//!
//! 1. **Auxiliary 8-bit tag per frame.** STREX maintains a phase-ID table
//!    (PIDT) parallel to the L1-I tag array; here the PIDT is an `aux` byte
//!    stored alongside each frame. The cache itself attaches no meaning to
//!    the byte.
//! 2. **Victim monitoring.** STREX must observe which block a fill is about
//!    to evict *and its phase tag*. [`SetAssocCache::peek_victim`] answers
//!    that question without side effects, and is guaranteed to agree with
//!    the victim subsequently chosen by [`SetAssocCache::fill`].
//!
//! # Layout: structure of arrays, single probe
//!
//! This cache sits on the simulator's hottest path (every instruction fetch
//! and data access probes it), so its storage is a structure of arrays
//! rather than an array of frame structs:
//!
//! * `tags` — one packed `u64` per frame: the block index with the valid
//!   flag folded into bit 63 (`TAG_VALID`). The way-search is a dense
//!   scan of `assoc` consecutive `u64`s that the compiler can unroll and
//!   vectorize, with **no** separate valid-bit load or branch.
//! * `aux` / `dirty` — parallel sidecar arrays, touched only after the tag
//!   scan has named a way.
//!
//! **Packing invariant:** a resident frame stores `block.index() |
//! TAG_VALID`; an empty frame stores `TAG_INVALID` (zero, i.e. bit 63
//! clear). Block indices are byte addresses shifted right by
//! [`BLOCK_SHIFT`](crate::addr::BLOCK_SHIFT), so bit 63 of a real index is
//! always clear and the packed forms can never collide: one `u64` compare
//! per way decides both validity and tag match.
//!
//! Every logical operation probes the tag array **exactly once**.
//! [`SetAssocCache::access`]/[`access_write`](SetAssocCache::access_write)
//! return a [`Probe`] naming the set, way and any victim, so callers never
//! re-scan to learn what just happened; the single scan also records the
//! first invalid way, so a miss installs without a second pass. Set
//! selection is a mask (`index & (sets - 1)`), which is why set counts
//! must be powers of two — all of the paper's geometries (Table 2)
//! qualify, and [`CacheGeometry::try_new`] rejects the rest.

use std::fmt;

use crate::addr::{BlockAddr, BLOCK_SIZE};
use crate::replacement::{Replacement, ReplacementKind};

/// Valid flag folded into bit 63 of a packed tag word.
const TAG_VALID: u64 = 1 << 63;

/// Packed-tag sentinel for an empty way. Zero has bit 63 clear, so it can
/// never equal a packed (valid) tag.
const TAG_INVALID: u64 = 0;

#[inline]
fn pack(block: BlockAddr) -> u64 {
    debug_assert!(
        block.index() & TAG_VALID == 0,
        "block index {:#x} overflows the packed tag",
        block.index()
    );
    block.index() | TAG_VALID
}

#[inline]
fn unpack(tag: u64) -> BlockAddr {
    BlockAddr::new(tag & !TAG_VALID)
}

/// Aligned packed-tag storage.
type AlignedTags = Aligned64<u64>;
/// Aligned short-tag storage.
type ShortTags = Aligned64<u32>;

/// Why a cache shape is unusable.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum GeometryError {
    /// Zero capacity or zero associativity.
    Degenerate,
    /// The capacity does not divide evenly into `assoc`-way sets of
    /// [`BLOCK_SIZE`] blocks.
    UnevenSets {
        /// The rejected capacity.
        size_bytes: u64,
        /// The rejected associativity.
        assoc: usize,
    },
    /// The set count is not a power of two, so the single-probe set mask
    /// cannot address it.
    NonPowerOfTwoSets {
        /// The rejected set count.
        sets: usize,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::Degenerate => {
                write!(f, "cache capacity and associativity must be nonzero")
            }
            GeometryError::UnevenSets { size_bytes, assoc } => write!(
                f,
                "capacity {size_bytes} B does not divide evenly into {assoc}-way sets"
            ),
            GeometryError::NonPowerOfTwoSets { sets } => {
                write!(f, "set count {sets} is not a power of two")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

/// Shape of one cache: capacity, associativity and block size.
///
/// # Examples
///
/// ```
/// use strex_sim::cache::CacheGeometry;
///
/// let l1 = CacheGeometry::new(32 * 1024, 8); // Table 2: 32 KB, 8-way
/// assert_eq!(l1.sets(), 64);
/// assert_eq!(l1.blocks(), 512);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct CacheGeometry {
    size_bytes: u64,
    assoc: usize,
}

impl CacheGeometry {
    /// Creates a geometry of `size_bytes` capacity and `assoc` ways with the
    /// global 64 B block size.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not an exact multiple of
    /// `assoc * BLOCK_SIZE` or if either argument is zero. The set count is
    /// *not* checked here (so configuration validation can reject it with
    /// an error instead of a panic); [`SetAssocCache::new`] is where a
    /// non-power-of-two set count becomes fatal.
    pub fn new(size_bytes: u64, assoc: usize) -> Self {
        assert!(size_bytes > 0 && assoc > 0, "degenerate cache geometry");
        assert_eq!(
            size_bytes % (assoc as u64 * BLOCK_SIZE),
            0,
            "capacity must divide evenly into sets"
        );
        CacheGeometry { size_bytes, assoc }
    }

    /// Fallible constructor: every [`CacheGeometry::new`] panic condition
    /// plus the power-of-two set-count requirement of the single-probe
    /// lookup, reported as a [`GeometryError`].
    ///
    /// # Examples
    ///
    /// ```
    /// use strex_sim::cache::{CacheGeometry, GeometryError};
    ///
    /// assert!(CacheGeometry::try_new(32 * 1024, 8).is_ok());
    /// assert_eq!(
    ///     CacheGeometry::try_new(3 * 128, 2), // 3 sets
    ///     Err(GeometryError::NonPowerOfTwoSets { sets: 3 }),
    /// );
    /// ```
    pub fn try_new(size_bytes: u64, assoc: usize) -> Result<Self, GeometryError> {
        if size_bytes == 0 || assoc == 0 {
            return Err(GeometryError::Degenerate);
        }
        if !size_bytes.is_multiple_of(assoc as u64 * BLOCK_SIZE) {
            return Err(GeometryError::UnevenSets { size_bytes, assoc });
        }
        let geom = CacheGeometry { size_bytes, assoc };
        if !geom.sets().is_power_of_two() {
            return Err(GeometryError::NonPowerOfTwoSets { sets: geom.sets() });
        }
        Ok(geom)
    }

    /// Total capacity in bytes.
    pub fn size_bytes(self) -> u64 {
        self.size_bytes
    }

    /// Number of ways per set.
    pub fn assoc(self) -> usize {
        self.assoc
    }

    /// Number of sets.
    pub fn sets(self) -> usize {
        (self.size_bytes / (self.assoc as u64 * BLOCK_SIZE)) as usize
    }

    /// Total number of block frames.
    pub fn blocks(self) -> usize {
        (self.size_bytes / BLOCK_SIZE) as usize
    }

    /// `true` if the set count is a power of two (required by
    /// [`SetAssocCache`]'s mask-based set selection).
    pub fn has_pow2_sets(self) -> bool {
        self.sets().is_power_of_two()
    }

    /// Maps a block address to its set index.
    ///
    /// General (modulo) form; the cache's hot path uses the precomputed
    /// mask instead, which is identical for power-of-two set counts.
    pub fn set_of(self, block: BlockAddr) -> usize {
        (block.index() % self.sets() as u64) as usize
    }
}

/// A block about to be (or just) evicted, with its auxiliary tag.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct Victim {
    /// The evicted block's address.
    pub block: BlockAddr,
    /// The auxiliary tag (STREX phase ID) the block carried.
    pub aux: u8,
    /// Whether the block was dirty (data caches only).
    pub dirty: bool,
}

/// Outcome of one cache probe: [`SetAssocCache::access`],
/// [`access_write`](SetAssocCache::access_write) and
/// [`fill_if_absent`](SetAssocCache::fill_if_absent) return it.
///
/// The probe names the frame the single tag scan landed on, so callers
/// (the memory hierarchy, coherence, statistics) never re-scan the set to
/// learn what happened.
#[derive(Copy, Clone, Debug)]
pub struct Probe {
    /// Whether the block was already resident.
    pub hit: bool,
    /// The set that was probed.
    pub set: usize,
    /// The way the block now occupies (the resident way on a hit, the
    /// filled way on a miss).
    pub way: usize,
    /// The block displaced by a miss fill, `None` on a hit or when an
    /// invalid way absorbed the fill.
    pub evicted: Option<Victim>,
}

impl Probe {
    /// Returns `true` if the block was already resident.
    pub fn is_hit(self) -> bool {
        self.hit
    }

    /// Returns the evicted victim of a miss, if any.
    pub fn evicted(self) -> Option<Victim> {
        self.evicted
    }
}

/// One completed tag scan for an imminent instruction fetch, shared by two
/// consumers: STREX's victim monitor asks
/// [`SetAssocCache::probe_victim`] what the fill would displace, and — if
/// the fetch proceeds — [`SetAssocCache::commit_fetch`] finishes the
/// access without scanning the set again. Produced by
/// [`SetAssocCache::probe_fetch`].
///
/// The probe carries only the scan's way information; the victim itself is
/// materialized *lazily* by `probe_victim`, so policies that never consult
/// it (the baseline, SLICC, the hybrid's delegates) pay nothing beyond the
/// scan they needed anyway — eagerly reading the replacement state and the
/// victim's tag/metadata on every thrashing fill measurably taxes exactly
/// the schedulers that ignore it.
///
/// The probe is a pure snapshot: taking one has no architectural effect,
/// so an abandoned fetch (STREX's `Decision::Switch`) costs nothing to the
/// cache state, exactly like the unfused `peek_victim` path. It is only
/// valid as long as the cache is not mutated between `probe_fetch` and
/// `commit_fetch`; the driver upholds this by committing within the same
/// event, and `commit_fetch` re-checks the invariant in debug builds.
#[derive(Copy, Clone, Debug)]
pub struct FetchProbe {
    block: BlockAddr,
    set: usize,
    needle: u64,
    hit: Option<usize>,
    invalid: Option<usize>,
}

impl FetchProbe {
    /// The block the probe was taken for.
    pub fn block(&self) -> BlockAddr {
        self.block
    }

    /// Whether the block is resident.
    pub fn is_hit(&self) -> bool {
        self.hit.is_some()
    }

    /// Whether committing this probe would evict a resident block (the
    /// block is absent and no invalid way can absorb the fill).
    pub fn would_evict(&self) -> bool {
        self.hit.is_none() && self.invalid.is_none()
    }
}

/// Dirty flag folded into bit 8 of a frame's packed sidecar word
/// (bits 0..8 hold the aux tag).
const META_DIRTY: u16 = 1 << 8;

/// Valid flag of a [short tag](short_of) (bit 31 of the `u32`).
const SHORT_VALID: u32 = 1 << 31;

/// The short (32-bit) form of a packed tag word: zero for an invalid
/// frame, else the low 31 bits of the block index with [`SHORT_VALID`]
/// set. A pure function of the packed tag, so equal packed tags always
/// have equal short tags (no false negatives) and a zero short tag occurs
/// exactly for [`TAG_INVALID`].
#[inline]
fn short_of(tag: u64) -> u32 {
    if tag == TAG_INVALID {
        0
    } else {
        (tag as u32 & !SHORT_VALID) | SHORT_VALID
    }
}

/// `true` if a (valid) packed tag's block index fits in the short tag's 31
/// payload bits, i.e. the short form loses no information about it.
#[inline]
fn fits_short(tag: u64) -> bool {
    (tag & !TAG_VALID) >> 31 == 0
}

/// A 64-byte-aligned buffer of `T` so that an aligned group of elements
/// spanning one cache line is loaded with a single line fill (8-way `u64`
/// tag sets, 16-way `u32` short-tag sets). Dereferences to the logical
/// `[T]`.
#[derive(Debug)]
struct Aligned64<T> {
    /// Backing storage, over-allocated by up to one line for alignment.
    buf: Vec<T>,
    /// First logical element within `buf`.
    off: usize,
    /// Logical length (total frame count).
    len: usize,
}

impl<T: Copy> Aligned64<T> {
    fn new(len: usize, fill: T) -> Self {
        if len == 0 {
            return Aligned64 {
                buf: Vec::new(),
                off: 0,
                len: 0,
            };
        }
        let pad = (64 / std::mem::size_of::<T>()).max(1) - 1;
        let buf = vec![fill; len + pad];
        // `align_offset` is permitted to return usize::MAX (no usable
        // offset); degrade to an unaligned buffer rather than indexing
        // out of bounds — alignment is an optimization, not a soundness
        // requirement.
        let off = match buf.as_ptr().align_offset(64) {
            off if off <= pad => off,
            _ => 0,
        };
        Aligned64 { buf, off, len }
    }

    fn fill_with(&mut self, value: T) {
        let (off, len) = (self.off, self.len);
        self.buf[off..off + len].fill(value);
    }
}

impl<T: Copy + Default> Clone for Aligned64<T> {
    fn clone(&self) -> Self {
        // The clone's allocation has its own alignment; re-derive the
        // offset rather than copying the raw buffer.
        let mut t = Aligned64::new(self.len, T::default());
        t.copy_from_slice(self);
        t
    }
}

impl<T> std::ops::Deref for Aligned64<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        &self.buf[self.off..self.off + self.len]
    }
}

impl<T> std::ops::DerefMut for Aligned64<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.buf[self.off..self.off + self.len]
    }
}

/// A set-associative cache with pluggable replacement and per-frame aux tags.
///
/// # Examples
///
/// ```
/// use strex_sim::addr::BlockAddr;
/// use strex_sim::cache::{CacheGeometry, SetAssocCache};
/// use strex_sim::replacement::ReplacementKind;
///
/// let mut c = SetAssocCache::new(CacheGeometry::new(4096, 4), ReplacementKind::Lru);
/// let b = BlockAddr::new(10);
/// assert!(!c.access(b, 0).is_hit());
/// assert!(c.access(b, 0).is_hit());
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    geom: CacheGeometry,
    assoc: usize,
    /// `sets - 1`; set selection is `(block.index() >> set_shift) & set_mask`.
    set_mask: u64,
    /// Low index bits dropped before set selection (zero for private
    /// caches; the log2 slice count for NUCA slice caches, whose low bits
    /// are constant within a slice — see [`SetAssocCache::new_sliced`]).
    set_shift: u32,
    /// Packed tag words (see the module doc's packing invariant).
    tags: AlignedTags,
    /// Short-tag sidecar for the memory-bound first-pass scan (empty when
    /// disabled): `short[idx] == short_of(tags[idx])` at all times. With it
    /// enabled, the way scan reads these `u32`s (half the line footprint of
    /// the full tags — a 16-way set fits one cache line instead of two) and
    /// touches the full tag array only to verify candidate hits.
    short: ShortTags,
    /// `true` while every resident block's index fits in the short tag's
    /// 31 payload bits, i.e. the short tag is *lossless*: for a needle
    /// that also fits, a short match **is** a full match and the verify
    /// load of the cold full-tag line is skipped. Cleared (permanently)
    /// the first time a wider block is installed; meaningless when the
    /// short scan is disabled. The workload generator's address layout
    /// stays far below 2^31 blocks, so in practice every hit takes the
    /// verify-free path while correctness for arbitrary addresses is kept
    /// by the flag.
    short_exact: bool,
    /// Sidecar: one word per frame packing the aux tag (low byte) and the
    /// dirty flag ([`META_DIRTY`]), so victim reads and fills touch one
    /// cache line instead of two.
    meta: Vec<u16>,
    repl: Replacement,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry and replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if the set count is not a power of two — the mask-based set
    /// selection requires it. Configurations built through
    /// `SimConfig::builder` reject such geometries with a `ConfigError`
    /// before reaching this point.
    pub fn new(geom: CacheGeometry, repl: ReplacementKind) -> Self {
        Self::new_sliced(geom, repl, 0)
    }

    /// Creates a cache whose block stream has `slice_bits` constant low
    /// index bits (an address-interleaved NUCA slice: every block routed
    /// here satisfies `index % n_slices == slice_id`).
    ///
    /// The constant bits carry no set-selection information, so they are
    /// shifted out and the cache is built with `sets / 2^slice_bits`
    /// physical sets. The mapping `set -> set >> slice_bits` is a
    /// bijection on the sets a slice's stream can reach, so hits, misses,
    /// evictions and replacement state are **bit-identical** to a
    /// full-size cache fed the same stream — only the metadata footprint
    /// shrinks (by the slice count), which is what keeps the slice probe
    /// in cache on the simulation hot path. This mirrors NUCA hardware,
    /// which excludes the slice-select bits from the set index.
    ///
    /// # Panics
    ///
    /// Panics if the set count (after the shift) is not a power of two or
    /// `slice_bits` is not less than the set-index width.
    pub fn new_sliced(geom: CacheGeometry, repl: ReplacementKind, slice_bits: u32) -> Self {
        let sets = geom.sets();
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two for single-probe lookup (got {sets})"
        );
        assert!(
            slice_bits < sets.trailing_zeros() || (slice_bits == 0 && sets == 1),
            "slice bits {slice_bits} must leave at least one set (of {sets})"
        );
        let phys_sets = sets >> slice_bits;
        let frames = phys_sets * geom.assoc();
        SetAssocCache {
            geom,
            assoc: geom.assoc(),
            set_mask: phys_sets as u64 - 1,
            set_shift: slice_bits,
            tags: AlignedTags::new(frames, TAG_INVALID),
            short: ShortTags::new(0, 0),
            short_exact: true,
            meta: vec![0; frames],
            repl: Replacement::new(repl, phys_sets, geom.assoc()),
        }
    }

    /// Enables the short-tag (u32) first-pass scan: the way search reads a
    /// 32-bit sidecar (half the scanned footprint) and verifies candidate
    /// hits against the full 64-bit tags. Because the short tag is a pure
    /// function of the packed tag, false negatives are impossible and
    /// false positives are resolved by the verify, so hit/miss/victim
    /// outcomes are **bit-identical** to the plain scan — only the memory
    /// traffic of the probe changes. Meant for large shared caches (the
    /// NUCA L2 slices) whose tag arrays spill out of the host caches; the
    /// L1 models keep the plain scan, whose tags fit a single line anyway.
    pub fn with_short_tag_scan(mut self) -> Self {
        let mut short = ShortTags::new(self.tags.len(), 0);
        let mut exact = true;
        for (s, &t) in short.iter_mut().zip(self.tags.iter()) {
            *s = short_of(t);
            exact &= t == TAG_INVALID || fits_short(t);
        }
        self.short = short;
        self.short_exact = exact;
        self
    }

    /// `true` if the short-tag first-pass scan is enabled.
    pub fn has_short_tag_scan(&self) -> bool {
        !self.short.is_empty()
    }

    /// Returns the cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Returns the replacement policy family.
    pub fn replacement_kind(&self) -> ReplacementKind {
        self.repl.kind()
    }

    #[inline]
    fn set_of(&self, block: BlockAddr) -> usize {
        ((block.index() >> self.set_shift) & self.set_mask) as usize
    }

    #[inline]
    fn set_base(&self, set: usize) -> usize {
        set * self.assoc
    }

    /// The single chokepoint for tag writes: keeps the short-tag sidecar
    /// (when enabled) exactly in sync with the packed tag array, and
    /// demotes the scan to verified mode once any resident block outgrows
    /// the short tag's lossless range.
    #[inline]
    fn store_tag(&mut self, idx: usize, packed: u64) {
        self.tags[idx] = packed;
        if !self.short.is_empty() {
            self.short[idx] = short_of(packed);
            if packed != TAG_INVALID && !fits_short(packed) {
                self.short_exact = false;
            }
        }
    }

    /// Compare-mask pass over `N` packed tags: bit `w` of the first mask
    /// is set iff way `w` holds `needle`, bit `w` of the second iff way
    /// `w` is invalid ([`TAG_INVALID`] is all-zero, the sentinel the
    /// [`crate::wayscan`] kernels test against). Explicit AVX2 on x86-64,
    /// the PR 2 scalar loop elsewhere — bit-identical by construction.
    #[inline(always)]
    fn scan_masks<const N: usize>(tags: &[u64], needle: u64) -> (u32, u32) {
        let tags: &[u64; N] = tags
            .try_into()
            .expect("set slice length is the associativity");
        crate::wayscan::scan_masks_u64(tags, needle)
    }

    /// Compare-mask pass over `N` short tags; the short-scan twin of
    /// [`scan_masks`](SetAssocCache::scan_masks). Bit `w` of the first
    /// mask is set iff way `w`'s short tag matches (a *candidate* — the
    /// caller verifies against the full tag), bit `w` of the second iff
    /// way `w` is invalid (exact: a zero short tag occurs only for
    /// [`TAG_INVALID`]). Same [`crate::wayscan`] SIMD/scalar dispatch as
    /// the full-tag scan.
    #[inline(always)]
    fn scan_masks_short<const N: usize>(shorts: &[u32], needle: u32) -> (u32, u32) {
        let shorts: &[u32; N] = shorts
            .try_into()
            .expect("set slice length is the associativity");
        crate::wayscan::scan_masks_u32(shorts, needle)
    }

    /// Short-tag first pass: scan the `u32` sidecar for candidates and the
    /// first invalid way, then verify candidates against the full tags.
    /// Returns exactly what the plain [`scan`](SetAssocCache::scan) would —
    /// the short tag is a pure function of the packed tag, so the true hit
    /// way (if any) is always among the candidates, and a candidate that
    /// fails the full-tag verify is a (vanishingly rare, 2^-31 per way)
    /// aliasing false positive.
    #[inline]
    fn scan_short(&self, set: usize, needle: u64) -> (Option<usize>, Option<usize>) {
        let base = self.set_base(set);
        let shorts = &self.short[base..base + self.assoc];
        let sneedle = short_of(needle);
        let (mut cand, invalid) = match self.assoc {
            4 => Self::scan_masks_short::<4>(shorts, sneedle),
            8 => Self::scan_masks_short::<8>(shorts, sneedle),
            16 => Self::scan_masks_short::<16>(shorts, sneedle),
            _ => {
                let mut cand = 0u32;
                let mut invalid = 0u32;
                for (way, &s) in shorts.iter().enumerate() {
                    cand |= ((s == sneedle) as u32) << way;
                    invalid |= ((s == 0) as u32) << way;
                }
                (cand, invalid)
            }
        };
        let mut hit = None;
        if cand != 0 && self.short_exact && fits_short(needle) {
            // Lossless mode: every resident block and the needle fit the
            // 31-bit short payload, so a short match *is* a full match —
            // the cold full-tag line is never touched on this path.
            hit = Some(cand.trailing_zeros() as usize);
        } else {
            while cand != 0 {
                let way = cand.trailing_zeros() as usize;
                if self.tags[base + way] == needle {
                    hit = Some(way);
                    break;
                }
                cand &= cand - 1;
            }
        }
        (
            hit,
            (invalid != 0).then(|| invalid.trailing_zeros() as usize),
        )
    }

    /// One pass over the set's tags: the way holding `needle` (if
    /// resident) and the first invalid way (if any). This is the only tag
    /// scan in the cache; every public operation runs it exactly once.
    /// Dispatches to the short-tag first pass when enabled, else to an
    /// unrolled mask scan for the associativities the paper's geometries
    /// use (Table 2: 8-way L1s, 16-way L2).
    #[inline]
    fn scan(&self, set: usize, needle: u64) -> (Option<usize>, Option<usize>) {
        if !self.short.is_empty() {
            return self.scan_short(set, needle);
        }
        let base = self.set_base(set);
        let tags = &self.tags[base..base + self.assoc];
        let (hit, invalid) = match self.assoc {
            4 => Self::scan_masks::<4>(tags, needle),
            8 => Self::scan_masks::<8>(tags, needle),
            16 => Self::scan_masks::<16>(tags, needle),
            _ => {
                let mut hit = None;
                let mut invalid = None;
                for (way, &tag) in tags.iter().enumerate() {
                    if tag == needle {
                        hit = Some(way);
                    } else if tag == TAG_INVALID && invalid.is_none() {
                        invalid = Some(way);
                    }
                }
                return (hit, invalid);
            }
        };
        // A block is resident in at most one way; `trailing_zeros` names
        // it (and the first invalid way), matching the sequential scan.
        (
            (hit != 0).then(|| hit.trailing_zeros() as usize),
            (invalid != 0).then(|| invalid.trailing_zeros() as usize),
        )
    }

    #[inline]
    fn find(&self, block: BlockAddr) -> Option<(usize, usize)> {
        let set = self.set_of(block);
        let base = self.set_base(set);
        let needle = pack(block);
        self.tags[base..base + self.assoc]
            .iter()
            .position(|&tag| tag == needle)
            .map(|way| (set, way))
    }

    /// Installs `needle` into `set`, preferring the scanned invalid way and
    /// evicting otherwise. Returns the way used and any victim.
    #[inline]
    fn install(
        &mut self,
        set: usize,
        invalid_way: Option<usize>,
        needle: u64,
        aux: u8,
    ) -> (usize, Option<Victim>) {
        let (way, victim) = match invalid_way {
            Some(way) => (way, None),
            None => {
                let way = self.repl.evict(set);
                let idx = self.set_base(set) + way;
                let meta = self.meta[idx];
                (
                    way,
                    Some(Victim {
                        block: unpack(self.tags[idx]),
                        aux: meta as u8,
                        dirty: meta & META_DIRTY != 0,
                    }),
                )
            }
        };
        let idx = self.set_base(set) + way;
        self.store_tag(idx, needle);
        self.meta[idx] = aux as u16;
        self.repl.on_fill(set, way);
        (way, victim)
    }

    /// Hints the hardware to start pulling in the tag and replacement
    /// lines `block` would probe. Pure prefetch: no architectural effect,
    /// used to overlap an upcoming L2-slice probe with L1 work.
    #[inline]
    pub fn prefetch_probe(&self, block: BlockAddr) {
        #[cfg(target_arch = "x86_64")]
        {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let base = self.set_base(self.set_of(block));
            // SAFETY: `base` indexes into live allocations; prefetching any
            // address is side-effect-free.
            unsafe {
                if self.short.is_empty() {
                    let tags = self.tags.as_ptr().add(base);
                    _mm_prefetch(tags as *const i8, _MM_HINT_T0);
                    // A wider-than-8-way set's tags span a second line.
                    if self.assoc > 8 {
                        _mm_prefetch((tags as *const i8).add(64), _MM_HINT_T0);
                    }
                } else {
                    // Short-tag scan: the first pass touches only the u32
                    // sidecar (a 16-way set is exactly one line); the full
                    // tag line is pulled on demand by the hit verify.
                    let shorts = self.short.as_ptr().add(base);
                    _mm_prefetch(shorts as *const i8, _MM_HINT_T0);
                    if self.assoc > 16 {
                        _mm_prefetch((shorts as *const i8).add(64), _MM_HINT_T0);
                    }
                }
                _mm_prefetch(self.repl.meta_ptr(base) as *const i8, _MM_HINT_T0);
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = block;
    }

    /// Returns `true` if `block` is resident, without touching policy state.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.find(block).is_some()
    }

    /// Returns the aux tag of a resident block.
    pub fn aux(&self, block: BlockAddr) -> Option<u8> {
        self.find(block)
            .map(|(set, way)| self.meta[self.set_base(set) + way] as u8)
    }

    /// Overwrites the aux tag of a resident block; returns `false` if the
    /// block is not resident.
    pub fn set_aux(&mut self, block: BlockAddr, aux: u8) -> bool {
        if let Some((set, way)) = self.find(block) {
            let idx = self.set_base(set) + way;
            self.meta[idx] = (self.meta[idx] & META_DIRTY) | aux as u16;
            true
        } else {
            false
        }
    }

    /// Reports which block a fill of `block` would displace.
    ///
    /// Returns `None` when `block` is already resident or the set still has
    /// an invalid way (the fill would be eviction-free). The answer agrees
    /// exactly with the eviction performed by a subsequent
    /// [`access`](SetAssocCache::access) or [`fill`](SetAssocCache::fill) of
    /// the same block, provided no other mutation intervenes.
    pub fn peek_victim(&self, block: BlockAddr) -> Option<Victim> {
        let set = self.set_of(block);
        let (hit, invalid) = self.scan(set, pack(block));
        if hit.is_some() || invalid.is_some() {
            return None;
        }
        let way = self.repl.victim_way(set);
        let idx = self.set_base(set) + way;
        let meta = self.meta[idx];
        Some(Victim {
            block: unpack(self.tags[idx]),
            aux: meta as u8,
            dirty: meta & META_DIRTY != 0,
        })
    }

    /// One read-only tag scan answering everything an imminent fetch of
    /// `block` needs: residency, the way a fill would use, and the victim a
    /// fill would displace ([`peek_victim`](SetAssocCache::peek_victim)
    /// semantics). The returned [`FetchProbe`] is consumed by
    /// [`commit_fetch`](SetAssocCache::commit_fetch), which completes the
    /// access without a second scan — fusing STREX's victim peek with the
    /// demand probe that previously re-scanned the same set.
    #[inline]
    pub fn probe_fetch(&self, block: BlockAddr) -> FetchProbe {
        let set = self.set_of(block);
        let needle = pack(block);
        let (hit, invalid) = self.scan(set, needle);
        FetchProbe {
            block,
            set,
            needle,
            hit,
            invalid,
        }
    }

    /// The block that committing `probe` would displace — exactly what
    /// [`peek_victim`](SetAssocCache::peek_victim) answers for the probed
    /// block, but derived from the probe's already-completed scan: no tag
    /// scan happens here, only the replacement peek and the victim frame's
    /// tag/metadata reads, and only when the fill would actually evict.
    #[inline]
    pub fn probe_victim(&self, probe: &FetchProbe) -> Option<Victim> {
        if !probe.would_evict() {
            return None;
        }
        let way = self.repl.victim_way(probe.set);
        let idx = self.set_base(probe.set) + way;
        let meta = self.meta[idx];
        Some(Victim {
            block: unpack(self.tags[idx]),
            aux: meta as u8,
            dirty: meta & META_DIRTY != 0,
        })
    }

    /// Completes the access a [`probe_fetch`](SetAssocCache::probe_fetch)
    /// scanned for, with [`access`](SetAssocCache::access) semantics (the
    /// frame is tagged with `aux` on hit and miss alike) but **no** second
    /// tag scan. Bit-identical to `access(probe.block(), aux)` provided
    /// the cache was not mutated since the probe; any eviction selects the
    /// same way an intervening
    /// [`probe_victim`](SetAssocCache::probe_victim) reported, which
    /// [`Replacement::victim_way`](crate::replacement::Replacement::victim_way)
    /// guarantees agrees with
    /// [`evict`](crate::replacement::Replacement::evict).
    #[inline]
    pub fn commit_fetch(&mut self, probe: FetchProbe, aux: u8) -> Probe {
        let FetchProbe {
            set,
            needle,
            hit,
            invalid,
            ..
        } = probe;
        match hit {
            Some(way) => {
                let idx = self.set_base(set) + way;
                debug_assert_eq!(self.tags[idx], needle, "stale FetchProbe committed");
                self.repl.on_hit(set, way);
                self.meta[idx] = (self.meta[idx] & META_DIRTY) | aux as u16;
                Probe {
                    hit: true,
                    set,
                    way,
                    evicted: None,
                }
            }
            None => {
                debug_assert!(
                    invalid.is_none_or(|way| self.tags[self.set_base(set) + way] == TAG_INVALID),
                    "stale FetchProbe committed"
                );
                let (way, evicted) = self.install(set, invalid, needle, aux);
                Probe {
                    hit: false,
                    set,
                    way,
                    evicted,
                }
            }
        }
    }

    /// Accesses `block`, tagging the frame with `aux` whether the access hits
    /// or misses (STREX tags blocks with the current phase on *every* touch).
    #[inline]
    pub fn access(&mut self, block: BlockAddr, aux: u8) -> Probe {
        let set = self.set_of(block);
        let needle = pack(block);
        let (hit, invalid) = self.scan(set, needle);
        match hit {
            Some(way) => {
                self.repl.on_hit(set, way);
                let idx = self.set_base(set) + way;
                self.meta[idx] = (self.meta[idx] & META_DIRTY) | aux as u16;
                Probe {
                    hit: true,
                    set,
                    way,
                    evicted: None,
                }
            }
            None => {
                let (way, evicted) = self.install(set, invalid, needle, aux);
                Probe {
                    hit: false,
                    set,
                    way,
                    evicted,
                }
            }
        }
    }

    /// Latency-only access for caches that never consult aux tags, dirty
    /// bits or victims (the shared L2: it always tags with zero, never
    /// writes, and discards evictions). Returns only the hit flag.
    ///
    /// Skips the sidecar-array stores and victim materialization of
    /// [`access`](SetAssocCache::access) — two to three extra cache-line
    /// touches per probe on the simulator's hottest path. Because such a
    /// cache only ever writes `aux = 0` and never sets a dirty bit, the
    /// skipped stores would re-write the values already there: the
    /// observable state is identical to using `access(block, 0)` and
    /// dropping the probe.
    #[inline]
    pub fn access_untagged(&mut self, block: BlockAddr) -> bool {
        let set = self.set_of(block);
        let needle = pack(block);
        let (hit, invalid) = self.scan(set, needle);
        match hit {
            Some(way) => {
                self.repl.on_hit(set, way);
                true
            }
            None => {
                let way = match invalid {
                    Some(way) => way,
                    None => self.repl.evict(set),
                };
                let idx = self.set_base(set) + way;
                // The skipped meta store is sound only while every frame's
                // sidecar is still pristine — i.e. the cache has never been
                // touched through the tagged/dirtying entry points.
                debug_assert_eq!(
                    self.meta[idx], 0,
                    "access_untagged on a cache with live aux/dirty metadata"
                );
                self.store_tag(idx, needle);
                self.repl.on_fill(set, way);
                false
            }
        }
    }

    /// Accesses `block` for writing; like [`access`](SetAssocCache::access)
    /// but also marks the frame dirty. The probe already names the frame,
    /// so no second lookup happens.
    #[inline]
    pub fn access_write(&mut self, block: BlockAddr, aux: u8) -> Probe {
        let probe = self.access(block, aux);
        let idx = self.set_base(probe.set) + probe.way;
        self.meta[idx] |= META_DIRTY;
        probe
    }

    /// Installs `block` (which must not be resident), returning any victim.
    /// The invalid-way preference falls out of the same single scan that
    /// (in debug builds) checks non-residency.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the block is already resident.
    pub fn fill(&mut self, block: BlockAddr, aux: u8) -> Option<Victim> {
        let set = self.set_of(block);
        let needle = pack(block);
        let (hit, invalid) = self.scan(set, needle);
        debug_assert!(hit.is_none(), "fill of resident block");
        self.install(set, invalid, needle, aux).1
    }

    /// Installs `block` unless it is already resident (one probe for what
    /// was previously a `contains` scan followed by a `fill` scan).
    ///
    /// On a hit the cache is left untouched — no replacement-state update,
    /// matching the prefetcher's "already here, nothing to do" semantics —
    /// and the returned probe has `hit == true`. On a miss the block is
    /// installed and the probe carries any victim.
    #[inline]
    pub fn fill_if_absent(&mut self, block: BlockAddr, aux: u8) -> Probe {
        let set = self.set_of(block);
        let needle = pack(block);
        let (hit, invalid) = self.scan(set, needle);
        match hit {
            Some(way) => Probe {
                hit: true,
                set,
                way,
                evicted: None,
            },
            None => {
                let (way, evicted) = self.install(set, invalid, needle, aux);
                Probe {
                    hit: false,
                    set,
                    way,
                    evicted,
                }
            }
        }
    }

    /// Invalidates `block` if resident (coherence), returning its frame info.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<Victim> {
        if let Some((set, way)) = self.find(block) {
            let idx = self.set_base(set) + way;
            let meta = self.meta[idx];
            let victim = Victim {
                block: unpack(self.tags[idx]),
                aux: meta as u8,
                dirty: meta & META_DIRTY != 0,
            };
            self.store_tag(idx, TAG_INVALID);
            self.meta[idx] &= !META_DIRTY;
            self.repl.on_invalidate(set, way);
            Some(victim)
        } else {
            None
        }
    }

    /// Clears the dirty bit of a resident block (coherence downgrade),
    /// returning whether it was dirty.
    pub fn clean(&mut self, block: BlockAddr) -> bool {
        if let Some((set, way)) = self.find(block) {
            let idx = self.set_base(set) + way;
            let was = self.meta[idx] & META_DIRTY != 0;
            self.meta[idx] &= !META_DIRTY;
            was
        } else {
            false
        }
    }

    /// Iterates over all resident blocks (used by cache signatures and the
    /// temporal-overlap analysis of Figure 2).
    pub fn resident_blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.tags
            .iter()
            .filter(|&&tag| tag != TAG_INVALID)
            .map(|&tag| unpack(tag))
    }

    /// Number of resident (valid) blocks.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&tag| tag != TAG_INVALID).count()
    }

    /// Invalidates every frame, returning the cache to its initial state.
    pub fn flush(&mut self) {
        let kind = self.repl.kind();
        self.tags.fill_with(TAG_INVALID);
        self.short.fill_with(0);
        self.short_exact = true;
        self.meta.fill(0);
        let phys_sets = self.set_mask as usize + 1;
        self.repl = Replacement::new(kind, phys_sets, self.assoc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 2 sets x 2 ways.
        SetAssocCache::new(CacheGeometry::new(256, 2), ReplacementKind::Lru)
    }

    #[test]
    fn geometry_math() {
        let g = CacheGeometry::new(32 * 1024, 8);
        assert_eq!(g.sets(), 64);
        assert_eq!(g.blocks(), 512);
        assert_eq!(g.set_of(BlockAddr::new(64)), 0);
        assert_eq!(g.set_of(BlockAddr::new(65)), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must divide evenly")]
    fn bad_geometry_panics() {
        let _ = CacheGeometry::new(100, 3);
    }

    #[test]
    fn try_new_rejects_each_failure_mode() {
        assert_eq!(CacheGeometry::try_new(0, 4), Err(GeometryError::Degenerate));
        assert_eq!(
            CacheGeometry::try_new(4096, 0),
            Err(GeometryError::Degenerate)
        );
        assert_eq!(
            CacheGeometry::try_new(100, 3),
            Err(GeometryError::UnevenSets {
                size_bytes: 100,
                assoc: 3
            })
        );
        // 384 B / 2-way / 64 B blocks = 3 sets: divides evenly, not pow2.
        assert_eq!(
            CacheGeometry::try_new(384, 2),
            Err(GeometryError::NonPowerOfTwoSets { sets: 3 })
        );
        let ok = CacheGeometry::try_new(32 * 1024, 8).expect("Table 2 geometry");
        assert!(ok.has_pow2_sets());
        assert_eq!(ok, CacheGeometry::new(32 * 1024, 8));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn cache_rejects_non_pow2_sets() {
        // The geometry itself is constructible (validation rejects it with
        // an error), but the single-probe cache cannot be built on it.
        let _ = SetAssocCache::new(CacheGeometry::new(384, 2), ReplacementKind::Lru);
    }

    #[test]
    fn tag_packing_round_trips() {
        for idx in [0u64, 1, 63, 64, (1 << 58) - 1] {
            let b = BlockAddr::new(idx);
            assert_eq!(unpack(pack(b)), b);
            assert_ne!(pack(b), TAG_INVALID, "valid tag collides with sentinel");
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        let b = BlockAddr::new(4);
        assert!(!c.access(b, 1).is_hit());
        assert!(c.access(b, 2).is_hit());
        assert_eq!(c.aux(b), Some(2), "aux retagged on hit");
    }

    #[test]
    fn probe_names_the_frame() {
        let mut c = small();
        let b = BlockAddr::new(4); // set 0 (2 sets)
        let miss = c.access(b, 1);
        assert!(!miss.hit);
        assert_eq!(miss.set, 0);
        let hit = c.access(b, 1);
        assert!(hit.hit);
        assert_eq!((hit.set, hit.way), (miss.set, miss.way));
    }

    #[test]
    fn eviction_in_full_set() {
        let mut c = small();
        // Blocks 0, 2, 4 all map to set 0 (2 sets).
        c.access(BlockAddr::new(0), 0);
        c.access(BlockAddr::new(2), 0);
        let out = c.access(BlockAddr::new(4), 0);
        let v = out.evicted().expect("set was full");
        assert_eq!(v.block, BlockAddr::new(0), "LRU victim");
        assert!(!c.contains(BlockAddr::new(0)));
        assert!(c.contains(BlockAddr::new(2)));
        assert!(c.contains(BlockAddr::new(4)));
    }

    #[test]
    fn peek_agrees_with_fill() {
        let mut c = small();
        c.access(BlockAddr::new(0), 7);
        c.access(BlockAddr::new(2), 8);
        let peek = c.peek_victim(BlockAddr::new(4)).expect("set full");
        let actual = c.access(BlockAddr::new(4), 0).evicted().unwrap();
        assert_eq!(peek, actual);
        assert_eq!(peek.aux, 7);
    }

    #[test]
    fn peek_none_when_resident_or_free() {
        let mut c = small();
        assert!(c.peek_victim(BlockAddr::new(0)).is_none(), "free way");
        c.access(BlockAddr::new(0), 0);
        assert!(c.peek_victim(BlockAddr::new(0)).is_none(), "resident");
    }

    #[test]
    fn dirty_victims_reported() {
        let mut c = small();
        c.access_write(BlockAddr::new(0), 0);
        c.access(BlockAddr::new(2), 0);
        c.access(BlockAddr::new(2), 0); // block 2 MRU; block 0 is victim
        let v = c.access(BlockAddr::new(4), 0).evicted().unwrap();
        assert_eq!(v.block, BlockAddr::new(0));
        assert!(v.dirty);
    }

    #[test]
    fn access_write_marks_exactly_the_probed_frame() {
        // The dirty bit must land on the frame the probe named, on both
        // the miss path and the hit path, with no second lookup involved.
        let mut c = small();
        let b = BlockAddr::new(6);
        let miss = c.access_write(b, 0);
        assert!(!miss.hit);
        let peek_dirty = |c: &SetAssocCache, b| {
            // Evict-free introspection via invalidate on a clone.
            let mut probe = c.clone();
            probe.invalidate(b).map(|v| v.dirty)
        };
        assert_eq!(peek_dirty(&c, b), Some(true), "miss fill marked dirty");
        // A clean read hit on another block must not disturb it; a write
        // hit on a clean block must dirty that block only.
        let other = BlockAddr::new(4); // same set
        c.access(other, 0);
        assert_eq!(peek_dirty(&c, other), Some(false));
        let hit = c.access_write(other, 0);
        assert!(hit.hit);
        assert_eq!(peek_dirty(&c, other), Some(true), "hit marked dirty");
        assert_eq!(peek_dirty(&c, b), Some(true), "first block still dirty");
    }

    #[test]
    fn fill_if_absent_is_single_probe_fill() {
        let mut c = small();
        let b = BlockAddr::new(2);
        let first = c.fill_if_absent(b, 5);
        assert!(!first.hit);
        assert_eq!(c.aux(b), Some(5));
        // Second attempt: resident, untouched (aux keeps its old value).
        let second = c.fill_if_absent(b, 9);
        assert!(second.hit);
        assert_eq!((second.set, second.way), (first.set, first.way));
        assert_eq!(c.aux(b), Some(5), "resident block not retagged");
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn invalidate_frees_way() {
        let mut c = small();
        c.access(BlockAddr::new(0), 0);
        c.access(BlockAddr::new(2), 0);
        assert!(c.invalidate(BlockAddr::new(0)).is_some());
        assert!(!c.contains(BlockAddr::new(0)));
        // Set has a free way again: no victim for the next fill.
        assert!(c.access(BlockAddr::new(4), 0).evicted().is_none());
    }

    #[test]
    fn clean_clears_dirty() {
        let mut c = small();
        c.access_write(BlockAddr::new(0), 0);
        assert!(c.clean(BlockAddr::new(0)));
        assert!(!c.clean(BlockAddr::new(0)));
    }

    #[test]
    fn resident_blocks_and_occupancy() {
        let mut c = small();
        c.access(BlockAddr::new(0), 0);
        c.access(BlockAddr::new(1), 0);
        c.access(BlockAddr::new(2), 0);
        assert_eq!(c.occupancy(), 3);
        let mut blocks: Vec<_> = c.resident_blocks().map(BlockAddr::index).collect();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![0, 1, 2]);
        c.flush();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn aux_round_trip() {
        let mut c = small();
        c.access(BlockAddr::new(5), 9);
        assert_eq!(c.aux(BlockAddr::new(5)), Some(9));
        assert!(c.set_aux(BlockAddr::new(5), 11));
        assert_eq!(c.aux(BlockAddr::new(5)), Some(11));
        assert!(!c.set_aux(BlockAddr::new(99), 1));
        assert_eq!(c.aux(BlockAddr::new(99)), None);
    }

    #[test]
    fn short_tag_scan_round_trips() {
        let mut c = small().with_short_tag_scan();
        assert!(c.has_short_tag_scan());
        let b = BlockAddr::new(4);
        assert!(!c.access(b, 1).is_hit());
        assert!(c.access(b, 2).is_hit());
        assert_eq!(c.aux(b), Some(2));
        assert!(c.invalidate(b).is_some());
        assert!(!c.contains(b));
        // Invalidation must clear the short tag too: the way reads as
        // free again.
        assert!(c.access(BlockAddr::new(6), 0).evicted().is_none());
    }

    #[test]
    fn short_tag_false_positive_resolved_by_verify() {
        // Two blocks in the same set whose indices differ only above bit
        // 31 share a short tag; the full-tag verify must tell them apart.
        let mut c = small().with_short_tag_scan(); // 2 sets
        let a = BlockAddr::new(4);
        let b = BlockAddr::new(4 + (1u64 << 31)); // same set, same short tag
        assert_eq!(short_of(pack(a)), short_of(pack(b)));
        c.access(a, 1);
        assert!(!c.contains(b), "aliased block must not read as resident");
        assert!(!c.access(b, 2).is_hit());
        assert!(c.contains(a) && c.contains(b));
        assert_eq!(c.aux(a), Some(1));
        assert_eq!(c.aux(b), Some(2));
    }

    #[test]
    fn short_tag_scan_is_bit_identical_to_plain() {
        // Same adversarial stream (hits, misses, evictions, peeks,
        // invalidations, writes) through a plain and a short-tag cache of
        // every replacement kind; every outcome must agree.
        for kind in ReplacementKind::ALL {
            let geom = CacheGeometry::new(2048, 16); // 2 sets x 16 ways
            let mut plain = SetAssocCache::new(geom, kind);
            let mut short = SetAssocCache::new(geom, kind).with_short_tag_scan();
            for i in 0..4096u64 {
                let b = BlockAddr::new((i * 7) % 96 + ((i % 5) << 31));
                let p = plain.access_write(b, (i % 256) as u8);
                let s = short.access_write(b, (i % 256) as u8);
                assert_eq!(p.hit, s.hit, "{kind} i={i}");
                assert_eq!((p.set, p.way), (s.set, s.way), "{kind} i={i}");
                assert_eq!(p.evicted, s.evicted, "{kind} i={i}");
                let probe = BlockAddr::new((i * 13) % 128);
                assert_eq!(
                    plain.peek_victim(probe),
                    short.peek_victim(probe),
                    "{kind} i={i}"
                );
                if i % 97 == 0 {
                    assert_eq!(plain.invalidate(probe), short.invalidate(probe));
                }
            }
            assert_eq!(plain.occupancy(), short.occupancy(), "{kind}");
        }
    }

    #[test]
    fn short_of_is_injective_on_validity() {
        assert_eq!(short_of(TAG_INVALID), 0);
        for idx in [0u64, 1, 1 << 31, (1 << 31) + 1, (1 << 54) - 1] {
            let s = short_of(pack(BlockAddr::new(idx)));
            assert_ne!(s, 0, "valid short tag collides with the free marker");
            assert_eq!(s & SHORT_VALID, SHORT_VALID);
        }
    }

    #[test]
    fn fused_probe_matches_peek_then_access() {
        // The fused probe_fetch/commit_fetch pair must be bit-identical to
        // the unfused peek_victim + access sequence: same hit/way/victim
        // outcomes, same replacement and metadata state afterwards — under
        // every replacement kind, with and without the short-tag scan.
        for kind in ReplacementKind::ALL {
            for short in [false, true] {
                let geom = CacheGeometry::new(2048, 4); // 8 sets x 4 ways
                let mk = |short: bool| {
                    let c = SetAssocCache::new(geom, kind);
                    if short {
                        c.with_short_tag_scan()
                    } else {
                        c
                    }
                };
                let mut unfused = mk(short);
                let mut fused = mk(short);
                for i in 0..4096u64 {
                    let b = BlockAddr::new((i * 11) % 96 + ((i % 3) << 31));
                    let aux = (i % 256) as u8;
                    let peek = unfused.peek_victim(b);
                    let u = unfused.access(b, aux);
                    let probe = fused.probe_fetch(b);
                    assert_eq!(probe.block(), b);
                    assert_eq!(
                        fused.probe_victim(&probe),
                        peek,
                        "{kind} short={short} i={i}"
                    );
                    assert_eq!(probe.would_evict(), peek.is_some());
                    let f = fused.commit_fetch(probe, aux);
                    assert_eq!(probe.is_hit(), f.hit);
                    assert_eq!(u.hit, f.hit, "{kind} short={short} i={i}");
                    assert_eq!((u.set, u.way), (f.set, f.way), "{kind} short={short} i={i}");
                    assert_eq!(u.evicted, f.evicted, "{kind} short={short} i={i}");
                }
                assert_eq!(unfused.occupancy(), fused.occupancy());
            }
        }
    }

    #[test]
    fn works_with_all_replacement_kinds() {
        for kind in ReplacementKind::ALL {
            let mut c = SetAssocCache::new(CacheGeometry::new(512, 2), kind);
            for i in 0..64u64 {
                c.access(BlockAddr::new(i % 12), (i % 256) as u8);
                if let Some(peek) = c.peek_victim(BlockAddr::new(100 + i)) {
                    let got = c.access(BlockAddr::new(100 + i), 0).evicted().unwrap();
                    assert_eq!(peek, got, "{kind}");
                }
            }
        }
    }
}
