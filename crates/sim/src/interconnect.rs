//! 2-D torus on-chip interconnect model (Table 2: 1-cycle hop latency).
//!
//! The torus connects cores to the NUCA L2 slices (one slice co-located with
//! each core). Only hop-count latency is modeled; link contention is ignored,
//! which is conservative for all schedulers alike and documented in
//! DESIGN.md.

use crate::ids::CoreId;

/// A 2-D torus of `n` nodes arranged in the most square grid possible.
///
/// Pairwise round-trip latencies are precomputed at construction: the
/// coordinate arithmetic costs two integer divisions per endpoint, and the
/// L2 consults the torus on every slice access, so the hot path is a
/// single table load instead.
///
/// # Examples
///
/// ```
/// use strex_sim::ids::CoreId;
/// use strex_sim::interconnect::Torus;
///
/// let t = Torus::new(16); // 4x4
/// assert_eq!(t.hops(CoreId::new(0), CoreId::new(0)), 0);
/// assert_eq!(t.hops(CoreId::new(0), CoreId::new(15)), 2); // wraparound
/// ```
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct Torus {
    width: usize,
    height: usize,
    hop_latency: u64,
    /// `round_trip(a, b)` for every node pair, indexed `a * nodes + b`.
    round_trips: std::sync::Arc<[u64]>,
}

impl Torus {
    /// Builds a torus of `nodes` nodes with 1-cycle hops.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize) -> Self {
        Self::with_hop_latency(nodes, 1)
    }

    /// Builds a torus with an explicit per-hop latency in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn with_hop_latency(nodes: usize, hop_latency: u64) -> Self {
        assert!(nodes > 0, "torus needs at least one node");
        // Most square factorization: width >= height.
        let mut height = (nodes as f64).sqrt() as usize;
        while height > 1 && !nodes.is_multiple_of(height) {
            height -= 1;
        }
        let width = nodes / height.max(1);
        let mut t = Torus {
            width,
            height: height.max(1),
            hop_latency,
            round_trips: std::sync::Arc::from(Vec::new()),
        };
        let n = t.nodes();
        // Bound the table to sane on-chip sizes; beyond that, fall back to
        // the coordinate arithmetic (the directory caps real systems at 64
        // cores anyway).
        if n <= 256 {
            let mut table = Vec::with_capacity(n * n);
            for a in 0..n {
                for b in 0..n {
                    table.push(
                        2 * t.hops_computed(CoreId::new(a as u16), CoreId::new(b as u16))
                            * hop_latency,
                    );
                }
            }
            t.round_trips = std::sync::Arc::from(table);
        }
        t
    }

    /// Grid width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    fn coords(&self, node: CoreId) -> (usize, usize) {
        let i = node.as_usize();
        (i % self.width, i / self.width)
    }

    /// Coordinate-arithmetic hop count, used to build the table.
    fn hops_computed(&self, a: CoreId, b: CoreId) -> u64 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        let dx = ax.abs_diff(bx);
        let dy = ay.abs_diff(by);
        let dx = dx.min(self.width - dx);
        let dy = dy.min(self.height - dy);
        (dx + dy) as u64
    }

    /// Minimal hop count between two nodes, with wraparound links.
    pub fn hops(&self, a: CoreId, b: CoreId) -> u64 {
        self.hops_computed(a, b)
    }

    /// One-way latency in cycles between two nodes.
    pub fn latency(&self, a: CoreId, b: CoreId) -> u64 {
        self.hops(a, b) * self.hop_latency
    }

    /// Round-trip latency in cycles (request + response): one table load
    /// for on-chip node counts.
    #[inline]
    pub fn round_trip(&self, a: CoreId, b: CoreId) -> u64 {
        let n = self.nodes();
        if self.round_trips.len() == n * n {
            self.round_trips[a.as_usize() * n + b.as_usize()]
        } else {
            2 * self.hops_computed(a, b) * self.hop_latency
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_factorization() {
        assert_eq!((Torus::new(16).width(), Torus::new(16).height()), (4, 4));
        assert_eq!((Torus::new(8).width(), Torus::new(8).height()), (4, 2));
        assert_eq!((Torus::new(2).width(), Torus::new(2).height()), (2, 1));
        assert_eq!((Torus::new(1).width(), Torus::new(1).height()), (1, 1));
    }

    #[test]
    fn self_distance_zero() {
        let t = Torus::new(8);
        for i in 0..8 {
            assert_eq!(t.hops(CoreId::new(i), CoreId::new(i)), 0);
        }
    }

    #[test]
    fn symmetry() {
        let t = Torus::new(16);
        for a in 0..16u16 {
            for b in 0..16u16 {
                assert_eq!(
                    t.hops(CoreId::new(a), CoreId::new(b)),
                    t.hops(CoreId::new(b), CoreId::new(a))
                );
            }
        }
    }

    #[test]
    fn wraparound_shortens_paths() {
        let t = Torus::new(16); // 4x4
                                // Node 0 (0,0) to node 3 (3,0): direct 3 hops, wrap 1 hop.
        assert_eq!(t.hops(CoreId::new(0), CoreId::new(3)), 1);
        // Node 0 (0,0) to node 12 (0,3): wrap 1 hop.
        assert_eq!(t.hops(CoreId::new(0), CoreId::new(12)), 1);
    }

    #[test]
    fn diameter_bound() {
        let t = Torus::new(16);
        let max = (0..16u16)
            .flat_map(|a| (0..16u16).map(move |b| (a, b)))
            .map(|(a, b)| t.hops(CoreId::new(a), CoreId::new(b)))
            .max()
            .unwrap();
        assert_eq!(max, 4, "4x4 torus diameter is floor(4/2)+floor(4/2)");
    }

    #[test]
    fn round_trip_doubles() {
        let t = Torus::with_hop_latency(4, 2);
        assert_eq!(t.round_trip(CoreId::new(0), CoreId::new(1)), 4);
    }
}
