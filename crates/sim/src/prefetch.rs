//! Instruction prefetchers evaluated in Section 5.3.
//!
//! * [`PrefetcherKind::NextLine`] — the classic sequential prefetcher
//!   (Smith, 1978): on an L1-I miss to block *b*, block *b + 1* is fetched
//!   alongside. Prefetched blocks install with optimistic timeliness (no
//!   extra demand latency when they are later used), which makes the
//!   comparison conservative for STREX.
//! * [`PrefetcherKind::PifIdeal`] — the paper's upper-bound model of PIF
//!   (Ferdman et al., MICRO 2011): a 100 %-hit L1-I. Demand traffic is still
//!   generated toward the L2 for blocks that would have missed, partially
//!   modeling PIF's bandwidth cost, exactly as Section 5.3 describes.
//!
//! The prefetchers are policies consulted by the memory hierarchy rather
//! than free-standing engines; [`PrefetcherKind::prefetch_targets`] tells
//! the hierarchy which blocks to bring in alongside a demand fetch.

use crate::addr::BlockAddr;

/// Which instruction prefetcher a core uses.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub enum PrefetcherKind {
    /// No prefetching (the paper's baseline).
    #[default]
    None,
    /// Sequential next-line prefetcher.
    NextLine,
    /// Idealized PIF: never stalls on instruction fetch, still generates
    /// L2 demand traffic for would-be misses.
    PifIdeal,
}

impl PrefetcherKind {
    /// Blocks to prefetch after a demand miss on `block`.
    ///
    /// Allocation-free (this sits on the per-miss hot path): the current
    /// prefetchers produce at most one target, and the iterator form keeps
    /// the signature open for multi-target prefetchers.
    ///
    /// # Examples
    ///
    /// ```
    /// use strex_sim::addr::BlockAddr;
    /// use strex_sim::prefetch::PrefetcherKind;
    ///
    /// let next: Vec<_> = PrefetcherKind::NextLine.prefetch_targets(BlockAddr::new(7)).collect();
    /// assert_eq!(next, vec![BlockAddr::new(8)]);
    /// assert_eq!(PrefetcherKind::None.prefetch_targets(BlockAddr::new(7)).count(), 0);
    /// ```
    #[inline]
    pub fn prefetch_targets(self, block: BlockAddr) -> impl Iterator<Item = BlockAddr> {
        match self {
            PrefetcherKind::None | PrefetcherKind::PifIdeal => None,
            PrefetcherKind::NextLine => Some(block.next()),
        }
        .into_iter()
    }

    /// Whether instruction-fetch stalls are entirely hidden (PIF-ideal).
    pub fn hides_all_fetch_latency(self) -> bool {
        matches!(self, PrefetcherKind::PifIdeal)
    }
}

impl std::fmt::Display for PrefetcherKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PrefetcherKind::None => "none",
            PrefetcherKind::NextLine => "next-line",
            PrefetcherKind::PifIdeal => "PIF-ideal",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_line_targets_successor() {
        let t: Vec<_> = PrefetcherKind::NextLine
            .prefetch_targets(BlockAddr::new(100))
            .collect();
        assert_eq!(t, vec![BlockAddr::new(101)]);
    }

    #[test]
    fn none_and_pif_issue_no_prefetches() {
        assert_eq!(
            PrefetcherKind::None
                .prefetch_targets(BlockAddr::new(0))
                .count(),
            0
        );
        assert_eq!(
            PrefetcherKind::PifIdeal
                .prefetch_targets(BlockAddr::new(0))
                .count(),
            0
        );
    }

    #[test]
    fn only_pif_hides_latency() {
        assert!(PrefetcherKind::PifIdeal.hides_all_fetch_latency());
        assert!(!PrefetcherKind::NextLine.hides_all_fetch_latency());
        assert!(!PrefetcherKind::None.hides_all_fetch_latency());
    }

    #[test]
    fn display_names() {
        assert_eq!(PrefetcherKind::NextLine.to_string(), "next-line");
        assert_eq!(PrefetcherKind::PifIdeal.to_string(), "PIF-ideal");
    }
}
