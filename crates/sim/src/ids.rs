//! Identifier newtypes shared across the simulator, workload generator and
//! schedulers.
//!
//! Keeping these in the substrate crate lets every layer speak the same
//! strongly-typed language (per the newtype guideline) without circular
//! dependencies.

use std::fmt;

/// Identifies one core of the simulated CMP.
///
/// # Examples
///
/// ```
/// use strex_sim::ids::CoreId;
/// let c = CoreId::new(3);
/// assert_eq!(c.as_usize(), 3);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct CoreId(u16);

impl CoreId {
    /// Creates a core identifier from a raw index.
    pub fn new(index: u16) -> Self {
        CoreId(index)
    }

    /// Returns the index as `usize` for container indexing.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw index.
    pub fn value(self) -> u16 {
        self.0
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Identifies one transaction thread (a virtual hardware context).
///
/// The paper's scheduling structures use 12-bit thread IDs (Table 4); a
/// `u32` is used here for headroom while preserving the semantics.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct ThreadId(u32);

impl ThreadId {
    /// Creates a thread identifier from a raw index.
    pub fn new(index: u32) -> Self {
        ThreadId(index)
    }

    /// Returns the index as `usize` for container indexing.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw index.
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifies a transaction *type* (e.g. TPC-C New Order).
///
/// STREX groups same-type transactions into teams by inspecting the address
/// of the transaction's header instructions; the workload generator exposes
/// the type directly, which is equivalent information.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct TxnTypeId(u16);

impl TxnTypeId {
    /// Creates a transaction-type identifier.
    pub fn new(index: u16) -> Self {
        TxnTypeId(index)
    }

    /// Returns the index as `usize` for container indexing.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw index.
    pub fn value(self) -> u16 {
        self.0
    }
}

impl fmt::Display for TxnTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type{}", self.0)
    }
}

/// An 8-bit modulo phase identifier (Section 4.3: 8-bit phaseID tags and an
/// 8-bit modulo phaseID counter per core).
///
/// # Examples
///
/// ```
/// use strex_sim::ids::PhaseId;
/// let p = PhaseId::new(255);
/// assert_eq!(p.wrapping_next(), PhaseId::new(0));
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct PhaseId(u8);

impl PhaseId {
    /// Creates a phase identifier from a raw tag value.
    pub fn new(tag: u8) -> Self {
        PhaseId(tag)
    }

    /// Returns the raw 8-bit tag.
    pub fn value(self) -> u8 {
        self.0
    }

    /// Returns the next phase, wrapping modulo 256 like the hardware counter.
    pub fn wrapping_next(self) -> PhaseId {
        PhaseId(self.0.wrapping_add(1))
    }
}

impl fmt::Display for PhaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ph{}", self.0)
    }
}

/// A simulation timestamp in core clock cycles.
pub type Cycle = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_wraps_modulo_256() {
        let mut p = PhaseId::new(254);
        p = p.wrapping_next();
        assert_eq!(p.value(), 255);
        p = p.wrapping_next();
        assert_eq!(p.value(), 0);
    }

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(CoreId::new(1) < CoreId::new(2));
        assert_eq!(CoreId::new(7).to_string(), "core7");
        assert_eq!(ThreadId::new(9).to_string(), "t9");
        assert_eq!(TxnTypeId::new(2).to_string(), "type2");
        assert_eq!(PhaseId::new(3).to_string(), "ph3");
    }

    #[test]
    fn usize_conversions() {
        assert_eq!(CoreId::new(15).as_usize(), 15);
        assert_eq!(ThreadId::new(100).as_usize(), 100);
        assert_eq!(TxnTypeId::new(6).as_usize(), 6);
    }
}
