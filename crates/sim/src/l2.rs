//! Shared NUCA L2 cache (Table 2: 1 MB per core, 16-way, 16-cycle hit,
//! address-interleaved slices over the torus).

use crate::addr::BlockAddr;
use crate::cache::{CacheGeometry, SetAssocCache};
use crate::ids::{CoreId, Cycle};
use crate::interconnect::Torus;
use crate::memory::Dram;
use crate::replacement::ReplacementKind;
use crate::stats::SharedStats;

/// The shared L2: one slice per core, interleaved by block address.
///
/// # Examples
///
/// ```
/// use strex_sim::addr::BlockAddr;
/// use strex_sim::ids::CoreId;
/// use strex_sim::l2::SharedL2;
///
/// let mut l2 = SharedL2::table2(4);
/// let cold = l2.access(CoreId::new(0), BlockAddr::new(5), 0);
/// let warm = l2.access(CoreId::new(0), BlockAddr::new(5), cold);
/// assert!(warm < cold);
/// ```
#[derive(Clone, Debug)]
pub struct SharedL2 {
    slices: Vec<SetAssocCache>,
    torus: Torus,
    hit_latency: u64,
    dram: Dram,
    stats: SharedStats,
    /// `slices.len() - 1` when the slice count is a power of two (the
    /// common Table 2 core counts), letting `slice_of` mask instead of
    /// divide; `None` falls back to the modulo.
    slice_mask: Option<u64>,
}

impl SharedL2 {
    /// Builds the Table 2 L2 for `n_cores` cores.
    pub fn table2(n_cores: usize) -> Self {
        SharedL2::new(
            n_cores,
            1024 * 1024,
            16,
            16,
            ReplacementKind::Lru,
            Torus::new(n_cores),
            Dram::default(),
        )
    }

    /// Builds an L2 from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero (via the torus) or the slice geometry is
    /// degenerate (via [`CacheGeometry::new`]).
    pub fn new(
        n_cores: usize,
        bytes_per_core: u64,
        assoc: usize,
        hit_latency: u64,
        repl: ReplacementKind,
        torus: Torus,
        dram: Dram,
    ) -> Self {
        let geom = CacheGeometry::new(bytes_per_core, assoc);
        // Power-of-two slice counts interleave on the low index bits, so
        // those bits are constant within a slice and each slice can be
        // built set-compressed (bit-identical, smaller probe footprint —
        // see `SetAssocCache::new_sliced`). Other slice counts interleave
        // by modulo and get full-size slices.
        let slice_bits = if n_cores.is_power_of_two() {
            let bits = n_cores.trailing_zeros();
            if bits < geom.sets().trailing_zeros() {
                bits
            } else {
                0
            }
        } else {
            0
        };
        // The slices' tag metadata is the memory-bound part of the probe
        // (megabytes of it, far beyond the host caches), so they scan
        // short (u32) tags first and verify hits against the full tags —
        // bit-identical outcomes, half the scanned footprint.
        SharedL2 {
            slices: (0..n_cores)
                .map(|_| SetAssocCache::new_sliced(geom, repl, slice_bits).with_short_tag_scan())
                .collect(),
            torus,
            hit_latency,
            dram,
            stats: SharedStats::default(),
            slice_mask: n_cores.is_power_of_two().then(|| n_cores as u64 - 1),
        }
    }

    /// Which slice a block maps to.
    #[inline]
    pub fn slice_of(&self, block: BlockAddr) -> CoreId {
        let idx = match self.slice_mask {
            Some(mask) => block.index() & mask,
            None => block.index() % self.slices.len() as u64,
        };
        CoreId::new(idx as u16)
    }

    /// Prefetch hint: start pulling in the tag/metadata lines a demand
    /// [`access`](SharedL2::access) of `block` would probe. No
    /// architectural effect; lets the caller overlap the slice probe's
    /// memory latency with its own L1 work.
    #[inline]
    pub fn prefetch(&self, block: BlockAddr) {
        let slice = self.slice_of(block);
        self.slices[slice.as_usize()].prefetch_probe(block);
    }

    /// Serves a demand access from `core` arriving at `now`; returns the
    /// total latency (network + slice hit or memory fill).
    pub fn access(&mut self, core: CoreId, block: BlockAddr, now: Cycle) -> u64 {
        self.stats.l2_accesses += 1;
        let slice = self.slice_of(block);
        let net = self.torus.round_trip(core, slice);
        let cache = &mut self.slices[slice.as_usize()];
        // Latency-only probe: the L2 keeps no aux tags or dirty bits and
        // discards victims, so the untagged path is observably identical.
        if cache.access_untagged(block) {
            net + self.hit_latency
        } else {
            self.stats.l2_misses += 1;
            let mem = self.dram.access(block, now + net / 2 + self.hit_latency);
            net + self.hit_latency + mem
        }
    }

    /// Accepts a dirty writeback from an L1 (charged to the L2 only as a
    /// statistic; writebacks are off the critical path).
    pub fn writeback(&mut self, core: CoreId, block: BlockAddr) {
        let _ = core;
        self.stats.writebacks += 1;
        let slice = self.slice_of(block);
        // Single probe: install unless already resident.
        let _ = self.slices[slice.as_usize()].fill_if_absent(block, 0);
    }

    /// Returns `true` if the block is resident in its slice.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.slices[self.slice_of(block).as_usize()].contains(block)
    }

    /// Accumulated shared-level statistics.
    pub fn stats(&self) -> SharedStats {
        self.stats
    }

    /// Aggregate capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.slices.iter().map(|s| s.geometry().size_bytes()).sum()
    }

    /// Number of slices (= cores).
    pub fn n_slices(&self) -> usize {
        self.slices.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaving_covers_all_slices() {
        let l2 = SharedL2::table2(4);
        let mut seen = [false; 4];
        for i in 0..16 {
            seen[l2.slice_of(BlockAddr::new(i)).as_usize()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn miss_then_hit_latency_ordering() {
        let mut l2 = SharedL2::table2(2);
        let b = BlockAddr::new(3);
        let miss = l2.access(CoreId::new(0), b, 0);
        let hit = l2.access(CoreId::new(0), b, 1000);
        assert!(miss > hit);
        assert!(hit >= l2.hit_latency);
        assert_eq!(l2.stats().l2_accesses, 2);
        assert_eq!(l2.stats().l2_misses, 1);
    }

    #[test]
    fn remote_slice_costs_network() {
        let mut l2 = SharedL2::table2(4);
        // Warm both blocks first.
        let local = BlockAddr::new(0); // slice 0
        let remote = BlockAddr::new(1); // slice 1
        l2.access(CoreId::new(0), local, 0);
        l2.access(CoreId::new(0), remote, 0);
        let l_local = l2.access(CoreId::new(0), local, 10_000);
        let l_remote = l2.access(CoreId::new(0), remote, 10_000);
        assert!(l_remote > l_local, "remote slice adds torus hops");
    }

    #[test]
    fn writeback_installs_block() {
        let mut l2 = SharedL2::table2(2);
        let b = BlockAddr::new(9);
        assert!(!l2.contains(b));
        l2.writeback(CoreId::new(1), b);
        assert!(l2.contains(b));
        assert_eq!(l2.stats().writebacks, 1);
    }

    #[test]
    fn capacity_scales() {
        assert_eq!(SharedL2::table2(4).capacity_bytes(), 4 * 1024 * 1024);
        assert_eq!(SharedL2::table2(16).n_slices(), 16);
    }
}
