//! Explicit SIMD way-scan kernels for the packed-tag compare.
//!
//! The set-associative caches ([`crate::cache::SetAssocCache`], and the
//! NUCA L2 slices built on it) spend their hot path comparing one needle
//! against every way of a set: `N` packed `u64` tags, or `N` `u32` short
//! tags on the sidecar first pass. PR 2 wrote those as fixed-`N`
//! branchless scalar loops and relied on autovectorization; this module
//! makes the vector form explicit — AVX2 `std::arch` intrinsics on
//! x86-64, compare-equal plus movemask, one instruction per four (u64)
//! or eight (u32) ways — with the original scalar loop kept verbatim as
//! the portable fallback and as the differential reference.
//!
//! Both kernels return `(match_mask, invalid_mask)`: bit `w` of the
//! first mask is set iff way `w` equals the needle, bit `w` of the
//! second iff way `w` holds the all-zero invalid sentinel
//! (`TAG_INVALID` for full tags; a cleared short tag on the sidecar).
//!
//! Dispatch is one cached feature probe (a relaxed atomic load after the
//! first call; constant-folded away entirely when the build already
//! targets AVX2, e.g. CI's `-C target-cpu=x86-64-v3`). The
//! `portable-scan` cargo feature forces the fallback at compile time so
//! CI can prove both paths pass the same differential proptests; the
//! SIMD kernels themselves stay compiled and directly testable on any
//! x86-64 host via [`simd_scan_u64`] / [`simd_scan_u32`].

/// Scalar reference kernel over `N` packed `u64` tags — byte-for-byte
/// the PR 2 loop, kept as both the portable fallback and the
/// differential baseline the SIMD path is pinned to.
#[inline(always)]
pub fn portable_scan_u64<const N: usize>(tags: &[u64; N], needle: u64) -> (u32, u32) {
    let mut hit = 0u32;
    let mut invalid = 0u32;
    let mut way = 0;
    while way < N {
        hit |= ((tags[way] == needle) as u32) << way;
        invalid |= ((tags[way] == 0) as u32) << way;
        way += 1;
    }
    (hit, invalid)
}

/// Scalar reference kernel over `N` short (`u32`) tags; the sidecar twin
/// of [`portable_scan_u64`].
#[inline(always)]
pub fn portable_scan_u32<const N: usize>(shorts: &[u32; N], needle: u32) -> (u32, u32) {
    let mut hit = 0u32;
    let mut invalid = 0u32;
    let mut way = 0;
    while way < N {
        hit |= ((shorts[way] == needle) as u32) << way;
        invalid |= ((shorts[way] == 0) as u32) << way;
        way += 1;
    }
    (hit, invalid)
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        __m256i, _mm256_castsi256_pd, _mm256_castsi256_ps, _mm256_cmpeq_epi32, _mm256_cmpeq_epi64,
        _mm256_loadu_si256, _mm256_movemask_pd, _mm256_movemask_ps, _mm256_set1_epi32,
        _mm256_set1_epi64x, _mm256_setzero_si256, _mm_castsi128_ps, _mm_cmpeq_epi32,
        _mm_loadu_si128, _mm_movemask_ps, _mm_set1_epi32, _mm_setzero_si128,
    };

    /// AVX2 kernel over `N` packed `u64` tags: `cmpeq_epi64` + `movemask_pd`
    /// gives four way-compare bits per 256-bit lane.
    ///
    /// # Safety
    /// Caller guarantees AVX2 is available and `N` is a multiple of 4
    /// (unaligned loads tile the array exactly).
    #[target_feature(enable = "avx2")]
    pub unsafe fn scan_u64<const N: usize>(tags: &[u64; N], needle: u64) -> (u32, u32) {
        let vneedle = _mm256_set1_epi64x(needle as i64);
        let vzero = _mm256_setzero_si256();
        let ptr = tags.as_ptr();
        let mut hit = 0u32;
        let mut invalid = 0u32;
        let mut way = 0;
        while way < N {
            let lane = _mm256_loadu_si256(ptr.add(way) as *const __m256i);
            let h = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(lane, vneedle)));
            let z = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(lane, vzero)));
            hit |= (h as u32) << way;
            invalid |= (z as u32) << way;
            way += 4;
        }
        (hit, invalid)
    }

    /// AVX2 kernel over `N` short (`u32`) tags: `cmpeq_epi32` +
    /// `movemask_ps`, eight way-compare bits per 256-bit lane (one
    /// 128-bit lane when `N == 4`).
    ///
    /// # Safety
    /// Caller guarantees AVX2 is available and `N` is a multiple of 4.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scan_u32<const N: usize>(shorts: &[u32; N], needle: u32) -> (u32, u32) {
        let ptr = shorts.as_ptr();
        let mut hit = 0u32;
        let mut invalid = 0u32;
        let mut way = 0;
        if N.is_multiple_of(8) {
            let vneedle = _mm256_set1_epi32(needle as i32);
            let vzero = _mm256_setzero_si256();
            while way < N {
                let lane = _mm256_loadu_si256(ptr.add(way) as *const __m256i);
                let h = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(lane, vneedle)));
                let z = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(lane, vzero)));
                hit |= (h as u32) << way;
                invalid |= (z as u32) << way;
                way += 8;
            }
        } else {
            let vneedle = _mm_set1_epi32(needle as i32);
            let vzero = _mm_setzero_si128();
            while way < N {
                let lane = _mm_loadu_si128(ptr.add(way) as *const std::arch::x86_64::__m128i);
                let h = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(lane, vneedle)));
                let z = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(lane, vzero)));
                hit |= (h as u32) << way;
                invalid |= (z as u32) << way;
                way += 4;
            }
        }
        (hit, invalid)
    }

    /// Cached AVX2 probe: constant `true` when the build already targets
    /// AVX2, one `is_x86_feature_detected!` on first call otherwise
    /// (then a relaxed load — the scan path pays one predictable branch).
    #[inline(always)]
    pub fn avx2_available() -> bool {
        #[cfg(target_feature = "avx2")]
        {
            true
        }
        #[cfg(not(target_feature = "avx2"))]
        {
            use std::sync::atomic::{AtomicU8, Ordering};
            static AVX2: AtomicU8 = AtomicU8::new(0);
            match AVX2.load(Ordering::Relaxed) {
                1 => true,
                2 => false,
                _ => {
                    let yes = std::is_x86_feature_detected!("avx2");
                    AVX2.store(if yes { 1 } else { 2 }, Ordering::Relaxed);
                    yes
                }
            }
        }
    }
}

/// The SIMD `u64` kernel under an explicit runtime gate — the
/// differential-test entry point. Returns `None` off x86-64, when the
/// host lacks AVX2, or when `N` doesn't tile 256-bit lanes; the caller
/// (a proptest comparing against [`portable_scan_u64`]) skips then.
pub fn simd_scan_u64<const N: usize>(tags: &[u64; N], needle: u64) -> Option<(u32, u32)> {
    #[cfg(target_arch = "x86_64")]
    {
        if N.is_multiple_of(4) && N <= 32 && x86::avx2_available() {
            // SAFETY: AVX2 just confirmed; N tiles the loads.
            return Some(unsafe { x86::scan_u64(tags, needle) });
        }
    }
    let _ = (tags, needle);
    None
}

/// The SIMD `u32` kernel under an explicit runtime gate; the short-tag
/// twin of [`simd_scan_u64`].
pub fn simd_scan_u32<const N: usize>(shorts: &[u32; N], needle: u32) -> Option<(u32, u32)> {
    #[cfg(target_arch = "x86_64")]
    {
        if N.is_multiple_of(4) && N <= 32 && x86::avx2_available() {
            // SAFETY: AVX2 just confirmed; N tiles the loads.
            return Some(unsafe { x86::scan_u32(shorts, needle) });
        }
    }
    let _ = (shorts, needle);
    None
}

/// Hot-path way scan over `N` packed `u64` tags: AVX2 when available
/// (and not forced portable), the scalar loop otherwise. Bit-identical
/// either way — proptested in this module and pinned end-to-end by the
/// golden report snapshot.
#[inline(always)]
pub fn scan_masks_u64<const N: usize>(tags: &[u64; N], needle: u64) -> (u32, u32) {
    #[cfg(all(target_arch = "x86_64", not(feature = "portable-scan")))]
    {
        if N.is_multiple_of(4) && N <= 32 && x86::avx2_available() {
            // SAFETY: AVX2 just confirmed; N tiles the loads.
            return unsafe { x86::scan_u64(tags, needle) };
        }
    }
    portable_scan_u64(tags, needle)
}

/// Hot-path way scan over `N` short (`u32`) tags; the sidecar twin of
/// [`scan_masks_u64`].
#[inline(always)]
pub fn scan_masks_u32<const N: usize>(shorts: &[u32; N], needle: u32) -> (u32, u32) {
    #[cfg(all(target_arch = "x86_64", not(feature = "portable-scan")))]
    {
        if N.is_multiple_of(4) && N <= 32 && x86::avx2_available() {
            // SAFETY: AVX2 just confirmed; N tiles the loads.
            return unsafe { x86::scan_u32(shorts, needle) };
        }
    }
    portable_scan_u32(shorts, needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Tag values weighted toward the collision-relevant cases: the
    /// invalid sentinel, values equal to a fixed needle, and arbitrary
    /// packed tags.
    fn tag_vec(n: usize, needle: u64) -> impl Strategy<Value = Vec<u64>> {
        prop::collection::vec(
            prop_oneof![
                Just(0u64),
                Just(needle),
                any::<u64>(),
                any::<u64>().prop_map(|v| v | 1 << 63),
            ],
            n..n + 1,
        )
    }

    fn short_vec(n: usize, needle: u32) -> impl Strategy<Value = Vec<u32>> {
        prop::collection::vec(
            prop_oneof![
                Just(0u32),
                Just(needle),
                any::<u32>(),
                any::<u32>().prop_map(|v| v | 1 << 31),
            ],
            n..n + 1,
        )
    }

    fn check_u64<const N: usize>(tags: &[u64], needle: u64) -> Result<(), TestCaseError> {
        let tags: &[u64; N] = tags.try_into().expect("sized by the strategy");
        let reference = portable_scan_u64(tags, needle);
        prop_assert_eq!(scan_masks_u64(tags, needle), reference, "dispatch path");
        if let Some(simd) = simd_scan_u64(tags, needle) {
            prop_assert_eq!(simd, reference, "explicit SIMD path");
        }
        Ok(())
    }

    fn check_u32<const N: usize>(shorts: &[u32], needle: u32) -> Result<(), TestCaseError> {
        let shorts: &[u32; N] = shorts.try_into().expect("sized by the strategy");
        let reference = portable_scan_u32(shorts, needle);
        prop_assert_eq!(scan_masks_u32(shorts, needle), reference, "dispatch path");
        if let Some(simd) = simd_scan_u32(shorts, needle) {
            prop_assert_eq!(simd, reference, "explicit SIMD path");
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn u64_scan_matches_scalar_across_geometries(
            needle in any::<u64>().prop_map(|v| v | 1 << 63),
            tags4 in tag_vec(4, 0x8000_0000_0000_1234),
            tags8 in tag_vec(8, 0x8000_0000_0000_1234),
            tags16 in tag_vec(16, 0x8000_0000_0000_1234),
        ) {
            check_u64::<4>(&tags4, needle)?;
            check_u64::<8>(&tags8, needle)?;
            check_u64::<16>(&tags16, needle)?;
            // And with a needle guaranteed to be resident-or-sentinel.
            check_u64::<8>(&tags8, 0x8000_0000_0000_1234)?;
            check_u64::<8>(&tags8, 0)?;
        }

        #[test]
        fn u32_scan_matches_scalar_across_geometries(
            needle in any::<u32>().prop_map(|v| v | 1 << 31),
            shorts4 in short_vec(4, 0x8000_4321),
            shorts8 in short_vec(8, 0x8000_4321),
            shorts16 in short_vec(16, 0x8000_4321),
        ) {
            check_u32::<4>(&shorts4, needle)?;
            check_u32::<8>(&shorts8, needle)?;
            check_u32::<16>(&shorts16, needle)?;
            check_u32::<8>(&shorts8, 0x8000_4321)?;
            check_u32::<8>(&shorts8, 0)?;
        }
    }

    #[test]
    fn masks_name_exact_ways() {
        let mut tags = [0u64; 8];
        tags[2] = 0x8000_0000_0000_aaaa;
        tags[5] = 0x8000_0000_0000_bbbb;
        let (hit, invalid) = scan_masks_u64(&tags, 0x8000_0000_0000_bbbb);
        assert_eq!(hit, 1 << 5);
        assert_eq!(invalid, 0b1101_1011);
    }
}
