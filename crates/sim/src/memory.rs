//! Main-memory (DDR3) latency model.
//!
//! Table 2 of the paper specifies DDR3-1600 with a 42 ns access latency, two
//! channels, one rank, eight banks and an open-page policy. At the 2.5 GHz
//! core clock, 42 ns is 105 core cycles. This model keeps per-bank open-row
//! state: a row hit saves the precharge + activate portion of the latency,
//! a row conflict pays it. Queueing is modeled with a per-bank busy-until
//! timestamp, which captures bank-conflict serialization without a full
//! controller model (documented substitution; identical for all schedulers).

use crate::addr::BlockAddr;
use crate::ids::Cycle;

/// Configuration of the DRAM model, in core cycles.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct DramConfig {
    /// Cycles for a row-buffer hit (CAS + transfer + wire).
    pub row_hit_latency: u64,
    /// Extra cycles for a row conflict (precharge + activate).
    pub row_conflict_penalty: u64,
    /// Cycles a bank stays busy per request (tRC-derived occupancy).
    pub bank_occupancy: u64,
    /// Number of channels.
    pub channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Row size in cache blocks (open-page granularity).
    pub row_blocks: u64,
}

impl Default for DramConfig {
    /// Table 2 values mapped to 2.5 GHz core cycles: 42 ns ≈ 105 cycles
    /// total for a row-miss access; a row hit saves tRP + tRCD
    /// (10 + 10 bus cycles at 800 MHz ≈ 62 core cycles are split between
    /// hit latency and conflict penalty below).
    fn default() -> Self {
        DramConfig {
            row_hit_latency: 60,
            row_conflict_penalty: 45,
            bank_occupancy: 30,
            channels: 2,
            banks_per_channel: 8,
            row_blocks: 128, // 8 KB rows / 64 B blocks
        }
    }
}

#[derive(Copy, Clone, Debug, Default)]
struct Bank {
    open_row: Option<u64>,
    busy_until: Cycle,
}

/// Statistics kept by the DRAM model.
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub struct DramStats {
    /// Total requests served.
    pub requests: u64,
    /// Requests that hit the open row.
    pub row_hits: u64,
    /// Requests delayed by a busy bank.
    pub bank_conflicts: u64,
}

/// The DRAM latency model.
///
/// # Examples
///
/// ```
/// use strex_sim::addr::BlockAddr;
/// use strex_sim::memory::Dram;
///
/// let mut dram = Dram::default();
/// let first = dram.access(BlockAddr::new(0), 0);
/// let again = dram.access(BlockAddr::new(1), first);
/// assert!(again < first, "second access hits the open row");
/// ```
#[derive(Clone, Debug)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<Bank>,
    stats: DramStats,
    /// Shift/mask fast path for the bank/row mapping when both the row
    /// size and the bank count are powers of two (the Table 2 defaults);
    /// `None` falls back to division.
    pow2: Option<DramPow2>,
}

/// Precomputed shifts/masks for power-of-two DRAM address mapping.
#[derive(Copy, Clone, Debug)]
struct DramPow2 {
    row_shift: u32,
    bank_mask: u64,
    row_of_shift: u32,
}

impl Default for Dram {
    fn default() -> Self {
        Dram::new(DramConfig::default())
    }
}

impl Dram {
    /// Creates a DRAM model from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero channels or banks.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(
            cfg.channels > 0 && cfg.banks_per_channel > 0,
            "DRAM needs at least one bank"
        );
        let total_banks = (cfg.channels * cfg.banks_per_channel) as u64;
        let pow2 =
            (cfg.row_blocks.is_power_of_two() && total_banks.is_power_of_two()).then(|| DramPow2 {
                row_shift: cfg.row_blocks.trailing_zeros(),
                bank_mask: total_banks - 1,
                row_of_shift: cfg.row_blocks.trailing_zeros() + total_banks.trailing_zeros(),
            });
        Dram {
            cfg,
            banks: vec![Bank::default(); cfg.channels * cfg.banks_per_channel],
            stats: DramStats::default(),
            pow2,
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    #[inline]
    fn bank_of(&self, block: BlockAddr) -> usize {
        // Channel interleaving on low block bits, bank on the next bits —
        // adjacent blocks spread over channels, rows stay within a bank.
        match self.pow2 {
            Some(p) => ((block.index() >> p.row_shift) & p.bank_mask) as usize,
            None => {
                let total = self.banks.len() as u64;
                (block.index() / self.cfg.row_blocks % total) as usize
            }
        }
    }

    #[inline]
    fn row_of(&self, block: BlockAddr) -> u64 {
        match self.pow2 {
            Some(p) => block.index() >> p.row_of_shift,
            None => block.index() / (self.cfg.row_blocks * self.banks.len() as u64),
        }
    }

    /// Serves a block request arriving at `now`; returns the access latency
    /// in cycles (including any time queued behind the bank).
    ///
    /// Queueing is bounded: outstanding misses are limited by the MSHRs in
    /// front of the memory controller (Table 2: 64 at the L2), so a request
    /// can wait behind at most a few bank-occupancy slots. The cap also
    /// keeps the cycle-approximate core skew (cores are simulated in
    /// batches) from manufacturing phantom queueing.
    pub fn access(&mut self, block: BlockAddr, now: Cycle) -> u64 {
        self.stats.requests += 1;
        let row = self.row_of(block);
        let bank_idx = self.bank_of(block);
        let bank = &mut self.banks[bank_idx];

        let queue_cap = self.cfg.bank_occupancy * 6;
        let queue_delay = bank.busy_until.saturating_sub(now).min(queue_cap);
        if queue_delay > 0 {
            self.stats.bank_conflicts += 1;
        }

        let service = if bank.open_row == Some(row) {
            self.stats.row_hits += 1;
            self.cfg.row_hit_latency
        } else {
            bank.open_row = Some(row);
            self.cfg.row_hit_latency + self.cfg.row_conflict_penalty
        };

        let start = now + queue_delay;
        bank.busy_until = bank.busy_until.max(start).min(now + queue_cap) + self.cfg.bank_occupancy;
        queue_delay + service
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_is_row_conflict() {
        let mut d = Dram::default();
        let lat = d.access(BlockAddr::new(0), 0);
        assert_eq!(
            lat,
            d.config().row_hit_latency + d.config().row_conflict_penalty
        );
        assert_eq!(d.stats().row_hits, 0);
    }

    #[test]
    fn open_row_hit_is_cheaper() {
        let mut d = Dram::default();
        let miss = d.access(BlockAddr::new(0), 0);
        let hit = d.access(BlockAddr::new(1), 1000);
        assert!(hit < miss);
        assert_eq!(d.stats().row_hits, 1);
    }

    #[test]
    fn bank_conflict_queues() {
        let mut d = Dram::default();
        let l1 = d.access(BlockAddr::new(0), 0);
        // Same bank, immediately after: must queue.
        let l2 = d.access(BlockAddr::new(1), 0);
        assert!(l2 > l1 - d.config().row_conflict_penalty);
        assert_eq!(d.stats().bank_conflicts, 1);
    }

    #[test]
    fn different_banks_do_not_queue() {
        let mut d = Dram::default();
        let row_blocks = d.config().row_blocks;
        d.access(BlockAddr::new(0), 0);
        let l2 = d.access(BlockAddr::new(row_blocks), 0); // next bank
        assert_eq!(d.stats().bank_conflicts, 0);
        assert_eq!(
            l2,
            d.config().row_hit_latency + d.config().row_conflict_penalty
        );
    }

    #[test]
    fn distinct_rows_conflict_in_same_bank() {
        let mut d = Dram::default();
        let stride = d.config().row_blocks * d.banks.len() as u64;
        d.access(BlockAddr::new(0), 0);
        let lat = d.access(BlockAddr::new(stride), 10_000);
        assert_eq!(
            lat,
            d.config().row_hit_latency + d.config().row_conflict_penalty,
            "new row in same bank pays the conflict penalty"
        );
    }

    #[test]
    fn stats_count_requests() {
        let mut d = Dram::default();
        for i in 0..10 {
            d.access(BlockAddr::new(i), i * 1000);
        }
        assert_eq!(d.stats().requests, 10);
    }
}
