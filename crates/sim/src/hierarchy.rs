//! The complete CMP memory system: per-core L1-I/L1-D, MESI coherence,
//! shared NUCA L2, DRAM, prefetchers and cache signatures.
//!
//! [`MemorySystem`] is the single mutable substrate the schedulers in the
//! `strex` crate drive. Its API is shaped by what the paper's mechanisms
//! observe:
//!
//! * **STREX** tags every touched L1-I block with the core's current phase
//!   ([`MemorySystem::fetch_inst`] takes the tag) and watches victims
//!   (the returned [`InstFetch::evicted`]).
//! * **SLICC** consults remote cache signatures
//!   ([`MemorySystem::l1i_signature`]) and counts recent misses.
//! * The **overlap analysis** (Figure 2) asks how many L1-Is hold a block
//!   ([`MemorySystem::l1i_holder_count`]).

use crate::addr::{Addr, BlockAddr};
use crate::cache::{FetchProbe, SetAssocCache, Victim};
use crate::coherence::Directory;
use crate::config::SystemConfig;
use crate::ids::{CoreId, Cycle};
use crate::interconnect::Torus;
use crate::l2::SharedL2;
use crate::memory::Dram;
use crate::signature::CacheSignature;
use crate::stats::{SharedStats, SystemStats};

/// Outcome of one instruction-block fetch.
#[derive(Copy, Clone, Debug)]
pub struct InstFetch {
    /// Stall cycles the fetch adds beyond the pipelined base cost.
    pub stall: u64,
    /// Whether the block was found in the L1-I.
    pub hit: bool,
    /// Block displaced by the demand fill, if any — STREX's victim monitor.
    pub evicted: Option<Victim>,
}

/// Outcome of one data access.
#[derive(Copy, Clone, Debug)]
pub struct DataAccess {
    /// Stall cycles beyond the base cost.
    pub stall: u64,
    /// Whether the access hit in the local L1-D.
    pub hit: bool,
    /// Whether a miss was served by another core's cache (coherence miss).
    pub coherence: bool,
}

/// The simulated memory hierarchy.
///
/// # Examples
///
/// ```
/// use strex_sim::addr::BlockAddr;
/// use strex_sim::config::SystemConfig;
/// use strex_sim::hierarchy::MemorySystem;
/// use strex_sim::ids::CoreId;
///
/// let mut mem = MemorySystem::new(SystemConfig::with_cores(2));
/// let cold = mem.fetch_inst(CoreId::new(0), BlockAddr::new(1), 0, 0);
/// assert!(!cold.hit);
/// let warm = mem.fetch_inst(CoreId::new(0), BlockAddr::new(1), 0, 10);
/// assert!(warm.hit && warm.stall == 0);
/// ```
#[derive(Clone, Debug)]
pub struct MemorySystem {
    cfg: SystemConfig,
    l1i: Vec<SetAssocCache>,
    l1d: Vec<SetAssocCache>,
    signatures: Vec<CacheSignature>,
    directory: Directory,
    l2: SharedL2,
    torus: Torus,
    stats: SystemStats,
}

impl MemorySystem {
    /// Builds the hierarchy described by `cfg`.
    pub fn new(cfg: SystemConfig) -> Self {
        let n = cfg.n_cores;
        let torus = Torus::with_hop_latency(n, cfg.hop_latency);
        MemorySystem {
            l1i: (0..n)
                .map(|_| SetAssocCache::new(cfg.l1i_geometry, cfg.l1i_replacement))
                .collect(),
            l1d: (0..n)
                .map(|_| SetAssocCache::new(cfg.l1d_geometry, cfg.l1d_replacement))
                .collect(),
            signatures: (0..n).map(|_| CacheSignature::new()).collect(),
            directory: Directory::new(n),
            l2: SharedL2::new(
                n,
                cfg.l2_bytes_per_core,
                cfg.l2_assoc,
                cfg.l2_hit_latency,
                cfg.l2_replacement,
                torus.clone(),
                Dram::new(cfg.dram),
            ),
            torus,
            stats: SystemStats::new(n),
            cfg,
        }
    }

    /// The configuration this system was built from.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.cfg.n_cores
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SystemStats {
        &self.stats
    }

    /// Shared L2/memory statistics.
    pub fn shared_stats(&self) -> SharedStats {
        self.l2.stats()
    }

    /// Credits `n` retired instructions to `core` (the driver calls this as
    /// it consumes fetch groups; MPKI denominators come from here).
    pub fn add_instructions(&mut self, core: CoreId, n: u64) {
        self.stats.cores[core.as_usize()].instructions += n;
    }

    /// Fetches one instruction block on `core`, tagging the L1-I frame with
    /// `phase_tag` whether the access hits or misses (STREX semantics).
    ///
    /// Returns the stall cycles, hit flag and any demand-fill victim.
    pub fn fetch_inst(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        phase_tag: u8,
        now: Cycle,
    ) -> InstFetch {
        let c = core.as_usize();
        self.stats.cores[c].i_accesses += 1;

        // Single probe: hit bookkeeping (replacement update + phase retag)
        // or miss fill, and the fill's victim, all from one tag scan.
        let probe = self.l1i[c].access(block, phase_tag);
        self.finish_fetch(core, block, phase_tag, now, probe)
    }

    /// One read-only L1-I scan for an imminent fetch of `block` on `core`,
    /// answering both what STREX's victim monitor asks (lazily, through
    /// [`l1i_probe_victim`](MemorySystem::l1i_probe_victim)) and what the
    /// demand access needs. Feed it to
    /// [`fetch_inst_probed`](MemorySystem::fetch_inst_probed) — or drop it,
    /// at zero architectural cost, if the monitor abandons the fetch.
    #[inline]
    pub fn probe_fetch(&self, core: CoreId, block: BlockAddr) -> FetchProbe {
        self.l1i[core.as_usize()].probe_fetch(block)
    }

    /// The victim a commit of `probe` on `core`'s L1-I would evict — the
    /// [`l1i_peek_victim`](MemorySystem::l1i_peek_victim) answer derived
    /// from the probe's already-completed scan instead of a fresh one.
    /// Policies that never ask (every non-STREX scheduler) pay nothing.
    #[inline]
    pub fn l1i_probe_victim(&self, core: CoreId, probe: &FetchProbe) -> Option<Victim> {
        self.l1i[core.as_usize()].probe_victim(probe)
    }

    /// Completes the instruction fetch a
    /// [`probe_fetch`](MemorySystem::probe_fetch) scanned for. Bit-identical
    /// to [`fetch_inst`](MemorySystem::fetch_inst) of the probed block —
    /// same stats, same L2 traffic, same prefetches — minus the second tag
    /// scan of the same L1-I set. The probe must be committed before any
    /// other mutation of this core's L1-I (the driver commits within the
    /// same event).
    pub fn fetch_inst_probed(
        &mut self,
        core: CoreId,
        probe: FetchProbe,
        phase_tag: u8,
        now: Cycle,
    ) -> InstFetch {
        let c = core.as_usize();
        self.stats.cores[c].i_accesses += 1;
        let block = probe.block();
        let committed = self.l1i[c].commit_fetch(probe, phase_tag);
        self.finish_fetch(core, block, phase_tag, now, committed)
    }

    /// The shared post-probe tail of [`fetch_inst`](MemorySystem::fetch_inst)
    /// and [`fetch_inst_probed`](MemorySystem::fetch_inst_probed): hit
    /// early-out, else the demand-miss path (L2 access, signature upkeep,
    /// sequential prefetch, stall accounting).
    fn finish_fetch(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        phase_tag: u8,
        now: Cycle,
        probe: crate::cache::Probe,
    ) -> InstFetch {
        let c = core.as_usize();
        if probe.hit {
            return InstFetch {
                stall: 0,
                hit: true,
                evicted: None,
            };
        }
        // Demand miss path. Under PIF-ideal the stall is hidden but the L2
        // still sees the demand traffic (Section 5.3's model).
        let hidden = self.cfg.prefetcher.hides_all_fetch_latency();
        if hidden {
            self.stats.cores[c].i_misses_hidden += 1;
        } else {
            self.stats.cores[c].i_misses += 1;
        }
        let l2_latency = self.l2.access(core, block, now);
        let evicted = probe.evicted;
        self.note_l1i_fill(core, block, evicted.as_ref());

        // Sequential prefetch, optimistically timely.
        for target in self.cfg.prefetcher.prefetch_targets(block) {
            let pf = self.l1i[c].fill_if_absent(target, phase_tag);
            if !pf.hit {
                self.stats.cores[c].prefetches += 1;
                let _ = self.l2.access(core, target, now);
                self.note_l1i_fill(core, target, pf.evicted.as_ref());
            }
        }

        let stall = if hidden { 0 } else { l2_latency };
        self.stats.cores[c].i_stall_cycles += stall;
        InstFetch {
            stall,
            hit: false,
            evicted,
        }
    }

    /// Prefetch hint for an upcoming [`fetch_inst`](MemorySystem::fetch_inst)
    /// of `block`: starts pulling in the L2-slice tag lines a demand miss
    /// would probe. The driver calls this one trace event ahead, so the
    /// (L3-resident) slice metadata loads overlap with simulating the
    /// current event instead of serializing behind it. No architectural
    /// effect whatsoever.
    #[inline]
    pub fn prefetch_fetch(&self, block: BlockAddr) {
        self.l2.prefetch(block);
    }

    fn note_l1i_fill(&mut self, core: CoreId, block: BlockAddr, evicted: Option<&Victim>) {
        let c = core.as_usize();
        self.signatures[c].insert(block);
        if evicted.is_some() && self.signatures[c].note_eviction() {
            // Feed the resident set straight into the rebuild; no
            // intermediate Vec on this (per-128-evictions) path.
            self.signatures[c].rebuild(self.l1i[c].resident_blocks());
        }
    }

    /// Performs a data access on `core`.
    pub fn access_data(
        &mut self,
        core: CoreId,
        addr: Addr,
        is_write: bool,
        now: Cycle,
    ) -> DataAccess {
        let c = core.as_usize();
        let block = addr.block();
        self.stats.cores[c].d_accesses += 1;

        let action = if is_write {
            self.directory.on_write(core, block)
        } else {
            self.directory.on_read(core, block)
        };
        // Carry out invalidations and downgrades decided by the directory.
        let mut remote_penalty = 0u64;
        if let Some(owner) = action.writeback_from {
            if self.l1d[owner.as_usize()].clean(block) {
                self.l2.writeback(owner, block);
            }
            remote_penalty = remote_penalty.max(self.torus.round_trip(core, owner));
        }
        for &victim_core in &action.invalidate {
            self.l1d[victim_core.as_usize()].invalidate(block);
            remote_penalty = remote_penalty.max(self.torus.round_trip(core, victim_core));
        }
        if !action.invalidate.is_empty() {
            self.stats.cores[c].upgrade_invalidations += 1;
        }

        let l1d = &mut self.l1d[c];
        let probe = if is_write {
            l1d.access_write(block, 0)
        } else {
            l1d.access(block, 0)
        };
        if probe.hit {
            let stall = self.cfg.l1_hit_extra + remote_penalty;
            self.stats.cores[c].d_stall_cycles += remote_penalty;
            return DataAccess {
                stall,
                hit: true,
                coherence: false,
            };
        }

        self.stats.cores[c].d_misses += 1;
        if action.coherence_transfer {
            self.stats.cores[c].d_coherence_misses += 1;
        }
        // Miss: the block was installed by `access` above; the displaced
        // frame must leave the directory and write back if dirty.
        if let Some(v) = probe.evicted {
            self.directory.on_evict(core, v.block);
            if v.dirty {
                self.l2.writeback(core, v.block);
            }
        }
        let transfer = if action.coherence_transfer {
            // Cache-to-cache transfer: network plus one L2-directory hop.
            remote_penalty + self.cfg.l2_hit_latency
        } else {
            self.l2.access(core, block, now)
        };
        let stall = self.cfg.l1_hit_extra + transfer;
        self.stats.cores[c].d_stall_cycles += stall;
        DataAccess {
            stall,
            hit: false,
            coherence: action.coherence_transfer,
        }
    }

    /// Charges the latency of saving or restoring one thread context
    /// to/from the L2 slice nearest `core` (Section 4.3: contexts live in
    /// the L2 to avoid thrashing the L1-D).
    ///
    /// `blocks` is the architectural-state size in cache blocks.
    pub fn context_transfer(&mut self, core: CoreId, blocks: u64) -> u64 {
        // The nearest slice is the local one: zero hops, pipelined writes.
        let _ = core;
        self.cfg.l2_hit_latency + blocks.saturating_sub(1)
    }

    // ----- L1-I introspection used by STREX, SLICC and the analyses -----

    /// Would a fill of `block` evict something, and if so what?
    pub fn l1i_peek_victim(&self, core: CoreId, block: BlockAddr) -> Option<Victim> {
        self.l1i[core.as_usize()].peek_victim(block)
    }

    /// Is `block` resident in `core`'s L1-I?
    pub fn l1i_contains(&self, core: CoreId, block: BlockAddr) -> bool {
        self.l1i[core.as_usize()].contains(block)
    }

    /// Phase tag of a resident block.
    pub fn l1i_aux(&self, core: CoreId, block: BlockAddr) -> Option<u8> {
        self.l1i[core.as_usize()].aux(block)
    }

    /// Number of L1-I caches currently holding `block` (Figure 2).
    pub fn l1i_holder_count(&self, block: BlockAddr) -> usize {
        self.l1i.iter().filter(|c| c.contains(block)).count()
    }

    /// The Bloom signature of `core`'s L1-I (SLICC's migration oracle).
    pub fn l1i_signature(&self, core: CoreId) -> &CacheSignature {
        &self.signatures[core.as_usize()]
    }

    /// Resident blocks of `core`'s L1-I.
    pub fn l1i_resident(&self, core: CoreId) -> Vec<BlockAddr> {
        self.l1i[core.as_usize()].resident_blocks().collect()
    }

    /// Occupancy of `core`'s L1-I in blocks.
    pub fn l1i_occupancy(&self, core: CoreId) -> usize {
        self.l1i[core.as_usize()].occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetch::PrefetcherKind;

    fn sys(cores: usize) -> MemorySystem {
        MemorySystem::new(SystemConfig::with_cores(cores))
    }

    #[test]
    fn inst_miss_then_hit() {
        let mut m = sys(2);
        let b = BlockAddr::new(100);
        let first = m.fetch_inst(CoreId::new(0), b, 5, 0);
        assert!(!first.hit);
        assert!(first.stall > 0);
        let second = m.fetch_inst(CoreId::new(0), b, 6, 100);
        assert!(second.hit);
        assert_eq!(second.stall, 0);
        assert_eq!(m.l1i_aux(CoreId::new(0), b), Some(6), "retagged on hit");
        assert_eq!(m.stats().cores[0].i_misses, 1);
        assert_eq!(m.stats().cores[0].i_accesses, 2);
    }

    #[test]
    fn probed_fetch_matches_unfused_fetch() {
        // Two identical hierarchies driven by the same conflicting fetch
        // stream: one through peek_victim + fetch_inst (unfused), one
        // through probe_fetch + fetch_inst_probed (fused). Every outcome
        // and every counter must agree.
        let mut unfused = sys(2);
        let mut fused = sys(2);
        for i in 0..20_000u64 {
            let core = CoreId::new((i % 2) as u16);
            let b = BlockAddr::new((i * 17) % 700);
            let tag = (i % 5) as u8;
            let peek = unfused.l1i_peek_victim(core, b);
            let u = unfused.fetch_inst(core, b, tag, i);
            let probe = fused.probe_fetch(core, b);
            assert_eq!(fused.l1i_probe_victim(core, &probe), peek, "i={i}");
            let f = fused.fetch_inst_probed(core, probe, tag, i);
            assert_eq!(
                (u.hit, u.stall, u.evicted),
                (f.hit, f.stall, f.evicted),
                "i={i}"
            );
        }
        assert_eq!(unfused.stats().aggregate(), fused.stats().aggregate());
        assert_eq!(unfused.shared_stats(), fused.shared_stats());
    }

    #[test]
    fn l1i_isolation_between_cores() {
        let mut m = sys(2);
        let b = BlockAddr::new(7);
        m.fetch_inst(CoreId::new(0), b, 0, 0);
        assert!(m.l1i_contains(CoreId::new(0), b));
        assert!(!m.l1i_contains(CoreId::new(1), b));
        assert_eq!(m.l1i_holder_count(b), 1);
        m.fetch_inst(CoreId::new(1), b, 0, 0);
        assert_eq!(m.l1i_holder_count(b), 2);
    }

    #[test]
    fn second_core_fetch_hits_l2() {
        let mut m = sys(2);
        let b = BlockAddr::new(7);
        let cold = m.fetch_inst(CoreId::new(0), b, 0, 0);
        let warm = m.fetch_inst(CoreId::new(1), b, 0, 10_000);
        assert!(warm.stall < cold.stall, "second core served from L2");
    }

    #[test]
    fn data_hit_after_fill() {
        let mut m = sys(2);
        let a = Addr::new(4096);
        let miss = m.access_data(CoreId::new(0), a, false, 0);
        assert!(!miss.hit);
        let hit = m.access_data(CoreId::new(0), a, false, 100);
        assert!(hit.hit);
        assert_eq!(hit.stall, m.config().l1_hit_extra);
    }

    #[test]
    fn write_invalidates_other_core() {
        let mut m = sys(2);
        let a = Addr::new(8192);
        m.access_data(CoreId::new(0), a, false, 0);
        m.access_data(CoreId::new(1), a, false, 0);
        // Core 1 writes: core 0 loses its copy.
        let w = m.access_data(CoreId::new(1), a, true, 10);
        assert!(w.hit, "upgrade on a resident shared block");
        assert_eq!(m.stats().cores[1].upgrade_invalidations, 1);
        // Core 0 re-read: coherence miss.
        let r = m.access_data(CoreId::new(0), a, false, 20);
        assert!(!r.hit);
        assert!(r.coherence);
        assert_eq!(m.stats().cores[0].d_coherence_misses, 1);
    }

    #[test]
    fn dirty_data_downgraded_on_remote_read() {
        let mut m = sys(2);
        let a = Addr::new(12345 * 64);
        m.access_data(CoreId::new(0), a, true, 0);
        let r = m.access_data(CoreId::new(1), a, false, 10);
        assert!(!r.hit);
        assert!(r.coherence, "served by the dirty owner");
        assert!(m.shared_stats().writebacks >= 1);
    }

    #[test]
    fn pif_hides_stalls_but_counts_hidden_misses() {
        let cfg = SystemConfig::with_cores(2).with_prefetcher(PrefetcherKind::PifIdeal);
        let mut m = MemorySystem::new(cfg);
        let f = m.fetch_inst(CoreId::new(0), BlockAddr::new(50), 0, 0);
        assert!(!f.hit);
        assert_eq!(f.stall, 0);
        assert_eq!(m.stats().cores[0].i_misses, 0);
        assert_eq!(m.stats().cores[0].i_misses_hidden, 1);
        assert!(m.shared_stats().l2_accesses >= 1, "traffic still generated");
    }

    #[test]
    fn next_line_prefetch_installs_successor() {
        let cfg = SystemConfig::with_cores(2).with_prefetcher(PrefetcherKind::NextLine);
        let mut m = MemorySystem::new(cfg);
        let b = BlockAddr::new(200);
        m.fetch_inst(CoreId::new(0), b, 0, 0);
        assert!(m.l1i_contains(CoreId::new(0), b.next()));
        assert_eq!(m.stats().cores[0].prefetches, 1);
        // Demand on the prefetched block is a hit.
        let f = m.fetch_inst(CoreId::new(0), b.next(), 0, 10);
        assert!(f.hit);
    }

    #[test]
    fn victim_reported_with_phase_tag() {
        let mut m = sys(1);
        let geom = m.config().l1i_geometry;
        let sets = geom.sets() as u64;
        // Fill one set beyond capacity: blocks that all map to set 0.
        for i in 0..geom.assoc() as u64 {
            m.fetch_inst(CoreId::new(0), BlockAddr::new(i * sets), 3, 0);
        }
        let f = m.fetch_inst(
            CoreId::new(0),
            BlockAddr::new(geom.assoc() as u64 * sets),
            4,
            0,
        );
        let v = f.evicted.expect("set was full");
        assert_eq!(v.aux, 3, "victim carries its phase tag");
    }

    #[test]
    fn context_transfer_latency_scales() {
        let mut m = sys(2);
        let short = m.context_transfer(CoreId::new(0), 1);
        let long = m.context_transfer(CoreId::new(0), 8);
        assert!(long > short);
        assert_eq!(short, m.config().l2_hit_latency);
    }

    #[test]
    fn signature_tracks_fills() {
        let mut m = sys(1);
        let b = BlockAddr::new(77);
        m.fetch_inst(CoreId::new(0), b, 0, 0);
        assert!(m.l1i_signature(CoreId::new(0)).may_contain(b));
    }

    #[test]
    fn instruction_crediting() {
        let mut m = sys(2);
        m.add_instructions(CoreId::new(0), 500);
        m.add_instructions(CoreId::new(1), 1500);
        assert_eq!(m.stats().instructions(), 2000);
    }
}
