//! # strex-sim
//!
//! Cycle-approximate chip-multiprocessor **memory hierarchy simulator** — the
//! hardware substrate of the STREX (ISCA 2013) reproduction.
//!
//! The crate models the system of Table 2 of the paper:
//!
//! * private per-core 32 KB / 8-way L1 instruction and data caches with
//!   64-byte blocks and pluggable replacement policies
//!   ([`replacement::ReplacementKind`]: LRU, LIP, BIP, SRRIP, BRRIP);
//! * MESI coherence across the L1-Ds ([`coherence::Directory`]);
//! * a shared NUCA L2 (1 MB per core, 16-way, 16-cycle hit) whose slices are
//!   interleaved across a 2-D torus ([`l2::SharedL2`], [`interconnect::Torus`]);
//! * a DDR3-style DRAM latency model ([`memory::Dram`]);
//! * instruction prefetchers ([`prefetch::PrefetcherKind`]): a next-line
//!   prefetcher and the paper's idealized-PIF upper bound;
//! * per-core cache *signatures* ([`signature::CacheSignature`]) used by the
//!   SLICC scheduler to locate code segments in remote caches.
//!
//! Two STREX-specific hooks distinguish this hierarchy from a generic cache
//! simulator: every L1-I frame carries an **8-bit phase tag** (the paper's
//! PIDT), and instruction fetches report the **victim block and its tag**,
//! which is exactly the signal STREX's victim monitor consumes.
//!
//! ## Quick example
//!
//! ```
//! use strex_sim::addr::BlockAddr;
//! use strex_sim::config::SystemConfig;
//! use strex_sim::hierarchy::MemorySystem;
//! use strex_sim::ids::CoreId;
//!
//! let mut mem = MemorySystem::new(SystemConfig::with_cores(4));
//! let core = CoreId::new(0);
//! let fetch = mem.fetch_inst(core, BlockAddr::new(0x100), /*phase*/ 0, /*now*/ 0);
//! assert!(!fetch.hit); // cold cache
//! mem.add_instructions(core, 10);
//! assert!(mem.stats().i_mpki() > 0.0);
//! ```

pub mod addr;
pub mod cache;
pub mod coherence;
pub mod config;
pub mod hierarchy;
pub mod ids;
pub mod interconnect;
pub mod l2;
pub mod memory;
pub mod prefetch;
pub mod refcache;
pub mod replacement;
pub mod signature;
pub mod stats;
pub mod wayscan;

pub use addr::{Addr, AddrRange, BlockAddr, BLOCK_SIZE};
pub use cache::{CacheGeometry, GeometryError, Probe, SetAssocCache, Victim};
pub use config::SystemConfig;
pub use hierarchy::{DataAccess, InstFetch, MemorySystem};
pub use ids::{CoreId, Cycle, PhaseId, ThreadId, TxnTypeId};
pub use prefetch::PrefetcherKind;
pub use replacement::ReplacementKind;
pub use stats::{CoreStats, SystemStats};
