//! Cache content signatures for SLICC (Table 4: 2K-bit cache signature).
//!
//! SLICC decides where to migrate a thread by asking which remote L1-I
//! likely holds the blocks the thread is missing on. Hardware answers this
//! with a per-core Bloom-filter signature of L1-I contents, updated on fills
//! and periodically rebuilt (Bloom filters cannot delete). This module
//! implements exactly that: a 2048-bit filter with two hash functions and a
//! rebuild triggered after a bounded number of evictions, fed from the
//! ground-truth resident set.

use crate::addr::BlockAddr;

/// Signature size in bits (Table 4 budget).
pub const SIGNATURE_BITS: usize = 2048;

/// Evictions tolerated before the filter is rebuilt from the resident set.
const REBUILD_THRESHOLD: u32 = 128;

/// A Bloom-filter signature of one L1-I's contents.
///
/// # Examples
///
/// ```
/// use strex_sim::addr::BlockAddr;
/// use strex_sim::signature::CacheSignature;
///
/// let mut sig = CacheSignature::new();
/// sig.insert(BlockAddr::new(42));
/// assert!(sig.may_contain(BlockAddr::new(42)));
/// ```
#[derive(Clone, Debug)]
pub struct CacheSignature {
    bits: [u64; SIGNATURE_BITS / 64],
    evictions_since_rebuild: u32,
    insertions: u64,
}

impl Default for CacheSignature {
    fn default() -> Self {
        CacheSignature::new()
    }
}

impl CacheSignature {
    /// Creates an empty signature.
    pub fn new() -> Self {
        CacheSignature {
            bits: [0u64; SIGNATURE_BITS / 64],
            evictions_since_rebuild: 0,
            insertions: 0,
        }
    }

    fn hash1(block: BlockAddr) -> usize {
        // Fibonacci hashing on the block index.
        let h = block.index().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 53) as usize % SIGNATURE_BITS
    }

    fn hash2(block: BlockAddr) -> usize {
        let h = block
            .index()
            .wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            .rotate_left(31);
        (h >> 53) as usize % SIGNATURE_BITS
    }

    fn set(&mut self, bit: usize) {
        self.bits[bit / 64] |= 1 << (bit % 64);
    }

    fn get(&self, bit: usize) -> bool {
        self.bits[bit / 64] & (1 << (bit % 64)) != 0
    }

    /// Inserts a block (called on L1-I fill).
    pub fn insert(&mut self, block: BlockAddr) {
        self.set(Self::hash1(block));
        self.set(Self::hash2(block));
        self.insertions += 1;
    }

    /// Membership test; false positives possible, false negatives only
    /// between an eviction and the next rebuild.
    pub fn may_contain(&self, block: BlockAddr) -> bool {
        self.get(Self::hash1(block)) && self.get(Self::hash2(block))
    }

    /// Notes an eviction; returns `true` when a rebuild is due.
    pub fn note_eviction(&mut self) -> bool {
        self.evictions_since_rebuild += 1;
        self.evictions_since_rebuild >= REBUILD_THRESHOLD
    }

    /// Rebuilds the filter from the true resident set.
    pub fn rebuild<I: IntoIterator<Item = BlockAddr>>(&mut self, resident: I) {
        self.bits = [0u64; SIGNATURE_BITS / 64];
        self.evictions_since_rebuild = 0;
        for b in resident {
            self.set(Self::hash1(b));
            self.set(Self::hash2(b));
        }
    }

    /// Fraction of filter bits set (diagnostic for false-positive pressure).
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        set as f64 / SIGNATURE_BITS as f64
    }

    /// How many blocks of `blocks` the signature claims to hold.
    pub fn coverage<'a, I: IntoIterator<Item = &'a BlockAddr>>(&self, blocks: I) -> usize {
        blocks.into_iter().filter(|&&b| self.may_contain(b)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives_without_eviction() {
        let mut sig = CacheSignature::new();
        let blocks: Vec<_> = (0..512).map(BlockAddr::new).collect();
        for &b in &blocks {
            sig.insert(b);
        }
        for &b in &blocks {
            assert!(sig.may_contain(b));
        }
    }

    #[test]
    fn empty_signature_contains_nothing() {
        let sig = CacheSignature::new();
        assert!(!sig.may_contain(BlockAddr::new(1)));
        assert_eq!(sig.fill_ratio(), 0.0);
    }

    #[test]
    fn false_positive_rate_reasonable_at_l1_occupancy() {
        // A 32 KB L1-I holds 512 blocks; 2048-bit filter with 2 hashes
        // should stay usefully selective.
        let mut sig = CacheSignature::new();
        for i in 0..512u64 {
            sig.insert(BlockAddr::new(i * 7 + 3));
        }
        let fp = (10_000..20_000u64)
            .filter(|&i| sig.may_contain(BlockAddr::new(i)))
            .count();
        let rate = fp as f64 / 10_000.0;
        assert!(rate < 0.65, "false positive rate {rate} too high");
    }

    #[test]
    fn rebuild_clears_stale_entries() {
        let mut sig = CacheSignature::new();
        sig.insert(BlockAddr::new(1));
        sig.insert(BlockAddr::new(2));
        sig.rebuild(vec![BlockAddr::new(2)]);
        assert!(sig.may_contain(BlockAddr::new(2)));
        // Block 1 should (almost certainly) be gone; tolerate hash collision.
        if sig.may_contain(BlockAddr::new(1)) {
            // Collision with block 2's bits is possible but both bits
            // matching is astronomically unlikely for these constants.
            panic!("stale entry survived rebuild");
        }
    }

    #[test]
    fn eviction_counter_triggers_rebuild() {
        let mut sig = CacheSignature::new();
        let mut due = false;
        for _ in 0..REBUILD_THRESHOLD {
            due = sig.note_eviction();
        }
        assert!(due);
        sig.rebuild(std::iter::empty());
        assert!(!sig.note_eviction());
    }

    #[test]
    fn coverage_counts_members() {
        let mut sig = CacheSignature::new();
        sig.insert(BlockAddr::new(10));
        sig.insert(BlockAddr::new(11));
        let probe = [BlockAddr::new(10), BlockAddr::new(11), BlockAddr::new(9999)];
        let cov = sig.coverage(probe.iter());
        assert!(cov >= 2);
    }
}
