//! Reference (pre-optimization) set-associative cache: the seed
//! implementation the SoA single-probe [`crate::cache`] replaced.
//!
//! Kept for two purposes:
//!
//! 1. **Differential testing.** The property tests drive identical
//!    operation sequences through [`RefSetAssocCache`] and
//!    [`SetAssocCache`](crate::cache::SetAssocCache) and require identical
//!    observable behaviour (hits, victims, aux tags, dirty bits) — the
//!    unit-level half of the bit-identity guarantee the golden report
//!    snapshot enforces end to end.
//! 2. **Same-run benchmarking.** `repro --bench-json` times the same
//!    access stream against both implementations, so the committed
//!    `BENCH_*.json` records the hot-path speedup measured on the machine
//!    that produced it, not numbers imported from elsewhere.
//!
//! The code is a frame-struct (array-of-structs) design whose operations
//! scan the set multiple times (`contains` then `access`, `find` twice in
//! `access_write`, a residency scan plus an invalid-way scan in
//! `peek_victim`) — exactly the costs the SoA rewrite removed. Do not use
//! it in the simulator proper.

use crate::addr::BlockAddr;
use crate::cache::{CacheGeometry, Victim};
use crate::replacement::{Replacement, ReplacementKind};

#[derive(Copy, Clone, Debug, Default)]
struct Frame {
    block: BlockAddr,
    valid: bool,
    dirty: bool,
    aux: u8,
}

/// Outcome of [`RefSetAssocCache::access`].
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum RefAccessOutcome {
    /// The block was resident.
    Hit,
    /// The block was installed; `evicted` names the displaced block, if any.
    Miss {
        /// The displaced block, `None` if an invalid way was used.
        evicted: Option<Victim>,
    },
}

impl RefAccessOutcome {
    /// Returns `true` for [`RefAccessOutcome::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, RefAccessOutcome::Hit)
    }

    /// Returns the evicted victim of a miss, if any.
    pub fn evicted(self) -> Option<Victim> {
        match self {
            RefAccessOutcome::Hit => None,
            RefAccessOutcome::Miss { evicted } => evicted,
        }
    }
}

/// The seed's frame-struct cache (see the module doc).
#[derive(Clone, Debug)]
pub struct RefSetAssocCache {
    geom: CacheGeometry,
    frames: Vec<Frame>,
    repl: Replacement,
}

impl RefSetAssocCache {
    /// Creates an empty cache with the given geometry and replacement policy.
    pub fn new(geom: CacheGeometry, repl: ReplacementKind) -> Self {
        RefSetAssocCache {
            geom,
            frames: vec![Frame::default(); geom.blocks()],
            repl: Replacement::new(repl, geom.sets(), geom.assoc()),
        }
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        let base = set * self.geom.assoc();
        base..base + self.geom.assoc()
    }

    fn find(&self, block: BlockAddr) -> Option<(usize, usize)> {
        let set = self.geom.set_of(block);
        for (way, idx) in self.set_range(set).enumerate() {
            let f = &self.frames[idx];
            if f.valid && f.block == block {
                return Some((set, way));
            }
        }
        None
    }

    /// Returns `true` if `block` is resident, without touching policy state.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.find(block).is_some()
    }

    /// Returns the aux tag of a resident block.
    pub fn aux(&self, block: BlockAddr) -> Option<u8> {
        self.find(block)
            .map(|(set, way)| self.frames[set * self.geom.assoc() + way].aux)
    }

    /// Overwrites the aux tag of a resident block.
    pub fn set_aux(&mut self, block: BlockAddr, aux: u8) -> bool {
        if let Some((set, way)) = self.find(block) {
            self.frames[set * self.geom.assoc() + way].aux = aux;
            true
        } else {
            false
        }
    }

    /// Reports which block a fill of `block` would displace.
    pub fn peek_victim(&self, block: BlockAddr) -> Option<Victim> {
        if self.contains(block) {
            return None;
        }
        let set = self.geom.set_of(block);
        for idx in self.set_range(set) {
            if !self.frames[idx].valid {
                return None;
            }
        }
        let way = self.repl.victim_way(set);
        let f = &self.frames[set * self.geom.assoc() + way];
        Some(Victim {
            block: f.block,
            aux: f.aux,
            dirty: f.dirty,
        })
    }

    /// Accesses `block`, tagging the frame with `aux`.
    pub fn access(&mut self, block: BlockAddr, aux: u8) -> RefAccessOutcome {
        if let Some((set, way)) = self.find(block) {
            self.repl.on_hit(set, way);
            self.frames[set * self.geom.assoc() + way].aux = aux;
            return RefAccessOutcome::Hit;
        }
        let evicted = self.fill(block, aux);
        RefAccessOutcome::Miss { evicted }
    }

    /// Accesses `block` for writing; also marks the frame dirty.
    pub fn access_write(&mut self, block: BlockAddr, aux: u8) -> RefAccessOutcome {
        let outcome = self.access(block, aux);
        if let Some((set, way)) = self.find(block) {
            self.frames[set * self.geom.assoc() + way].dirty = true;
        }
        outcome
    }

    /// Installs `block` (which must not be resident), returning any victim.
    pub fn fill(&mut self, block: BlockAddr, aux: u8) -> Option<Victim> {
        debug_assert!(!self.contains(block), "fill of resident block");
        let set = self.geom.set_of(block);
        let assoc = self.geom.assoc();
        let mut target = None;
        for (way, idx) in self.set_range(set).enumerate() {
            if !self.frames[idx].valid {
                target = Some((way, None));
                break;
            }
        }
        let (way, victim) = match target {
            Some(t) => t,
            None => {
                let way = self.repl.evict(set);
                let f = &self.frames[set * assoc + way];
                (
                    way,
                    Some(Victim {
                        block: f.block,
                        aux: f.aux,
                        dirty: f.dirty,
                    }),
                )
            }
        };
        self.frames[set * assoc + way] = Frame {
            block,
            valid: true,
            dirty: false,
            aux,
        };
        self.repl.on_fill(set, way);
        victim
    }

    /// Invalidates `block` if resident, returning its frame info.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<Victim> {
        if let Some((set, way)) = self.find(block) {
            let idx = set * self.geom.assoc() + way;
            let f = self.frames[idx];
            self.frames[idx].valid = false;
            self.frames[idx].dirty = false;
            self.repl.on_invalidate(set, way);
            Some(Victim {
                block: f.block,
                aux: f.aux,
                dirty: f.dirty,
            })
        } else {
            None
        }
    }

    /// Clears the dirty bit of a resident block, returning whether it was
    /// dirty.
    pub fn clean(&mut self, block: BlockAddr) -> bool {
        if let Some((set, way)) = self.find(block) {
            let idx = set * self.geom.assoc() + way;
            let was = self.frames[idx].dirty;
            self.frames[idx].dirty = false;
            was
        } else {
            false
        }
    }

    /// Number of resident (valid) blocks.
    pub fn occupancy(&self) -> usize {
        self.frames.iter().filter(|f| f.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_like_the_seed() {
        let mut c = RefSetAssocCache::new(CacheGeometry::new(256, 2), ReplacementKind::Lru);
        let b = BlockAddr::new(4);
        assert!(!c.access(b, 1).is_hit());
        assert!(c.access(b, 2).is_hit());
        assert_eq!(c.aux(b), Some(2));
        // Set 0 full: 0, 2 -> fill of 4... (2 sets x 2 ways)
        c.access(BlockAddr::new(0), 0);
        c.access(BlockAddr::new(2), 0);
        let peek = c.peek_victim(BlockAddr::new(6));
        let got = c.access(BlockAddr::new(6), 0).evicted();
        assert_eq!(peek, got);
    }
}
