//! System configuration (Table 2 of the paper).

use crate::cache::CacheGeometry;
use crate::memory::DramConfig;
use crate::prefetch::PrefetcherKind;
use crate::replacement::ReplacementKind;

/// Full configuration of the simulated CMP.
///
/// Defaults reproduce Table 2: N out-of-order cores at 2.5 GHz with private
/// 32 KB / 8-way / 64 B L1 caches (3-cycle load-to-use), a shared NUCA L2 of
/// 1 MB per core (16-way, 16-cycle hit), a 2-D torus with 1-cycle hops, and
/// DDR3-1600 memory. The OoO width/ROB parameters are abstracted into the
/// 1-IPC in-order timing model (see DESIGN.md §2); the miss-latency
/// parameters, which drive every result in the paper, are modeled directly.
///
/// # Examples
///
/// ```
/// use strex_sim::config::SystemConfig;
///
/// let cfg = SystemConfig::with_cores(8);
/// assert_eq!(cfg.n_cores, 8);
/// assert_eq!(cfg.l1i_geometry.size_bytes(), 32 * 1024);
/// assert_eq!(cfg.aggregate_l1i_bytes(), 8 * 32 * 1024);
/// ```
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct SystemConfig {
    /// Number of cores (the paper evaluates 2, 4, 8 and 16).
    pub n_cores: usize,
    /// Private L1 instruction cache shape.
    pub l1i_geometry: CacheGeometry,
    /// Private L1 data cache shape.
    pub l1d_geometry: CacheGeometry,
    /// Replacement policy for the L1-I (Figure 9 varies this).
    pub l1i_replacement: ReplacementKind,
    /// Replacement policy for the L1-D.
    pub l1d_replacement: ReplacementKind,
    /// Extra load-to-use cycles charged on an L1 data hit beyond the 1-IPC
    /// base cycle (Table 2: 3-cycle load-to-use).
    pub l1_hit_extra: u64,
    /// Shared L2 capacity per core in bytes (Table 2: 1 MB per core).
    pub l2_bytes_per_core: u64,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// L2 slice hit latency in cycles (Table 2: 16).
    pub l2_hit_latency: u64,
    /// L2 replacement policy.
    pub l2_replacement: ReplacementKind,
    /// Per-hop interconnect latency in cycles (Table 2: 1).
    pub hop_latency: u64,
    /// DRAM timing.
    pub dram: DramConfig,
    /// Instruction prefetcher attached to each L1-I.
    pub prefetcher: PrefetcherKind,
    /// Core clock in GHz (used only for reporting).
    pub clock_ghz: f64,
}

impl SystemConfig {
    /// Table 2 configuration with `n_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero.
    pub fn with_cores(n_cores: usize) -> Self {
        assert!(n_cores > 0, "need at least one core");
        SystemConfig {
            n_cores,
            l1i_geometry: CacheGeometry::new(32 * 1024, 8),
            l1d_geometry: CacheGeometry::new(32 * 1024, 8),
            l1i_replacement: ReplacementKind::Lru,
            l1d_replacement: ReplacementKind::Lru,
            l1_hit_extra: 2,
            l2_bytes_per_core: 1024 * 1024,
            l2_assoc: 16,
            l2_hit_latency: 16,
            l2_replacement: ReplacementKind::Lru,
            hop_latency: 1,
            dram: DramConfig::default(),
            prefetcher: PrefetcherKind::None,
            clock_ghz: 2.5,
        }
    }

    /// Total L1-I capacity across all cores — SLICC's operating budget and
    /// the quantity the hybrid mechanism compares against the FPTable.
    pub fn aggregate_l1i_bytes(&self) -> u64 {
        self.n_cores as u64 * self.l1i_geometry.size_bytes()
    }

    /// Returns a copy with a different prefetcher.
    pub fn with_prefetcher(mut self, prefetcher: PrefetcherKind) -> Self {
        self.prefetcher = prefetcher;
        self
    }

    /// Returns a copy with a different L1-I replacement policy.
    pub fn with_l1i_replacement(mut self, kind: ReplacementKind) -> Self {
        self.l1i_replacement = kind;
        self
    }
}

impl Default for SystemConfig {
    /// The paper's headline 16-core configuration.
    fn default() -> Self {
        SystemConfig::with_cores(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_defaults() {
        let cfg = SystemConfig::default();
        assert_eq!(cfg.n_cores, 16);
        assert_eq!(cfg.l1i_geometry.size_bytes(), 32 * 1024);
        assert_eq!(cfg.l1i_geometry.assoc(), 8);
        assert_eq!(cfg.l2_assoc, 16);
        assert_eq!(cfg.l2_hit_latency, 16);
        assert_eq!(cfg.hop_latency, 1);
        assert!((cfg.clock_ghz - 2.5).abs() < f64::EPSILON);
    }

    #[test]
    fn aggregate_capacity_scales_with_cores() {
        assert_eq!(SystemConfig::with_cores(2).aggregate_l1i_bytes(), 64 * 1024);
        assert_eq!(
            SystemConfig::with_cores(16).aggregate_l1i_bytes(),
            512 * 1024
        );
    }

    #[test]
    fn builder_style_overrides() {
        let cfg = SystemConfig::with_cores(4)
            .with_prefetcher(PrefetcherKind::NextLine)
            .with_l1i_replacement(ReplacementKind::Brrip);
        assert_eq!(cfg.prefetcher, PrefetcherKind::NextLine);
        assert_eq!(cfg.l1i_replacement, ReplacementKind::Brrip);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = SystemConfig::with_cores(0);
    }
}
