//! MESI coherence directory for the private L1-D caches (Table 2).
//!
//! The directory tracks, per data block, which cores hold the block and
//! whether one of them holds it modified. Its role in the reproduction is to
//! produce the paper's D-MPKI behaviour: with conventional scheduling, more
//! cores ⇒ more concurrent sharers of the same index roots, lock words and
//! catalog metadata ⇒ more invalidations ⇒ more data misses (Section 5.2).
//! STREX serializes same-type transactions on one core, collapsing that
//! sharing back into a single L1-D.
//!
//! The directory stores *intent*; the actual invalidation of L1-D frames is
//! carried out by the memory hierarchy, which owns the caches.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::addr::BlockAddr;
use crate::ids::CoreId;

/// Deterministic multiply-mix hasher for block addresses.
///
/// The directory performs one map lookup per data access, which makes the
/// default SipHash a measurable cost on the simulation hot path. Block
/// addresses are simulator-internal (no untrusted input, no DoS surface),
/// and the directory never iterates the map, so the bucket layout is
/// unobservable: swapping the hasher cannot change any simulation result.
#[derive(Clone, Default)]
struct BlockAddrHasher {
    hash: u64,
}

impl Hasher for BlockAddrHasher {
    #[inline]
    fn write_u64(&mut self, n: u64) {
        // Fibonacci multiply, then fold the strong high bits back down so
        // bucket indices (low bits) are well mixed too.
        let h = (self.hash ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.hash = h ^ (h >> 32);
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type BlockMap<V> = HashMap<BlockAddr, V, BuildHasherDefault<BlockAddrHasher>>;

/// Sharer bitmask; supports up to 64 cores (the paper uses at most 16).
pub type SharerMask = u64;

/// Directory state for one block.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
enum LineState {
    /// One or more cores hold the block clean.
    Shared(SharerMask),
    /// Exactly one core holds the block, possibly dirty.
    Modified(CoreId),
}

/// What the requesting core must do to complete an access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoherenceAction {
    /// Cores whose L1-D copy must be invalidated before the access proceeds.
    pub invalidate: Vec<CoreId>,
    /// Core that must write its dirty copy back (supplies the data).
    pub writeback_from: Option<CoreId>,
    /// Whether this access was a coherence-induced transfer (the block was
    /// live in another core's cache) — used to classify coherence misses.
    pub coherence_transfer: bool,
}

impl CoherenceAction {
    fn none() -> Self {
        CoherenceAction {
            invalidate: Vec::new(),
            writeback_from: None,
            coherence_transfer: false,
        }
    }
}

/// The MESI directory.
///
/// # Examples
///
/// ```
/// use strex_sim::addr::BlockAddr;
/// use strex_sim::coherence::Directory;
/// use strex_sim::ids::CoreId;
///
/// let mut dir = Directory::new(4);
/// let b = BlockAddr::new(9);
/// dir.on_read(CoreId::new(0), b);
/// let act = dir.on_write(CoreId::new(1), b);
/// assert_eq!(act.invalidate, vec![CoreId::new(0)]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Directory {
    lines: BlockMap<LineState>,
    n_cores: usize,
}

impl Directory {
    /// Creates a directory for `n_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` exceeds the 64-core sharer-mask capacity.
    pub fn new(n_cores: usize) -> Self {
        assert!(n_cores <= 64, "sharer mask supports at most 64 cores");
        Directory {
            lines: BlockMap::default(),
            n_cores,
        }
    }

    fn mask(core: CoreId) -> SharerMask {
        1u64 << core.as_usize()
    }

    fn sharers(mask: SharerMask, except: CoreId) -> Vec<CoreId> {
        (0..64u16)
            .filter(|&i| mask & (1 << i) != 0 && i != except.value())
            .map(CoreId::new)
            .collect()
    }

    /// Records a read by `core` and returns the required coherence action.
    pub fn on_read(&mut self, core: CoreId, block: BlockAddr) -> CoherenceAction {
        match self.lines.get_mut(&block) {
            None => {
                self.lines
                    .insert(block, LineState::Shared(Self::mask(core)));
                CoherenceAction::none()
            }
            Some(LineState::Shared(mask)) => {
                let transfer = *mask & !Self::mask(core) != 0 && *mask & Self::mask(core) == 0;
                *mask |= Self::mask(core);
                CoherenceAction {
                    invalidate: Vec::new(),
                    writeback_from: None,
                    coherence_transfer: transfer,
                }
            }
            Some(state @ LineState::Modified(_)) => {
                let owner = match *state {
                    LineState::Modified(o) => o,
                    LineState::Shared(_) => unreachable!(),
                };
                if owner == core {
                    return CoherenceAction::none();
                }
                // Downgrade M -> S: owner writes back, both become sharers.
                *state = LineState::Shared(Self::mask(core) | Self::mask(owner));
                CoherenceAction {
                    invalidate: Vec::new(),
                    writeback_from: Some(owner),
                    coherence_transfer: true,
                }
            }
        }
    }

    /// Records a write by `core` and returns the required coherence action.
    pub fn on_write(&mut self, core: CoreId, block: BlockAddr) -> CoherenceAction {
        match self.lines.get_mut(&block) {
            None => {
                self.lines.insert(block, LineState::Modified(core));
                CoherenceAction::none()
            }
            Some(state @ LineState::Shared(_)) => {
                let mask = match *state {
                    LineState::Shared(m) => m,
                    LineState::Modified(_) => unreachable!(),
                };
                let others = Self::sharers(mask, core);
                let transfer = !others.is_empty() && mask & Self::mask(core) == 0;
                *state = LineState::Modified(core);
                CoherenceAction {
                    invalidate: others,
                    writeback_from: None,
                    coherence_transfer: transfer,
                }
            }
            Some(state @ LineState::Modified(_)) => {
                let owner = match *state {
                    LineState::Modified(o) => o,
                    LineState::Shared(_) => unreachable!(),
                };
                if owner == core {
                    return CoherenceAction::none();
                }
                *state = LineState::Modified(core);
                CoherenceAction {
                    invalidate: vec![owner],
                    writeback_from: Some(owner),
                    coherence_transfer: true,
                }
            }
        }
    }

    /// Records that `core` evicted `block` from its L1-D.
    pub fn on_evict(&mut self, core: CoreId, block: BlockAddr) {
        if let Some(state) = self.lines.get_mut(&block) {
            match state {
                LineState::Shared(mask) => {
                    *mask &= !Self::mask(core);
                    if *mask == 0 {
                        self.lines.remove(&block);
                    }
                }
                LineState::Modified(owner) => {
                    if *owner == core {
                        self.lines.remove(&block);
                    }
                }
            }
        }
    }

    /// Returns how many cores currently share `block`.
    pub fn sharer_count(&self, block: BlockAddr) -> usize {
        match self.lines.get(&block) {
            None => 0,
            Some(LineState::Shared(mask)) => mask.count_ones() as usize,
            Some(LineState::Modified(_)) => 1,
        }
    }

    /// Number of cores the directory was built for.
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::new(i)
    }
    fn c(i: u16) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn cold_read_no_action() {
        let mut d = Directory::new(4);
        let act = d.on_read(c(0), b(1));
        assert_eq!(act, CoherenceAction::none());
        assert_eq!(d.sharer_count(b(1)), 1);
    }

    #[test]
    fn read_sharing_accumulates() {
        let mut d = Directory::new(4);
        d.on_read(c(0), b(1));
        let act = d.on_read(c(1), b(1));
        assert!(act.coherence_transfer, "data supplied by another cache");
        assert!(act.invalidate.is_empty());
        assert_eq!(d.sharer_count(b(1)), 2);
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut d = Directory::new(4);
        d.on_read(c(0), b(1));
        d.on_read(c(1), b(1));
        d.on_read(c(2), b(1));
        let act = d.on_write(c(0), b(1));
        let mut inv = act.invalidate.clone();
        inv.sort();
        assert_eq!(inv, vec![c(1), c(2)]);
        assert_eq!(d.sharer_count(b(1)), 1);
    }

    #[test]
    fn read_of_modified_downgrades() {
        let mut d = Directory::new(4);
        d.on_write(c(0), b(1));
        let act = d.on_read(c(1), b(1));
        assert_eq!(act.writeback_from, Some(c(0)));
        assert!(act.coherence_transfer);
        assert_eq!(d.sharer_count(b(1)), 2);
    }

    #[test]
    fn write_of_modified_steals_ownership() {
        let mut d = Directory::new(4);
        d.on_write(c(0), b(1));
        let act = d.on_write(c(1), b(1));
        assert_eq!(act.invalidate, vec![c(0)]);
        assert_eq!(act.writeback_from, Some(c(0)));
        assert_eq!(d.sharer_count(b(1)), 1);
    }

    #[test]
    fn repeat_access_by_owner_is_silent() {
        let mut d = Directory::new(4);
        d.on_write(c(0), b(1));
        assert_eq!(d.on_write(c(0), b(1)), CoherenceAction::none());
        assert_eq!(d.on_read(c(0), b(1)), CoherenceAction::none());
    }

    #[test]
    fn eviction_removes_sharer() {
        let mut d = Directory::new(4);
        d.on_read(c(0), b(1));
        d.on_read(c(1), b(1));
        d.on_evict(c(0), b(1));
        assert_eq!(d.sharer_count(b(1)), 1);
        d.on_evict(c(1), b(1));
        assert_eq!(d.sharer_count(b(1)), 0);
    }

    #[test]
    fn eviction_of_modified_clears_line() {
        let mut d = Directory::new(4);
        d.on_write(c(2), b(7));
        d.on_evict(c(2), b(7));
        assert_eq!(d.sharer_count(b(7)), 0);
    }

    #[test]
    #[should_panic(expected = "at most 64 cores")]
    fn too_many_cores_panics() {
        let _ = Directory::new(65);
    }
}
