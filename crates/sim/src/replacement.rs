//! Cache replacement policies.
//!
//! Section 5.7 of the paper studies STREX against state-of-the-art
//! replacement policies. This module implements all five policies evaluated
//! there:
//!
//! * **LRU** — classic least-recently-used stack.
//! * **LIP** — LRU Insertion Policy (Qureshi et al., ISCA 2007): new blocks
//!   are inserted at the LRU position so a streaming footprint cannot evict
//!   the working set.
//! * **BIP** — Bimodal Insertion Policy (same paper): like LIP, but a small
//!   fraction of insertions (1/32) go to the MRU position so the cache can
//!   adapt to working-set changes.
//! * **SRRIP** — Static Re-Reference Interval Prediction (Jaleel et al.,
//!   ISCA 2010): 2-bit re-reference prediction values (RRPV), inserting at
//!   "long" (RRPV = 2) and promoting to "near-immediate" (RRPV = 0) on hits.
//! * **BRRIP** — Bimodal RRIP: inserts at "distant" (RRPV = 3) most of the
//!   time and at "long" 1/32 of the time, resisting thrashing/streaming.
//!
//! The implementation stores one metadata byte per way per set (LRU stack
//! position or RRPV), and a shared bimodal throttle counter for BIP/BRRIP.
//! All decision logic is deterministic so that a *peek* at the next victim
//! (needed by STREX's victim monitor) always agrees with the subsequent
//! eviction.

use std::fmt;

/// RRPV width used by SRRIP/BRRIP (2 bits, values 0..=3).
const RRPV_MAX: u8 = 3;
/// "Long re-reference" insertion value for SRRIP.
const RRPV_LONG: u8 = RRPV_MAX - 1;
/// Bimodal throttle period for BIP/BRRIP (1-in-32 insertions are favored).
const BIMODAL_PERIOD: u32 = 32;

/// The replacement policy family to use for a cache.
///
/// # Examples
///
/// ```
/// use strex_sim::replacement::ReplacementKind;
/// assert_eq!(ReplacementKind::default(), ReplacementKind::Lru);
/// assert_eq!(ReplacementKind::Brrip.to_string(), "BRRIP");
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub enum ReplacementKind {
    /// Least recently used.
    #[default]
    Lru,
    /// LRU Insertion Policy.
    Lip,
    /// Bimodal Insertion Policy.
    Bip,
    /// Static Re-Reference Interval Prediction.
    Srrip,
    /// Bimodal Re-Reference Interval Prediction.
    Brrip,
}

impl ReplacementKind {
    /// All policy kinds, in the order Figure 9 reports them.
    pub const ALL: [ReplacementKind; 5] = [
        ReplacementKind::Lru,
        ReplacementKind::Lip,
        ReplacementKind::Bip,
        ReplacementKind::Srrip,
        ReplacementKind::Brrip,
    ];
}

impl fmt::Display for ReplacementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReplacementKind::Lru => "LRU",
            ReplacementKind::Lip => "LIP",
            ReplacementKind::Bip => "BIP",
            ReplacementKind::Srrip => "SRRIP",
            ReplacementKind::Brrip => "BRRIP",
        };
        f.write_str(s)
    }
}

/// Replacement state for every set of one cache.
///
/// The cache calls [`on_hit`](Replacement::on_hit) when an access hits,
/// [`on_fill`](Replacement::on_fill) when a block is installed, and
/// [`victim_way`](Replacement::victim_way) /
/// [`evict`](Replacement::evict) when it must choose a victim.
#[derive(Clone, Debug)]
pub struct Replacement {
    kind: ReplacementKind,
    assoc: usize,
    /// One metadata byte per way per set: LRU stack depth, or RRPV.
    meta: Vec<u8>,
    /// Bimodal throttle counter shared by all sets (BIP/BRRIP only).
    bimodal_ctr: u32,
}

impl Replacement {
    /// Creates replacement state for `sets` sets of `assoc` ways each.
    ///
    /// # Panics
    ///
    /// Panics if `assoc` is 0 or greater than 255.
    pub fn new(kind: ReplacementKind, sets: usize, assoc: usize) -> Self {
        assert!(assoc > 0 && assoc <= 255, "associativity out of range");
        let meta = match kind {
            // The LRU stack must be a permutation of 0..assoc per set even
            // before any access, so initialize each set as the identity
            // (the cache prefers invalid ways regardless).
            ReplacementKind::Lru | ReplacementKind::Lip | ReplacementKind::Bip => {
                (0..sets * assoc).map(|i| (i % assoc) as u8).collect()
            }
            ReplacementKind::Srrip | ReplacementKind::Brrip => vec![RRPV_MAX; sets * assoc],
        };
        Replacement {
            kind,
            assoc,
            meta,
            bimodal_ctr: 0,
        }
    }

    /// Returns the policy family.
    pub fn kind(&self) -> ReplacementKind {
        self.kind
    }

    /// Returns the associativity this state was built for.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Raw pointer to the metadata byte at flat frame index `idx`
    /// (prefetch hints only).
    #[inline]
    pub(crate) fn meta_ptr(&self, idx: usize) -> *const u8 {
        debug_assert!(idx < self.meta.len());
        unsafe { self.meta.as_ptr().add(idx) }
    }

    #[inline]
    fn set_meta(&mut self, set: usize) -> &mut [u8] {
        let base = set * self.assoc;
        &mut self.meta[base..base + self.assoc]
    }

    #[inline]
    fn set_meta_ref(&self, set: usize) -> &[u8] {
        let base = set * self.assoc;
        &self.meta[base..base + self.assoc]
    }

    /// Records a hit on `way` of `set`.
    #[inline]
    pub fn on_hit(&mut self, set: usize, way: usize) {
        match self.kind {
            ReplacementKind::Lru | ReplacementKind::Lip | ReplacementKind::Bip => {
                self.promote_to_mru(set, way);
            }
            ReplacementKind::Srrip | ReplacementKind::Brrip => {
                self.set_meta(set)[way] = 0;
            }
        }
    }

    /// Records that a new block was installed in `way` of `set`.
    #[inline]
    pub fn on_fill(&mut self, set: usize, way: usize) {
        match self.kind {
            ReplacementKind::Lru => self.promote_to_mru(set, way),
            ReplacementKind::Lip => self.demote_to_lru(set, way),
            ReplacementKind::Bip => {
                self.bimodal_ctr = (self.bimodal_ctr + 1) % BIMODAL_PERIOD;
                if self.bimodal_ctr == 0 {
                    self.promote_to_mru(set, way);
                } else {
                    self.demote_to_lru(set, way);
                }
            }
            ReplacementKind::Srrip => self.set_meta(set)[way] = RRPV_LONG,
            ReplacementKind::Brrip => {
                self.bimodal_ctr = (self.bimodal_ctr + 1) % BIMODAL_PERIOD;
                let rrpv = if self.bimodal_ctr == 0 {
                    RRPV_LONG
                } else {
                    RRPV_MAX
                };
                self.set_meta(set)[way] = rrpv;
            }
        }
    }

    /// Returns the way that would be evicted from `set`, without mutating any
    /// policy state.
    ///
    /// This is the *peek* operation STREX's victim monitor relies on: the way
    /// returned here is exactly the way [`evict`](Replacement::evict) will
    /// select next (assuming no intervening hits or fills in the set).
    #[inline]
    pub fn victim_way(&self, set: usize) -> usize {
        let meta = self.set_meta_ref(set);
        match self.kind {
            ReplacementKind::Lru | ReplacementKind::Lip | ReplacementKind::Bip => {
                // Deepest stack position = LRU.
                Self::argmax(meta)
            }
            ReplacementKind::Srrip | ReplacementKind::Brrip => {
                // RRIP aging selects the first way to reach RRPV_MAX, which
                // is the way with the largest RRPV (lowest index on ties).
                Self::argmax(meta)
            }
        }
    }

    /// Chooses and returns the victim way of `set`, applying any policy
    /// mutation that eviction implies (RRIP aging).
    #[inline]
    pub fn evict(&mut self, set: usize) -> usize {
        let way = self.victim_way(set);
        if matches!(self.kind, ReplacementKind::Srrip | ReplacementKind::Brrip) {
            // Age every other way by the amount needed for `way` to reach
            // RRPV_MAX, mirroring the iterative increment loop in hardware.
            let meta = self.set_meta(set);
            let delta = RRPV_MAX - meta[way];
            if delta > 0 {
                for m in meta.iter_mut() {
                    *m = (*m + delta).min(RRPV_MAX);
                }
            }
        }
        way
    }

    /// Clears the metadata of `way` in `set` after an invalidation so the
    /// way is preferred for the next fill.
    pub fn on_invalidate(&mut self, set: usize, way: usize) {
        let init = match self.kind {
            ReplacementKind::Lru | ReplacementKind::Lip | ReplacementKind::Bip => {
                (self.assoc - 1) as u8
            }
            ReplacementKind::Srrip | ReplacementKind::Brrip => RRPV_MAX,
        };
        // Keep the LRU stack consistent: treat as a demotion to LRU first.
        if matches!(
            self.kind,
            ReplacementKind::Lru | ReplacementKind::Lip | ReplacementKind::Bip
        ) {
            self.demote_to_lru(set, way);
        }
        self.set_meta(set)[way] = init;
    }

    #[inline]
    fn argmax(meta: &[u8]) -> usize {
        let mut best = 0;
        for (i, &m) in meta.iter().enumerate() {
            if m > meta[best] {
                best = i;
            }
        }
        best
    }

    /// Moves `way` to stack depth 0 and pushes shallower entries down.
    #[inline]
    fn promote_to_mru(&mut self, set: usize, way: usize) {
        let meta = self.set_meta(set);
        let old = meta[way];
        if old == 0 {
            return; // already MRU: the pass below would change nothing
        }
        for m in meta.iter_mut() {
            if *m < old {
                *m += 1;
            }
        }
        meta[way] = 0;
    }

    /// Moves `way` to the deepest stack position, pulling deeper entries up.
    #[inline]
    fn demote_to_lru(&mut self, set: usize, way: usize) {
        let assoc = self.assoc as u8;
        let meta = self.set_meta(set);
        let old = meta[way];
        if old == assoc - 1 {
            return; // already LRU: the pass below would change nothing
        }
        for m in meta.iter_mut() {
            if *m > old {
                *m -= 1;
            }
        }
        meta[way] = assoc - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack_positions(r: &Replacement, set: usize) -> Vec<u8> {
        r.set_meta_ref(set).to_vec()
    }

    #[test]
    fn lru_victim_is_least_recent() {
        let mut r = Replacement::new(ReplacementKind::Lru, 1, 4);
        for way in 0..4 {
            r.on_fill(0, way);
        }
        // Fill order 0,1,2,3 -> way 0 is LRU.
        assert_eq!(r.victim_way(0), 0);
        r.on_hit(0, 0); // way 0 becomes MRU
        assert_eq!(r.victim_way(0), 1);
    }

    #[test]
    fn lru_stack_is_a_permutation() {
        let mut r = Replacement::new(ReplacementKind::Lru, 1, 8);
        for way in 0..8 {
            r.on_fill(0, way);
        }
        for &w in &[3usize, 1, 7, 3, 0] {
            r.on_hit(0, w);
            let mut pos = stack_positions(&r, 0);
            pos.sort_unstable();
            assert_eq!(pos, (0..8u8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn lip_inserts_at_lru() {
        let mut r = Replacement::new(ReplacementKind::Lip, 1, 4);
        for way in 0..4 {
            r.on_fill(0, way);
        }
        // The most recent fill sits at the LRU position under LIP.
        assert_eq!(r.victim_way(0), 3);
        // A hit rescues it.
        r.on_hit(0, 3);
        assert_ne!(r.victim_way(0), 3);
    }

    #[test]
    fn bip_occasionally_inserts_at_mru() {
        let mut r = Replacement::new(ReplacementKind::Bip, 1, 2);
        let mut mru_inserts = 0;
        for i in 0..(2 * BIMODAL_PERIOD as usize) {
            let way = i % 2;
            r.on_fill(0, way);
            if r.set_meta_ref(0)[way] == 0 {
                mru_inserts += 1;
            }
        }
        assert_eq!(mru_inserts, 2, "exactly 1-in-32 fills go to MRU");
    }

    #[test]
    fn srrip_promotes_on_hit_and_ages_on_evict() {
        let mut r = Replacement::new(ReplacementKind::Srrip, 1, 2);
        r.on_fill(0, 0);
        r.on_fill(0, 1);
        assert_eq!(r.set_meta_ref(0), &[RRPV_LONG, RRPV_LONG]);
        r.on_hit(0, 0);
        assert_eq!(r.set_meta_ref(0)[0], 0);
        // Way 1 has the larger RRPV, so it is the victim; eviction ages way 0.
        assert_eq!(r.victim_way(0), 1);
        let v = r.evict(0);
        assert_eq!(v, 1);
        assert_eq!(r.set_meta_ref(0)[0], 1, "other ways aged by the same delta");
    }

    #[test]
    fn brrip_mostly_inserts_distant() {
        let mut r = Replacement::new(ReplacementKind::Brrip, 1, 1);
        let mut long_inserts = 0;
        for _ in 0..BIMODAL_PERIOD as usize {
            r.on_fill(0, 0);
            if r.set_meta_ref(0)[0] == RRPV_LONG {
                long_inserts += 1;
            }
        }
        assert_eq!(long_inserts, 1);
    }

    #[test]
    fn peek_matches_evict_for_all_kinds() {
        for kind in ReplacementKind::ALL {
            let mut r = Replacement::new(kind, 4, 8);
            // Mixed traffic over a few sets.
            for i in 0..200usize {
                let set = i % 4;
                let way = (i * 7) % 8;
                if i % 3 == 0 {
                    r.on_hit(set, way);
                } else {
                    r.on_fill(set, way);
                }
                let peek = r.victim_way(set);
                let got = r.evict(set);
                assert_eq!(peek, got, "peek/evict divergence for {kind}");
            }
        }
    }

    #[test]
    fn invalidate_prefers_way_for_next_victim() {
        let mut r = Replacement::new(ReplacementKind::Lru, 1, 4);
        for way in 0..4 {
            r.on_fill(0, way);
        }
        r.on_invalidate(0, 2);
        assert_eq!(r.victim_way(0), 2);
    }

    #[test]
    #[should_panic(expected = "associativity out of range")]
    fn zero_assoc_panics() {
        let _ = Replacement::new(ReplacementKind::Lru, 1, 0);
    }
}
