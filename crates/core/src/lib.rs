//! # strex
//!
//! Reproduction of **STREX** (Atta, Tözün, Tong, Ailamaki, Moshovos —
//! ISCA 2013): *Boosting Instruction Cache Reuse in OLTP Workloads Through
//! Stratified Transaction Execution*.
//!
//! OLTP transactions have instruction footprints far larger than an L1
//! instruction cache, so conventional run-to-completion scheduling thrashes
//! the L1-I continuously. STREX exploits the heavy code overlap between
//! *same-type* transactions: it groups them into **teams**, runs a team on
//! one core, and context-switches threads whenever they would evict a cache
//! block the team is still using (detected with per-block **phase tags**).
//! A *lead* transaction pays the misses for each cache-sized code segment;
//! the rest of the team hits.
//!
//! This crate implements the paper's four scheduling policies over the
//! `strex-sim` memory hierarchy and the `strex-oltp` workload model:
//!
//! * [`sched::BaselineSched`] — conventional run-to-completion;
//! * [`sched::StrexSched`] — stratified execution (Section 4);
//! * [`sched::SliccSched`] — the SLICC thread-migration comparison point;
//! * [`sched::HybridSched`] — the Section 5.5 FPTable-based selector.
//!
//! ## Quick example
//!
//! Single runs go through the validating builder and [`driver::run`]:
//!
//! ```no_run
//! use strex::config::{SchedulerKind, SimConfig};
//! use strex::driver::run;
//! use strex_oltp::workload::{Workload, WorkloadKind};
//!
//! let workload = Workload::preset_small(WorkloadKind::TpccW1, 16, 42);
//! let cfg = |kind| {
//!     SimConfig::builder()
//!         .cores(4)
//!         .scheduler(kind)
//!         .build()
//!         .expect("valid configuration")
//! };
//! let base = run(&workload, &cfg(SchedulerKind::Baseline));
//! let strex = run(&workload, &cfg(SchedulerKind::Strex));
//! println!(
//!     "I-MPKI {:.1} -> {:.1}, speedup {:.2}x",
//!     base.i_mpki(),
//!     strex.i_mpki(),
//!     strex.relative_throughput(&base),
//! );
//! ```
//!
//! Whole evaluations — the paper's scheduler × workload × core matrices —
//! go through [`campaign::Campaign`], which runs every cell on a worker
//! pool and serializes results to JSON:
//!
//! ```no_run
//! use strex::campaign::Campaign;
//! use strex::config::{SchedulerKind, SimConfig};
//! use strex_oltp::workload::{Workload, WorkloadKind};
//!
//! let w = Workload::preset_small(WorkloadKind::TpccW1, 24, 42);
//! let result = Campaign::new(SimConfig::default())
//!     .over_schedulers(SchedulerKind::ALL)
//!     .over_workloads([&w])
//!     .over_cores([2, 4, 8, 16])
//!     .run()
//!     .expect("valid matrix");
//! println!("{}", result.to_json());
//! ```
//!
//! Custom scheduling policies implement
//! [`sched::registry::SchedulerFactory`] and register by name — the
//! driver and campaigns resolve policies through the registry, never a
//! hard-coded list.

pub mod affinity;
pub mod binwire;
pub mod campaign;
pub mod config;
pub mod cost;
pub mod dispatch;
pub mod driver;
pub mod error;
pub mod json;
pub mod jsonval;
pub mod report;
pub mod scenario;
pub mod sched;
pub mod team;
pub mod thread;

pub use binwire::WireFormat;
pub use campaign::{
    fnv64, merge, scaling_efficiency, Campaign, CampaignCell, CampaignPerf, CampaignResult,
    CampaignShard, CellKey, MergeError, ShardCheckpoint, ShardSpec,
};
pub use config::{SchedulerKind, SimConfig, SimConfigBuilder, SliccParams, StrexParams};
pub use dispatch::DispatchError;
pub use driver::{run, run_registered, run_typed, run_with, SimScratch};
pub use error::ConfigError;
pub use jsonval::{JsonValue, WireError};
pub use report::Report;
pub use scenario::{
    Assertion, AssertionOutcome, CellSelector, EvaluatorRegistry, Metric, Scenario, ScenarioError,
};
pub use sched::registry::{SchedulerFactory, SchedulerRegistry};
pub use sched::{FpTable, Scheduler};
pub use team::{form_teams, Team};
pub use thread::TxnThread;
