//! # strex
//!
//! Reproduction of **STREX** (Atta, Tözün, Tong, Ailamaki, Moshovos —
//! ISCA 2013): *Boosting Instruction Cache Reuse in OLTP Workloads Through
//! Stratified Transaction Execution*.
//!
//! OLTP transactions have instruction footprints far larger than an L1
//! instruction cache, so conventional run-to-completion scheduling thrashes
//! the L1-I continuously. STREX exploits the heavy code overlap between
//! *same-type* transactions: it groups them into **teams**, runs a team on
//! one core, and context-switches threads whenever they would evict a cache
//! block the team is still using (detected with per-block **phase tags**).
//! A *lead* transaction pays the misses for each cache-sized code segment;
//! the rest of the team hits.
//!
//! This crate implements the paper's four scheduling policies over the
//! `strex-sim` memory hierarchy and the `strex-oltp` workload model:
//!
//! * [`sched::BaselineSched`] — conventional run-to-completion;
//! * [`sched::StrexSched`] — stratified execution (Section 4);
//! * [`sched::SliccSched`] — the SLICC thread-migration comparison point;
//! * [`sched::HybridSched`] — the Section 5.5 FPTable-based selector.
//!
//! ## Quick example
//!
//! ```no_run
//! use strex::config::SchedulerKind;
//! use strex::driver::{run, SimConfig};
//! use strex_oltp::workload::{Workload, WorkloadKind};
//!
//! let workload = Workload::preset_small(WorkloadKind::TpccW1, 16, 42);
//! let base = run(&workload, &SimConfig::new(4, SchedulerKind::Baseline));
//! let strex = run(&workload, &SimConfig::new(4, SchedulerKind::Strex));
//! println!(
//!     "I-MPKI {:.1} -> {:.1}, speedup {:.2}x",
//!     base.i_mpki(),
//!     strex.i_mpki(),
//!     strex.relative_throughput(&base),
//! );
//! ```

pub mod config;
pub mod cost;
pub mod driver;
pub mod report;
pub mod sched;
pub mod team;
pub mod thread;

pub use config::{SchedulerKind, SliccParams, StrexParams};
pub use driver::{run, SimConfig};
pub use report::Report;
pub use sched::{FpTable, Scheduler};
pub use team::{form_teams, Team};
pub use thread::TxnThread;
