//! Team formation (Section 4.3): grouping same-type transactions.
//!
//! STREX groups similar transactions into teams by examining a window of
//! waiting transactions (up to 30). Teams are assigned in the arrival order
//! of their oldest member; transactions that cannot be grouped ("strays")
//! are scheduled individually once they become the oldest. The paper
//! identifies similarity via the header-instruction address; the trace
//! generator exposes the equivalent [`TxnTypeId`] directly.

use strex_sim::ids::{ThreadId, TxnTypeId};

/// A team of same-type transactions scheduled onto one core.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Team {
    /// Member threads in arrival order; the first is the initial lead.
    pub members: Vec<ThreadId>,
    /// The shared transaction type.
    pub txn_type: TxnTypeId,
}

impl Team {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` for an empty team (never produced by formation).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Groups `arrivals` (in arrival order) into teams.
///
/// The algorithm mirrors the hardware team-formation unit: repeatedly take
/// the oldest unassigned transaction, collect up to `team_size - 1` more of
/// the same type from the next `window` unassigned transactions, and emit
/// them as a team. A transaction with no same-type peers in the window
/// becomes a single-member (stray) team.
///
/// # Examples
///
/// ```
/// use strex::team::form_teams;
/// use strex_sim::ids::{ThreadId, TxnTypeId};
///
/// let arrivals: Vec<(ThreadId, TxnTypeId)> = (0..6)
///     .map(|i| (ThreadId::new(i), TxnTypeId::new((i % 2) as u16)))
///     .collect();
/// let teams = form_teams(&arrivals, 10, 30);
/// assert_eq!(teams.len(), 2);
/// assert_eq!(teams[0].len(), 3);
/// ```
pub fn form_teams(
    arrivals: &[(ThreadId, TxnTypeId)],
    team_size: usize,
    window: usize,
) -> Vec<Team> {
    assert!(team_size > 0, "team size must be positive");
    let mut assigned = vec![false; arrivals.len()];
    let mut teams = Vec::new();
    for i in 0..arrivals.len() {
        if assigned[i] {
            continue;
        }
        let (lead, txn_type) = arrivals[i];
        assigned[i] = true;
        let mut members = vec![lead];
        // Scan the window of the next unassigned transactions.
        let mut seen = 0;
        for (j, &(tid, ty)) in arrivals.iter().enumerate().skip(i + 1) {
            if assigned[j] {
                continue;
            }
            seen += 1;
            if seen > window {
                break;
            }
            if ty == txn_type && members.len() < team_size {
                members.push(tid);
                assigned[j] = true;
            }
        }
        teams.push(Team { members, txn_type });
    }
    teams
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrivals(types: &[u16]) -> Vec<(ThreadId, TxnTypeId)> {
        types
            .iter()
            .enumerate()
            .map(|(i, &t)| (ThreadId::new(i as u32), TxnTypeId::new(t)))
            .collect()
    }

    #[test]
    fn groups_same_type() {
        let teams = form_teams(&arrivals(&[0, 0, 0, 1, 1]), 10, 30);
        assert_eq!(teams.len(), 2);
        assert_eq!(teams[0].len(), 3);
        assert_eq!(teams[1].len(), 2);
        assert_eq!(teams[0].txn_type, TxnTypeId::new(0));
    }

    #[test]
    fn respects_team_size_cap() {
        let teams = form_teams(&arrivals(&[0; 25]), 10, 30);
        assert_eq!(teams.len(), 3);
        assert_eq!(teams[0].len(), 10);
        assert_eq!(teams[1].len(), 10);
        assert_eq!(teams[2].len(), 5);
    }

    #[test]
    fn stray_becomes_singleton_team() {
        let teams = form_teams(&arrivals(&[0, 1, 0, 0]), 10, 30);
        let stray = teams
            .iter()
            .find(|t| t.txn_type == TxnTypeId::new(1))
            .unwrap();
        assert_eq!(stray.len(), 1);
    }

    #[test]
    fn window_limits_lookahead() {
        // Type 0 at positions 0 and 4, window of 2: cannot group them.
        let teams = form_teams(&arrivals(&[0, 1, 1, 1, 0]), 10, 2);
        let zeros: Vec<_> = teams
            .iter()
            .filter(|t| t.txn_type == TxnTypeId::new(0))
            .collect();
        assert_eq!(zeros.len(), 2, "window too small to merge the 0s");
    }

    #[test]
    fn arrival_order_preserved() {
        let teams = form_teams(&arrivals(&[2, 0, 2, 0]), 10, 30);
        assert_eq!(teams[0].txn_type, TxnTypeId::new(2));
        assert_eq!(teams[0].members, vec![ThreadId::new(0), ThreadId::new(2)]);
        assert_eq!(teams[1].members, vec![ThreadId::new(1), ThreadId::new(3)]);
    }

    #[test]
    fn every_thread_lands_in_exactly_one_team() {
        let input = arrivals(&[0, 1, 2, 0, 1, 2, 0, 1, 2, 3]);
        let teams = form_teams(&input, 2, 5);
        let mut all: Vec<u32> = teams
            .iter()
            .flat_map(|t| t.members.iter().map(|m| m.value()))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "team size must be positive")]
    fn zero_team_size_panics() {
        let _ = form_teams(&[], 0, 30);
    }

    #[test]
    fn empty_input_no_teams() {
        assert!(form_teams(&[], 10, 30).is_empty());
    }
}
