//! Simulation configuration (Sections 4.3 and 5.1 of the paper): scheduler
//! parameters, the top-level [`SimConfig`], and its validating builder.

use strex_sim::config::SystemConfig;

use crate::error::ConfigError;

/// Most cores a configuration may request: `CoreId` is a `u16`, so core
/// indices 0..=65535 are addressable.
pub const MAX_CORES: usize = u16::MAX as usize + 1;

/// STREX parameters.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct StrexParams {
    /// Maximum transactions per team (Section 5.1: ten unless noted;
    /// Figure 7/8 sweep 2..=20).
    pub team_size: usize,
    /// Architectural-state size in cache blocks saved/restored through the
    /// L2 on a context switch (Section 4.4.2).
    pub ctx_state_blocks: u64,
    /// Window of transactions team formation may examine (Section 4.3: the
    /// OLTP system provides up to 30 transactions at any time).
    pub formation_window: usize,
    /// Minimum instruction-block fetches a thread executes per quantum
    /// before the victim monitor may switch it (Section 4.4.2: "an
    /// implementation may choose to enforce a minimum number of
    /// instructions or cycles that a transaction ought to execute before a
    /// context switch is allowed"). Lets diverging followers force-fill
    /// their private path instead of starving behind the lead.
    pub min_quantum_fetches: u32,
}

impl Default for StrexParams {
    fn default() -> Self {
        StrexParams {
            team_size: 10,
            ctx_state_blocks: 4,
            formation_window: 30,
            min_quantum_fetches: 96,
        }
    }
}

/// SLICC parameters (modeled after the structures in Table 4).
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct SliccParams {
    /// Missed-tag queue length (Table 4: 60 bits ≈ 5 tags).
    pub mtq_len: usize,
    /// Miss shift-vector length in fetches (Table 4: 100 bits). At most
    /// 128: the history is kept in a 128-bit shift register, and
    /// [`SimConfig::validate`] rejects wider windows.
    pub window: usize,
    /// Misses within the window that signal a segment change.
    pub miss_burst: usize,
    /// L1-I fills a thread performs on one core before it spills to a
    /// fresh core (the thread has roughly filled the local cache with its
    /// current segment and should pipeline the next one elsewhere).
    pub fill_cap: usize,
    /// Missed tags a remote signature must cover to attract a migration.
    pub coverage_threshold: usize,
    /// SLICC teams hold up to `2 * n_cores` threads (Section 5.1).
    pub team_factor: usize,
    /// Minimum fetches a thread executes on a core between migrations
    /// (prevents ping-ponging while a segment is being established).
    pub min_residency: usize,
    /// Hits a thread must score on its current core before a miss burst is
    /// treated as a *segment transition* worth following to another cache.
    /// A thread missing since it landed is building a segment, not leaving
    /// one; following coverage then would convoy every same-code thread
    /// onto one core (and breaks small-footprint workloads, which must be
    /// unaffected by SLICC).
    pub min_hits_before_follow: usize,
}

impl Default for SliccParams {
    fn default() -> Self {
        SliccParams {
            mtq_len: 5,
            window: 100,
            miss_burst: 40,
            coverage_threshold: 4,
            fill_cap: 416,
            team_factor: 2,
            min_residency: 192,
            min_hits_before_follow: 128,
        }
    }
}

/// Which scheduler drives the simulation.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub enum SchedulerKind {
    /// Conventional run-to-completion assignment (the paper's baseline).
    #[default]
    Baseline,
    /// STREX stratified execution.
    Strex,
    /// SLICC thread migration.
    Slicc,
    /// The Section 5.5 hybrid: profiles footprints, then picks SLICC when
    /// the aggregate L1-I fits them, STREX otherwise.
    Hybrid,
}

impl SchedulerKind {
    /// All kinds, in Figure 6 comparison order.
    pub const ALL: [SchedulerKind; 4] = [
        SchedulerKind::Baseline,
        SchedulerKind::Strex,
        SchedulerKind::Slicc,
        SchedulerKind::Hybrid,
    ];

    /// The registry key this kind resolves to — `SchedulerKind` is a thin
    /// alias over the entries of
    /// [`sched::registry`](crate::sched::registry); the driver looks the
    /// key up there rather than matching on the enum.
    pub fn key(self) -> &'static str {
        match self {
            SchedulerKind::Baseline => "baseline",
            SchedulerKind::Strex => "strex",
            SchedulerKind::Slicc => "slicc",
            SchedulerKind::Hybrid => "hybrid",
        }
    }

    /// The inverse of [`SchedulerKind::key`], for the built-in kinds.
    pub fn from_key(key: &str) -> Option<SchedulerKind> {
        SchedulerKind::ALL.into_iter().find(|k| k.key() == key)
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SchedulerKind::Baseline => "Base",
            SchedulerKind::Strex => "STREX",
            SchedulerKind::Slicc => "SLICC",
            SchedulerKind::Hybrid => "STREX+SLICC",
        };
        f.write_str(s)
    }
}

/// Full simulation configuration.
///
/// Construct through [`SimConfig::builder`], which validates the
/// invariants the simulator depends on and returns
/// `Result<SimConfig, ConfigError>`:
///
/// ```
/// use strex::config::{SchedulerKind, SimConfig};
///
/// let cfg = SimConfig::builder()
///     .cores(4)
///     .scheduler(SchedulerKind::Strex)
///     .team_size(8)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(cfg.system.n_cores, 4);
///
/// // Invalid combinations are rejected, not silently accepted:
/// assert!(SimConfig::builder().team_size(0).build().is_err());
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct SimConfig {
    /// Hardware configuration (Table 2).
    pub system: SystemConfig,
    /// Scheduling policy.
    pub scheduler: SchedulerKind,
    /// STREX parameters.
    pub strex: StrexParams,
    /// SLICC parameters.
    pub slicc: SliccParams,
}

impl Default for SimConfig {
    /// The paper's headline setup: Table 2 hardware with 16 cores under
    /// baseline scheduling.
    fn default() -> Self {
        SimConfig {
            system: SystemConfig::default(),
            scheduler: SchedulerKind::default(),
            strex: StrexParams::default(),
            slicc: SliccParams::default(),
        }
    }
}

impl SimConfig {
    /// Starts a builder at the defaults
    /// (`SimConfig::builder().build().unwrap() == SimConfig::default()`).
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            config: SimConfig::default(),
        }
    }

    /// Compatibility shorthand: baseline Table 2 hardware with `n_cores`
    /// cores under `scheduler`. Prefer [`SimConfig::builder`] for anything
    /// beyond these two knobs.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero (use the builder for fallible
    /// construction).
    pub fn new(n_cores: usize, scheduler: SchedulerKind) -> Self {
        SimConfig {
            system: SystemConfig::with_cores(n_cores),
            scheduler,
            strex: StrexParams::default(),
            slicc: SliccParams::default(),
        }
    }

    /// Compatibility shorthand overriding the STREX team size (Figures 7
    /// and 8). Prefer [`SimConfigBuilder::team_size`], which validates.
    pub fn with_team_size(mut self, team_size: usize) -> Self {
        self.strex.team_size = team_size;
        self
    }

    /// Checks every invariant the simulator depends on.
    ///
    /// The builder calls this from [`SimConfigBuilder::build`]; it is also
    /// public so configurations assembled field-by-field (or mutated by
    /// sweep code) can be re-checked before running.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let n = self.system.n_cores;
        if n == 0 {
            return Err(ConfigError::ZeroCores);
        }
        if n > MAX_CORES {
            return Err(ConfigError::TooManyCores { requested: n });
        }
        if self.strex.team_size == 0 {
            return Err(ConfigError::ZeroTeamSize);
        }
        if self.strex.formation_window < self.strex.team_size {
            return Err(ConfigError::FormationWindowTooSmall {
                window: self.strex.formation_window,
                team_size: self.strex.team_size,
            });
        }
        if self.slicc.window > 128 {
            return Err(ConfigError::SliccWindowTooWide {
                window: self.slicc.window,
            });
        }
        let l1i = self.system.l1i_geometry;
        if l1i.size_bytes() == 0 || l1i.assoc() == 0 {
            return Err(ConfigError::ZeroCacheGeometry { cache: "L1-I" });
        }
        let l1d = self.system.l1d_geometry;
        if l1d.size_bytes() == 0 || l1d.assoc() == 0 {
            return Err(ConfigError::ZeroCacheGeometry { cache: "L1-D" });
        }
        if self.system.l2_bytes_per_core == 0 || self.system.l2_assoc == 0 {
            return Err(ConfigError::ZeroCacheGeometry { cache: "L2" });
        }
        // The single-probe cache lookup indexes sets with a mask, so every
        // level needs a power-of-two set count (all Table 2 shapes qualify).
        for (cache, geom) in [("L1-I", l1i), ("L1-D", l1d)] {
            if !geom.has_pow2_sets() {
                return Err(ConfigError::NonPowerOfTwoSets {
                    cache,
                    sets: geom.sets(),
                });
            }
        }
        // The L2 geometry is derived here (per-slice caches are built
        // later from these two fields), so run the full fallible
        // constructor: uneven capacities must surface as an error now,
        // not as a panic inside `SharedL2::new`.
        match strex_sim::cache::CacheGeometry::try_new(
            self.system.l2_bytes_per_core,
            self.system.l2_assoc,
        ) {
            Ok(_) => Ok(()),
            Err(strex_sim::cache::GeometryError::Degenerate) => {
                Err(ConfigError::ZeroCacheGeometry { cache: "L2" })
            }
            Err(strex_sim::cache::GeometryError::UnevenSets { .. }) => {
                Err(ConfigError::UnevenCacheCapacity { cache: "L2" })
            }
            Err(strex_sim::cache::GeometryError::NonPowerOfTwoSets { sets }) => {
                Err(ConfigError::NonPowerOfTwoSets { cache: "L2", sets })
            }
        }
    }
}

/// Fluent, validating constructor for [`SimConfig`].
///
/// Every setter is infallible; [`SimConfigBuilder::build`] checks the
/// combined result once and reports the first violated invariant as a
/// [`ConfigError`].
#[derive(Clone, Debug)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Sets the core count (Table 2 evaluates 2, 4, 8 and 16).
    pub fn cores(mut self, n_cores: usize) -> Self {
        self.config.system.n_cores = n_cores;
        self
    }

    /// Sets the scheduling policy.
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.config.scheduler = scheduler;
        self
    }

    /// Replaces the whole hardware configuration. The core count of a
    /// previously applied [`SimConfigBuilder::cores`] is overwritten.
    pub fn system(mut self, system: SystemConfig) -> Self {
        self.config.system = system;
        self
    }

    /// Replaces the STREX parameter block.
    pub fn strex(mut self, strex: StrexParams) -> Self {
        self.config.strex = strex;
        self
    }

    /// Replaces the SLICC parameter block.
    pub fn slicc(mut self, slicc: SliccParams) -> Self {
        self.config.slicc = slicc;
        self
    }

    /// Sets the STREX team size (Figures 7 and 8 sweep this).
    pub fn team_size(mut self, team_size: usize) -> Self {
        self.config.strex.team_size = team_size;
        self
    }

    /// Sets the team-formation window (Section 4.3).
    pub fn formation_window(mut self, window: usize) -> Self {
        self.config.strex.formation_window = window;
        self
    }

    /// Sets the context-switch state size in blocks (Section 4.4.2).
    pub fn ctx_state_blocks(mut self, blocks: u64) -> Self {
        self.config.strex.ctx_state_blocks = blocks;
        self
    }

    /// Sets the minimum per-quantum fetch count (Section 4.4.2).
    pub fn min_quantum_fetches(mut self, fetches: u32) -> Self {
        self.config.strex.min_quantum_fetches = fetches;
        self
    }

    /// Sets the L1-I instruction prefetcher.
    pub fn prefetcher(mut self, prefetcher: strex_sim::prefetch::PrefetcherKind) -> Self {
        self.config.system.prefetcher = prefetcher;
        self
    }

    /// Sets the L1-I replacement policy (Figure 9 varies this).
    pub fn l1i_replacement(mut self, kind: strex_sim::replacement::ReplacementKind) -> Self {
        self.config.system.l1i_replacement = kind;
        self
    }

    /// Validates the assembled configuration.
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let s = StrexParams::default();
        assert_eq!(s.team_size, 10);
        assert_eq!(s.formation_window, 30);
        let l = SliccParams::default();
        assert_eq!(l.mtq_len, 5);
        assert_eq!(l.window, 100);
        assert_eq!(l.team_factor, 2);
    }

    #[test]
    fn display_names() {
        assert_eq!(SchedulerKind::Baseline.to_string(), "Base");
        assert_eq!(SchedulerKind::Hybrid.to_string(), "STREX+SLICC");
    }

    #[test]
    fn registry_keys_roundtrip() {
        for kind in SchedulerKind::ALL {
            assert_eq!(SchedulerKind::from_key(kind.key()), Some(kind));
        }
        assert_eq!(SchedulerKind::from_key("nope"), None);
    }

    #[test]
    fn builder_defaults_equal_default() {
        let built = SimConfig::builder().build().expect("defaults are valid");
        let default = SimConfig::default();
        assert_eq!(built.system, default.system);
        assert_eq!(built.scheduler, default.scheduler);
        assert_eq!(built.strex, default.strex);
        assert_eq!(built.slicc, default.slicc);
        assert_eq!(built, default);
    }

    #[test]
    fn builder_rejects_each_invariant_violation() {
        assert_eq!(
            SimConfig::builder().cores(0).build(),
            Err(ConfigError::ZeroCores)
        );
        assert_eq!(
            SimConfig::builder().cores(MAX_CORES + 1).build(),
            Err(ConfigError::TooManyCores {
                requested: MAX_CORES + 1
            })
        );
        assert_eq!(
            SimConfig::builder().team_size(0).build(),
            Err(ConfigError::ZeroTeamSize)
        );
        assert_eq!(
            SimConfig::builder()
                .team_size(12)
                .formation_window(4)
                .build(),
            Err(ConfigError::FormationWindowTooSmall {
                window: 4,
                team_size: 12
            })
        );
        // SLICC's miss history is a 128-bit shift register; a wider
        // window must be rejected here, not silently truncated.
        let wide = SliccParams {
            window: 129,
            ..SliccParams::default()
        };
        assert_eq!(
            SimConfig::builder().slicc(wide).build(),
            Err(ConfigError::SliccWindowTooWide { window: 129 })
        );
        assert!(SimConfig::builder()
            .slicc(SliccParams {
                window: 128,
                ..SliccParams::default()
            })
            .build()
            .is_ok());
        let mut degenerate = SystemConfig::with_cores(2);
        degenerate.l2_bytes_per_core = 0;
        assert_eq!(
            SimConfig::builder().system(degenerate).build(),
            Err(ConfigError::ZeroCacheGeometry { cache: "L2" })
        );
        // An L2 capacity that does not divide into sets is an error, not a
        // later panic inside SharedL2 construction.
        let mut uneven = SystemConfig::with_cores(2);
        uneven.l2_bytes_per_core = 1000;
        assert_eq!(
            SimConfig::builder().system(uneven).build(),
            Err(ConfigError::UnevenCacheCapacity { cache: "L2" })
        );
        // A divisible but non-power-of-two L2 set count is also an error.
        let mut non_pow2 = SystemConfig::with_cores(2);
        non_pow2.l2_bytes_per_core = 3 * 16 * 64; // 3 sets at 16 ways
        assert_eq!(
            SimConfig::builder().system(non_pow2).build(),
            Err(ConfigError::NonPowerOfTwoSets {
                cache: "L2",
                sets: 3
            })
        );
    }

    #[test]
    fn builder_applies_every_setter() {
        use strex_sim::prefetch::PrefetcherKind;
        use strex_sim::replacement::ReplacementKind;

        let cfg = SimConfig::builder()
            .cores(8)
            .scheduler(SchedulerKind::Hybrid)
            .team_size(6)
            .formation_window(24)
            .ctx_state_blocks(16)
            .min_quantum_fetches(32)
            .prefetcher(PrefetcherKind::NextLine)
            .l1i_replacement(ReplacementKind::Brrip)
            .build()
            .expect("valid");
        assert_eq!(cfg.system.n_cores, 8);
        assert_eq!(cfg.scheduler, SchedulerKind::Hybrid);
        assert_eq!(cfg.strex.team_size, 6);
        assert_eq!(cfg.strex.formation_window, 24);
        assert_eq!(cfg.strex.ctx_state_blocks, 16);
        assert_eq!(cfg.strex.min_quantum_fetches, 32);
        assert_eq!(cfg.system.prefetcher, PrefetcherKind::NextLine);
        assert_eq!(cfg.system.l1i_replacement, ReplacementKind::Brrip);
    }

    #[test]
    fn max_cores_is_exactly_the_u16_space() {
        let mut cfg = SimConfig::default();
        cfg.system.n_cores = MAX_CORES;
        assert_eq!(cfg.validate(), Ok(()));
        cfg.system.n_cores = MAX_CORES + 1;
        assert!(cfg.validate().is_err());
    }
}
