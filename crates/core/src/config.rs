//! Scheduler configuration (Sections 4.3 and 5.1 of the paper).

/// STREX parameters.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct StrexParams {
    /// Maximum transactions per team (Section 5.1: ten unless noted;
    /// Figure 7/8 sweep 2..=20).
    pub team_size: usize,
    /// Architectural-state size in cache blocks saved/restored through the
    /// L2 on a context switch (Section 4.4.2).
    pub ctx_state_blocks: u64,
    /// Window of transactions team formation may examine (Section 4.3: the
    /// OLTP system provides up to 30 transactions at any time).
    pub formation_window: usize,
    /// Minimum instruction-block fetches a thread executes per quantum
    /// before the victim monitor may switch it (Section 4.4.2: "an
    /// implementation may choose to enforce a minimum number of
    /// instructions or cycles that a transaction ought to execute before a
    /// context switch is allowed"). Lets diverging followers force-fill
    /// their private path instead of starving behind the lead.
    pub min_quantum_fetches: u32,
}

impl Default for StrexParams {
    fn default() -> Self {
        StrexParams {
            team_size: 10,
            ctx_state_blocks: 4,
            formation_window: 30,
            min_quantum_fetches: 96,
        }
    }
}

/// SLICC parameters (modeled after the structures in Table 4).
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct SliccParams {
    /// Missed-tag queue length (Table 4: 60 bits ≈ 5 tags).
    pub mtq_len: usize,
    /// Miss shift-vector length in fetches (Table 4: 100 bits).
    pub window: usize,
    /// Misses within the window that signal a segment change.
    pub miss_burst: usize,
    /// L1-I fills a thread performs on one core before it spills to a
    /// fresh core (the thread has roughly filled the local cache with its
    /// current segment and should pipeline the next one elsewhere).
    pub fill_cap: usize,
    /// Missed tags a remote signature must cover to attract a migration.
    pub coverage_threshold: usize,
    /// SLICC teams hold up to `2 * n_cores` threads (Section 5.1).
    pub team_factor: usize,
    /// Minimum fetches a thread executes on a core between migrations
    /// (prevents ping-ponging while a segment is being established).
    pub min_residency: usize,
    /// Hits a thread must score on its current core before a miss burst is
    /// treated as a *segment transition* worth following to another cache.
    /// A thread missing since it landed is building a segment, not leaving
    /// one; following coverage then would convoy every same-code thread
    /// onto one core (and breaks small-footprint workloads, which must be
    /// unaffected by SLICC).
    pub min_hits_before_follow: usize,
}

impl Default for SliccParams {
    fn default() -> Self {
        SliccParams {
            mtq_len: 5,
            window: 100,
            miss_burst: 40,
            coverage_threshold: 4,
            fill_cap: 416,
            team_factor: 2,
            min_residency: 192,
            min_hits_before_follow: 128,
        }
    }
}

/// Which scheduler drives the simulation.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub enum SchedulerKind {
    /// Conventional run-to-completion assignment (the paper's baseline).
    #[default]
    Baseline,
    /// STREX stratified execution.
    Strex,
    /// SLICC thread migration.
    Slicc,
    /// The Section 5.5 hybrid: profiles footprints, then picks SLICC when
    /// the aggregate L1-I fits them, STREX otherwise.
    Hybrid,
}

impl SchedulerKind {
    /// All kinds, in Figure 6 comparison order.
    pub const ALL: [SchedulerKind; 4] = [
        SchedulerKind::Baseline,
        SchedulerKind::Strex,
        SchedulerKind::Slicc,
        SchedulerKind::Hybrid,
    ];
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SchedulerKind::Baseline => "Base",
            SchedulerKind::Strex => "STREX",
            SchedulerKind::Slicc => "SLICC",
            SchedulerKind::Hybrid => "STREX+SLICC",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let s = StrexParams::default();
        assert_eq!(s.team_size, 10);
        assert_eq!(s.formation_window, 30);
        let l = SliccParams::default();
        assert_eq!(l.mtq_len, 5);
        assert_eq!(l.window, 100);
        assert_eq!(l.team_factor, 2);
    }

    #[test]
    fn display_names() {
        assert_eq!(SchedulerKind::Baseline.to_string(), "Base");
        assert_eq!(SchedulerKind::Hybrid.to_string(), "STREX+SLICC");
    }
}
