//! Experiment campaigns: declarative run matrices executed on a worker
//! pool.
//!
//! The paper is evaluated entirely through matrices of simulations —
//! scheduler × workload × core-count × team-size sweeps (Figures 5–9).
//! [`Campaign`] declares such a matrix over one base [`SimConfig`],
//! executes every cell on a sharded [`std::thread::scope`] worker pool
//! (simulations are independent and deterministic, so the sweep is
//! embarrassingly parallel), and yields a [`CampaignResult`] whose cells
//! carry stable [`CellKey`]s and serialize to JSON.
//!
//! # The sharded executor
//!
//! Each worker owns its shard of the output outright: cells are claimed
//! from one atomic cursor (dynamic load balancing — a slow STREX cell
//! doesn't idle the other workers), every claimed cell runs through the
//! factory's monomorphized typed driver loop with the worker's private
//! reusable [`SimScratch`] (thread table, core states, cycle heap —
//! allocated once per worker, not once per cell), and the finished
//! `(index, Report)` pairs accumulate in a worker-local vector. No mutex,
//! no per-cell slot: the main thread reassembles the shards by cell index
//! after the scope joins, so the result is in matrix order and —
//! because each simulation is itself deterministic — bit-identical to
//! sequential execution at *any* worker count (property-tested in
//! `tests/campaign_api.rs`).
//!
//! Alongside the cells, the executor measures itself: how many
//! memory-reference events the matrix simulated, over how much wall time,
//! on how many workers — surfaced as [`CampaignPerf`] (aggregate
//! events/sec, events/sec-per-worker) and compared across worker counts
//! with [`scaling_efficiency`]. This is the scale-out headline metric the
//! `repro scale` subcommand and the `BENCH_*.json` trajectory report.
//!
//! # The multi-process layer
//!
//! Thread scaling tops out where the workers start sharing an allocator
//! and an LLC; process fan-out sidesteps both, and the same wire format
//! crosses a socket to another machine. The pieces compose:
//!
//! * [`ShardSpec`] partitions the cell matrix deterministically *by
//!   stable cell key* ([`shard_of`]): shard membership depends only on
//!   the key text and the shard count, so any process — or machine —
//!   can compute its share without coordination.
//! * [`Campaign::run_shard`] executes one shard's cells (workload-major,
//!   one reused scratch) into a [`CampaignShard`], which serializes to
//!   JSON and parses back ([`CampaignShard::from_json`]) with full
//!   fidelity — the wire format `repro dist` children ship over stdout.
//! * [`merge`] reassembles a complete shard set into a [`CampaignResult`]
//!   bit-identical to the single-process run, for any shard count and
//!   any merge order.
//! * [`Campaign::pin_workers`] (and the `repro dist --pin` protocol for
//!   child processes) parks each worker on one core via
//!   [`crate::affinity`], keeping its workload-major trace stream
//!   LLC-hot across cells.
//!
//! ```no_run
//! use strex::campaign::Campaign;
//! use strex::config::{SchedulerKind, SimConfig};
//! use strex_oltp::workload::{Workload, WorkloadKind};
//!
//! let workloads = [
//!     Workload::preset_small(WorkloadKind::TpccW1, 24, 42),
//!     Workload::preset_small(WorkloadKind::Tpce, 24, 42),
//! ];
//! let result = Campaign::new(SimConfig::default())
//!     .over_schedulers(SchedulerKind::ALL)
//!     .over_workloads(workloads.iter())
//!     .over_cores([2, 4, 8])
//!     .run()
//!     .expect("valid matrix");
//! for cell in result.cells() {
//!     println!("{}: I-MPKI {:.1}", cell.key, cell.report.i_mpki());
//! }
//! println!("{}", result.to_json());
//! ```

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use strex_oltp::workload::Workload;

use crate::binwire::{self, BinReader, BinWriter};
use crate::config::{SchedulerKind, SimConfig};
use crate::driver::{run_factory, SimScratch};
use crate::error::ConfigError;
use crate::json::JsonWriter;
use crate::jsonval::{JsonValue, WireError};
use crate::report::Report;
use crate::sched::registry::{self, SchedulerRegistry};

/// A declarative run matrix over one base configuration.
///
/// Axes left unset default to the single value the base configuration
/// carries (its scheduler, core count, and team size); workloads have no
/// default — an empty workload axis yields an empty result.
pub struct Campaign<'w> {
    base: SimConfig,
    schedulers: Option<Vec<String>>,
    workloads: Vec<&'w Workload>,
    cores: Option<Vec<usize>>,
    team_sizes: Option<Vec<usize>>,
    parallelism: Option<usize>,
    pin_workers: bool,
}

impl<'w> Campaign<'w> {
    /// A campaign whose cells start from `base`.
    pub fn new(base: SimConfig) -> Self {
        Campaign {
            base,
            schedulers: None,
            workloads: Vec::new(),
            cores: None,
            team_sizes: None,
            parallelism: None,
            pin_workers: false,
        }
    }

    /// Adds a scheduler axis over built-in kinds.
    pub fn over_schedulers(self, kinds: impl IntoIterator<Item = SchedulerKind>) -> Self {
        self.over_scheduler_names(kinds.into_iter().map(|k| k.key()))
    }

    /// Adds a scheduler axis over registry names — the way custom
    /// [`SchedulerFactory`](crate::sched::registry::SchedulerFactory)
    /// policies enter a matrix (pair with [`Campaign::run_on`]).
    pub fn over_scheduler_names<S: Into<String>>(
        mut self,
        names: impl IntoIterator<Item = S>,
    ) -> Self {
        self.schedulers
            .get_or_insert_with(Vec::new)
            .extend(names.into_iter().map(Into::into));
        self
    }

    /// Adds workloads to the workload axis.
    pub fn over_workloads(mut self, workloads: impl IntoIterator<Item = &'w Workload>) -> Self {
        self.workloads.extend(workloads);
        self
    }

    /// Adds a core-count axis (Figure 5/6 sweep 2, 4, 8, 16).
    pub fn over_cores(mut self, cores: impl IntoIterator<Item = usize>) -> Self {
        self.cores.get_or_insert_with(Vec::new).extend(cores);
        self
    }

    /// Adds a STREX team-size axis (Figure 7/8 sweep 2..=20).
    pub fn over_team_sizes(mut self, sizes: impl IntoIterator<Item = usize>) -> Self {
        self.team_sizes.get_or_insert_with(Vec::new).extend(sizes);
        self
    }

    /// Caps the worker pool (defaults to available parallelism). `1`
    /// forces sequential execution on the calling thread's schedule.
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = Some(workers.max(1));
        self
    }

    /// Pins worker `i` to core `i mod host cores` for the duration of the
    /// run (best-effort: a no-op off Linux or when the kernel refuses —
    /// see [`crate::affinity::pin_to_core`]). Pinning keeps each worker's
    /// packed trace stream and simulator state on one LLC domain while it
    /// walks its workload-major cell sequence; it never affects results,
    /// only where they are computed.
    pub fn pin_workers(mut self, pin: bool) -> Self {
        self.pin_workers = pin;
        self
    }

    /// Enumerates and validates every cell without running anything.
    ///
    /// Cells are produced in deterministic matrix order — workload-major,
    /// then scheduler, cores, team size — which is also the order of
    /// [`CampaignResult::cells`].
    ///
    /// The cell's *key* is authoritative for the scheduler: the executor
    /// resolves `CellKey::scheduler` from the registry. The returned
    /// `SimConfig`'s `scheduler` field mirrors the key only for built-in
    /// kinds; for custom registry names (which `SchedulerKind` cannot
    /// represent) it keeps the base value — replay a custom-policy cell
    /// through [`run_registered`](crate::driver::run_registered)-style
    /// name resolution, not through the config field.
    pub fn cells(&self, reg: &SchedulerRegistry) -> Result<Vec<(CellKey, SimConfig)>, ConfigError> {
        let schedulers: Vec<String> = match &self.schedulers {
            Some(s) => s.clone(),
            None => vec![self.base.scheduler.key().to_string()],
        };
        let cores = self
            .cores
            .clone()
            .unwrap_or_else(|| vec![self.base.system.n_cores]);
        let team_sizes = self
            .team_sizes
            .clone()
            .unwrap_or_else(|| vec![self.base.strex.team_size]);

        let mut cells = Vec::new();
        for (w_idx, w) in self.workloads.iter().enumerate() {
            for sched in &schedulers {
                if reg.get(sched).is_none() {
                    return Err(ConfigError::UnknownScheduler {
                        name: sched.clone(),
                    });
                }
                for &n_cores in &cores {
                    for &team_size in &team_sizes {
                        let mut cfg = self.base.clone();
                        // Mutate the axis fields in place so every other
                        // base override (prefetcher, replacement, DRAM…)
                        // survives into the cell.
                        cfg.system.n_cores = n_cores;
                        cfg.strex.team_size = team_size;
                        if let Some(kind) = SchedulerKind::from_key(sched) {
                            cfg.scheduler = kind;
                        }
                        cfg.validate()?;
                        cells.push((
                            CellKey {
                                workload: w.name().to_string(),
                                workload_idx: w_idx,
                                scheduler: sched.clone(),
                                cores: n_cores,
                                team_size,
                            },
                            cfg,
                        ));
                    }
                }
            }
        }
        Ok(cells)
    }

    /// Executes the matrix against the
    /// [global registry](crate::sched::registry::global).
    pub fn run(&self) -> Result<CampaignResult, ConfigError> {
        self.run_on(registry::global())
    }

    /// Executes the matrix, resolving scheduler names from `reg`, on the
    /// sharded executor (see the module docs).
    ///
    /// Every cell is validated before anything runs, so a bad matrix
    /// costs nothing. Each worker claims cells from a shared cursor, runs
    /// them through the factory's monomorphized typed loop with its own
    /// reused [`SimScratch`], and keeps its results in a private shard;
    /// the shards are reassembled in matrix order afterwards, so the
    /// outcome is independent of worker interleaving — and, because each
    /// simulation is itself deterministic, bit-identical to sequential
    /// [`run`](crate::driver::run) calls.
    pub fn run_on(&self, reg: &SchedulerRegistry) -> Result<CampaignResult, ConfigError> {
        let cells = self.cells(reg)?;
        let workers = self
            .parallelism
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .min(cells.len().max(1));

        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let next = AtomicUsize::new(0);
        let start = Instant::now();
        let shards: Vec<Vec<(usize, Report)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let next = &next;
                    let cells = &cells;
                    scope.spawn(move || {
                        if self.pin_workers {
                            // Best-effort: an unpinnable worker still runs,
                            // it just floats like before.
                            let _ = crate::affinity::pin_to_core(worker % avail);
                        }
                        let mut scratch = SimScratch::new();
                        let mut shard: Vec<(usize, Report)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some((key, cfg)) = cells.get(i) else {
                                break;
                            };
                            let workload = self.workloads[key.workload_idx];
                            let factory = reg
                                .get(&key.scheduler)
                                .expect("cells() checked registration");
                            shard.push((i, run_factory(factory, workload, cfg, &mut scratch)));
                        }
                        shard
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("campaign worker panicked"))
                .collect()
        });
        let wall_seconds = start.elapsed().as_secs_f64();

        let mut slots: Vec<Option<Report>> = cells.iter().map(|_| None).collect();
        for (i, report) in shards.into_iter().flatten() {
            debug_assert!(slots[i].is_none(), "cell {i} executed twice");
            slots[i] = Some(report);
        }
        let cells: Vec<CampaignCell> = cells
            .into_iter()
            .zip(slots)
            .map(|((key, _), slot)| CampaignCell {
                key,
                report: slot.expect("every claimed cell landed in a shard"),
            })
            .collect();
        let total_events = cells.iter().map(|c| report_events(&c.report)).sum();
        Ok(CampaignResult {
            cells,
            perf: CampaignPerf {
                workers,
                wall_seconds,
                total_events,
            },
        })
    }

    /// Executes one shard of the matrix against the
    /// [global registry](crate::sched::registry::global).
    pub fn run_shard(&self, spec: ShardSpec) -> Result<CampaignShard, ConfigError> {
        self.run_shard_on(spec, registry::global())
    }

    /// Executes the cells [`spec`](ShardSpec) owns — the multi-process
    /// half of the executor.
    ///
    /// The full matrix is enumerated and validated exactly as
    /// [`run_on`](Campaign::run_on) does (so every process of a fan-out
    /// agrees on cell indices), then only the owned cells run, on the
    /// calling thread, in matrix order — workload-major, so consecutive
    /// cells replay the same packed trace pool and the stream stays
    /// LLC-hot across cells — with one reused [`SimScratch`]. The partial
    /// result keeps each cell's matrix index; [`merge`] reassembles any
    /// complete set of shards into a [`CampaignResult`] bit-identical to
    /// [`run_on`](Campaign::run_on) (property-tested in
    /// `tests/campaign_api.rs`).
    ///
    /// Shard ownership is by stable cell key ([`shard_of`]), not by
    /// position, so it is insensitive to how a peer process enumerated
    /// the matrix.
    pub fn run_shard_on(
        &self,
        spec: ShardSpec,
        reg: &SchedulerRegistry,
    ) -> Result<CampaignShard, ConfigError> {
        self.run_shard_resumable_on(spec, reg, None, &mut |_| {})
    }

    /// [`run_shard_resumable_on`](Campaign::run_shard_resumable_on)
    /// against the [global registry](crate::sched::registry::global).
    pub fn run_shard_resumable(
        &self,
        spec: ShardSpec,
        checkpoint: Option<ShardCheckpoint>,
        on_cell: &mut dyn FnMut(&ShardCheckpoint),
    ) -> Result<CampaignShard, ConfigError> {
        self.run_shard_resumable_on(spec, registry::global(), checkpoint, on_cell)
    }

    /// [`run_shard_on`](Campaign::run_shard_on) with checkpoint/resume:
    /// executes the cells `spec` owns, starting from an optional
    /// [`ShardCheckpoint`] and reporting progress at every cell boundary.
    ///
    /// A checkpoint's completed cells are adopted verbatim and its matrix
    /// cursor skips everything already done; execution continues with the
    /// first owned cell at or past the cursor. After each newly executed
    /// cell, `on_cell` observes the updated checkpoint — callers persist
    /// or ship it (the dispatcher's `checkpoint` frames), and a preempted
    /// run resumed from *any* observed checkpoint produces a shard whose
    /// merged result is byte-identical to the uninterrupted run
    /// (property-tested in `tests/checkpoint_resume.rs`).
    ///
    /// The checkpoint must match: same [`ShardSpec`], a cursor within the
    /// matrix, and every completed cell's key equal to the matrix cell at
    /// its recorded index — anything else is a typed
    /// [`ConfigError::CheckpointMismatch`] (a checkpoint from a different
    /// campaign must fail loudly, not corrupt a merge). `total_events`
    /// and the shard perf are recomputed over *all* cells, adopted and
    /// fresh; `wall_seconds` covers only this process's portion.
    pub fn run_shard_resumable_on(
        &self,
        spec: ShardSpec,
        reg: &SchedulerRegistry,
        checkpoint: Option<ShardCheckpoint>,
        on_cell: &mut dyn FnMut(&ShardCheckpoint),
    ) -> Result<CampaignShard, ConfigError> {
        spec.validate()?;
        let cells = self.cells(reg)?;
        let mut ckpt = match checkpoint {
            Some(c) => {
                if c.spec != spec {
                    return Err(ConfigError::CheckpointMismatch {
                        detail: format!("checkpoint is for shard {}, not {spec}", c.spec),
                    });
                }
                if c.cursor > cells.len() {
                    return Err(ConfigError::CheckpointMismatch {
                        detail: format!(
                            "cursor {} is beyond the {}-cell matrix",
                            c.cursor,
                            cells.len()
                        ),
                    });
                }
                for (i, cell) in &c.cells {
                    match cells.get(*i) {
                        Some((key, _)) if *key == cell.key => {}
                        _ => {
                            return Err(ConfigError::CheckpointMismatch {
                                detail: format!(
                                    "completed cell {i} ({}) is not cell {i} of this matrix",
                                    cell.key
                                ),
                            });
                        }
                    }
                }
                c
            }
            None => ShardCheckpoint::new(spec),
        };
        let start = Instant::now();
        let mut scratch = SimScratch::new();
        for (i, (key, cfg)) in cells.into_iter().enumerate() {
            if i < ckpt.cursor || !spec.owns(&key) {
                continue;
            }
            let workload = self.workloads[key.workload_idx];
            let factory = reg
                .get(&key.scheduler)
                .expect("cells() checked registration");
            let report = run_factory(factory, workload, &cfg, &mut scratch);
            ckpt.cells.push((i, CampaignCell { key, report }));
            ckpt.cursor = i + 1;
            on_cell(&ckpt);
        }
        // Recomputed over adopted + fresh cells, so a resumed shard's
        // event count equals the uninterrupted run's.
        let total_events = ckpt
            .cells
            .iter()
            .map(|(_, c)| report_events(&c.report))
            .sum();
        Ok(CampaignShard {
            spec,
            cells: ckpt.cells,
            perf: CampaignPerf {
                workers: 1,
                wall_seconds: start.elapsed().as_secs_f64(),
                total_events,
            },
        })
    }
}

/// Memory-reference events one report contributes to campaign totals
/// (L1-I + L1-D accesses). This is the single definition shared by the
/// in-process executor, the shard executor and the wire parse-back — if
/// "event" ever changes, all three stay in lockstep (and with the
/// `--check` gate's event-count drift detection).
fn report_events(report: &Report) -> u64 {
    let agg = report.stats.aggregate();
    agg.i_accesses + agg.d_accesses
}

/// Names one shard of a campaign's cell matrix: shard `index` of `count`.
///
/// Shards partition the matrix *by stable cell key* ([`shard_of`]): a
/// cell's assignment depends only on its textual key and the shard count,
/// never on matrix enumeration order or which process asks — so `count`
/// cooperating processes that each run `Campaign::run_shard(i/count)`
/// cover every cell exactly once (disjointness and completeness are
/// unit-tested in `tests/campaign_api.rs`).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct ShardSpec {
    /// This shard's index, `0 <= index < count`.
    pub index: usize,
    /// Total number of shards the matrix is split into.
    pub count: usize,
}

impl ShardSpec {
    /// A validated shard spec (`index < count`, `count > 0`).
    pub fn new(index: usize, count: usize) -> Result<ShardSpec, ConfigError> {
        let spec = ShardSpec { index, count };
        spec.validate()?;
        Ok(spec)
    }

    /// Re-checks the invariants (fields are public, so a hand-built spec
    /// may be invalid).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.count == 0 || self.index >= self.count {
            return Err(ConfigError::InvalidShard {
                index: self.index,
                count: self.count,
            });
        }
        Ok(())
    }

    /// Whether this shard owns `key`'s cell.
    pub fn owns(&self, key: &CellKey) -> bool {
        shard_of(key, self.count) == self.index
    }
}

impl fmt::Display for ShardSpec {
    /// The `index/count` form the `repro shard` CLI accepts.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// The shard a cell belongs to when the matrix is split `count` ways:
/// FNV-1a over the textual cell key, mod `count`. Deterministic across
/// processes, machines and matrix enumerations.
///
/// # Panics
///
/// Panics if `count` is zero.
pub fn shard_of(key: &CellKey, count: usize) -> usize {
    use fmt::Write as _;

    assert!(count > 0, "shard count must be positive");
    // Hash the Display bytes as they are formatted — same digest as
    // hashing `key.to_string()`, without the per-call allocation (`owns`
    // runs once per cell per shard).
    struct Fnv(u64);
    impl fmt::Write for Fnv {
        fn write_str(&mut self, s: &str) -> fmt::Result {
            self.0 = fnv64_fold(self.0, s);
            Ok(())
        }
    }
    let mut fnv = Fnv(FNV_OFFSET);
    write!(fnv, "{key}").expect("hashing writer never fails");
    (fnv.0 % count as u64) as usize
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv64_fold(mut state: u64, s: &str) -> u64 {
    for b in s.bytes() {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x100_0000_01b3);
    }
    state
}

/// FNV-1a over `text` — the same digest [`shard_of`] partitions cell keys
/// with, exposed for the other place the campaign layer needs a
/// deterministic, coordination-free hash: the dispatcher derives
/// idempotent job keys from submitted campaign specs with it
/// ([`crate::dispatch::job_key`]).
pub fn fnv64(text: &str) -> u64 {
    fnv64_fold(FNV_OFFSET, text)
}

/// The sharded executor's self-measurement for one campaign: how much
/// simulation work the matrix did, over how much wall time, on how many
/// workers. This is measurement metadata, *not* part of the simulated
/// results — [`CampaignResult::to_json`] deliberately excludes it so the
/// serialized cells stay bit-identical across worker counts and machines.
#[derive(Copy, Clone, Debug)]
pub struct CampaignPerf {
    /// Worker threads the executor ran.
    pub workers: usize,
    /// Wall-clock seconds from first claim to last join.
    pub wall_seconds: f64,
    /// Memory-reference events (L1-I + L1-D accesses) simulated across
    /// all cells.
    pub total_events: u64,
}

impl CampaignPerf {
    /// Aggregate simulation throughput: events per wall-clock second
    /// across the whole matrix.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.total_events as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Throughput normalized per worker — the scale-out headline metric:
    /// a perfectly scaling executor holds this flat as workers grow.
    pub fn events_per_sec_per_worker(&self) -> f64 {
        if self.workers > 0 {
            self.events_per_sec() / self.workers as f64
        } else {
            0.0
        }
    }
}

/// Scaling efficiency of a multi-worker measurement against a single-worker
/// baseline over the *same* matrix: `multi_eps / (single_eps ×
/// effective_workers)`. `1.0` is perfect linear scaling; `0.5` means half
/// of every added worker was lost to contention or serialization.
///
/// `effective_workers` should be the parallelism the machine could actually
/// grant — `min(workers, available cores)` — so that oversubscribing a
/// small host (e.g. 4 workers on 1 core, where aggregate throughput
/// *cannot* rise) reads as the efficiency of the cores used, not as a
/// phantom scaling failure. Callers that want the raw per-worker number
/// pass the worker count itself. Returns 0 for degenerate inputs.
pub fn scaling_efficiency(single_eps: f64, multi_eps: f64, effective_workers: usize) -> f64 {
    if single_eps <= 0.0 || effective_workers == 0 {
        return 0.0;
    }
    multi_eps / (single_eps * effective_workers as f64)
}

/// Stable identity of one matrix cell.
#[derive(Clone, Eq, PartialEq, Hash, Debug)]
pub struct CellKey {
    /// Workload name.
    pub workload: String,
    /// Position of the workload in the campaign's workload axis
    /// (disambiguates two workloads sharing a name).
    pub workload_idx: usize,
    /// Scheduler registry name.
    pub scheduler: String,
    /// Core count.
    pub cores: usize,
    /// STREX team size.
    pub team_size: usize,
}

impl fmt::Display for CellKey {
    /// The stable textual key: `workload/scheduler/c<cores>/t<team_size>`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/c{}/t{}",
            self.workload, self.scheduler, self.cores, self.team_size
        )
    }
}

/// One executed cell: its key and the measured report.
#[derive(Clone, Debug)]
pub struct CampaignCell {
    /// Which cell of the matrix this is.
    pub key: CellKey,
    /// The simulation outcome.
    pub report: Report,
}

/// All cells of an executed campaign, in deterministic matrix order.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    cells: Vec<CampaignCell>,
    perf: CampaignPerf,
}

impl CampaignResult {
    /// The cells, in matrix order (workload-major; see
    /// [`Campaign::cells`]).
    pub fn cells(&self) -> &[CampaignCell] {
        &self.cells
    }

    /// The executor's own throughput measurement for this run (worker
    /// count, wall time, events simulated). Excluded from
    /// [`to_json`](CampaignResult::to_json), which serializes only the
    /// deterministic cells.
    pub fn perf(&self) -> CampaignPerf {
        self.perf
    }

    /// Number of executed cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when the matrix was empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The first report matching `workload`, `scheduler` and `cores`
    /// (any team size).
    pub fn report(&self, workload: &str, scheduler: &str, cores: usize) -> Option<&Report> {
        self.cells
            .iter()
            .find(|c| {
                c.key.workload == workload && c.key.scheduler == scheduler && c.key.cores == cores
            })
            .map(|c| &c.report)
    }

    /// The report for an exact key.
    pub fn get(&self, key: &CellKey) -> Option<&Report> {
        self.cells.iter().find(|c| &c.key == key).map(|c| &c.report)
    }

    /// Serializes every cell — key and full report — as one JSON object,
    /// the on-disk form intended for `BENCH_*.json` trajectories.
    ///
    /// The executor's [`perf`](CampaignResult::perf) metadata is
    /// deliberately excluded (see [`CampaignPerf`]), so two bit-identical
    /// campaigns serialize identically regardless of worker count,
    /// process count or host.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("cells");
        w.begin_array();
        for cell in &self.cells {
            write_cell_json(&mut w, None, cell);
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Parses a campaign back from its [`to_json`](CampaignResult::to_json)
    /// form. The reassembled result re-serializes byte-identically.
    ///
    /// Two reconstructions are necessarily lossy and documented:
    /// [`perf`](CampaignResult::perf) was never serialized, so the parsed
    /// result carries zero workers/wall-seconds (`total_events` is
    /// recomputed from the cells); and `CellKey::workload_idx` is not part
    /// of this format (the shard wire format carries it explicitly), so it
    /// is reconstructed from the workload-major run structure — each time
    /// the workload name changes between consecutive cells, the index
    /// advances. Two *adjacent same-named* workloads merge under one
    /// index, which cannot change the serialized bytes.
    pub fn from_json(text: &str) -> Result<CampaignResult, WireError> {
        Self::from_json_value(&JsonValue::parse(text)?)
    }

    /// [`from_json`](CampaignResult::from_json) over an already-parsed
    /// document — the entry point the dispatch protocol uses, where the
    /// result arrives embedded in a larger frame.
    pub fn from_json_value(doc: &JsonValue) -> Result<CampaignResult, WireError> {
        let mut cells: Vec<CampaignCell> = Vec::new();
        let mut workload_idx = 0usize;
        for v in doc.req_array("cells")? {
            let explicit = v.get("key.workload_idx").is_some();
            let (_, mut cell) = cell_from_json(v)?;
            if !explicit {
                if let Some(prev) = cells.last() {
                    if prev.key.workload != cell.key.workload {
                        workload_idx += 1;
                    }
                }
                cell.key.workload_idx = workload_idx;
            }
            cells.push(cell);
        }
        let total_events = cells.iter().map(|c| report_events(&c.report)).sum();
        Ok(CampaignResult {
            cells,
            perf: CampaignPerf {
                workers: 0,
                wall_seconds: 0.0,
                total_events,
            },
        })
    }

    /// Serializes the campaign as a binwire document — the binary twin
    /// of [`to_json`](CampaignResult::to_json), carrying exactly the
    /// same information (cells only; [`perf`](CampaignResult::perf) is
    /// excluded for the same worker-count-independence reason).
    pub fn to_bin(&self) -> Vec<u8> {
        let mut w = BinWriter::new(binwire::KIND_RESULT);
        w.len(self.cells.len());
        for cell in &self.cells {
            write_cell_bin(&mut w, None, cell);
        }
        w.finish()
    }

    /// Parses a campaign from its [`to_bin`](CampaignResult::to_bin)
    /// form. Like [`from_json`](CampaignResult::from_json), the
    /// never-serialized `perf` comes back zeroed with `total_events`
    /// recomputed, and `workload_idx` is reconstructed from the
    /// workload-major run structure — so the binary and JSON paths
    /// decode to identical values.
    pub fn from_bin(bytes: &[u8]) -> Result<CampaignResult, WireError> {
        let mut r = BinReader::new(bytes, binwire::KIND_RESULT)?;
        let n = r.len(1)?;
        let mut cells: Vec<CampaignCell> = Vec::with_capacity(n);
        let mut workload_idx = 0usize;
        for _ in 0..n {
            let (_, mut cell) = cell_from_bin(&mut r, false)?;
            if let Some(prev) = cells.last() {
                if prev.key.workload != cell.key.workload {
                    workload_idx += 1;
                }
            }
            cell.key.workload_idx = workload_idx;
            cells.push(cell);
        }
        r.finish()?;
        let total_events = cells.iter().map(|c| report_events(&c.report)).sum();
        Ok(CampaignResult {
            cells,
            perf: CampaignPerf {
                workers: 0,
                wall_seconds: 0.0,
                total_events,
            },
        })
    }
}

/// Writes one cell as JSON. Without `index` this is exactly the
/// [`CampaignResult::to_json`] cell layout (kept byte-stable — committed
/// documents and the golden identity checks depend on it); with `index`
/// — the shard wire format — the cell additionally carries its matrix
/// position and the key carries `workload_idx`, so a merge can rebuild
/// exact [`CellKey`]s and matrix order.
fn write_cell_json(w: &mut JsonWriter, index: Option<usize>, cell: &CampaignCell) {
    w.begin_object();
    if let Some(i) = index {
        w.key("index");
        w.number_u64(i as u64);
    }
    w.key("id");
    w.string(&cell.key.to_string());
    w.key("key");
    w.begin_object();
    w.key("workload");
    w.string(&cell.key.workload);
    if index.is_some() {
        w.key("workload_idx");
        w.number_u64(cell.key.workload_idx as u64);
    }
    w.key("scheduler");
    w.string(&cell.key.scheduler);
    w.key("cores");
    w.number_u64(cell.key.cores as u64);
    w.key("team_size");
    w.number_u64(cell.key.team_size as u64);
    w.end_object();
    w.key("report");
    cell.report.write_json(w);
    w.end_object();
}

/// Parses one cell (either layout); returns the matrix index when the
/// document carries one (shard wire format), `0` otherwise.
fn cell_from_json(v: &JsonValue) -> Result<(usize, CampaignCell), WireError> {
    let index = match v.get("index") {
        Some(_) => v.req_u64("index")? as usize,
        None => 0,
    };
    let workload_idx = match v.get("key.workload_idx") {
        Some(_) => v.req_u64("key.workload_idx")? as usize,
        None => 0,
    };
    let key = CellKey {
        workload: v.req_str("key.workload")?.to_string(),
        workload_idx,
        scheduler: v.req_str("key.scheduler")?.to_string(),
        cores: v.req_u64("key.cores")? as usize,
        team_size: v.req_u64("key.team_size")? as usize,
    };
    let id = v.req_str("id")?;
    if id != key.to_string() {
        return Err(WireError::new(format!(
            "cell id {id:?} does not match its key {:?}",
            key.to_string()
        )));
    }
    let report = Report::from_json_value(v.req("report")?)?;
    Ok((index, CampaignCell { key, report }))
}

/// Writes one cell in binwire form. Mirrors [`write_cell_json`]: with
/// `index` (the shard wire format) the cell carries its matrix position
/// and the key carries `workload_idx`; without, neither is shipped (the
/// campaign layout, where `workload_idx` is reconstructed on parse). No
/// redundant `id` string — the binary form carries each key field once.
fn write_cell_bin(w: &mut BinWriter, index: Option<usize>, cell: &CampaignCell) {
    if let Some(i) = index {
        w.u64(i as u64);
        w.u64(cell.key.workload_idx as u64);
    }
    w.str(&cell.key.workload);
    w.str(&cell.key.scheduler);
    w.u64(cell.key.cores as u64);
    w.u64(cell.key.team_size as u64);
    binwire::write_report(w, &cell.report);
}

/// Parses one cell written by [`write_cell_bin`]; `with_index` selects
/// the shard layout (matrix index + `workload_idx` present).
fn cell_from_bin(
    r: &mut BinReader<'_>,
    with_index: bool,
) -> Result<(usize, CampaignCell), WireError> {
    let (index, workload_idx) = if with_index {
        (r.u64()? as usize, r.u64()? as usize)
    } else {
        (0, 0)
    };
    let key = CellKey {
        workload: r.str()?.to_string(),
        workload_idx,
        scheduler: r.str()?.to_string(),
        cores: r.u64()? as usize,
        team_size: r.u64()? as usize,
    };
    let report = binwire::read_report(r)?;
    Ok((index, CampaignCell { key, report }))
}

/// One shard's worth of an executed campaign: the cells a [`ShardSpec`]
/// owns, each tagged with its matrix index, plus the shard's own
/// [`CampaignPerf`] measurement. Produced by [`Campaign::run_shard`],
/// shipped across process boundaries as JSON
/// ([`to_json`](CampaignShard::to_json) /
/// [`from_json`](CampaignShard::from_json)), and reassembled by
/// [`merge`].
#[derive(Clone, Debug)]
pub struct CampaignShard {
    spec: ShardSpec,
    cells: Vec<(usize, CampaignCell)>,
    perf: CampaignPerf,
}

impl CampaignShard {
    /// Which shard of how many this is.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The owned cells with their matrix indices, in matrix order.
    pub fn cells(&self) -> &[(usize, CampaignCell)] {
        &self.cells
    }

    /// This shard's own execution measurement (1 worker — the shard runs
    /// sequentially inside its process).
    pub fn perf(&self) -> CampaignPerf {
        self.perf
    }

    /// Serializes the shard for the wire: spec, perf, and every cell with
    /// its matrix index and full key (including `workload_idx`).
    ///
    /// Unlike [`CampaignResult::to_json`], `perf` *is* serialized here —
    /// it is the child process's self-measurement and crossing the
    /// process boundary is its whole purpose. The bit-identity guarantee
    /// applies to the merged result's cells, never to perf metadata.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("shard");
        w.begin_object();
        w.key("index");
        w.number_u64(self.spec.index as u64);
        w.key("count");
        w.number_u64(self.spec.count as u64);
        w.end_object();
        w.key("perf");
        w.begin_object();
        w.key("workers");
        w.number_u64(self.perf.workers as u64);
        w.key("wall_seconds");
        w.float(self.perf.wall_seconds);
        w.key("total_events");
        w.number_u64(self.perf.total_events);
        w.end_object();
        w.key("cells");
        w.begin_array();
        for (i, cell) in &self.cells {
            write_cell_json(&mut w, Some(*i), cell);
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Parses a shard from its [`to_json`](CampaignShard::to_json) form.
    pub fn from_json(text: &str) -> Result<CampaignShard, WireError> {
        Self::from_json_value(&JsonValue::parse(text)?)
    }

    /// [`from_json`](CampaignShard::from_json) over an already-parsed
    /// document — the entry point the dispatch protocol uses, where the
    /// shard arrives embedded in a `shard_done` frame.
    pub fn from_json_value(doc: &JsonValue) -> Result<CampaignShard, WireError> {
        let spec = ShardSpec {
            index: doc.req_u64("shard.index")? as usize,
            count: doc.req_u64("shard.count")? as usize,
        };
        spec.validate().map_err(|e| WireError::new(e.to_string()))?;
        let perf = CampaignPerf {
            workers: doc.req_u64("perf.workers")? as usize,
            wall_seconds: doc.req_f64("perf.wall_seconds")?,
            total_events: doc.req_u64("perf.total_events")?,
        };
        let cells = doc
            .req_array("cells")?
            .iter()
            .map(cell_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CampaignShard { spec, cells, perf })
    }

    /// Builds a shard directly from its parts — the constructor the
    /// wire-format round-trip tests use to synthesize arbitrary shards
    /// without running a campaign. The spec must be valid; cell
    /// contents are the caller's responsibility (exactly as with
    /// [`from_json`](CampaignShard::from_json), [`merge`] remains the
    /// integrity backstop).
    pub fn from_parts(
        spec: ShardSpec,
        cells: Vec<(usize, CampaignCell)>,
        perf: CampaignPerf,
    ) -> Result<CampaignShard, ConfigError> {
        spec.validate()?;
        Ok(CampaignShard { spec, cells, perf })
    }

    /// Serializes the shard as a binwire document — the binary twin of
    /// [`to_json`](CampaignShard::to_json), carrying the same spec, perf
    /// and indexed cells (`perf` crosses the boundary here too: it is
    /// the child process's self-measurement).
    pub fn to_bin(&self) -> Vec<u8> {
        let mut w = BinWriter::new(binwire::KIND_SHARD);
        w.u64(self.spec.index as u64);
        w.u64(self.spec.count as u64);
        w.u64(self.perf.workers as u64);
        w.f64(self.perf.wall_seconds);
        w.u64(self.perf.total_events);
        w.len(self.cells.len());
        for (i, cell) in &self.cells {
            write_cell_bin(&mut w, Some(*i), cell);
        }
        w.finish()
    }

    /// Parses a shard from its [`to_bin`](CampaignShard::to_bin) form,
    /// with the same spec validation as the JSON path.
    pub fn from_bin(bytes: &[u8]) -> Result<CampaignShard, WireError> {
        let mut r = BinReader::new(bytes, binwire::KIND_SHARD)?;
        let spec = ShardSpec {
            index: r.u64()? as usize,
            count: r.u64()? as usize,
        };
        spec.validate().map_err(|e| WireError::new(e.to_string()))?;
        let perf = CampaignPerf {
            workers: r.u64()? as usize,
            wall_seconds: r.f64()?,
            total_events: r.u64()?,
        };
        let n = r.len(1)?;
        let mut cells = Vec::with_capacity(n);
        for _ in 0..n {
            cells.push(cell_from_bin(&mut r, true)?);
        }
        r.finish()?;
        Ok(CampaignShard { spec, cells, perf })
    }
}

/// A shard's resumable progress: the cells completed so far (with their
/// matrix indices) and the matrix cursor where execution continues.
///
/// Produced incrementally by
/// [`Campaign::run_shard_resumable`] at every cell boundary and consumed
/// by the same entry point to resume after preemption; the dispatcher
/// ships it in `checkpoint` frames so a reaped worker's shard re-queues
/// from its last observed boundary instead of from zero. Serializes
/// through both wire formats ([`to_json`](ShardCheckpoint::to_json) /
/// [`to_bin`](ShardCheckpoint::to_bin)) with full fidelity.
///
/// Invariants (enforced on parse and on resume): every completed cell's
/// index is below `cursor`, indices strictly increase (matrix order),
/// and each cell is owned by `spec` — so a decoded checkpoint can never
/// smuggle a foreign or duplicated cell into a merge.
#[derive(Clone, Debug)]
pub struct ShardCheckpoint {
    spec: ShardSpec,
    cells: Vec<(usize, CampaignCell)>,
    cursor: usize,
}

impl ShardCheckpoint {
    /// An empty checkpoint: nothing completed, cursor at the start of
    /// the matrix. Resuming from it is identical to a fresh run.
    pub fn new(spec: ShardSpec) -> ShardCheckpoint {
        ShardCheckpoint {
            spec,
            cells: Vec::new(),
            cursor: 0,
        }
    }

    /// Which shard this progress belongs to.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The completed cells with their matrix indices, in matrix order.
    pub fn cells(&self) -> &[(usize, CampaignCell)] {
        &self.cells
    }

    /// The matrix index execution resumes scanning from: every completed
    /// cell sits below it, every unstarted owned cell at or above it.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Checks the structural invariants shared by both decode paths.
    fn validate(&self) -> Result<(), WireError> {
        self.spec
            .validate()
            .map_err(|e| WireError::new(e.to_string()))?;
        let mut last: Option<usize> = None;
        for (i, cell) in &self.cells {
            if last.is_some_and(|prev| *i <= prev) {
                return Err(WireError::new(format!(
                    "checkpoint cells are not in strictly increasing matrix order at index {i}"
                )));
            }
            if *i >= self.cursor {
                return Err(WireError::new(format!(
                    "checkpoint cell {i} is at or beyond the cursor {}",
                    self.cursor
                )));
            }
            if !self.spec.owns(&cell.key) {
                return Err(WireError::new(format!(
                    "checkpoint cell {} is not owned by shard {}",
                    cell.key, self.spec
                )));
            }
            last = Some(*i);
        }
        Ok(())
    }

    /// Serializes the checkpoint for the wire: spec, cursor, and every
    /// completed cell in the shard cell layout (matrix index + full key).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("checkpoint");
        w.begin_object();
        w.key("index");
        w.number_u64(self.spec.index as u64);
        w.key("count");
        w.number_u64(self.spec.count as u64);
        w.key("cursor");
        w.number_u64(self.cursor as u64);
        w.end_object();
        w.key("cells");
        w.begin_array();
        for (i, cell) in &self.cells {
            write_cell_json(&mut w, Some(*i), cell);
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Parses a checkpoint from its [`to_json`](ShardCheckpoint::to_json)
    /// form, re-checking every structural invariant.
    pub fn from_json(text: &str) -> Result<ShardCheckpoint, WireError> {
        Self::from_json_value(&JsonValue::parse(text)?)
    }

    /// [`from_json`](ShardCheckpoint::from_json) over an already-parsed
    /// document — the entry point the dispatch protocol uses, where the
    /// checkpoint arrives embedded in a `checkpoint` frame.
    pub fn from_json_value(doc: &JsonValue) -> Result<ShardCheckpoint, WireError> {
        let ckpt = ShardCheckpoint {
            spec: ShardSpec {
                index: doc.req_u64("checkpoint.index")? as usize,
                count: doc.req_u64("checkpoint.count")? as usize,
            },
            cursor: doc.req_u64("checkpoint.cursor")? as usize,
            cells: doc
                .req_array("cells")?
                .iter()
                .map(cell_from_json)
                .collect::<Result<Vec<_>, _>>()?,
        };
        ckpt.validate()?;
        Ok(ckpt)
    }

    /// Serializes the checkpoint as a binwire document — the binary twin
    /// of [`to_json`](ShardCheckpoint::to_json).
    pub fn to_bin(&self) -> Vec<u8> {
        let mut w = BinWriter::new(binwire::KIND_CHECKPOINT);
        w.u64(self.spec.index as u64);
        w.u64(self.spec.count as u64);
        w.u64(self.cursor as u64);
        w.len(self.cells.len());
        for (i, cell) in &self.cells {
            write_cell_bin(&mut w, Some(*i), cell);
        }
        w.finish()
    }

    /// Parses a checkpoint from its [`to_bin`](ShardCheckpoint::to_bin)
    /// form, with the same invariant checks as the JSON path.
    pub fn from_bin(bytes: &[u8]) -> Result<ShardCheckpoint, WireError> {
        let mut r = BinReader::new(bytes, binwire::KIND_CHECKPOINT)?;
        let spec = ShardSpec {
            index: r.u64()? as usize,
            count: r.u64()? as usize,
        };
        let cursor = r.u64()? as usize;
        let n = r.len(1)?;
        let mut cells = Vec::with_capacity(n);
        for _ in 0..n {
            cells.push(cell_from_bin(&mut r, true)?);
        }
        r.finish()?;
        let ckpt = ShardCheckpoint {
            spec,
            cells,
            cursor,
        };
        ckpt.validate()?;
        Ok(ckpt)
    }
}

/// Why [`merge`] refused a set of shards.
#[derive(Clone, Eq, PartialEq, Debug)]
pub enum MergeError {
    /// No shards were supplied.
    Empty,
    /// Two shards disagree on the total shard count.
    MismatchedCounts {
        /// The first shard's count.
        expected: usize,
        /// The disagreeing count.
        found: usize,
    },
    /// A shard's index is not below its count.
    ShardIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The shard count.
        count: usize,
    },
    /// The same shard index appeared twice.
    DuplicateShard {
        /// The duplicated index.
        index: usize,
    },
    /// A shard of the declared count never arrived.
    MissingShard {
        /// The absent index.
        index: usize,
        /// The shard count.
        count: usize,
    },
    /// Two shards both claim the cell at this matrix index.
    DuplicateCell {
        /// The contested matrix index.
        index: usize,
    },
    /// A cell's matrix index is beyond the combined cell count, so some
    /// earlier index must be missing.
    CellIndexOutOfRange {
        /// The out-of-range matrix index.
        index: usize,
        /// The combined cell count.
        total: usize,
    },
    /// No shard delivered the cell at this matrix index.
    MissingCell {
        /// The absent matrix index.
        index: usize,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Empty => write!(f, "no shards to merge"),
            MergeError::MismatchedCounts { expected, found } => {
                write!(f, "shards disagree on the count: {expected} vs {found}")
            }
            MergeError::ShardIndexOutOfRange { index, count } => {
                write!(f, "shard index {index} is out of range for count {count}")
            }
            MergeError::DuplicateShard { index } => {
                write!(f, "shard {index} appeared more than once")
            }
            MergeError::MissingShard { index, count } => {
                write!(f, "shard {index} of {count} is missing")
            }
            MergeError::DuplicateCell { index } => {
                write!(f, "cell {index} was delivered by two shards")
            }
            MergeError::CellIndexOutOfRange { index, total } => {
                write!(
                    f,
                    "cell index {index} is beyond the {total} cells delivered"
                )
            }
            MergeError::MissingCell { index } => {
                write!(f, "cell {index} was delivered by no shard")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Reassembles a complete set of shards into the [`CampaignResult`] the
/// matrix would have produced in one process — cells restored to matrix
/// order, **bit-identical** to [`Campaign::run`] for any shard count and
/// any merge order (property-tested through the JSON round trip in
/// `tests/campaign_api.rs`).
///
/// Every shard of the declared count must be present exactly once, and
/// their cells must tile the matrix exactly (disjoint, no gaps); anything
/// else is a typed [`MergeError`].
///
/// The merged [`CampaignPerf`] describes the fan-out: `workers` is the
/// shard count, `wall_seconds` the slowest shard (the fan-out's makespan,
/// as if shards ran concurrently — callers timing a real fan-out should
/// measure their own wall clock, which also covers spawn and serialization
/// overhead), and `total_events` is recomputed from the merged cells (wire
/// perf metadata is never trusted).
pub fn merge(
    shards: impl IntoIterator<Item = CampaignShard>,
) -> Result<CampaignResult, MergeError> {
    let shards: Vec<CampaignShard> = shards.into_iter().collect();
    let Some(first) = shards.first() else {
        return Err(MergeError::Empty);
    };
    let count = first.spec.count;
    let mut seen = vec![false; count];
    for s in &shards {
        if s.spec.count != count {
            return Err(MergeError::MismatchedCounts {
                expected: count,
                found: s.spec.count,
            });
        }
        if s.spec.index >= count {
            return Err(MergeError::ShardIndexOutOfRange {
                index: s.spec.index,
                count,
            });
        }
        if std::mem::replace(&mut seen[s.spec.index], true) {
            return Err(MergeError::DuplicateShard {
                index: s.spec.index,
            });
        }
    }
    if let Some(index) = seen.iter().position(|present| !present) {
        return Err(MergeError::MissingShard { index, count });
    }

    let total: usize = shards.iter().map(|s| s.cells.len()).sum();
    let mut slots: Vec<Option<CampaignCell>> = (0..total).map(|_| None).collect();
    let mut wall_seconds = 0.0f64;
    for shard in shards {
        wall_seconds = wall_seconds.max(shard.perf.wall_seconds);
        for (index, cell) in shard.cells {
            let slot = slots
                .get_mut(index)
                .ok_or(MergeError::CellIndexOutOfRange { index, total })?;
            if slot.replace(cell).is_some() {
                return Err(MergeError::DuplicateCell { index });
            }
        }
    }
    let cells = slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| slot.ok_or(MergeError::MissingCell { index }))
        .collect::<Result<Vec<_>, _>>()?;
    // Recomputed from the validated cells, never trusted from the wire:
    // a shard's perf metadata could be corrupt without failing the cell
    // bit-identity check, and the merged count must match what the
    // sequential executor would report.
    let total_events = cells.iter().map(|c| report_events(&c.report)).sum();
    Ok(CampaignResult {
        cells,
        perf: CampaignPerf {
            workers: count,
            wall_seconds,
            total_events,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use strex_oltp::workload::WorkloadKind;

    fn pool() -> Workload {
        Workload::preset_small(WorkloadKind::TpccW1, 8, 17)
    }

    #[test]
    fn axes_default_to_the_base_configuration() {
        let w = pool();
        let base = SimConfig::new(4, SchedulerKind::Strex).with_team_size(6);
        let cells = Campaign::new(base)
            .over_workloads([&w])
            .cells(registry::global())
            .expect("valid");
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].0.scheduler, "strex");
        assert_eq!(cells[0].0.cores, 4);
        assert_eq!(cells[0].0.team_size, 6);
    }

    #[test]
    fn matrix_order_is_workload_major_and_stable() {
        let (w1, w2) = (pool(), pool());
        let campaign = Campaign::new(SimConfig::new(2, SchedulerKind::Baseline))
            .over_schedulers([SchedulerKind::Baseline, SchedulerKind::Strex])
            .over_workloads([&w1, &w2])
            .over_cores([2, 4]);
        let cells = campaign.cells(registry::global()).expect("valid");
        assert_eq!(cells.len(), 8);
        let ids: Vec<String> = cells.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(ids[0], "TPC-C-1/baseline/c2/t10");
        assert_eq!(ids[1], "TPC-C-1/baseline/c4/t10");
        assert_eq!(ids[2], "TPC-C-1/strex/c2/t10");
        assert_eq!(ids[4], "TPC-C-1/baseline/c2/t10", "second workload");
        assert_eq!(cells[4].0.workload_idx, 1);
    }

    #[test]
    fn invalid_cells_are_rejected_before_execution() {
        let w = pool();
        let err = Campaign::new(SimConfig::new(2, SchedulerKind::Strex))
            .over_workloads([&w])
            .over_team_sizes([0])
            .run()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroTeamSize);

        let err = Campaign::new(SimConfig::new(2, SchedulerKind::Strex))
            .over_workloads([&w])
            .over_scheduler_names(["no-such-policy"])
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::UnknownScheduler {
                name: "no-such-policy".into()
            }
        );
    }

    #[test]
    fn empty_workload_axis_gives_empty_result() {
        let result = Campaign::new(SimConfig::new(2, SchedulerKind::Baseline))
            .run()
            .expect("empty is fine");
        assert!(result.is_empty());
        assert_eq!(result.to_json(), r#"{"cells":[]}"#);
    }

    #[test]
    fn campaign_perf_and_scaling_efficiency_arithmetic() {
        let single = CampaignPerf {
            workers: 1,
            wall_seconds: 2.0,
            total_events: 1_000_000,
        };
        assert!((single.events_per_sec() - 500_000.0).abs() < 1e-9);
        assert!((single.events_per_sec_per_worker() - 500_000.0).abs() < 1e-9);

        let quad = CampaignPerf {
            workers: 4,
            wall_seconds: 0.625,
            total_events: 1_000_000,
        };
        assert!((quad.events_per_sec() - 1_600_000.0).abs() < 1e-6);
        assert!((quad.events_per_sec_per_worker() - 400_000.0).abs() < 1e-6);

        // 3.2x on 4 effective workers = 0.8 efficiency.
        let eff = scaling_efficiency(single.events_per_sec(), quad.events_per_sec(), 4);
        assert!((eff - 0.8).abs() < 1e-9);
        // Same measurement judged against 1 effective core (a 4-worker run
        // on a 1-core host): the throughput ratio itself.
        let eff1 = scaling_efficiency(single.events_per_sec(), quad.events_per_sec(), 1);
        assert!((eff1 - 3.2).abs() < 1e-9);
        // Degenerate inputs are 0, never NaN/inf.
        assert_eq!(scaling_efficiency(0.0, 1.0, 4), 0.0);
        assert_eq!(scaling_efficiency(1.0, 1.0, 0), 0.0);

        let degenerate = CampaignPerf {
            workers: 0,
            wall_seconds: 0.0,
            total_events: 0,
        };
        assert_eq!(degenerate.events_per_sec(), 0.0);
        assert_eq!(degenerate.events_per_sec_per_worker(), 0.0);
    }

    #[test]
    fn executor_reports_perf_metadata() {
        let w = pool();
        let result = Campaign::new(SimConfig::new(2, SchedulerKind::Baseline))
            .over_schedulers([SchedulerKind::Baseline, SchedulerKind::Strex])
            .over_workloads([&w])
            .parallelism(2)
            .run()
            .expect("runs");
        let perf = result.perf();
        assert_eq!(perf.workers, 2);
        assert!(perf.wall_seconds > 0.0);
        // The executor's event count is the sum over the reports.
        let expected: u64 = result
            .cells()
            .iter()
            .map(|c| {
                let agg = c.report.stats.aggregate();
                agg.i_accesses + agg.d_accesses
            })
            .sum();
        assert_eq!(perf.total_events, expected);
        assert!(perf.events_per_sec() > 0.0);
    }

    #[test]
    fn lookup_by_axis_and_by_key() {
        let w = pool();
        let result = Campaign::new(SimConfig::new(2, SchedulerKind::Baseline))
            .over_schedulers([SchedulerKind::Baseline, SchedulerKind::Strex])
            .over_workloads([&w])
            .run()
            .expect("runs");
        assert_eq!(result.len(), 2);
        let r = result.report("TPC-C-1", "strex", 2).expect("present");
        assert_eq!(r.scheduler, "STREX");
        let key = result.cells()[0].key.clone();
        assert!(result.get(&key).is_some());
        assert!(result.report("TPC-C-1", "slicc", 2).is_none());
    }
}
