//! Length-prefixed binary wire encoding for campaign results.
//!
//! JSON (via [`crate::json::JsonWriter`] / [`crate::jsonval`]) is the
//! debug and interop form of every result that crosses a process
//! boundary — readable, greppable, and the byte-stable format the
//! committed `BENCH_*.json` trajectory depends on. But PR 5's dist
//! accounting showed shard transport is a measurable slice of the
//! fan-out wall time: a quick-matrix shard is dominated by per-cell
//! latency arrays, and formatting/parsing tens of thousands of decimal
//! `u64`s costs far more than moving their raw bytes.
//!
//! This module is the compact twin: a little-endian, length-prefixed
//! binary encoding for [`Report`], `CampaignShard` and `CampaignResult`
//! (the campaign types implement their codecs in
//! [`crate::campaign`] on top of the [`BinWriter`]/[`BinReader`]
//! primitives here). Every document opens with the one-byte [`MAGIC`]
//! — a UTF-8 continuation byte no JSON document can start with — so
//! readers negotiate per payload by looking at the first byte
//! ([`is_binary`]): `repro dist` parents, `repro submit` clients and
//! the dispatch coordinator accept either form on the same channel.
//!
//! The decode side is a trust boundary exactly like [`crate::jsonval`]:
//! truncated buffers, bad magic/kind bytes, over-long length prefixes
//! and invalid UTF-8 are all typed [`WireError`]s — never panics, and
//! never unbounded allocations (length prefixes are checked against the
//! bytes actually present before anything is reserved). Round trips are
//! pinned to the JSON path by proptests in `tests/binwire_roundtrip.rs`:
//! decode(encode(x)) re-serializes to JSON byte-identically to `x`.

use std::fmt;

use crate::jsonval::WireError;
use crate::report::{intern_scheduler_name, Report};

/// First byte of every binary document. `0xB1` is a UTF-8 continuation
/// byte: no JSON text (which starts with `{`, whitespace or another
/// ASCII scalar) can begin with it, so one byte settles the format.
pub const MAGIC: u8 = 0xB1;

/// Document kind byte for a [`Report`].
pub const KIND_REPORT: u8 = b'R';
/// Document kind byte for a `CampaignShard`.
pub const KIND_SHARD: u8 = b'S';
/// Document kind byte for a `CampaignResult`.
pub const KIND_RESULT: u8 = b'C';
/// Document kind byte for a `ShardCheckpoint`.
pub const KIND_CHECKPOINT: u8 = b'K';

/// `true` when a payload starting with `first` is binwire (vs JSON).
#[inline]
pub fn is_binary(first: u8) -> bool {
    first == MAGIC
}

/// Which encoding a result payload crosses a process boundary in.
///
/// Parsed from the `--wire` CLI flag; readers never need it (they
/// negotiate by first byte), writers use it to pick the emit path.
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub enum WireFormat {
    /// Binary binwire documents — the compact production form.
    #[default]
    Bin,
    /// JSON via [`crate::json::JsonWriter`] — the debug/interop form.
    Json,
}

impl WireFormat {
    /// Parses a `--wire` flag value.
    pub fn parse(s: &str) -> Result<WireFormat, String> {
        match s {
            "bin" => Ok(WireFormat::Bin),
            "json" => Ok(WireFormat::Json),
            other => Err(format!("unknown wire format {other:?} (use json or bin)")),
        }
    }
}

impl fmt::Display for WireFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireFormat::Bin => write!(f, "bin"),
            WireFormat::Json => write!(f, "json"),
        }
    }
}

/// Appends binwire primitives to a growing byte buffer. All integers are
/// little-endian; strings and sequences carry a `u32` length prefix.
pub struct BinWriter {
    buf: Vec<u8>,
}

impl BinWriter {
    /// A writer whose document opens with [`MAGIC`] and `kind`.
    pub fn new(kind: u8) -> BinWriter {
        BinWriter {
            buf: vec![MAGIC, kind],
        }
    }

    /// One raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// A `u32`, little-endian — the length-prefix form.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// An `f64` as its exact IEEE-754 bits (no decimal round trip).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// A length prefix for `len` following items.
    pub fn len(&mut self, len: usize) {
        debug_assert!(len <= u32::MAX as usize);
        self.u32(len as u32);
    }

    /// A UTF-8 string: `u32` byte length + bytes.
    pub fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// An optional string: presence byte + string when present.
    pub fn opt_str(&mut self, s: Option<&str>) {
        match s {
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
            None => self.u8(0),
        }
    }

    /// Pre-encoded bytes, appended verbatim — used to nest a complete
    /// binwire document (its own `[MAGIC, kind]` header included) inside
    /// an enclosing one.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// The finished document bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked cursor over a binwire document. Every read that would
/// pass the end of the buffer is a typed [`WireError`] naming the
/// offset; length prefixes are validated against the bytes actually
/// remaining before any allocation.
pub struct BinReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BinReader<'a> {
    /// A reader positioned after the `[MAGIC, kind]` header, or an error
    /// if the document doesn't open with exactly that header.
    pub fn new(buf: &'a [u8], kind: u8) -> Result<BinReader<'a>, WireError> {
        if buf.first() != Some(&MAGIC) {
            return Err(WireError::new(format!(
                "binwire: document does not start with magic 0x{MAGIC:02x}"
            )));
        }
        if buf.get(1) != Some(&kind) {
            return Err(WireError::new(format!(
                "binwire: expected document kind {:?}, found {:?}",
                kind as char,
                buf.get(1).map(|&b| b as char)
            )));
        }
        Ok(BinReader { buf, pos: 2 })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(WireError::new(format!(
                "binwire: truncated document ({} bytes needed at offset {}, {} present)",
                n,
                self.pos,
                self.buf.len()
            ))),
        }
    }

    /// One raw byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// A little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes taken")))
    }

    /// A little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes taken")))
    }

    /// An `f64` from its IEEE-754 bits.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length prefix for items of at least `item_bytes` bytes each,
    /// rejected if the declared count cannot fit in the remaining buffer
    /// — so a garbage prefix can never drive an unbounded allocation.
    pub fn len(&mut self, item_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(item_bytes.max(1)) > remaining {
            return Err(WireError::new(format!(
                "binwire: length prefix {n} at offset {} exceeds the {remaining} bytes remaining",
                self.pos - 4,
            )));
        }
        Ok(n)
    }

    /// A UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes)
            .map_err(|e| WireError::new(format!("binwire: invalid UTF-8 in string: {e}")))
    }

    /// An optional string.
    pub fn opt_str(&mut self) -> Result<Option<&'a str>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            other => Err(WireError::new(format!(
                "binwire: invalid option tag {other} at offset {}",
                self.pos - 1
            ))),
        }
    }

    /// Everything from the cursor to the end of the buffer, consumed —
    /// the counterpart of [`BinWriter::raw`] for a trailing nested
    /// document whose own codec enforces its framing.
    pub fn rest(&mut self) -> &'a [u8] {
        let slice = &self.buf[self.pos..];
        self.pos = self.buf.len();
        slice
    }

    /// Asserts the document ends here — trailing bytes are corruption.
    pub fn finish(self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::new(format!(
                "binwire: {} trailing bytes after the document",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Writes a [`Report`]'s raw measurement fields (the same set
/// [`Report::from_json`] reads — derived metrics are recomputed, never
/// shipped) into an open writer.
pub(crate) fn write_report(w: &mut BinWriter, r: &Report) {
    w.str(r.scheduler);
    w.str(&r.workload);
    w.u64(r.n_cores as u64);
    w.u64(r.makespan);
    w.u64(r.transactions as u64);
    w.u64(r.context_switches);
    w.u64(r.migrations);
    w.opt_str(r.hybrid_choice);
    w.len(r.latencies.len());
    for &l in &r.latencies {
        w.u64(l);
    }
    w.len(r.stats.cores.len());
    for c in &r.stats.cores {
        w.u64(c.instructions);
        w.u64(c.i_accesses);
        w.u64(c.i_misses);
        w.u64(c.i_misses_hidden);
        w.u64(c.prefetches);
        w.u64(c.useful_prefetches);
        w.u64(c.d_accesses);
        w.u64(c.d_misses);
        w.u64(c.d_coherence_misses);
        w.u64(c.upgrade_invalidations);
        w.u64(c.i_stall_cycles);
        w.u64(c.d_stall_cycles);
    }
    w.u64(r.stats.shared.l2_accesses);
    w.u64(r.stats.shared.l2_misses);
    w.u64(r.stats.shared.writebacks);
}

/// Reads a [`Report`] written by [`write_report`]. Scheduler names are
/// interned against the same capped table the JSON parser uses.
pub(crate) fn read_report(r: &mut BinReader<'_>) -> Result<Report, WireError> {
    use strex_sim::stats::{CoreStats, SharedStats, SystemStats};
    let scheduler = intern_scheduler_name(r.str()?)?;
    let workload = r.str()?.to_string();
    let n_cores = r.u64()? as usize;
    let makespan = r.u64()?;
    let transactions = r.u64()? as usize;
    let context_switches = r.u64()?;
    let migrations = r.u64()?;
    let hybrid_choice = match r.opt_str()? {
        Some(name) => Some(intern_scheduler_name(name)?),
        None => None,
    };
    let n_lat = r.len(8)?;
    let mut latencies = Vec::with_capacity(n_lat);
    for _ in 0..n_lat {
        latencies.push(r.u64()?);
    }
    let n_cores_stats = r.len(12 * 8)?;
    let mut cores = Vec::with_capacity(n_cores_stats);
    for _ in 0..n_cores_stats {
        cores.push(CoreStats {
            instructions: r.u64()?,
            i_accesses: r.u64()?,
            i_misses: r.u64()?,
            i_misses_hidden: r.u64()?,
            prefetches: r.u64()?,
            useful_prefetches: r.u64()?,
            d_accesses: r.u64()?,
            d_misses: r.u64()?,
            d_coherence_misses: r.u64()?,
            upgrade_invalidations: r.u64()?,
            i_stall_cycles: r.u64()?,
            d_stall_cycles: r.u64()?,
        });
    }
    let shared = SharedStats {
        l2_accesses: r.u64()?,
        l2_misses: r.u64()?,
        writebacks: r.u64()?,
    };
    Ok(Report {
        scheduler,
        workload,
        n_cores,
        makespan,
        transactions,
        latencies,
        stats: SystemStats { cores, shared },
        context_switches,
        migrations,
        hybrid_choice,
    })
}

impl Report {
    /// Serializes the report as a standalone binwire document — the
    /// binary twin of [`Report::to_json`].
    pub fn to_bin(&self) -> Vec<u8> {
        let mut w = BinWriter::new(KIND_REPORT);
        write_report(&mut w, self);
        w.finish()
    }

    /// Parses a report from its [`to_bin`](Report::to_bin) form.
    pub fn from_bin(bytes: &[u8]) -> Result<Report, WireError> {
        let mut r = BinReader::new(bytes, KIND_REPORT)?;
        let report = read_report(&mut r)?;
        r.finish()?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_format_parses_and_renders() {
        assert_eq!(WireFormat::parse("bin"), Ok(WireFormat::Bin));
        assert_eq!(WireFormat::parse("json"), Ok(WireFormat::Json));
        assert!(WireFormat::parse("yaml").is_err());
        assert_eq!(WireFormat::Bin.to_string(), "bin");
        assert_eq!(WireFormat::default(), WireFormat::Bin);
    }

    #[test]
    fn negotiation_distinguishes_json_from_binary() {
        assert!(is_binary(MAGIC));
        assert!(!is_binary(b'{'));
        assert!(!is_binary(b' '));
        // MAGIC is a UTF-8 continuation byte: no valid JSON text starts
        // with it.
        assert!(std::str::from_utf8(&[MAGIC]).is_err());
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = BinWriter::new(b'T');
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f64(0.1 + 0.2);
        w.str("hé\u{1F600}");
        w.opt_str(None);
        w.opt_str(Some("x"));
        let bytes = w.finish();

        let mut r = BinReader::new(&bytes, b'T').expect("header");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap(), 0.1 + 0.2);
        assert_eq!(r.str().unwrap(), "hé\u{1F600}");
        assert_eq!(r.opt_str().unwrap(), None);
        assert_eq!(r.opt_str().unwrap(), Some("x"));
        r.finish().expect("fully consumed");
    }

    #[test]
    fn corrupt_headers_lengths_and_tails_are_typed_errors() {
        assert!(BinReader::new(b"", b'T').is_err(), "empty");
        assert!(BinReader::new(b"{\"a\":1}", b'T').is_err(), "JSON bytes");
        assert!(BinReader::new(&[MAGIC, b'X'], b'T').is_err(), "wrong kind");

        // A length prefix larger than the remaining buffer must fail
        // before allocating.
        let mut w = BinWriter::new(b'T');
        w.u32(u32::MAX);
        let bytes = w.finish();
        let mut r = BinReader::new(&bytes, b'T').expect("header");
        assert!(r.str().is_err(), "oversized length prefix");

        // Trailing bytes are corruption, not silently ignored.
        let mut w = BinWriter::new(b'T');
        w.u8(1);
        let mut bytes = w.finish();
        bytes.push(0xFF);
        let mut r = BinReader::new(&bytes, b'T').expect("header");
        r.u8().expect("payload byte");
        assert!(r.finish().is_err(), "trailing byte");
    }
}
