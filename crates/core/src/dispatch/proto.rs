//! The dispatcher's wire protocol: newline-delimited frames, JSON or
//! binary, negotiated per frame by first byte.
//!
//! Control messages are one JSON object on one line, terminated by `\n`
//! — the same dependency-free [`crate::json::JsonWriter`] /
//! [`crate::jsonval`] stack the `repro dist` shard format uses, so a
//! worker on another machine needs nothing but a TCP connection and this
//! module. The object's `"type"` field names the message; the payloads
//! reuse the campaign wire formats
//! ([`CampaignShard::to_json`](crate::campaign::CampaignShard::to_json),
//! [`CampaignResult::to_json`](crate::campaign::CampaignResult::to_json))
//! verbatim, so shard bytes that cross the socket are byte-identical to
//! the ones `repro dist` ships over stdout.
//!
//! The two payload carriers — `shard_done` and `result` — additionally
//! have a compact binary form (the production default): a
//! [`binwire::MAGIC`]-opened, length-prefixed frame carrying the
//! [`crate::binwire`] twin of the same document. Readers never need to
//! be told which form a peer speaks: [`binwire::MAGIC`] is a UTF-8
//! continuation byte no JSON line can start with, so [`FrameReader`]
//! decides per frame from the first byte, and peers may mix formats
//! freely on one connection.
//!
//! The read side is a trust boundary: frames come from the network, so
//! truncated lines, malformed JSON, bad binary framing, unknown message
//! types and mistyped payloads are all typed [`ProtoError`]s — never
//! panics (fuzzed in `tests/dispatch_protocol.rs`). See
//! `docs/PROTOCOL.md` for the message flow and delivery contract.

use std::fmt;
use std::io::{self, BufRead, Read, Write};

use crate::binwire::{self, BinReader, BinWriter, WireFormat};
use crate::campaign::{CampaignResult, CampaignShard, ShardSpec};
use crate::json::JsonWriter;
use crate::jsonval::{JsonValue, WireError};

/// Payload kind byte of a binary `shard_done` frame.
pub const KIND_SHARD_DONE: u8 = b'D';
/// Payload kind byte of a binary `result` frame.
pub const KIND_RESULT_FRAME: u8 = b'Z';

/// Cap on one binary frame's declared payload length. A full quick
/// matrix is a few MiB on the wire; the cap only exists so a corrupt or
/// hostile length prefix cannot drive an arbitrarily large allocation.
pub const MAX_BINARY_FRAME: usize = 256 * 1024 * 1024;

/// One protocol message, either direction.
#[derive(Clone, Debug)]
pub enum Message {
    /// Submitter → coordinator: run `campaign` split into `shards` shards.
    Submit {
        /// Catalog name of the campaign to run (e.g. `"quick"`).
        campaign: String,
        /// How many shards to partition the matrix into.
        shards: usize,
    },
    /// Worker → coordinator: this connection executes shards. `name` is
    /// a human-readable label for logs; identity is the connection.
    Register {
        /// Worker label (e.g. `host:pid`).
        name: String,
    },
    /// Worker → coordinator: still alive. Sent on a fixed cadence, also
    /// while a shard is executing.
    Heartbeat,
    /// Coordinator → worker: execute one shard of a job.
    Assign {
        /// Idempotency key of the job this shard belongs to.
        job: String,
        /// Catalog name of the campaign to run.
        campaign: String,
        /// Which shard of how many.
        spec: ShardSpec,
    },
    /// Worker → coordinator: a finished shard, full payload inline.
    ShardDone {
        /// The job key from the [`Message::Assign`] this answers.
        job: String,
        /// The executed shard, same wire format as `repro dist`.
        shard: CampaignShard,
    },
    /// Coordinator → submitter: the merged campaign, bit-identical to a
    /// sequential in-process run.
    Result {
        /// The job's idempotency key.
        job: String,
        /// The merged result.
        result: CampaignResult,
    },
    /// Coordinator → peer: the request cannot be served (unknown
    /// campaign, invalid shard count, failed merge). Terminal for the
    /// connection.
    Reject {
        /// Why.
        message: String,
    },
}

impl Message {
    /// The wire name of this message's type.
    pub fn type_name(&self) -> &'static str {
        match self {
            Message::Submit { .. } => "submit",
            Message::Register { .. } => "register",
            Message::Heartbeat => "heartbeat",
            Message::Assign { .. } => "assign",
            Message::ShardDone { .. } => "shard_done",
            Message::Result { .. } => "result",
            Message::Reject { .. } => "reject",
        }
    }

    /// Serializes the message as one newline-terminated JSON frame.
    pub fn to_frame(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("type");
        w.string(self.type_name());
        match self {
            Message::Submit { campaign, shards } => {
                w.key("campaign");
                w.string(campaign);
                w.key("shards");
                w.number_u64(*shards as u64);
            }
            Message::Register { name } => {
                w.key("name");
                w.string(name);
            }
            Message::Heartbeat => {}
            Message::Assign {
                job,
                campaign,
                spec,
            } => {
                w.key("job");
                w.string(job);
                w.key("campaign");
                w.string(campaign);
                w.key("index");
                w.number_u64(spec.index as u64);
                w.key("count");
                w.number_u64(spec.count as u64);
            }
            Message::ShardDone { job, shard } => {
                w.key("job");
                w.string(job);
                w.key("shard");
                w.raw(&shard.to_json());
            }
            Message::Result { job, result } => {
                w.key("job");
                w.string(job);
                w.key("result");
                w.raw(&result.to_json());
            }
            Message::Reject { message } => {
                w.key("message");
                w.string(message);
            }
        }
        w.end_object();
        let mut frame = w.finish();
        frame.push('\n');
        frame
    }

    /// Serializes the message under `wire`. Control frames are always
    /// one-line JSON regardless of `wire`; under [`WireFormat::Bin`] the
    /// two payload carriers ([`Message::ShardDone`], [`Message::Result`])
    /// become length-prefixed binary frames instead:
    ///
    /// ```text
    /// [MAGIC][payload len: u32 LE][payload][\n]
    /// payload = [MAGIC][kind][job: str][binwire document]
    /// ```
    pub fn to_frame_bytes(&self, wire: WireFormat) -> Vec<u8> {
        match (wire, self) {
            (WireFormat::Bin, Message::ShardDone { job, shard }) => {
                binary_frame(KIND_SHARD_DONE, job, &shard.to_bin())
            }
            (WireFormat::Bin, Message::Result { job, result }) => {
                binary_frame(KIND_RESULT_FRAME, job, &result.to_bin())
            }
            _ => self.to_frame().into_bytes(),
        }
    }

    /// Parses the payload of one binary frame — the bytes between the
    /// length prefix and the trailing newline.
    pub fn parse_binary_payload(payload: &[u8]) -> Result<Message, ProtoError> {
        let kind = *payload.get(1).ok_or_else(|| {
            ProtoError::Wire(WireError::new(
                "binary frame payload shorter than its two-byte header",
            ))
        })?;
        match kind {
            KIND_SHARD_DONE => {
                let mut r = BinReader::new(payload, KIND_SHARD_DONE).map_err(ProtoError::Wire)?;
                let job = r.str().map_err(ProtoError::Wire)?.to_string();
                let shard = CampaignShard::from_bin(r.rest()).map_err(ProtoError::Wire)?;
                Ok(Message::ShardDone { job, shard })
            }
            KIND_RESULT_FRAME => {
                let mut r = BinReader::new(payload, KIND_RESULT_FRAME).map_err(ProtoError::Wire)?;
                let job = r.str().map_err(ProtoError::Wire)?.to_string();
                let result = CampaignResult::from_bin(r.rest()).map_err(ProtoError::Wire)?;
                Ok(Message::Result { job, result })
            }
            other => Err(ProtoError::Wire(WireError::new(format!(
                "unknown binary frame kind {:?}",
                other as char
            )))),
        }
    }

    /// Parses a message from a parsed frame document.
    pub fn from_json_value(doc: &JsonValue) -> Result<Message, WireError> {
        let kind = doc.req_str("type")?;
        match kind {
            "submit" => Ok(Message::Submit {
                campaign: doc.req_str("campaign")?.to_string(),
                shards: doc.req_u64("shards")? as usize,
            }),
            "register" => Ok(Message::Register {
                name: doc.req_str("name")?.to_string(),
            }),
            "heartbeat" => Ok(Message::Heartbeat),
            "assign" => {
                let spec = ShardSpec {
                    index: doc.req_u64("index")? as usize,
                    count: doc.req_u64("count")? as usize,
                };
                spec.validate().map_err(|e| WireError::new(e.to_string()))?;
                Ok(Message::Assign {
                    job: doc.req_str("job")?.to_string(),
                    campaign: doc.req_str("campaign")?.to_string(),
                    spec,
                })
            }
            "shard_done" => Ok(Message::ShardDone {
                job: doc.req_str("job")?.to_string(),
                shard: CampaignShard::from_json_value(doc.req("shard")?)?,
            }),
            "result" => Ok(Message::Result {
                job: doc.req_str("job")?.to_string(),
                result: CampaignResult::from_json_value(doc.req("result")?)?,
            }),
            "reject" => Ok(Message::Reject {
                message: doc.req_str("message")?.to_string(),
            }),
            other => Err(WireError::new(format!("unknown message type {other:?}"))),
        }
    }

    /// Parses one frame (without or with its trailing newline).
    pub fn parse_frame(line: &str) -> Result<Message, ProtoError> {
        let line = line.trim_end_matches(['\r', '\n']);
        let doc = JsonValue::parse(line).map_err(|e| ProtoError::Malformed(e.to_string()))?;
        Message::from_json_value(&doc).map_err(ProtoError::Wire)
    }
}

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The connection ended mid-frame: bytes arrived after the last
    /// newline, then EOF. A clean EOF (no partial line) is *not* an
    /// error — [`read_message`] reports it as `Ok(None)`.
    Truncated {
        /// How many bytes of the unterminated frame arrived.
        bytes: usize,
    },
    /// The line is not valid JSON.
    Malformed(String),
    /// The document is valid JSON but not a valid message (missing or
    /// mistyped field, unknown `"type"`).
    Wire(WireError),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
            ProtoError::Truncated { bytes } => {
                write!(
                    f,
                    "connection closed mid-frame ({bytes} bytes unterminated)"
                )
            }
            ProtoError::Malformed(e) => write!(f, "malformed frame: {e}"),
            ProtoError::Wire(e) => write!(f, "invalid message: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Builds one binary frame around an already-encoded binwire document.
fn binary_frame(kind: u8, job: &str, doc: &[u8]) -> Vec<u8> {
    let mut w = BinWriter::new(kind);
    w.str(job);
    w.raw(doc);
    let payload = w.finish();
    let mut frame = Vec::with_capacity(payload.len() + 6);
    frame.push(binwire::MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame.push(b'\n');
    frame
}

/// Incremental frame reader over one connection: owns the transport's
/// buffered reader plus a single frame buffer that is cleared and reused
/// across calls, so a long-lived peer (worker loop, coordinator reader
/// thread, submitter) decodes every frame without a fresh allocation per
/// message.
///
/// Format negotiation is per frame, by first byte: [`binwire::MAGIC`]
/// opens a length-prefixed binary frame, anything else is a
/// newline-terminated JSON line.
pub struct FrameReader<R> {
    reader: R,
    buf: Vec<u8>,
}

impl<R: BufRead> FrameReader<R> {
    /// Wraps a buffered transport.
    pub fn new(reader: R) -> FrameReader<R> {
        FrameReader {
            reader,
            buf: Vec::new(),
        }
    }

    /// Reads one frame. `Ok(None)` is a clean end of stream (the peer
    /// closed between frames); a partial frame is
    /// [`ProtoError::Truncated`].
    pub fn next_message(&mut self) -> Result<Option<Message>, ProtoError> {
        read_message_buffered(&mut self.reader, &mut self.buf)
    }
}

/// Reads exactly `buf.len()` bytes, reporting EOF mid-read as
/// [`ProtoError::Truncated`] counting `already` bytes consumed before
/// this read plus however many arrived during it.
fn read_exact_or_truncated(
    reader: &mut impl Read,
    buf: &mut [u8],
    already: usize,
) -> Result<(), ProtoError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..])? {
            0 => {
                return Err(ProtoError::Truncated {
                    bytes: already + filled,
                })
            }
            n => filled += n,
        }
    }
    Ok(())
}

/// Reads one frame into `buf` (cleared first, capacity reused),
/// negotiating JSON vs binary by the frame's first byte. `Ok(None)` is a
/// clean end of stream; a partial frame is [`ProtoError::Truncated`].
/// [`FrameReader`] wraps this with a persistent buffer; the free
/// [`read_message`] is the one-shot convenience form.
pub fn read_message_buffered(
    reader: &mut impl BufRead,
    buf: &mut Vec<u8>,
) -> Result<Option<Message>, ProtoError> {
    buf.clear();
    let first = match reader.fill_buf()?.first() {
        Some(&b) => b,
        None => return Ok(None),
    };
    if binwire::is_binary(first) {
        reader.consume(1);
        let mut len = [0u8; 4];
        read_exact_or_truncated(reader, &mut len, 1)?;
        let len = u32::from_le_bytes(len) as usize;
        if len > MAX_BINARY_FRAME {
            return Err(ProtoError::Malformed(format!(
                "binary frame declares a {len}-byte payload (cap {MAX_BINARY_FRAME})"
            )));
        }
        // Grow with bytes actually received, never with the declared
        // length: a lying prefix on a short stream must not allocate
        // the cap up front.
        let got = (&mut *reader).take(len as u64).read_to_end(buf)?;
        if got < len {
            return Err(ProtoError::Truncated { bytes: 5 + got });
        }
        let mut newline = [0u8; 1];
        read_exact_or_truncated(reader, &mut newline, 5 + len)?;
        if newline[0] != b'\n' {
            return Err(ProtoError::Malformed(
                "binary frame is not newline-terminated".to_string(),
            ));
        }
        Message::parse_binary_payload(buf).map(Some)
    } else {
        let n = reader.read_until(b'\n', buf)?;
        if n == 0 {
            return Ok(None);
        }
        if buf.last() != Some(&b'\n') {
            return Err(ProtoError::Truncated { bytes: n });
        }
        let line = std::str::from_utf8(buf)
            .map_err(|e| ProtoError::Io(io::Error::new(io::ErrorKind::InvalidData, e)))?;
        Message::parse_frame(line).map(Some)
    }
}

/// One-shot [`read_message_buffered`] with a throwaway buffer. Loops
/// should hold a [`FrameReader`] instead so the buffer is reused.
pub fn read_message(reader: &mut impl BufRead) -> Result<Option<Message>, ProtoError> {
    let mut buf = Vec::new();
    read_message_buffered(reader, &mut buf)
}

/// Writes one frame to `writer` under `wire` and flushes it, so a
/// message is either fully on the wire or not sent at all from the
/// peer's perspective.
pub fn write_message_wire(
    writer: &mut impl Write,
    msg: &Message,
    wire: WireFormat,
) -> io::Result<()> {
    writer.write_all(&msg.to_frame_bytes(wire))?;
    writer.flush()
}

/// Writes one JSON frame — the debug/interop form. Payload-heavy paths
/// take [`write_message_wire`] with a caller-chosen [`WireFormat`].
pub fn write_message(writer: &mut impl Write, msg: &Message) -> io::Result<()> {
    write_message_wire(writer, msg, WireFormat::Json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn control_frames_round_trip() {
        let originals = [
            Message::Submit {
                campaign: "quick".into(),
                shards: 4,
            },
            Message::Register {
                name: "host:42".into(),
            },
            Message::Heartbeat,
            Message::Assign {
                job: "ab12".into(),
                campaign: "quick".into(),
                spec: ShardSpec { index: 1, count: 4 },
            },
            Message::Reject {
                message: "unknown campaign \"nope\"".into(),
            },
        ];
        for msg in originals {
            let frame = msg.to_frame();
            assert!(frame.ends_with('\n'));
            assert!(!frame[..frame.len() - 1].contains('\n'), "one line only");
            let parsed = Message::parse_frame(&frame).expect("round trip");
            assert_eq!(parsed.to_frame(), frame, "byte-identical re-emission");
        }
    }

    #[test]
    fn stream_reading_separates_frames_and_reports_clean_eof() {
        let bytes = format!(
            "{}{}",
            Message::Heartbeat.to_frame(),
            Message::Register { name: "w".into() }.to_frame()
        );
        let mut r = BufReader::new(bytes.as_bytes());
        assert!(matches!(
            read_message(&mut r).unwrap(),
            Some(Message::Heartbeat)
        ));
        assert!(matches!(
            read_message(&mut r).unwrap(),
            Some(Message::Register { .. })
        ));
        assert!(read_message(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_and_malformed_frames_are_typed_errors() {
        let mut r = BufReader::new(&b"{\"type\":\"heartbeat\""[..]);
        assert!(matches!(
            read_message(&mut r),
            Err(ProtoError::Truncated { bytes: 19 })
        ));

        let mut r = BufReader::new(&b"not json\n"[..]);
        assert!(matches!(
            read_message(&mut r),
            Err(ProtoError::Malformed(_))
        ));

        let mut r = BufReader::new(&b"{\"type\":\"warp\"}\n"[..]);
        match read_message(&mut r) {
            Err(ProtoError::Wire(e)) => assert!(e.to_string().contains("warp"), "{e}"),
            other => panic!("expected a wire error, got {other:?}"),
        }
    }

    fn tiny_shard_done() -> Message {
        use crate::campaign::{CampaignPerf, CampaignShard};
        let shard = CampaignShard::from_parts(
            ShardSpec { index: 1, count: 3 },
            vec![],
            CampaignPerf {
                workers: 2,
                wall_seconds: 0.25,
                total_events: 7,
            },
        )
        .expect("valid spec");
        Message::ShardDone {
            job: "ab12".into(),
            shard,
        }
    }

    #[test]
    fn binary_payload_frames_round_trip_through_the_reader() {
        let msg = tiny_shard_done();
        let frame = msg.to_frame_bytes(WireFormat::Bin);
        assert_eq!(frame[0], binwire::MAGIC);
        assert_eq!(*frame.last().unwrap(), b'\n');

        let mut r = FrameReader::new(BufReader::new(&frame[..]));
        let parsed = r.next_message().expect("parse").expect("one frame");
        assert_eq!(
            parsed.to_frame_bytes(WireFormat::Bin),
            frame,
            "byte-identical re-emission"
        );
        // The decoded message's JSON twin matches the original's, so both
        // forms carry exactly the same document.
        assert_eq!(parsed.to_frame(), msg.to_frame());
        assert!(r.next_message().expect("eof").is_none(), "clean EOF");
    }

    #[test]
    fn json_and_binary_frames_interleave_on_one_stream() {
        let mut bytes = Message::Heartbeat.to_frame().into_bytes();
        bytes.extend_from_slice(&tiny_shard_done().to_frame_bytes(WireFormat::Bin));
        bytes.extend_from_slice(Message::Register { name: "w".into() }.to_frame().as_bytes());

        let mut r = FrameReader::new(BufReader::new(&bytes[..]));
        assert!(matches!(
            r.next_message().unwrap(),
            Some(Message::Heartbeat)
        ));
        assert!(matches!(
            r.next_message().unwrap(),
            Some(Message::ShardDone { .. })
        ));
        assert!(matches!(
            r.next_message().unwrap(),
            Some(Message::Register { .. })
        ));
        assert!(r.next_message().unwrap().is_none());
    }

    #[test]
    fn truncated_binary_frames_are_typed_errors() {
        let frame = tiny_shard_done().to_frame_bytes(WireFormat::Bin);
        // Cut everywhere interesting: after the magic, mid-length-prefix,
        // mid-payload, and right before the trailing newline.
        for cut in [1, 3, frame.len() - 10, frame.len() - 1] {
            let mut r = FrameReader::new(BufReader::new(&frame[..cut]));
            match r.next_message() {
                Err(ProtoError::Truncated { bytes }) => {
                    assert_eq!(bytes, cut, "cut at {cut}");
                }
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_binary_frames_are_typed_errors_never_panics() {
        // A length prefix past the cap is refused before allocating.
        let mut huge = vec![binwire::MAGIC];
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut r = FrameReader::new(BufReader::new(&huge[..]));
        assert!(matches!(r.next_message(), Err(ProtoError::Malformed(_))));

        // An unknown payload kind is a wire error.
        let mut bad_kind = vec![binwire::MAGIC];
        let payload = [binwire::MAGIC, b'?'];
        bad_kind.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bad_kind.extend_from_slice(&payload);
        bad_kind.push(b'\n');
        let mut r = FrameReader::new(BufReader::new(&bad_kind[..]));
        match r.next_message() {
            Err(ProtoError::Wire(e)) => assert!(e.to_string().contains("kind"), "{e}"),
            other => panic!("expected a wire error, got {other:?}"),
        }

        // A frame whose payload is not followed by a newline is malformed.
        let good = tiny_shard_done().to_frame_bytes(WireFormat::Bin);
        let mut no_newline = good.clone();
        *no_newline.last_mut().unwrap() = b'X';
        let mut r = FrameReader::new(BufReader::new(&no_newline[..]));
        assert!(matches!(r.next_message(), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn assign_rejects_invalid_shard_specs() {
        let err = Message::parse_frame(
            "{\"type\":\"assign\",\"job\":\"j\",\"campaign\":\"quick\",\"index\":4,\"count\":4}\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("shard"), "{err}");
    }
}
