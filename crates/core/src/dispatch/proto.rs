//! The dispatcher's wire protocol: newline-delimited frames, JSON or
//! binary, negotiated per frame by first byte.
//!
//! Control messages are one JSON object on one line, terminated by `\n`
//! — the same dependency-free [`crate::json::JsonWriter`] /
//! [`crate::jsonval`] stack the `repro dist` shard format uses, so a
//! worker on another machine needs nothing but a TCP connection and this
//! module. The object's `"type"` field names the message; the payloads
//! reuse the campaign wire formats
//! ([`CampaignShard::to_json`](crate::campaign::CampaignShard::to_json),
//! [`CampaignResult::to_json`](crate::campaign::CampaignResult::to_json))
//! verbatim, so shard bytes that cross the socket are byte-identical to
//! the ones `repro dist` ships over stdout. A v2 submission may carry a
//! whole [`Scenario`] document inline (the
//! [`JobSpec`] half of `submit`/`assign`), embedded with
//! [`Scenario::to_json`](crate::scenario::Scenario::to_json) verbatim —
//! scenario documents are small, so they stay on the JSON control plane
//! even under `--wire bin`.
//!
//! The two payload carriers — `shard_done` and `result` — additionally
//! have a compact binary form (the production default): a
//! [`binwire::MAGIC`]-opened, length-prefixed frame carrying the
//! [`crate::binwire`] twin of the same document. Readers never need to
//! be told which form a peer speaks: [`binwire::MAGIC`] is a UTF-8
//! continuation byte no JSON line can start with, so [`FrameReader`]
//! decides per frame from the first byte, and peers may mix formats
//! freely on one connection.
//!
//! The read side is a trust boundary: frames come from the network, so
//! truncated lines, malformed JSON, bad binary framing, unknown message
//! types and mistyped payloads are all typed [`ProtoError`]s — never
//! panics (fuzzed in `tests/dispatch_protocol.rs`). See
//! `docs/PROTOCOL.md` for the message flow, the versioned message table
//! and the delivery contract.

use std::fmt;
use std::io::{self, BufRead, Read, Write};
use std::sync::Arc;

use crate::binwire::{self, BinReader, BinWriter, WireFormat};
use crate::campaign::{CampaignResult, CampaignShard, ShardCheckpoint, ShardSpec};
use crate::json::JsonWriter;
use crate::jsonval::{JsonValue, WireError};
use crate::scenario::{AssertionOutcome, Scenario};

use super::clock::Clock;
use super::status::StatusReport;

/// Payload kind byte of a binary `shard_done` frame.
pub const KIND_SHARD_DONE: u8 = b'D';
/// Payload kind byte of a binary `result` frame.
pub const KIND_RESULT_FRAME: u8 = b'Z';
/// Payload kind byte of a binary `checkpoint` frame (v2.1).
pub const KIND_CHECKPOINT_FRAME: u8 = b'P';

/// Cap on one binary frame's declared payload length. A full quick
/// matrix is a few MiB on the wire; the cap only exists so a corrupt or
/// hostile length prefix cannot drive an arbitrarily large allocation.
pub const MAX_BINARY_FRAME: usize = 256 * 1024 * 1024;

/// What a submission asks the fleet to run: a campaign from the
/// coordinator's fixed catalog, by name, or a full
/// [`Scenario`] document carried inline — the declared
/// scheduler × workload × cores × team-size matrix plus its assertions.
///
/// The same enum rides in both `submit` (submitter → coordinator) and
/// `assign` (coordinator → worker), so every worker executes exactly
/// the document the submitter declared, not a re-encoding of it. The
/// scenario arm is an [`Arc`] because one submission fans out into many
/// assignments; cloning the spec per frame must not clone the document.
#[derive(Clone, Debug)]
pub enum JobSpec {
    /// A campaign the coordinator's catalog knows by name (e.g.
    /// `"quick"`).
    Catalog(String),
    /// A validated scenario document; workers run its declared matrix
    /// and the coordinator evaluates its assertions on the merged
    /// result.
    Scenario(Arc<Scenario>),
}

impl JobSpec {
    /// Short human-readable label: the catalog name or the scenario name.
    pub fn label(&self) -> &str {
        match self {
            JobSpec::Catalog(name) => name,
            JobSpec::Scenario(s) => &s.name,
        }
    }

    /// The canonical text the job key hashes: the catalog name, or the
    /// scenario's deterministic JSON — content-addressed, so two
    /// submissions of byte-identical documents coalesce onto one job
    /// even if their files were named differently.
    pub fn canonical(&self) -> String {
        match self {
            JobSpec::Catalog(name) => name.clone(),
            JobSpec::Scenario(s) => s.to_json(),
        }
    }

    /// Writes this spec's field into an open message object: either
    /// `"campaign": <name>` or `"scenario": <document>`.
    fn write_field(&self, w: &mut JsonWriter) {
        match self {
            JobSpec::Catalog(name) => {
                w.key("campaign");
                w.string(name);
            }
            JobSpec::Scenario(s) => {
                w.key("scenario");
                w.raw(&s.to_json());
            }
        }
    }

    /// Reads the spec from a message document: `"scenario"` wins when
    /// present (validated through the full scenario parser), otherwise
    /// `"campaign"` is required — which is exactly the v1 `submit`
    /// shape, so v1 frames parse unchanged.
    fn from_doc(doc: &JsonValue) -> Result<JobSpec, WireError> {
        if let Some(sdoc) = doc.get("scenario") {
            let scenario = Scenario::from_json_value(sdoc)
                .map_err(|e| WireError::new(format!("invalid scenario: {e}")))?;
            Ok(JobSpec::Scenario(Arc::new(scenario)))
        } else {
            Ok(JobSpec::Catalog(doc.req_str("campaign")?.to_string()))
        }
    }
}

/// What a worker can do, declared once at [`Message::Register`] and used
/// by the coordinator's capability-aware assignment (a scenario job only
/// goes to a worker that advertised `scenarios`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerCaps {
    /// Host cores available to this worker.
    pub cores: usize,
    /// Whether the worker can pin itself to a core
    /// (`sched_setaffinity`; Linux only).
    pub pinning: bool,
    /// Whether the explicit AVX2 way-scan kernels are available.
    pub avx2: bool,
    /// Whether the worker executes inline scenario documents (vs only
    /// catalog campaigns it has a local runner for).
    pub scenarios: bool,
    /// Wire formats the worker emits `shard_done` frames in.
    pub wires: Vec<WireFormat>,
}

impl WorkerCaps {
    /// Probes the running host: core count, pinning support, AVX2, both
    /// wire formats, scenarios on. What `repro work` registers with.
    pub fn detect() -> WorkerCaps {
        WorkerCaps {
            cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            pinning: cfg!(target_os = "linux"),
            avx2: detect_avx2(),
            scenarios: true,
            wires: vec![WireFormat::Json, WireFormat::Bin],
        }
    }

    /// The conservative capabilities assumed for a v1 `register` frame
    /// that carries no capability fields: one core, no pinning, no
    /// AVX2, catalog jobs only, JSON `shard_done` frames.
    pub fn legacy() -> WorkerCaps {
        WorkerCaps {
            cores: 1,
            pinning: false,
            avx2: false,
            scenarios: false,
            wires: vec![WireFormat::Json],
        }
    }

    /// Writes the capability fields into an open `register` object.
    fn write_fields(&self, w: &mut JsonWriter) {
        w.key("cores");
        w.number_u64(self.cores as u64);
        w.key("pinning");
        w.boolean(self.pinning);
        w.key("avx2");
        w.boolean(self.avx2);
        w.key("scenarios");
        w.boolean(self.scenarios);
        w.key("wires");
        w.begin_array();
        for wire in &self.wires {
            w.string(&wire.to_string());
        }
        w.end_array();
    }

    /// Reads capabilities from a `register` document. A frame with none
    /// of the capability fields is a v1 worker: [`WorkerCaps::legacy`].
    /// A frame with *some* of them is malformed — partial declarations
    /// would silently under- or over-promise.
    fn from_doc(doc: &JsonValue) -> Result<WorkerCaps, WireError> {
        let fields = ["cores", "pinning", "avx2", "scenarios", "wires"];
        let present = fields.iter().filter(|f| doc.get(f).is_some()).count();
        if present == 0 {
            return Ok(WorkerCaps::legacy());
        }
        if present < fields.len() {
            return Err(WireError::new(
                "register carries a partial capability declaration \
                 (all of cores/pinning/avx2/scenarios/wires, or none)",
            ));
        }
        let cores = doc.req_u64("cores")? as usize;
        if cores == 0 {
            return Err(WireError::new("register declares zero cores"));
        }
        let wires = doc
            .req_array("wires")?
            .iter()
            .map(|v| {
                v.as_str()
                    .ok_or_else(|| WireError::new("wires entries must be strings"))
                    .and_then(|s| WireFormat::parse(s).map_err(WireError::new))
            })
            .collect::<Result<Vec<WireFormat>, WireError>>()?;
        if wires.is_empty() {
            return Err(WireError::new("register declares no wire formats"));
        }
        Ok(WorkerCaps {
            cores,
            pinning: doc.req_bool("pinning")?,
            avx2: doc.req_bool("avx2")?,
            scenarios: doc.req_bool("scenarios")?,
            wires,
        })
    }
}

/// Host AVX2 probe for [`WorkerCaps::detect`].
fn detect_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Why the coordinator refused a request — the typed half of
/// [`Message::Reject`], so callers can branch (retry after a rate limit,
/// give up on an unknown campaign) without parsing prose.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejectReason {
    /// The submitted catalog name is not in the coordinator's catalog.
    UnknownCampaign,
    /// The shard count is zero or above [`super::MAX_SHARDS`].
    InvalidShards,
    /// The inline scenario document did not validate.
    InvalidScenario,
    /// The submitter's token bucket is empty; retry after the refill
    /// interval.
    RateLimited,
    /// The pending-job queue is at its bound; retry once jobs drain.
    QueueFull,
    /// The peer sent a well-formed frame that makes no sense in this
    /// direction.
    Protocol,
    /// Completed shards failed to merge or the merged result could not
    /// be evaluated (invariant breach — reported, never a panic).
    MergeFailed,
}

impl RejectReason {
    /// The snake_case wire tag.
    pub fn as_str(&self) -> &'static str {
        match self {
            RejectReason::UnknownCampaign => "unknown_campaign",
            RejectReason::InvalidShards => "invalid_shards",
            RejectReason::InvalidScenario => "invalid_scenario",
            RejectReason::RateLimited => "rate_limited",
            RejectReason::QueueFull => "queue_full",
            RejectReason::Protocol => "protocol",
            RejectReason::MergeFailed => "merge_failed",
        }
    }

    /// Parses a wire tag.
    pub fn parse(s: &str) -> Result<RejectReason, WireError> {
        match s {
            "unknown_campaign" => Ok(RejectReason::UnknownCampaign),
            "invalid_shards" => Ok(RejectReason::InvalidShards),
            "invalid_scenario" => Ok(RejectReason::InvalidScenario),
            "rate_limited" => Ok(RejectReason::RateLimited),
            "queue_full" => Ok(RejectReason::QueueFull),
            "protocol" => Ok(RejectReason::Protocol),
            "merge_failed" => Ok(RejectReason::MergeFailed),
            other => Err(WireError::new(format!("unknown reject reason {other:?}"))),
        }
    }

    /// Every reason, in documentation order.
    pub const ALL: [RejectReason; 7] = [
        RejectReason::UnknownCampaign,
        RejectReason::InvalidShards,
        RejectReason::InvalidScenario,
        RejectReason::RateLimited,
        RejectReason::QueueFull,
        RejectReason::Protocol,
        RejectReason::MergeFailed,
    ];
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One protocol message, either direction.
#[derive(Clone, Debug)]
pub enum Message {
    /// Submitter → coordinator: run `work` split into `shards` shards.
    Submit {
        /// What to run: a catalog name or an inline scenario document.
        work: JobSpec,
        /// How many shards to partition the matrix into.
        shards: usize,
    },
    /// Worker → coordinator: this connection executes shards. `name` is
    /// a human-readable label for logs; identity is the connection.
    Register {
        /// Worker label (e.g. `host:pid`).
        name: String,
        /// What the worker can do; drives capability-aware assignment.
        caps: WorkerCaps,
    },
    /// Worker → coordinator: still alive. Sent on a fixed cadence, also
    /// while a shard is executing.
    Heartbeat,
    /// Coordinator → worker: execute one shard of a job.
    Assign {
        /// Idempotency key of the job this shard belongs to.
        job: String,
        /// What to run, exactly as submitted.
        work: JobSpec,
        /// Which shard of how many.
        spec: ShardSpec,
        /// Progress to resume from, when the coordinator holds a
        /// checkpoint for this shard (v2.1: a re-queued shard continues
        /// from its last reported cell boundary). Absent on fresh
        /// assignments and in every v2 frame; a v2 worker that ignores
        /// it just re-runs the shard from zero, which stays correct.
        checkpoint: Option<ShardCheckpoint>,
    },
    /// Worker → coordinator (v2.1): resumable progress for the shard
    /// this connection is executing — sent at cell boundaries so a
    /// reaped or disconnected worker's shard re-queues from its last
    /// checkpoint instead of from zero. Purely advisory: a coordinator
    /// that ignores it (v2) keeps the at-least-once contract.
    Checkpoint {
        /// The job key from the [`Message::Assign`] this reports on.
        job: String,
        /// The shard's progress so far.
        checkpoint: ShardCheckpoint,
    },
    /// Worker → coordinator: a finished shard, full payload inline.
    ShardDone {
        /// The job key from the [`Message::Assign`] this answers.
        job: String,
        /// The executed shard, same wire format as `repro dist`.
        shard: CampaignShard,
    },
    /// Coordinator → submitter: the merged campaign, bit-identical to a
    /// sequential in-process run, plus — for scenario jobs — one
    /// evaluated diagnostic per declared assertion.
    Result {
        /// The job's idempotency key.
        job: String,
        /// The merged result.
        result: CampaignResult,
        /// Per-assertion diagnostics in declaration order; empty for
        /// catalog jobs (they declare no assertions).
        outcomes: Vec<AssertionOutcome>,
    },
    /// Coordinator → peer: the request cannot be served. Terminal for
    /// the connection.
    Reject {
        /// The typed refusal.
        reason: RejectReason,
        /// Human-readable detail for logs.
        message: String,
    },
    /// Any peer → coordinator: describe the fleet. Answered with one
    /// [`Message::Status`]; the connection stays open, so a watcher can
    /// poll on one socket.
    StatusRequest,
    /// Coordinator → peer: the fleet snapshot a [`Message::StatusRequest`]
    /// asked for.
    Status {
        /// Jobs in flight, queue depth, per-worker liveness and
        /// assignment, completion counters, rate-limit state.
        report: StatusReport,
    },
}

impl Message {
    /// The wire name of this message's type.
    pub fn type_name(&self) -> &'static str {
        match self {
            Message::Submit { .. } => "submit",
            Message::Register { .. } => "register",
            Message::Heartbeat => "heartbeat",
            Message::Assign { .. } => "assign",
            Message::Checkpoint { .. } => "checkpoint",
            Message::ShardDone { .. } => "shard_done",
            Message::Result { .. } => "result",
            Message::Reject { .. } => "reject",
            Message::StatusRequest => "status",
            Message::Status { .. } => "status_report",
        }
    }

    /// Serializes the message as one newline-terminated JSON frame.
    pub fn to_frame(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("type");
        w.string(self.type_name());
        match self {
            Message::Submit { work, shards } => {
                work.write_field(&mut w);
                w.key("shards");
                w.number_u64(*shards as u64);
            }
            Message::Register { name, caps } => {
                w.key("name");
                w.string(name);
                caps.write_fields(&mut w);
            }
            Message::Heartbeat => {}
            Message::Assign {
                job,
                work,
                spec,
                checkpoint,
            } => {
                w.key("job");
                w.string(job);
                work.write_field(&mut w);
                w.key("index");
                w.number_u64(spec.index as u64);
                w.key("count");
                w.number_u64(spec.count as u64);
                if let Some(ckpt) = checkpoint {
                    w.key("checkpoint");
                    w.raw(&ckpt.to_json());
                }
            }
            Message::Checkpoint { job, checkpoint } => {
                w.key("job");
                w.string(job);
                w.key("checkpoint");
                w.raw(&checkpoint.to_json());
            }
            Message::ShardDone { job, shard } => {
                w.key("job");
                w.string(job);
                w.key("shard");
                w.raw(&shard.to_json());
            }
            Message::Result {
                job,
                result,
                outcomes,
            } => {
                w.key("job");
                w.string(job);
                w.key("outcomes");
                w.raw(&outcomes_json(outcomes));
                w.key("result");
                w.raw(&result.to_json());
            }
            Message::Reject { reason, message } => {
                w.key("reason");
                w.string(reason.as_str());
                w.key("message");
                w.string(message);
            }
            Message::StatusRequest => {}
            Message::Status { report } => {
                report.write_fields(&mut w);
            }
        }
        w.end_object();
        let mut frame = w.finish();
        frame.push('\n');
        frame
    }

    /// Serializes the message under `wire`. Control frames are always
    /// one-line JSON regardless of `wire`; under [`WireFormat::Bin`] the
    /// two payload carriers ([`Message::ShardDone`], [`Message::Result`])
    /// become length-prefixed binary frames instead:
    ///
    /// ```text
    /// [MAGIC][payload len: u32 LE][payload][\n]
    /// shard_done payload = [MAGIC]['D'][job: str][binwire shard]
    /// result payload     = [MAGIC]['Z'][job: str][outcomes: str (JSON array)][binwire result]
    /// checkpoint payload = [MAGIC]['P'][job: str][binwire checkpoint]
    /// ```
    pub fn to_frame_bytes(&self, wire: WireFormat) -> Vec<u8> {
        match (wire, self) {
            (WireFormat::Bin, Message::ShardDone { job, shard }) => {
                let mut w = BinWriter::new(KIND_SHARD_DONE);
                w.str(job);
                w.raw(&shard.to_bin());
                finish_binary_frame(w)
            }
            (WireFormat::Bin, Message::Checkpoint { job, checkpoint }) => {
                let mut w = BinWriter::new(KIND_CHECKPOINT_FRAME);
                w.str(job);
                w.raw(&checkpoint.to_bin());
                finish_binary_frame(w)
            }
            (
                WireFormat::Bin,
                Message::Result {
                    job,
                    result,
                    outcomes,
                },
            ) => {
                let mut w = BinWriter::new(KIND_RESULT_FRAME);
                w.str(job);
                w.str(&outcomes_json(outcomes));
                w.raw(&result.to_bin());
                finish_binary_frame(w)
            }
            _ => self.to_frame().into_bytes(),
        }
    }

    /// Parses the payload of one binary frame — the bytes between the
    /// length prefix and the trailing newline.
    pub fn parse_binary_payload(payload: &[u8]) -> Result<Message, ProtoError> {
        let kind = *payload.get(1).ok_or_else(|| {
            ProtoError::Wire(WireError::new(
                "binary frame payload shorter than its two-byte header",
            ))
        })?;
        match kind {
            KIND_SHARD_DONE => {
                let mut r = BinReader::new(payload, KIND_SHARD_DONE).map_err(ProtoError::Wire)?;
                let job = r.str().map_err(ProtoError::Wire)?.to_string();
                let shard = CampaignShard::from_bin(r.rest()).map_err(ProtoError::Wire)?;
                Ok(Message::ShardDone { job, shard })
            }
            KIND_CHECKPOINT_FRAME => {
                let mut r =
                    BinReader::new(payload, KIND_CHECKPOINT_FRAME).map_err(ProtoError::Wire)?;
                let job = r.str().map_err(ProtoError::Wire)?.to_string();
                let checkpoint = ShardCheckpoint::from_bin(r.rest()).map_err(ProtoError::Wire)?;
                Ok(Message::Checkpoint { job, checkpoint })
            }
            KIND_RESULT_FRAME => {
                let mut r = BinReader::new(payload, KIND_RESULT_FRAME).map_err(ProtoError::Wire)?;
                let job = r.str().map_err(ProtoError::Wire)?.to_string();
                let outcomes = parse_outcomes_json(r.str().map_err(ProtoError::Wire)?)
                    .map_err(ProtoError::Wire)?;
                let result = CampaignResult::from_bin(r.rest()).map_err(ProtoError::Wire)?;
                Ok(Message::Result {
                    job,
                    result,
                    outcomes,
                })
            }
            other => Err(ProtoError::Wire(WireError::new(format!(
                "unknown binary frame kind {:?}",
                other as char
            )))),
        }
    }

    /// Parses a message from a parsed frame document.
    pub fn from_json_value(doc: &JsonValue) -> Result<Message, WireError> {
        let kind = doc.req_str("type")?;
        match kind {
            "submit" => Ok(Message::Submit {
                work: JobSpec::from_doc(doc)?,
                shards: doc.req_u64("shards")? as usize,
            }),
            "register" => Ok(Message::Register {
                name: doc.req_str("name")?.to_string(),
                caps: WorkerCaps::from_doc(doc)?,
            }),
            "heartbeat" => Ok(Message::Heartbeat),
            "assign" => {
                let spec = ShardSpec {
                    index: doc.req_u64("index")? as usize,
                    count: doc.req_u64("count")? as usize,
                };
                spec.validate().map_err(|e| WireError::new(e.to_string()))?;
                let checkpoint = match doc.get("checkpoint") {
                    Some(v) => Some(ShardCheckpoint::from_json_value(v)?),
                    None => None,
                };
                if let Some(ckpt) = &checkpoint {
                    if ckpt.spec() != spec {
                        return Err(WireError::new(format!(
                            "assign carries a checkpoint for shard {}, not {spec}",
                            ckpt.spec()
                        )));
                    }
                }
                Ok(Message::Assign {
                    job: doc.req_str("job")?.to_string(),
                    work: JobSpec::from_doc(doc)?,
                    spec,
                    checkpoint,
                })
            }
            "checkpoint" => Ok(Message::Checkpoint {
                job: doc.req_str("job")?.to_string(),
                checkpoint: ShardCheckpoint::from_json_value(doc.req("checkpoint")?)?,
            }),
            "shard_done" => Ok(Message::ShardDone {
                job: doc.req_str("job")?.to_string(),
                shard: CampaignShard::from_json_value(doc.req("shard")?)?,
            }),
            "result" => Ok(Message::Result {
                job: doc.req_str("job")?.to_string(),
                result: CampaignResult::from_json_value(doc.req("result")?)?,
                // Absent in v1 `result` frames; an empty diagnostic list
                // means "nothing was asserted", which is exactly right.
                outcomes: match doc.get("outcomes") {
                    Some(v) => outcomes_from_value(v)?,
                    None => Vec::new(),
                },
            }),
            "reject" => Ok(Message::Reject {
                // V1 frames carried prose only; classify them as the
                // generic protocol refusal.
                reason: match doc.get("reason") {
                    Some(v) => RejectReason::parse(
                        v.as_str()
                            .ok_or_else(|| WireError::new("reject reason must be a string"))?,
                    )?,
                    None => RejectReason::Protocol,
                },
                message: doc.req_str("message")?.to_string(),
            }),
            "status" => Ok(Message::StatusRequest),
            "status_report" => Ok(Message::Status {
                report: StatusReport::from_json_value(doc)?,
            }),
            other => Err(WireError::new(format!("unknown message type {other:?}"))),
        }
    }

    /// Parses one frame (without or with its trailing newline).
    pub fn parse_frame(line: &str) -> Result<Message, ProtoError> {
        let line = line.trim_end_matches(['\r', '\n']);
        let doc = JsonValue::parse(line).map_err(|e| ProtoError::Malformed(e.to_string()))?;
        Message::from_json_value(&doc).map_err(ProtoError::Wire)
    }
}

/// Renders a diagnostic list as one JSON array (deterministic order and
/// key layout, like every other wire document here).
fn outcomes_json(outcomes: &[AssertionOutcome]) -> String {
    let mut w = JsonWriter::new();
    w.begin_array();
    for o in outcomes {
        o.write_into(&mut w);
    }
    w.end_array();
    w.finish()
}

/// Parses a diagnostic list from its JSON array text (the binary result
/// frame embeds it as one string field).
fn parse_outcomes_json(text: &str) -> Result<Vec<AssertionOutcome>, WireError> {
    let doc = JsonValue::parse(text).map_err(|e| WireError::new(e.to_string()))?;
    outcomes_from_value(&doc)
}

/// Parses a diagnostic list from an already-parsed array value.
fn outcomes_from_value(doc: &JsonValue) -> Result<Vec<AssertionOutcome>, WireError> {
    doc.as_array()
        .ok_or_else(|| WireError::new("outcomes must be an array"))?
        .iter()
        .map(AssertionOutcome::from_json_value)
        .collect()
}

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The connection ended mid-frame: bytes arrived after the last
    /// newline, then EOF. A clean EOF (no partial line) is *not* an
    /// error — [`read_message`] reports it as `Ok(None)`.
    Truncated {
        /// How many bytes of the unterminated frame arrived.
        bytes: usize,
    },
    /// The line is not valid JSON.
    Malformed(String),
    /// The document is valid JSON but not a valid message (missing or
    /// mistyped field, unknown `"type"`).
    Wire(WireError),
    /// A frame started arriving but did not complete within the reader's
    /// per-frame deadline — the typed form of "a peer is dribbling one
    /// byte per heartbeat to pin this reader thread forever". Only
    /// surfaced by readers built with [`FrameReader::with_deadline`].
    Stalled {
        /// The deadline that elapsed, in milliseconds.
        ms: u64,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
            ProtoError::Truncated { bytes } => {
                write!(
                    f,
                    "connection closed mid-frame ({bytes} bytes unterminated)"
                )
            }
            ProtoError::Malformed(e) => write!(f, "malformed frame: {e}"),
            ProtoError::Wire(e) => write!(f, "invalid message: {e}"),
            ProtoError::Stalled { ms } => {
                write!(
                    f,
                    "frame stalled: incomplete after the {ms} ms read deadline"
                )
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Wraps one finished binwire payload into a length-prefixed frame.
fn finish_binary_frame(w: BinWriter) -> Vec<u8> {
    let payload = w.finish();
    let mut frame = Vec::with_capacity(payload.len() + 6);
    frame.push(binwire::MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame.push(b'\n');
    frame
}

/// Incremental frame reader over one connection: owns the transport's
/// buffered reader plus a single frame buffer that is cleared and reused
/// across calls, so a long-lived peer (worker loop, coordinator reader
/// thread, submitter) decodes every frame without a fresh allocation per
/// message.
///
/// Format negotiation is per frame, by first byte: [`binwire::MAGIC`]
/// opens a length-prefixed binary frame, anything else is a
/// newline-terminated JSON line.
pub struct FrameReader<R> {
    reader: R,
    buf: Vec<u8>,
    deadline: Option<FrameDeadline>,
}

struct FrameDeadline {
    clock: Arc<dyn Clock>,
    ms: u64,
}

impl<R: BufRead> FrameReader<R> {
    /// Wraps a buffered transport.
    pub fn new(reader: R) -> FrameReader<R> {
        FrameReader {
            reader,
            buf: Vec::new(),
            deadline: None,
        }
    }

    /// Wraps a buffered transport with a per-frame read deadline: once a
    /// frame's *first byte* arrives, the whole frame must complete within
    /// `deadline_ms` or [`next_message`](FrameReader::next_message)
    /// returns [`ProtoError::Stalled`] — the defense against a peer that
    /// dribbles one byte per heartbeat interval to pin a reader thread
    /// forever. Waiting *between* frames is unbounded (an idle submitter
    /// connection is legal).
    ///
    /// The clock is only consulted when a read returns — the transport
    /// must wake periodically for the deadline to fire while blocked, so
    /// pair this with a socket read timeout (the coordinator's reader
    /// threads do; `WouldBlock`/`TimedOut` wakes are absorbed here, not
    /// surfaced). `deadline_ms == 0` disables the deadline.
    pub fn with_deadline(reader: R, deadline_ms: u64, clock: Arc<dyn Clock>) -> FrameReader<R> {
        FrameReader {
            reader,
            buf: Vec::new(),
            deadline: (deadline_ms > 0).then_some(FrameDeadline {
                clock,
                ms: deadline_ms,
            }),
        }
    }

    /// Reads one frame. `Ok(None)` is a clean end of stream (the peer
    /// closed between frames); a partial frame is
    /// [`ProtoError::Truncated`]; a frame still incomplete when the
    /// configured per-frame deadline elapses is [`ProtoError::Stalled`].
    pub fn next_message(&mut self) -> Result<Option<Message>, ProtoError> {
        match &self.deadline {
            None => read_message_buffered(&mut self.reader, &mut self.buf),
            Some(deadline) => {
                let mut guarded = DeadlineReader {
                    inner: &mut self.reader,
                    clock: &*deadline.clock,
                    deadline_ms: deadline.ms,
                    frame_started_ms: None,
                };
                match read_message_buffered(&mut guarded, &mut self.buf) {
                    Err(ProtoError::Io(e)) if is_stall(&e) => {
                        Err(ProtoError::Stalled { ms: deadline.ms })
                    }
                    other => other,
                }
            }
        }
    }
}

/// The marker error [`DeadlineReader`] raises when a frame overruns its
/// deadline, so [`FrameReader::next_message`] can distinguish a stall
/// from a genuine transport failure.
#[derive(Debug)]
struct StallElapsed {
    ms: u64,
}

impl fmt::Display for StallElapsed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame incomplete after {} ms", self.ms)
    }
}

impl std::error::Error for StallElapsed {}

fn is_stall(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|inner| inner.is::<StallElapsed>())
}

/// `true` for the error kinds a timed-out socket read reports; the
/// deadline reader absorbs these and re-checks the clock instead of
/// surfacing them.
fn is_read_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

/// A [`BufRead`] shim enforcing one frame's read deadline: the timer
/// starts when the frame's first byte arrives and is checked every time
/// the inner read returns — after data (the dribble defense) and after a
/// socket-timeout wake (the silence defense).
struct DeadlineReader<'a, R: BufRead> {
    inner: &'a mut R,
    clock: &'a dyn Clock,
    deadline_ms: u64,
    frame_started_ms: Option<u64>,
}

impl<R: BufRead> DeadlineReader<'_, R> {
    /// Errors with the stall marker once the frame has overrun.
    fn check(&self) -> io::Result<()> {
        if let Some(started) = self.frame_started_ms {
            if self.clock.now_ms().saturating_sub(started) >= self.deadline_ms {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    StallElapsed {
                        ms: self.deadline_ms,
                    },
                ));
            }
        }
        Ok(())
    }

    /// Starts the frame timer at the first byte.
    fn mark_progress(&mut self) {
        if self.frame_started_ms.is_none() {
            self.frame_started_ms = Some(self.clock.now_ms());
        }
    }
}

impl<R: BufRead> Read for DeadlineReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            self.check()?;
            match self.inner.read(buf) {
                Ok(0) => return Ok(0),
                Ok(n) => {
                    self.mark_progress();
                    return Ok(n);
                }
                Err(e) if is_read_timeout(&e) => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl<R: BufRead> BufRead for DeadlineReader<'_, R> {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        // Probe without letting the borrow escape the loop; the buffered
        // re-call below is free once data (or EOF) arrived.
        let got_data;
        loop {
            self.check()?;
            match self.inner.fill_buf() {
                Ok(b) => {
                    got_data = !b.is_empty();
                    break;
                }
                Err(e) if is_read_timeout(&e) => continue,
                Err(e) => return Err(e),
            }
        }
        if got_data {
            self.mark_progress();
        }
        self.inner.fill_buf()
    }

    fn consume(&mut self, amt: usize) {
        self.inner.consume(amt);
    }
}

/// Reads exactly `buf.len()` bytes, reporting EOF mid-read as
/// [`ProtoError::Truncated`] counting `already` bytes consumed before
/// this read plus however many arrived during it.
fn read_exact_or_truncated(
    reader: &mut impl Read,
    buf: &mut [u8],
    already: usize,
) -> Result<(), ProtoError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..])? {
            0 => {
                return Err(ProtoError::Truncated {
                    bytes: already + filled,
                })
            }
            n => filled += n,
        }
    }
    Ok(())
}

/// Reads one frame into `buf` (cleared first, capacity reused),
/// negotiating JSON vs binary by the frame's first byte. `Ok(None)` is a
/// clean end of stream; a partial frame is [`ProtoError::Truncated`].
/// [`FrameReader`] wraps this with a persistent buffer; the free
/// [`read_message`] is the one-shot convenience form.
pub fn read_message_buffered(
    reader: &mut impl BufRead,
    buf: &mut Vec<u8>,
) -> Result<Option<Message>, ProtoError> {
    buf.clear();
    let first = match reader.fill_buf()?.first() {
        Some(&b) => b,
        None => return Ok(None),
    };
    if binwire::is_binary(first) {
        reader.consume(1);
        let mut len = [0u8; 4];
        read_exact_or_truncated(reader, &mut len, 1)?;
        let len = u32::from_le_bytes(len) as usize;
        if len > MAX_BINARY_FRAME {
            return Err(ProtoError::Malformed(format!(
                "binary frame declares a {len}-byte payload (cap {MAX_BINARY_FRAME})"
            )));
        }
        // Grow with bytes actually received, never with the declared
        // length: a lying prefix on a short stream must not allocate
        // the cap up front.
        let got = (&mut *reader).take(len as u64).read_to_end(buf)?;
        if got < len {
            return Err(ProtoError::Truncated { bytes: 5 + got });
        }
        let mut newline = [0u8; 1];
        read_exact_or_truncated(reader, &mut newline, 5 + len)?;
        if newline[0] != b'\n' {
            return Err(ProtoError::Malformed(
                "binary frame is not newline-terminated".to_string(),
            ));
        }
        Message::parse_binary_payload(buf).map(Some)
    } else {
        let n = reader.read_until(b'\n', buf)?;
        if n == 0 {
            return Ok(None);
        }
        if buf.last() != Some(&b'\n') {
            return Err(ProtoError::Truncated { bytes: n });
        }
        let line = std::str::from_utf8(buf)
            .map_err(|e| ProtoError::Io(io::Error::new(io::ErrorKind::InvalidData, e)))?;
        Message::parse_frame(line).map(Some)
    }
}

/// One-shot [`read_message_buffered`] with a throwaway buffer. Loops
/// should hold a [`FrameReader`] instead so the buffer is reused.
pub fn read_message(reader: &mut impl BufRead) -> Result<Option<Message>, ProtoError> {
    let mut buf = Vec::new();
    read_message_buffered(reader, &mut buf)
}

/// Writes one frame to `writer` under `wire` and flushes it, so a
/// message is either fully on the wire or not sent at all from the
/// peer's perspective.
pub fn write_message_wire(
    writer: &mut impl Write,
    msg: &Message,
    wire: WireFormat,
) -> io::Result<()> {
    writer.write_all(&msg.to_frame_bytes(wire))?;
    writer.flush()
}

/// Writes one JSON frame — the debug/interop form. Payload-heavy paths
/// take [`write_message_wire`] with a caller-chosen [`WireFormat`].
pub fn write_message(writer: &mut impl Write, msg: &Message) -> io::Result<()> {
    write_message_wire(writer, msg, WireFormat::Json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn tiny_scenario() -> Arc<Scenario> {
        Arc::new(
            Scenario::from_json(
                r#"{
                    "name": "tiny",
                    "matrix": {
                        "workloads": ["TPC-C-1"],
                        "pool": 8,
                        "seed": 7,
                        "small": true,
                        "schedulers": ["baseline"],
                        "cores": [2]
                    },
                    "assertions": [
                        {
                            "kind": "throughput_at_least",
                            "cell": {"workload": "TPC-C-1", "scheduler": "baseline", "cores": 2},
                            "min": 0.0
                        }
                    ]
                }"#,
            )
            .expect("valid scenario"),
        )
    }

    #[test]
    fn control_frames_round_trip() {
        let originals = [
            Message::Submit {
                work: JobSpec::Catalog("quick".into()),
                shards: 4,
            },
            Message::Submit {
                work: JobSpec::Scenario(tiny_scenario()),
                shards: 2,
            },
            Message::Register {
                name: "host:42".into(),
                caps: WorkerCaps::detect(),
            },
            Message::Register {
                name: "v1".into(),
                caps: WorkerCaps::legacy(),
            },
            Message::Heartbeat,
            Message::Assign {
                job: "ab12".into(),
                work: JobSpec::Catalog("quick".into()),
                spec: ShardSpec { index: 1, count: 4 },
                checkpoint: None,
            },
            Message::Assign {
                job: "cd34".into(),
                work: JobSpec::Scenario(tiny_scenario()),
                spec: ShardSpec { index: 0, count: 2 },
                checkpoint: None,
            },
            Message::Reject {
                reason: RejectReason::UnknownCampaign,
                message: "unknown campaign \"nope\"".into(),
            },
            Message::StatusRequest,
        ];
        for msg in originals {
            let frame = msg.to_frame();
            assert!(frame.ends_with('\n'));
            assert!(!frame[..frame.len() - 1].contains('\n'), "one line only");
            let parsed = Message::parse_frame(&frame).expect("round trip");
            assert_eq!(parsed.to_frame(), frame, "byte-identical re-emission");
        }
    }

    #[test]
    fn v1_frames_still_parse() {
        // A v1 submit names a catalog campaign with no scenario key.
        let msg =
            Message::parse_frame("{\"type\":\"submit\",\"campaign\":\"quick\",\"shards\":4}\n")
                .expect("v1 submit");
        match msg {
            Message::Submit {
                work: JobSpec::Catalog(name),
                shards: 4,
            } => assert_eq!(name, "quick"),
            other => panic!("unexpected {other:?}"),
        }
        // A v1 register carries no capability fields: conservative caps.
        let msg = Message::parse_frame("{\"type\":\"register\",\"name\":\"w\"}\n").expect("v1");
        match msg {
            Message::Register { caps, .. } => assert_eq!(caps, WorkerCaps::legacy()),
            other => panic!("unexpected {other:?}"),
        }
        // A v1 reject has prose but no reason tag.
        let msg = Message::parse_frame("{\"type\":\"reject\",\"message\":\"nope\"}\n").expect("v1");
        match msg {
            Message::Reject { reason, message } => {
                assert_eq!(reason, RejectReason::Protocol);
                assert_eq!(message, "nope");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn partial_capability_declarations_are_refused() {
        let err = Message::parse_frame(
            "{\"type\":\"register\",\"name\":\"w\",\"cores\":4,\"pinning\":true}\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("partial"), "{err}");
    }

    #[test]
    fn reject_reasons_round_trip_their_tags() {
        for reason in RejectReason::ALL {
            assert_eq!(RejectReason::parse(reason.as_str()).unwrap(), reason);
        }
        assert!(RejectReason::parse("because").is_err());
    }

    #[test]
    fn stream_reading_separates_frames_and_reports_clean_eof() {
        let bytes = format!(
            "{}{}",
            Message::Heartbeat.to_frame(),
            Message::Register {
                name: "w".into(),
                caps: WorkerCaps::legacy(),
            }
            .to_frame()
        );
        let mut r = BufReader::new(bytes.as_bytes());
        assert!(matches!(
            read_message(&mut r).unwrap(),
            Some(Message::Heartbeat)
        ));
        assert!(matches!(
            read_message(&mut r).unwrap(),
            Some(Message::Register { .. })
        ));
        assert!(read_message(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_and_malformed_frames_are_typed_errors() {
        let mut r = BufReader::new(&b"{\"type\":\"heartbeat\""[..]);
        assert!(matches!(
            read_message(&mut r),
            Err(ProtoError::Truncated { bytes: 19 })
        ));

        let mut r = BufReader::new(&b"not json\n"[..]);
        assert!(matches!(
            read_message(&mut r),
            Err(ProtoError::Malformed(_))
        ));

        let mut r = BufReader::new(&b"{\"type\":\"warp\"}\n"[..]);
        match read_message(&mut r) {
            Err(ProtoError::Wire(e)) => assert!(e.to_string().contains("warp"), "{e}"),
            other => panic!("expected a wire error, got {other:?}"),
        }
    }

    fn tiny_shard_done() -> Message {
        use crate::campaign::{CampaignPerf, CampaignShard};
        let shard = CampaignShard::from_parts(
            ShardSpec { index: 1, count: 3 },
            vec![],
            CampaignPerf {
                workers: 2,
                wall_seconds: 0.25,
                total_events: 7,
            },
        )
        .expect("valid spec");
        Message::ShardDone {
            job: "ab12".into(),
            shard,
        }
    }

    fn tiny_result() -> Message {
        use crate::campaign::{merge, CampaignPerf};
        let one = CampaignShard::from_parts(
            ShardSpec { index: 0, count: 1 },
            vec![],
            CampaignPerf {
                workers: 2,
                wall_seconds: 0.25,
                total_events: 7,
            },
        )
        .expect("valid spec");
        Message::Result {
            job: "ab12".into(),
            result: merge([one]).expect("merges"),
            outcomes: vec![
                AssertionOutcome {
                    kind: "throughput_at_least".into(),
                    passed: true,
                    cell: "TPC-C-1/baseline/c2/t8".into(),
                    expected: "steady throughput >= 0.001 txn/cycle".into(),
                    observed: "0.0123 txn/cycle".into(),
                },
                AssertionOutcome {
                    kind: "metric_within".into(),
                    passed: false,
                    cell: "TPC-E/strex/c4/t8".into(),
                    expected: "i_mpki in [1, 2]".into(),
                    observed: "3.5".into(),
                },
            ],
        }
    }

    #[test]
    fn binary_payload_frames_round_trip_through_the_reader() {
        for msg in [tiny_shard_done(), tiny_result()] {
            let frame = msg.to_frame_bytes(WireFormat::Bin);
            assert_eq!(frame[0], binwire::MAGIC);
            assert_eq!(*frame.last().unwrap(), b'\n');

            let mut r = FrameReader::new(BufReader::new(&frame[..]));
            let parsed = r.next_message().expect("parse").expect("one frame");
            assert_eq!(
                parsed.to_frame_bytes(WireFormat::Bin),
                frame,
                "byte-identical re-emission"
            );
            // The decoded message's JSON twin matches the original's, so both
            // forms carry exactly the same document.
            assert_eq!(parsed.to_frame(), msg.to_frame());
            assert!(r.next_message().expect("eof").is_none(), "clean EOF");
        }
    }

    #[test]
    fn result_diagnostics_survive_both_framings() {
        let msg = tiny_result();
        for frame in [
            msg.to_frame().into_bytes(),
            msg.to_frame_bytes(WireFormat::Bin),
        ] {
            let mut r = FrameReader::new(BufReader::new(&frame[..]));
            let Some(Message::Result { outcomes, .. }) = r.next_message().expect("parse") else {
                panic!("expected a result frame");
            };
            assert_eq!(outcomes.len(), 2);
            assert!(outcomes[0].passed && !outcomes[1].passed);
            assert_eq!(outcomes[1].cell, "TPC-E/strex/c4/t8");
        }
    }

    #[test]
    fn json_and_binary_frames_interleave_on_one_stream() {
        let mut bytes = Message::Heartbeat.to_frame().into_bytes();
        bytes.extend_from_slice(&tiny_shard_done().to_frame_bytes(WireFormat::Bin));
        bytes.extend_from_slice(
            Message::Register {
                name: "w".into(),
                caps: WorkerCaps::legacy(),
            }
            .to_frame()
            .as_bytes(),
        );

        let mut r = FrameReader::new(BufReader::new(&bytes[..]));
        assert!(matches!(
            r.next_message().unwrap(),
            Some(Message::Heartbeat)
        ));
        assert!(matches!(
            r.next_message().unwrap(),
            Some(Message::ShardDone { .. })
        ));
        assert!(matches!(
            r.next_message().unwrap(),
            Some(Message::Register { .. })
        ));
        assert!(r.next_message().unwrap().is_none());
    }

    #[test]
    fn truncated_binary_frames_are_typed_errors() {
        let frame = tiny_shard_done().to_frame_bytes(WireFormat::Bin);
        // Cut everywhere interesting: after the magic, mid-length-prefix,
        // mid-payload, and right before the trailing newline.
        for cut in [1, 3, frame.len() - 10, frame.len() - 1] {
            let mut r = FrameReader::new(BufReader::new(&frame[..cut]));
            match r.next_message() {
                Err(ProtoError::Truncated { bytes }) => {
                    assert_eq!(bytes, cut, "cut at {cut}");
                }
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_binary_frames_are_typed_errors_never_panics() {
        // A length prefix past the cap is refused before allocating.
        let mut huge = vec![binwire::MAGIC];
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut r = FrameReader::new(BufReader::new(&huge[..]));
        assert!(matches!(r.next_message(), Err(ProtoError::Malformed(_))));

        // An unknown payload kind is a wire error.
        let mut bad_kind = vec![binwire::MAGIC];
        let payload = [binwire::MAGIC, b'?'];
        bad_kind.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bad_kind.extend_from_slice(&payload);
        bad_kind.push(b'\n');
        let mut r = FrameReader::new(BufReader::new(&bad_kind[..]));
        match r.next_message() {
            Err(ProtoError::Wire(e)) => assert!(e.to_string().contains("kind"), "{e}"),
            other => panic!("expected a wire error, got {other:?}"),
        }

        // A frame whose payload is not followed by a newline is malformed.
        let good = tiny_shard_done().to_frame_bytes(WireFormat::Bin);
        let mut no_newline = good.clone();
        *no_newline.last_mut().unwrap() = b'X';
        let mut r = FrameReader::new(BufReader::new(&no_newline[..]));
        assert!(matches!(r.next_message(), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn assign_rejects_invalid_shard_specs() {
        let err = Message::parse_frame(
            "{\"type\":\"assign\",\"job\":\"j\",\"campaign\":\"quick\",\"index\":4,\"count\":4}\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("shard"), "{err}");
    }

    #[test]
    fn submit_with_an_invalid_scenario_is_a_wire_error() {
        let err = Message::parse_frame(
            "{\"type\":\"submit\",\"scenario\":{\"name\":\"x\"},\"shards\":2}\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("scenario"), "{err}");
    }
}
